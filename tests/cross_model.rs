//! Cross-crate integration tests: the three data models (relations, XML,
//! generalized databases) agree through the encodings, and the glb
//! constructions commute with them.

use ca_core::preorder::Preorder;
use ca_core::value::Value;
use ca_gdm::encode::{encode_relational, encode_xml};
use ca_gdm::glb::{glb_sigma, glb_trees_gdm};
use ca_gdm::hom::{gdm_equiv, gdm_leq};
use ca_relational::database::build::{c, n, table};
use ca_relational::generate::{random_naive_db, DbParams, Rng};
use ca_relational::ordering::InfoOrder;
use ca_xml::encode::encode_database;
use ca_xml::hom::tree_leq;
use ca_xml::tree::{example_alphabet, XmlTree};

/// The relational ordering survives a round trip through *both* encodings
/// (relational → XML trees, relational → generalized databases).
#[test]
fn orderings_agree_across_all_three_models() {
    let mut rng = Rng::new(5150);
    for trial in 0..25 {
        let p = DbParams {
            n_facts: 3,
            arity: 2,
            n_constants: 2,
            n_nulls: 2,
            null_pct: 50,
        };
        let a = random_naive_db(&mut rng, p);
        let b = random_naive_db(&mut rng, p);
        let rel = InfoOrder.leq(&a, &b);
        let xml = tree_leq(&encode_database(&a), &encode_database(&b));
        let gdm = gdm_leq(&encode_relational(&a), &encode_relational(&b));
        assert_eq!(rel, xml, "relational vs XML disagree on trial {trial}");
        assert_eq!(rel, gdm, "relational vs GDM disagree on trial {trial}");
    }
}

/// glb commutes with the relational → GDM encoding (Theorem 4 degenerates
/// to Proposition 5 at σ = ∅).
#[test]
fn relational_glb_commutes_with_gdm_encoding() {
    let mut rng = Rng::new(6021);
    for _ in 0..15 {
        let p = DbParams {
            n_facts: 3,
            arity: 2,
            n_constants: 3,
            n_nulls: 2,
            null_pct: 30,
        };
        let a = random_naive_db(&mut rng, p);
        let b = random_naive_db(&mut rng, p);
        let rel_glb = ca_relational::glb::glb_databases(&a, &b);
        let gdm_glb = glb_sigma(&encode_relational(&a), &encode_relational(&b));
        assert!(gdm_equiv(&gdm_glb, &encode_relational(&rel_glb)));
    }
}

/// Tree glbs computed natively (ca-xml) and through the generalized model
/// (ca-gdm, Theorem 4 with K = trees) are hom-equivalent.
#[test]
fn tree_glb_agrees_between_xml_and_gdm() {
    let alpha = example_alphabet();
    let mk = |price: i64, extra_label: &str| {
        let mut t = XmlTree::new(alpha.clone(), "r", vec![]);
        let a = t.add_child(0, "a", vec![Value::Const(1), Value::Const(price)]);
        t.add_child(a, extra_label, vec![Value::Const(9)]);
        t
    };
    let t1 = mk(2, "b");
    let t2 = mk(3, "b");
    let xml_meet = ca_xml::glb::glb_trees(&t1, &t2).expect("documents share root");
    let gdm_meet = glb_trees_gdm(&encode_xml(&t1), &encode_xml(&t2)).expect("documents share root");
    assert!(gdm_equiv(&gdm_meet, &encode_xml(&xml_meet)));
}

/// The depth-2 encoding of a relational glb is a glb of the encodings —
/// the exact mechanism behind Corollary 2's transfer of Theorem 3 to XML.
#[test]
fn corollary2_transfer_mechanism() {
    let a = table("R", 2, &[&[c(1), c(2)], &[c(2), c(2)]]);
    let b = table("R", 2, &[&[c(1), c(3)], &[n(1), c(2)]]);
    let rel_glb = ca_relational::glb::glb_databases(&a, &b);
    let enc_glb =
        ca_xml::glb::glb_trees(&encode_database(&a), &encode_database(&b)).expect("shared root");
    // Both ways around: encoding of glb ∼ glb of encodings.
    assert!(tree_leq(&enc_glb, &encode_database(&rel_glb)));
    assert!(tree_leq(&encode_database(&rel_glb), &enc_glb));
}

/// Codd-ness and completeness are preserved by all encodings.
#[test]
fn structural_predicates_survive_encoding() {
    let codd = table("R", 2, &[&[c(1), n(1)], &[n(2), c(2)]]);
    let naive = table("R", 2, &[&[n(1), n(1)]]);
    let complete = table("R", 2, &[&[c(1), c(2)]]);
    for (db, is_codd, is_complete) in [
        (&codd, true, false),
        (&naive, false, false),
        (&complete, true, true),
    ] {
        assert_eq!(db.is_codd(), is_codd);
        assert_eq!(db.is_complete(), is_complete);
        assert_eq!(encode_relational(db).is_codd(), is_codd);
        assert_eq!(encode_relational(db).is_complete(), is_complete);
        assert_eq!(encode_database(db).is_complete(), is_complete);
    }
}
