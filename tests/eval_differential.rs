//! Differential tests: the compiled query engine (`ca_query::engine`)
//! against the retained nested-loop evaluator (`ca_query::reference`) on
//! random multi-relation schemas, naïve databases, and UCQs.
//!
//! The reference evaluator is the exact pre-engine code, so any
//! disagreement here is a regression in the engine. Agreement is asserted
//! on full answer *tables* (ordered sets of rows), not just Booleans, and
//! the parallel certain-answer sweep must be byte-identical at every
//! thread count.

use proptest::prelude::*;

use ca_query::certain::{certain_answer_bool_with, certain_table_with};
use ca_query::engine::{self, CompiledUcq};
use ca_query::generate::{random_ucq_over, QueryParams};
use ca_query::reference;
use ca_query::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_relational::database::NaiveDatabase;
use ca_relational::generate::{random_naive_db_over, random_schema, DbParams, Rng};
use ca_relational::schema::Schema;

/// One random instance: a schema of 1–3 relations (arity ≤ 3), a naïve
/// database over it, and a UCQ with a random head arity.
fn instance(seed: u64) -> (Schema, NaiveDatabase, UnionQuery) {
    let mut rng = Rng::new(seed);
    let schema = random_schema(&mut rng, 1 + (seed % 3) as usize, 3);
    let db = random_naive_db_over(
        &mut rng,
        &schema,
        DbParams {
            n_facts: 6,
            arity: 0, // ignored: arities come from the schema
            n_constants: 3,
            n_nulls: 3,
            null_pct: 35,
        },
    );
    let head_arity = rng.below(3) as usize;
    let params = QueryParams {
        n_disjuncts: 1 + rng.below(2) as usize,
        n_atoms: 1 + rng.below(3) as usize,
        n_vars: 4,
        arity: 0,
        n_constants: 3,
        const_pct: 25,
    };
    let q = random_ucq_over(&mut rng, &schema, head_arity, params);
    (schema, db, q)
}

proptest! {
    /// The headline invariant: the engine's UCQ answer table equals the
    /// reference evaluator's, row for row (both are BTreeSets, so equality
    /// is order-insensitive but content-exact, nulls included).
    #[test]
    fn engine_tables_agree_with_reference(seed in any::<u64>()) {
        let (_, db, q) = instance(seed);
        prop_assert_eq!(
            engine::eval_ucq(&q, &db).expect("generated over the schema"),
            reference::eval_ucq(&q, &db),
            "on {:?} over {:?}", &q, &db
        );
    }

    /// Boolean evaluation (early-exit path) agrees with the reference.
    #[test]
    fn engine_bools_agree_with_reference(seed in any::<u64>()) {
        let (_, db, q) = instance(seed);
        // Rebuild as a Boolean query: drop the heads.
        let bq = UnionQuery::new(
            q.disjuncts
                .iter()
                .map(|d| ConjunctiveQuery::boolean(d.atoms.clone()))
                .collect(),
        );
        prop_assert_eq!(
            engine::eval_ucq_bool(&bq, &db).expect("generated over the schema"),
            reference::eval_ucq_bool(&bq, &db)
        );
    }

    /// Per-disjunct agreement too (exercises the CQ entry point and the
    /// head-projection machinery disjunct by disjunct).
    #[test]
    fn engine_cqs_agree_with_reference(seed in any::<u64>()) {
        let (_, db, q) = instance(seed);
        for d in &q.disjuncts {
            prop_assert_eq!(
                engine::eval_cq(d, &db).expect("generated over the schema"),
                reference::eval_cq(d, &db)
            );
        }
    }

    /// The parallel certain-answer sweep is deterministic: threads=1 and
    /// threads=4 produce identical tables and Booleans. (Kept to modest
    /// null counts so the |pool|^#nulls sweep stays small.)
    #[test]
    fn sweep_is_thread_count_invariant(seed in any::<u64>()) {
        let mut rng = Rng::new(seed ^ 0x5eed);
        let schema = random_schema(&mut rng, 2, 2);
        let db = random_naive_db_over(
            &mut rng,
            &schema,
            DbParams { n_facts: 4, arity: 0, n_constants: 2, n_nulls: 2, null_pct: 40 },
        );
        let head_arity = rng.below(2) as usize;
        let q = random_ucq_over(
            &mut rng,
            &schema,
            head_arity,
            QueryParams {
                n_disjuncts: 2,
                n_atoms: 2,
                n_vars: 3,
                arity: 0,
                n_constants: 2,
                const_pct: 25,
            },
        );
        let seq = certain_table_with(&q, &db, 1);
        let par = certain_table_with(&q, &db, 4);
        prop_assert_eq!(&seq, &par, "certain_table differs across thread counts");
        // Boolean driver: also thread-count invariant, and consistent with
        // the table for Boolean queries.
        let bq = UnionQuery::new(
            q.disjuncts.iter().map(|d| ConjunctiveQuery::boolean(d.atoms.clone())).collect(),
        );
        prop_assert_eq!(
            certain_answer_bool_with(&bq, &db, 1),
            certain_answer_bool_with(&bq, &db, 4)
        );
    }

    /// Certificate round-trip: every verdict the certified drivers emit
    /// must replay through the engine-blind checker — engine, reference,
    /// and certificate all agree. (Same small instances as the sweep
    /// invariant so the |pool|^#nulls grid stays cheap.)
    #[test]
    fn certified_verdicts_round_trip(seed in any::<u64>()) {
        use ca_cert::{check_certain_row, check_non_certain, CertainVerdictCert};
        use ca_query::certify;

        let mut rng = Rng::new(seed ^ 0xce47);
        let schema = random_schema(&mut rng, 2, 2);
        let db = random_naive_db_over(
            &mut rng,
            &schema,
            DbParams { n_facts: 4, arity: 0, n_constants: 2, n_nulls: 2, null_pct: 40 },
        );
        let head_arity = rng.below(2) as usize;
        let q = random_ucq_over(
            &mut rng,
            &schema,
            head_arity,
            QueryParams {
                n_disjuncts: 2,
                n_atoms: 2,
                n_vars: 3,
                arity: 0,
                n_constants: 2,
                const_pct: 25,
            },
        );
        let facts = certify::db_facts(&db);

        // Boolean verdict: agrees with the uncertified driver, and the
        // certificate (either polarity) passes the checker.
        let (verdict, cert) = certify::certain_bool_certified(&q, &db, 1);
        prop_assert_eq!(verdict, certain_answer_bool_with(&q, &db, 1));
        let bq = certify::cert_query(&certify::boolean_form(&q));
        match cert {
            Some(CertainVerdictCert::Certain(m)) => {
                prop_assert!(verdict, "certain cert on a non-certain verdict");
                prop_assert_eq!(check_certain_row(&bq, &facts, &m), Ok(()));
            }
            Some(CertainVerdictCert::NonCertain(nc)) => {
                prop_assert!(!verdict, "non-certain cert on a certain verdict");
                prop_assert_eq!(check_non_certain(&bq, &facts, &nc), Ok(()));
            }
            None => prop_assert!(
                db.nulls().is_empty() || !verdict,
                "cert withheld outside the vacuous corner"
            ),
        }

        // Table: agrees with the uncertified driver, every row carries a
        // checkable naïve match, and a fabricated non-row is refutable
        // with a checkable completion.
        let (table, certs) = certify::certain_table_certified(&q, &db, 1);
        prop_assert_eq!(&table, &certain_table_with(&q, &db, 1));
        prop_assert_eq!(certs.len(), table.len(), "uncertified certain row");
        let cq = certify::cert_query(&q);
        for (row, m) in &certs {
            prop_assert!(table.contains(row));
            prop_assert_eq!(check_certain_row(&cq, &facts, m), Ok(()));
        }
        let bogus = vec![ca_core::value::Value::Const(987_654); q.head_arity()];
        if !table.contains(&bogus) && !db.nulls().is_empty() {
            let nc = certify::refute_row(&q, &db, &bogus)
                .expect("a non-certain row must have a falsifying completion");
            prop_assert_eq!(check_non_certain(&cq, &facts, &nc), Ok(()));
        }
    }

    /// Lenient compilation matches the reference evaluator even when the
    /// query mentions relations outside the schema: the broken disjunct
    /// contributes nothing, the others still answer.
    #[test]
    fn lenient_path_agrees_on_broken_queries(seed in any::<u64>()) {
        let (schema, db, q) = instance(seed);
        // Inject a disjunct over an unknown relation, same head arity.
        let head_arity = q.head_arity();
        let broken = ConjunctiveQuery::with_head(
            vec![0; head_arity],
            vec![Atom::new("NO_SUCH_REL", vec![Term::Var(0)])],
        );
        let mut disjuncts = q.disjuncts.clone();
        disjuncts.push(broken);
        let mixed = UnionQuery::new(disjuncts);
        // Strict compilation refuses...
        prop_assert!(CompiledUcq::compile(&mixed, &schema).is_err());
        // ...while the legacy entry point (lenient) matches the reference.
        prop_assert_eq!(
            ca_query::eval::eval_ucq(&mixed, &db),
            reference::eval_ucq(&mixed, &db)
        );
    }
}
