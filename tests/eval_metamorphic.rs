//! Metamorphic tests: the paper's laws as invariants of the new engine.
//!
//! * **Theorem 5 / the classical UCQ theorem**: naïve evaluation computes
//!   certain answers for UCQs — `naive_eval_table(Q, D)` must equal the
//!   brute-force `certain_table(Q, D)` on every instance, now with both
//!   sides routed through the compiled engine.
//! * **Proposition 2**: for a Boolean CQ the three legs — brute-force
//!   certain answer, tableau homomorphism `D_Q ⊑ D`, and containment
//!   `Q_D ⊆ Q` — agree (each computed independently; containment itself
//!   now runs Chandra–Merlin through the engine).
//! * **Symmetry laws**: answers are invariant under permuting a CQ's
//!   atoms and a UCQ's disjuncts (the planner picks different join
//!   orders; the answers must not change).
//!
//! Plus hand-built edge cases for head projection and constants in
//! atoms/heads, where the engine's key/bind/check classification is
//! easiest to get wrong.

use proptest::prelude::*;

use ca_query::certain::{
    certain_answer_bool, certain_table, naive_eval_bool, naive_eval_table, proposition2_checks,
};
use ca_query::engine;
use ca_query::generate::{random_bool_cq, random_ucq_over, QueryParams};
use ca_query::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_relational::database::build::{c, n, table};
use ca_relational::database::NaiveDatabase;
use ca_relational::generate::{
    random_naive_db, random_naive_db_over, random_schema, DbParams, Rng,
};

use Term::{Const as C, Var as V};

/// A small instance: ≤ 2 nulls keeps the |pool|^#nulls sweep tiny.
fn small_instance(seed: u64) -> (NaiveDatabase, UnionQuery) {
    let mut rng = Rng::new(seed);
    let schema = random_schema(&mut rng, 2, 2);
    let db = random_naive_db_over(
        &mut rng,
        &schema,
        DbParams {
            n_facts: 5,
            arity: 0,
            n_constants: 3,
            n_nulls: 2,
            null_pct: 35,
        },
    );
    let head_arity = rng.below(3) as usize;
    let params = QueryParams {
        n_disjuncts: 1 + rng.below(2) as usize,
        n_atoms: 1 + rng.below(2) as usize,
        n_vars: 3,
        arity: 0,
        n_constants: 3,
        const_pct: 25,
    };
    let q = random_ucq_over(&mut rng, &schema, head_arity, params);
    (db, q)
}

proptest! {
    /// Theorem 5 (the classical UCQ theorem) under the new engine: naïve
    /// evaluation equals brute-force certain answers, as full tables.
    #[test]
    fn naive_eval_computes_certain_answers(seed in any::<u64>()) {
        let (db, q) = small_instance(seed);
        prop_assert_eq!(
            naive_eval_table(&q, &db),
            certain_table(&q, &db),
            "Theorem 5 violated on {:?} over {:?}", &q, &db
        );
    }

    /// The Boolean version of the same law.
    #[test]
    fn naive_eval_bool_computes_certain_answers(seed in any::<u64>()) {
        let (db, q) = small_instance(seed);
        let bq = UnionQuery::new(
            q.disjuncts
                .iter()
                .map(|d| ConjunctiveQuery::boolean(d.atoms.clone()))
                .collect(),
        );
        prop_assert_eq!(naive_eval_bool(&bq, &db), certain_answer_bool(&bq, &db));
    }

    /// Proposition 2: the three independently-computed legs agree on
    /// random Boolean CQs over the single-relation generator.
    #[test]
    fn proposition2_legs_agree(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let db = random_naive_db(
            &mut rng,
            DbParams { n_facts: 4, arity: 2, n_constants: 2, n_nulls: 2, null_pct: 40 },
        );
        let q = random_bool_cq(
            &mut rng,
            QueryParams {
                n_disjuncts: 1,
                n_atoms: 2,
                n_vars: 3,
                arity: 2,
                n_constants: 2,
                const_pct: 30,
            },
        );
        let (certain, ordering, containment) = proposition2_checks(&q, &db);
        prop_assert_eq!(certain, ordering, "certain vs D_Q ⊑ D on {:?} / {:?}", &q, &db);
        prop_assert_eq!(ordering, containment, "D_Q ⊑ D vs Q_D ⊆ Q on {:?} / {:?}", &q, &db);
    }

    /// Permuting a CQ's atoms never changes its answers — the planner's
    /// join order may differ wildly, the result must not.
    #[test]
    fn atom_permutation_invariance(seed in any::<u64>()) {
        let (db, q) = small_instance(seed);
        for d in &q.disjuncts {
            let baseline = engine::eval_cq(d, &db).unwrap();
            let mut atoms = d.atoms.clone();
            atoms.reverse();
            let reversed = ConjunctiveQuery::with_head(d.head.clone(), atoms);
            prop_assert_eq!(engine::eval_cq(&reversed, &db).unwrap(), baseline);
        }
    }

    /// Permuting a UCQ's disjuncts never changes its answers.
    #[test]
    fn disjunct_permutation_invariance(seed in any::<u64>()) {
        let (db, q) = small_instance(seed);
        let baseline = engine::eval_ucq(&q, &db).unwrap();
        let mut disjuncts = q.disjuncts.clone();
        disjuncts.reverse();
        let reversed = UnionQuery::new(disjuncts);
        prop_assert_eq!(engine::eval_ucq(&reversed, &db).unwrap(), baseline);
    }
}

/// Head projection: Theorem 5 on a query that projects away join columns,
/// where the naïve answer contains null rows that must be filtered.
#[test]
fn theorem5_with_head_projection() {
    // Q(x) ← R(x, y) ∧ R(y, z): 2-path sources.
    let q = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0],
        vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("R", vec![V(1), V(2)]),
        ],
    ));
    let db = table(
        "R",
        2,
        &[&[c(1), n(1)], &[n(1), c(2)], &[n(2), c(7)], &[c(7), n(2)]],
    );
    let naive = naive_eval_table(&q, &db);
    assert_eq!(naive, certain_table(&q, &db));
    assert!(naive.contains(&vec![c(1)]), "1 → ⊥1 → 2 is certain");
    assert!(naive.contains(&vec![c(7)]), "7 → ⊥2 → 7 is certain");
    assert!(!naive.contains(&vec![c(2)]));
}

/// Constants in the head (via a repeated-variable trick) and in atoms:
/// Q(x, y) ← R(1, x) ∧ R(x, y) pins the first column with a constant and
/// chains through it.
#[test]
fn theorem5_with_constants_in_atoms() {
    let q = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0, 1],
        vec![
            Atom::new("R", vec![C(1), V(0)]),
            Atom::new("R", vec![V(0), V(1)]),
        ],
    ));
    let db = table("R", 2, &[&[c(1), c(3)], &[c(3), n(1)], &[c(3), c(4)]]);
    let naive = naive_eval_table(&q, &db);
    assert_eq!(naive, certain_table(&q, &db));
    assert_eq!(naive, std::collections::BTreeSet::from([vec![c(3), c(4)]]));
}

/// A repeated head variable: Q(x, x) ← R(x, x). The engine's head
/// projection duplicates a slot; certain answers must agree.
#[test]
fn theorem5_with_repeated_head_variable() {
    let q = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0, 0],
        vec![Atom::new("R", vec![V(0), V(0)])],
    ));
    let db = table("R", 2, &[&[c(4), c(4)], &[n(1), n(1)], &[n(2), c(5)]]);
    let naive = naive_eval_table(&q, &db);
    assert_eq!(naive, certain_table(&q, &db));
    // R(⊥1, ⊥1) matches naïvely but its row is null — filtered; R(⊥2, 5)
    // can complete to R(5, 5) or not — not certain.
    assert_eq!(naive, std::collections::BTreeSet::from([vec![c(4), c(4)]]));
}

/// Proposition 2 on queries with constants in atoms (the tableau then
/// contains constants; the containment leg must treat them rigidly).
#[test]
fn proposition2_with_constants() {
    let cases = [
        (
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(1), V(0)])]),
            table("R", 2, &[&[c(1), n(1)]]),
        ),
        (
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(1), C(2)])]),
            table("R", 2, &[&[c(1), n(1)]]),
        ),
        (
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(1), V(0)]), {
                Atom::new("R", vec![V(0), C(1)])
            }]),
            table("R", 2, &[&[c(1), n(1)], &[n(1), c(1)]]),
        ),
    ];
    for (q, db) in &cases {
        let (a, b, c3) = proposition2_checks(q, db);
        assert_eq!(a, b, "certain vs ordering on {q:?}");
        assert_eq!(b, c3, "ordering vs containment on {q:?}");
    }
}
