//! Property-based tests (proptest) for the core invariants of the
//! information orderings across models.

use proptest::prelude::*;

use ca_core::preorder::Preorder;
use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::glb::glb_databases;
use ca_relational::ordering::InfoOrder;
use ca_relational::schema::Schema;
use ca_relational::tuplewise::hoare_leq;

/// Strategy: a small naïve database over one binary relation.
fn arb_db(max_facts: usize, codd: bool) -> impl Strategy<Value = NaiveDatabase> {
    let value = prop_oneof![
        (0i64..3).prop_map(Value::Const),
        (0u32..3).prop_map(Value::null),
    ];
    let fact = prop::collection::vec(value, 2);
    prop::collection::vec(fact, 0..=max_facts).prop_map(move |rows| {
        let schema = Schema::from_relations(&[("R", 2)]);
        let mut db = NaiveDatabase::new(schema);
        let mut next_null = 100u32;
        for row in rows {
            let row = if codd {
                // Freshen every null to restore the Codd discipline.
                row.into_iter()
                    .map(|v| match v {
                        Value::Null(_) => {
                            next_null += 1;
                            Value::null(next_null)
                        }
                        c => c,
                    })
                    .collect()
            } else {
                row
            };
            db.add("R", row);
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ⊑ is reflexive.
    #[test]
    fn ordering_reflexive(db in arb_db(4, false)) {
        prop_assert!(InfoOrder.leq(&db, &db));
    }

    /// ⊑ is transitive (on sampled triples).
    #[test]
    fn ordering_transitive(a in arb_db(3, false), b in arb_db(3, false), c in arb_db(3, false)) {
        if InfoOrder.leq(&a, &b) && InfoOrder.leq(&b, &c) {
            prop_assert!(InfoOrder.leq(&a, &c));
        }
    }

    /// The empty database is the bottom element.
    #[test]
    fn empty_is_bottom(db in arb_db(4, false)) {
        let empty = NaiveDatabase::new(Schema::from_relations(&[("R", 2)]));
        prop_assert!(InfoOrder.leq(&empty, &db));
    }

    /// Homomorphic images are more informative: D ⊑ h(D) for groundings.
    #[test]
    fn grounding_is_above(db in arb_db(4, false)) {
        let (frozen, _) = db.freeze(&std::collections::BTreeSet::new());
        prop_assert!(InfoOrder.leq(&db, &frozen));
        prop_assert!(frozen.is_complete());
    }

    /// Proposition 5 as a property: the ⊗-product is a lower bound of
    /// both inputs and dominates the empty database trivially.
    #[test]
    fn glb_is_lower_bound(a in arb_db(3, false), b in arb_db(3, false)) {
        let meet = glb_databases(&a, &b);
        prop_assert!(InfoOrder.leq(&meet, &a));
        prop_assert!(InfoOrder.leq(&meet, &b));
    }

    /// glb is commutative up to ∼.
    #[test]
    fn glb_commutative(a in arb_db(3, false), b in arb_db(3, false)) {
        let ab = glb_databases(&a, &b);
        let ba = glb_databases(&b, &a);
        prop_assert!(InfoOrder.leq(&ab, &ba) && InfoOrder.leq(&ba, &ab));
    }

    /// Proposition 4 as a property: on Codd databases ⊑ = ⊴ (Hoare).
    #[test]
    fn proposition4_property(a in arb_db(3, true), b in arb_db(3, true)) {
        prop_assert!(a.is_codd() && b.is_codd());
        prop_assert_eq!(InfoOrder.leq(&a, &b), hoare_leq(&a, &b));
    }

    /// π_cpl is a monotone retraction (the Section 3 axioms, sampled).
    #[test]
    fn complete_part_is_retraction(a in arb_db(4, false), b in arb_db(4, false)) {
        use ca_core::complete::CompleteObjects;
        let pa = InfoOrder.pi_cpl(&a);
        prop_assert!(pa.is_complete());
        prop_assert!(InfoOrder.leq(&pa, &a));
        if InfoOrder.leq(&a, &b) {
            prop_assert!(InfoOrder.leq(&pa, &InfoOrder.pi_cpl(&b)));
        }
        // Idempotent on complete objects.
        prop_assert_eq!(InfoOrder.pi_cpl(&pa), pa);
    }
}
