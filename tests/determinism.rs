//! Determinism regression suite: certain-answer *tuple order* must be a
//! pure function of the logical database, never of physical layout.
//!
//! Rust seeds each `HashMap`'s hasher independently (`RandomState::new`
//! draws fresh keys per instance), so two runs of the same binary lay
//! hash tables out differently (`RUST_HASHMAP_SEED`-style variation,
//! which std does not expose). The in-process proxy with the same
//! failure power: *rebuild* the database and its indices several times,
//! inserting facts in different orders. Every rebuild allocates fresh
//! hash tables with fresh per-instance seeds (the engine's lazy indices
//! hash `Vec<Value>` keys), so any place where map iteration order leaks
//! into a result boundary produces different tuple orders across
//! rebuilds — exactly what the `ca-lint` L007 rule guards statically,
//! checked here dynamically. The paper's
//! semantics require this (certain answers are an intersection over
//! completions — Libkin, PODS 2011, Thm 5): evaluation order is an
//! implementation detail and must never be observable.

use ca_core::value::Value;
use ca_query::engine;
use ca_query::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_relational::database::build::{c, n};
use ca_relational::database::NaiveDatabase;
use ca_relational::schema::Schema;
use Term::{Const as C, Var as V};

/// The fixed logical content: a two-relation database with enough facts
/// (> INDEX_THRESHOLD = 16 per relation) that the engine actually builds
/// hash indices instead of scanning.
fn facts() -> (Schema, Vec<(&'static str, Vec<Value>)>) {
    let schema = Schema::from_relations(&[("R", 2), ("S", 1)]);
    let mut facts: Vec<(&'static str, Vec<Value>)> = Vec::new();
    for i in 0..18 {
        facts.push(("R", vec![c(i), c(i + 1)]));
        facts.push(("S", vec![c(i)]));
    }
    facts.push(("R", vec![c(1), n(1)]));
    facts.push(("R", vec![n(1), c(3)]));
    facts.push(("R", vec![n(2), c(5)]));
    facts.push(("S", vec![n(1)]));
    (schema, facts)
}

/// Build the database with facts inserted in a permuted order. The
/// store canonicalizes (facts stay sorted), so the logical database is
/// identical; what varies per rebuild is every hash table the engine
/// derives from it — each gets a fresh per-instance `RandomState` seed.
fn build_permuted(rotation: usize) -> NaiveDatabase {
    let (schema, mut fs) = facts();
    let mid = rotation % fs.len();
    fs.rotate_left(mid);
    if rotation % 2 == 1 {
        fs.reverse();
    }
    let mut db = NaiveDatabase::new(schema);
    for (rel, args) in fs {
        db.add(rel, args);
    }
    db
}

fn query() -> UnionQuery {
    UnionQuery::new(vec![
        // Q(x, z) ← R(x, y) ∧ R(y, z) ∧ S(x)
        ConjunctiveQuery::with_head(
            vec![0, 2],
            vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("R", vec![V(1), V(2)]),
                Atom::new("S", vec![V(0)]),
            ],
        ),
        // Q(x, x) ← R(1, x)
        ConjunctiveQuery::with_head(vec![0, 0], vec![Atom::new("R", vec![C(1), V(0)])]),
    ])
}

/// Naïve evaluation: identical ordered tuple sequences across rebuilds.
#[test]
fn naive_eval_order_is_layout_independent() {
    let baseline: Vec<Vec<Value>> = engine::eval_ucq(&query(), &build_permuted(0))
        .expect("query fits schema")
        .into_iter()
        .collect();
    assert!(!baseline.is_empty(), "fixture query must have answers");
    for rotation in 1..6 {
        let run: Vec<Vec<Value>> = engine::eval_ucq(&query(), &build_permuted(rotation))
            .expect("query fits schema")
            .into_iter()
            .collect();
        assert_eq!(
            baseline, run,
            "answer tuple order diverged on rebuild #{rotation}: map layout leaked"
        );
    }
}

/// The brute-force certain-answer sweep: identical ordered tuple
/// sequences across rebuilds *and* across thread counts — both knobs
/// vary physical evaluation order, neither may vary the result.
#[test]
fn certain_sweep_order_is_layout_and_thread_independent() {
    let pool = [1, 2, 3, 5];
    let plan =
        |db: &NaiveDatabase| engine::compile_ucq(&query(), &db.schema).expect("query fits schema");
    let db0 = build_permuted(0);
    let baseline: Vec<Vec<Value>> = engine::certain_table_over(&plan(&db0), &db0, &pool, 1)
        .into_iter()
        .collect();
    for rotation in 0..4 {
        for threads in [1, 2, 3, 7] {
            let db = build_permuted(rotation);
            let run: Vec<Vec<Value>> = engine::certain_table_over(&plan(&db), &db, &pool, threads)
                .into_iter()
                .collect();
            assert_eq!(
                baseline, run,
                "certain-answer order diverged (rebuild #{rotation}, {threads} threads)"
            );
        }
    }
}

/// The incremental retraction engine: the kept vertex set, the induced
/// core, and the witness-derived numbering must be identical at every
/// probe-thread width (lowest-candidate-wins makes the parallel probe
/// sweep order-insensitive). Pinned on a graph large enough that several
/// probes race: core(C3 × C4) ⊔ C2 ⊔ C6 retracts nontrivially.
#[test]
fn retraction_is_thread_width_independent() {
    use ca_graph::{core_of_with, Digraph};
    let g = Digraph::cycle(12)
        .disjoint_union(&Digraph::cycle(2))
        .disjoint_union(&Digraph::cycle(6))
        .disjoint_union(&Digraph::path(3));
    let (base_core, base_kept) = core_of_with(&g, 1);
    for threads in [2usize, 4, 8] {
        let (core, kept) = core_of_with(&g, threads);
        assert_eq!(base_kept, kept, "kept set diverged at {threads} threads");
        assert_eq!(base_core.edges, core.edges);
        assert_eq!(base_core.n, core.n);
    }
}

/// Same pin for generalized-database cores: node-for-node identical
/// output at every thread width.
#[test]
fn gendb_core_is_thread_width_independent() {
    use ca_exchange::solution::core_of_gendb_with;
    use ca_gdm::database::GenDb;
    use ca_gdm::schema::GenSchema;
    let schema = GenSchema::from_parts(&[("T", 2)], &[]);
    let mut d = GenDb::new(schema);
    // Three parallel chains x →⊥ᵢ→ y plus one grounded chain: the core
    // keeps a single chain, so several nodes compete for removal.
    for i in 1..=3u32 {
        d.add_node("T", vec![c(1), n(i)]);
        d.add_node("T", vec![n(i), c(2)]);
    }
    d.add_node("T", vec![c(1), c(7)]);
    d.add_node("T", vec![c(7), c(2)]);
    let base = core_of_gendb_with(&d, 1);
    for threads in [2usize, 4, 8] {
        assert_eq!(
            base,
            core_of_gendb_with(&d, threads),
            "gendb core diverged at {threads} threads"
        );
    }
}

/// The columnar store: two *independently built* stores over the same
/// logical database must agree on everything order-sensitive — the fact
/// scan sequence (`iter_live` + `fact_values`), the interner's constant
/// and null tables, and the serialized snapshot, which is byte-identical
/// exactly when every column, bitmap, and directory entry matches.
#[test]
fn store_scan_order_is_build_independent() {
    use ca_relational::store_bridge::to_store;
    let scan = |s: &ca_core::store::FactStore| -> Vec<(String, Vec<Value>)> {
        s.iter_live()
            .map(|f| (s.rel_name(s.fact_rel(f)).to_string(), s.fact_values(f)))
            .collect()
    };
    let base = to_store(&build_permuted(0));
    let base_scan = scan(&base);
    assert!(!base_scan.is_empty(), "fixture store must have facts");
    let base_bytes = base.to_bytes();
    for rotation in 1..6 {
        let other = to_store(&build_permuted(rotation));
        assert_eq!(
            base_scan,
            scan(&other),
            "fact scan order diverged on rebuild #{rotation}"
        );
        assert_eq!(
            base.values().n_consts(),
            other.values().n_consts(),
            "interner constant table diverged on rebuild #{rotation}"
        );
        assert_eq!(
            base_bytes,
            other.to_bytes(),
            "snapshot bytes diverged on rebuild #{rotation}: column or bitmap layout leaked"
        );
    }
}

/// Store-backed evaluation: the lazily built posting tables (CSR or
/// hash) are the only order-sensitive index structure left; answers
/// drawn through them must be identical across independently built
/// stores and across evaluation widths 1 vs 4 (the `CA_EVAL_THREADS`
/// knob — `certain_table_over` takes the resolved width explicitly, so
/// this pins exactly what varying the env var varies). The fixture
/// exceeds `INDEX_THRESHOLD`, so postings are genuinely probed.
#[test]
fn store_backed_postings_are_layout_and_thread_independent() {
    use ca_query::engine::DbIndex;
    use ca_relational::store_bridge::to_store;
    let pool = [1, 2, 3, 5];
    let db0 = build_permuted(0);
    let plan = engine::compile_ucq(&query(), &db0.schema).expect("query fits schema");
    let store0 = to_store(&db0);
    let mut idx0 = DbIndex::over(&store0);
    let baseline: Vec<Vec<Value>> = engine::eval_ucq_on(&plan, &mut idx0).into_iter().collect();
    assert!(!baseline.is_empty(), "fixture query must have answers");
    let certain_base: Vec<Vec<Value>> = engine::certain_table_over(&plan, &db0, &pool, 1)
        .into_iter()
        .collect();
    for rotation in 1..4 {
        let db = build_permuted(rotation);
        let store = to_store(&db);
        let mut idx = DbIndex::over(&store);
        let run: Vec<Vec<Value>> = engine::eval_ucq_on(&plan, &mut idx).into_iter().collect();
        assert_eq!(
            baseline, run,
            "store-backed answers diverged on rebuild #{rotation}: posting order leaked"
        );
        for threads in [1usize, 4] {
            let certain: Vec<Vec<Value>> = engine::certain_table_over(&plan, &db, &pool, threads)
                .into_iter()
                .collect();
            assert_eq!(
                certain_base, certain,
                "certain answers diverged (rebuild #{rotation}, width {threads})"
            );
        }
    }
}

/// Certificates are part of the result boundary, so the same pin
/// discipline applies to their canonical bytes: the certified
/// certain-answer drivers must emit byte-identical certificates across
/// independently rebuilt databases (fresh hash-table seeds everywhere)
/// and across sweep widths 1 vs 4.
#[test]
fn query_certificates_are_layout_and_thread_independent() {
    use ca_query::certify;
    let q = query();
    let baseline = {
        let db = build_permuted(0);
        let (verdict, cert) = certify::certain_bool_certified(&q, &db, 1);
        let (table, certs) = certify::certain_table_certified(&q, &db, 1);
        assert!(!table.is_empty(), "fixture query must have certain rows");
        assert_eq!(certs.len(), table.len(), "every certain row certifies");
        (
            verdict,
            cert.map(|c| c.to_bytes()),
            certs
                .iter()
                .flat_map(|(_, m)| m.to_bytes())
                .collect::<Vec<u8>>(),
        )
    };
    for rotation in 0..4 {
        for threads in [1usize, 4] {
            let db = build_permuted(rotation);
            let (verdict, cert) = certify::certain_bool_certified(&q, &db, threads);
            let (_, certs) = certify::certain_table_certified(&q, &db, threads);
            let run = (
                verdict,
                cert.map(|c| c.to_bytes()),
                certs
                    .iter()
                    .flat_map(|(_, m)| m.to_bytes())
                    .collect::<Vec<u8>>(),
            );
            assert_eq!(
                baseline, run,
                "certificate bytes diverged (rebuild #{rotation}, {threads} threads)"
            );
        }
    }
}

/// Chase derivation logs: byte-identical certificates across chase
/// thread widths 1 vs 4 and across independently rebuilt instances.
#[test]
fn chase_certificates_are_layout_and_thread_independent() {
    use ca_exchange::chase::{chase_certified, ChaseConfig};
    use ca_exchange::mapping::Rule;
    use ca_gdm::database::GenDb;
    use ca_gdm::schema::GenSchema;

    let schema = || GenSchema::from_parts(&[("T", 2)], &[]);
    // Permuted insertion order: the logical instance is identical, the
    // interner and every derived hash table is rebuilt from scratch.
    let instance = |rotation: usize| {
        let mut facts = vec![
            ("T", vec![c(1), c(2)]),
            ("T", vec![c(2), n(4)]),
            ("T", vec![n(4), c(3)]),
            ("T", vec![c(3), n(5)]),
        ];
        let mid = rotation % facts.len();
        facts.rotate_left(mid);
        let mut d = GenDb::new(schema());
        for (rel, args) in facts {
            d.add_node(rel, args);
        }
        d
    };
    // Transitivity keeps the chase multi-round without diverging.
    let transitivity = {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(2), n(3)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(1), n(3)]);
        Rule { body, head }
    };
    let tgds = [transitivity];
    let baseline = {
        let (_, cert) = chase_certified(
            &instance(0),
            &tgds,
            &[],
            &ChaseConfig::with_threads(10_000, 1),
        );
        cert.expect("engine certifies the fixture chase").to_bytes()
    };
    for rotation in 0..4 {
        for threads in [1usize, 4] {
            let cfg = ChaseConfig::with_threads(10_000, threads);
            let (_, cert) = chase_certified(&instance(rotation), &tgds, &[], &cfg);
            let run = cert.expect("engine certifies the fixture chase").to_bytes();
            assert_eq!(
                baseline, run,
                "chase certificate bytes diverged (rebuild #{rotation}, {threads} threads)"
            );
        }
    }
}

/// Core-retraction certificates: byte-identical fold/endomorphism chains
/// at every probe-thread width.
#[test]
fn core_certificates_are_thread_width_independent() {
    use ca_hom::retract::retract_core_certified;
    use ca_hom::structure::RelStructure;

    // C6 ⊔ C2 ⊔ a pendant path: several probes race for removal.
    let mut s = RelStructure::new(11);
    for i in 0..6u32 {
        s.add_tuple(0, vec![i, (i + 1) % 6]);
    }
    s.add_tuple(0, vec![6, 7]);
    s.add_tuple(0, vec![7, 6]);
    s.add_tuple(0, vec![8, 9]);
    s.add_tuple(0, vec![9, 10]);
    s.add_tuple(0, vec![10, 8]);
    let probe: Vec<u32> = (0..11).collect();
    let (base_r, base_cert) = retract_core_certified(&s, &probe, 1);
    assert_eq!(ca_cert::check_core(&base_cert), Ok(()));
    let base_bytes = base_cert.to_bytes();
    for threads in [2usize, 4, 8] {
        let (r, cert) = retract_core_certified(&s, &probe, threads);
        assert_eq!(
            base_r.kept, r.kept,
            "kept set diverged at {threads} threads"
        );
        assert_eq!(
            base_bytes,
            cert.to_bytes(),
            "core certificate bytes diverged at {threads} threads"
        );
    }
}

/// The hash-partitioned join path: answers must be byte-identical (same
/// tuples, same order) at every partition count — {1, 2, 4, 7} covers
/// the degenerate, even, and prime-width cases, 7 exceeding any CI
/// host's requested width — and across independently built stores. The
/// partitioning is a disjoint order-preserving cover of the leading
/// atom's rows and the merge is a `BTreeSet` union, so nothing physical
/// may leak.
#[test]
fn partitioned_answers_are_partition_count_independent() {
    use ca_query::engine::DbIndex;
    use ca_relational::store_bridge::to_store;
    let db0 = build_permuted(0);
    let plan = engine::compile_ucq(&query(), &db0.schema).expect("query fits schema");
    let store0 = to_store(&db0);
    let baseline: Vec<Vec<Value>> = engine::eval_ucq_on(&plan, &mut DbIndex::over(&store0))
        .into_iter()
        .collect();
    assert!(!baseline.is_empty(), "fixture query must have answers");
    for rotation in 0..4 {
        let store = to_store(&build_permuted(rotation));
        for parts in [1usize, 2, 4, 7] {
            let run: Vec<Vec<Value>> =
                engine::eval_ucq_partitioned(&plan, &mut DbIndex::over(&store), parts)
                    .into_iter()
                    .collect();
            assert_eq!(
                baseline, run,
                "partitioned answers diverged (rebuild #{rotation}, {parts} partitions)"
            );
        }
    }
}

/// The chase's partitioned match phase: certificates byte-identical at
/// widths {1, 2, 4, 7}. The fixture seeds 600 facts — past the
/// `PAR_MIN_SEED = 512` gate — so widths > 1 genuinely hash-partition
/// the seed lists into per-worker tasks (smaller fixtures would pass
/// vacuously through the sequential path).
#[test]
fn chase_partition_tasks_are_width_independent() {
    use ca_exchange::chase::{chase_certified, ChaseConfig};
    use ca_exchange::mapping::Rule;
    use ca_gdm::database::GenDb;
    use ca_gdm::schema::GenSchema;

    let schema = || GenSchema::from_parts(&[("T", 2), ("U", 1)], &[]);
    let instance = |rotation: usize| {
        let mut facts: Vec<Vec<Value>> = (0..600i64).map(|i| vec![c(i), c(i + 1)]).collect();
        facts.push(vec![c(0), n(1)]);
        facts.push(vec![n(1), c(7)]);
        let mid = rotation % facts.len();
        facts.rotate_left(mid);
        let mut d = GenDb::new(schema());
        for args in facts {
            d.add_node("T", args);
        }
        d
    };
    // Projection rule T(x, y) → U(x): every T fact is a seed (600+ ≥
    // PAR_MIN_SEED), one extra round, cheap deterministic closure.
    let project = {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(90), n(91)]);
        let mut head = GenDb::new(schema());
        head.add_node("U", vec![n(90)]);
        Rule { body, head }
    };
    let tgds = [project];
    let baseline = {
        let (_, cert) = chase_certified(
            &instance(0),
            &tgds,
            &[],
            &ChaseConfig::with_threads(10_000, 1),
        );
        cert.expect("engine certifies the fixture chase").to_bytes()
    };
    for rotation in 0..3 {
        for threads in [1usize, 2, 4, 7] {
            let cfg = ChaseConfig::with_threads(10_000, threads);
            let (_, cert) = chase_certified(&instance(rotation), &tgds, &[], &cfg);
            let run = cert.expect("engine certifies the fixture chase").to_bytes();
            assert_eq!(
                baseline, run,
                "chase certificate bytes diverged (rebuild #{rotation}, width {threads})"
            );
        }
    }
}

/// The streaming CSV loader: loaded stores byte-identical at every parse
/// width, and malformed input surfaces the *same typed error at the same
/// line* at every width — the reorder buffer applies batches in sequence
/// order, so neither data nor diagnostics may depend on worker racing.
#[test]
fn csv_ingest_is_width_independent_and_errors_are_typed() {
    use ca_core::store::ingest::{load_csv_bytes, IngestError};
    use ca_core::store::FactStore;

    let mut csv = String::from("# edge list\n");
    for i in 0..40 {
        csv.push_str(&format!("E,{},{}\nL,{},?{}\n", i, i + 1, i, i % 5));
    }
    let mut base = FactStore::new();
    let loaded = load_csv_bytes(csv.as_bytes(), &mut base, 1).expect("clean csv loads");
    assert_eq!(loaded, 80, "loader ingests every row");
    let base_bytes = base.to_bytes();
    for width in [2usize, 4, 7] {
        let mut s = FactStore::new();
        load_csv_bytes(csv.as_bytes(), &mut s, width).expect("clean csv loads");
        assert_eq!(
            s.to_bytes(),
            base_bytes,
            "loaded store diverged at parse width {width}"
        );
    }

    // Truncated row: arity declared 2 by line 2, line 3 has 1 field.
    let truncated = "# header\nE,1,2\nE,3\nE,4,5\n";
    // Unparseable field on line 2.
    let bad_value = "E,1,2\nE,x7,3\n";
    // Line 2 is not UTF-8 (lone 0xFF inside the row).
    let non_utf8: &[u8] = b"E,1,2\nE,\xff,3\n";
    for width in [1usize, 2, 4, 7] {
        let err = |bytes: &[u8]| {
            let mut s = FactStore::new();
            load_csv_bytes(bytes, &mut s, width).expect_err("malformed csv must not load")
        };
        assert_eq!(
            err(truncated.as_bytes()),
            IngestError::BadArity {
                line: 3,
                rel: "E".into(),
                declared: 2,
                got: 1
            },
            "truncated-row error diverged at width {width}"
        );
        assert_eq!(
            err(bad_value.as_bytes()),
            IngestError::BadValue {
                line: 2,
                token: "x7".into()
            },
            "bad-value error diverged at width {width}"
        );
        assert_eq!(
            err(non_utf8),
            IngestError::NonUtf8 { line: 2 },
            "non-utf8 error diverged at width {width}"
        );
    }
}

/// Sanity for the proxy itself: permuted insertion is canonicalized
/// away by the sorted fact store, so every rebuild is the *same*
/// logical database — any divergence the tests above could observe
/// would therefore be pure layout leakage, never a data difference.
#[test]
fn rebuilds_agree_logically() {
    let a = build_permuted(0);
    for rotation in 1..6 {
        let b = build_permuted(rotation);
        assert_eq!(a.facts(), b.facts(), "rebuild #{rotation} changed the data");
        assert_eq!(a.nulls(), b.nulls());
        assert_eq!(a.constants(), b.constants());
    }
}
