//! End-to-end integration tests for the paper's headline results, each
//! exercised through the public API of several crates at once.

use ca_core::preorder::{Preorder, PreorderExt};
use ca_graph::digraph::Digraph;
use ca_graph::lattice::{refute_glb_of_power_cycles, verify_power_cycle_chain, GlbRefutation};
use ca_query::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_query::certain::{certain_answer_bool, naive_eval_bool, proposition2_checks};
use ca_relational::database::build::{c, n, table};
use ca_relational::generate::{random_naive_db, DbParams, Rng};
use ca_relational::ordering::InfoOrder;

use Term::{Const as TC, Var as TV};

/// Proposition 2, full pipeline: certain answers (brute force), tableau
/// homomorphism, and containment all agree across a random sweep.
#[test]
fn proposition2_three_way_sweep() {
    let mut rng = Rng::new(11235);
    for _ in 0..40 {
        let db = random_naive_db(
            &mut rng,
            DbParams {
                n_facts: 3,
                arity: 2,
                n_constants: 2,
                n_nulls: 2,
                null_pct: 40,
            },
        );
        let q = ca_query::generate::random_bool_cq(
            &mut rng,
            ca_query::generate::QueryParams {
                n_disjuncts: 1,
                n_atoms: 2,
                n_vars: 2,
                arity: 2,
                n_constants: 2,
                const_pct: 25,
            },
        );
        let (a, b, c3) = proposition2_checks(&q, &db);
        assert_eq!(a, b);
        assert_eq!(b, c3);
    }
}

/// The classical naïve-evaluation theorem as a library-level guarantee,
/// including the monotonicity of UCQs under ⊑ (Proposition 7): if
/// `D ⊑ D′` and a Boolean UCQ holds naïvely on `D`, it holds on `D′`.
#[test]
fn proposition7_monotonicity_under_homomorphisms() {
    let mut rng = Rng::new(999);
    let q = UnionQuery::new(vec![
        ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![TV(0), TV(1)]),
            Atom::new("R", vec![TV(1), TV(0)]),
        ]),
        ConjunctiveQuery::boolean(vec![Atom::new("R", vec![TV(0), TC(1)])]),
    ]);
    for _ in 0..40 {
        let d = random_naive_db(
            &mut rng,
            DbParams {
                n_facts: 3,
                arity: 2,
                n_constants: 2,
                n_nulls: 2,
                null_pct: 50,
            },
        );
        // A homomorphic image of d is always ⊒ d.
        let (image, _) = d.freeze(&std::collections::BTreeSet::new());
        assert!(InfoOrder.leq(&d, &image));
        if naive_eval_bool(&q, &d) {
            assert!(
                naive_eval_bool(&q, &image),
                "UCQ not preserved under homomorphism: {d:?}"
            );
        }
        // And certain answers by naive evaluation equal brute force.
        assert_eq!(naive_eval_bool(&q, &d), certain_answer_bool(&q, &d));
    }
}

/// Theorem 3 end to end: the chain verifies and every member of a candidate
/// gallery is constructively refuted.
#[test]
fn theorem3_no_glb() {
    assert!(verify_power_cycle_chain(5, 4));
    // Acyclic candidates land in the path case, cyclic in the girth case.
    for k in 0..3 {
        assert!(matches!(
            refute_glb_of_power_cycles(&Digraph::path(k)),
            GlbRefutation::DominatedByPath { .. }
        ));
    }
    for len in 2..6 {
        assert!(matches!(
            refute_glb_of_power_cycles(&Digraph::cycle(len)),
            GlbRefutation::NotALowerBound { .. }
        ));
    }
}

/// Certain answers via glbs of query images over a finite basis
/// (Lemma 1): for a monotone query given by a homomorphism-preserved
/// transformation, certain(Q, {D1, D2}) = Q(D1) ∧ Q(D2).
#[test]
fn lemma1_certain_answers_from_finite_basis() {
    // Q adds a derived fact S-style projection: here modeled as identity
    // (monotone); the certain information in the two sources is the glb.
    let d1 = table("R", 2, &[&[c(1), c(2)], &[c(3), c(4)]]);
    let d2 = table("R", 2, &[&[c(1), c(2)], &[c(5), c(4)]]);
    let meet = ca_relational::glb::glb_databases(&d1, &d2);
    // The shared fact R(1,2) is certain.
    let shared = table("R", 2, &[&[c(1), c(2)]]);
    assert!(InfoOrder.leq(&shared, &meet));
    // Nothing claims R(3,4) for certain.
    let only_d1 = table("R", 2, &[&[c(3), c(4)]]);
    assert!(!InfoOrder.leq(&only_d1, &meet));
}

/// Null-reuse (naïve tables) is strictly more expressive than Codd
/// tables: the repeated-null instance has no Codd equivalent in the same
/// footprint (spot check via orderings).
#[test]
fn naive_tables_carry_equality_information() {
    let reuse = table("R", 2, &[&[n(1), n(1)]]);
    let fresh = table("R", 2, &[&[n(1), n(2)]]);
    assert!(InfoOrder.lt(&fresh, &reuse));
    // Their certain answers differ for the diagonal query.
    let diag = UnionQuery::single(ConjunctiveQuery::boolean(vec![Atom::new(
        "R",
        vec![TV(0), TV(0)],
    )]));
    assert!(certain_answer_bool(&diag, &reuse));
    assert!(!certain_answer_bool(&diag, &fresh));
}
