//! The Section 3 framework instantiated on *generalized databases* — the
//! abstract theory holds uniformly across data models, which is the
//! paper's point. We enumerate a small closed fragment of XML-like
//! generalized databases and run the same exhaustive checks that
//! `ca-core` runs for naive tables.

use ca_core::complete::{CompleteFiniteDomain, CompleteObjects};
use ca_core::domain::FiniteDomain;
use ca_core::preorder::Preorder;
use ca_core::value::Value;
use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_leq;
use ca_gdm::schema::GenSchema;

/// The information ordering on generalized databases as a `ca-core`
/// preorder with complete objects.
#[derive(Clone, Copy)]
struct GdmOrder;

impl Preorder for GdmOrder {
    type Object = GenDb;
    fn leq(&self, x: &GenDb, y: &GenDb) -> bool {
        gdm_leq(x, y)
    }
}

impl CompleteObjects for GdmOrder {
    fn is_complete(&self, x: &GenDb) -> bool {
        x.is_complete()
    }
    fn pi_cpl(&self, x: &GenDb) -> GenDb {
        // The greatest complete object below an XML-like instance: ground
        // every null? No — that *changes* information. For the node-set
        // model used here (no structural tuples), dropping null-carrying
        // nodes is the exact analog of dropping null rows.
        let mut out = GenDb::new(x.schema.clone());
        for node in 0..x.n_nodes() {
            if x.data[node].iter().all(|v| v.is_const()) {
                out.add_node(x.schema.label_name(x.labels[node]), x.data[node].clone());
            }
        }
        out
    }
}

fn schema() -> GenSchema {
    GenSchema::from_parts(&[("item", 1)], &[])
}

/// All subsets of {item(1), item(2), item(⊥1), item(⊥2)} — the σ = ∅
/// (relational-like) fragment of the generalized model.
fn universe() -> Vec<GenDb> {
    let atoms = [
        Value::Const(1),
        Value::Const(2),
        Value::null(1),
        Value::null(2),
    ];
    (0u32..16)
        .map(|mask| {
            let mut db = GenDb::new(schema());
            for (i, &a) in atoms.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    db.add_node("item", vec![a]);
                }
            }
            db
        })
        .collect()
}

#[test]
fn preorder_axioms_hold() {
    let dom = FiniteDomain::new(GdmOrder, universe());
    assert!(dom.check_reflexive());
    assert!(dom.check_transitive());
}

#[test]
fn complete_object_axioms_hold() {
    let dom = CompleteFiniteDomain::new(FiniteDomain::new(GdmOrder, universe()));
    assert_eq!(dom.check_axioms(), Vec::<u8>::new());
    assert!(dom.check_lemma2());
}

#[test]
fn theorem1_on_generalized_databases() {
    let dom = FiniteDomain::new(GdmOrder, universe());
    let objects = universe();
    // Exhaustive over a sample of 2-element subsets.
    for i in (0..objects.len()).step_by(3) {
        for j in (i..objects.len()).step_by(5) {
            let xs = vec![objects[i].clone(), objects[j].clone()];
            let glb = dom.glb_class(&xs);
            for (k, m) in dom.objects.iter().enumerate() {
                assert_eq!(
                    dom.is_max_description(m, &xs),
                    glb.contains(&k),
                    "Theorem 1 fails on generalized databases at ({i},{j},{k})"
                );
            }
        }
    }
}

#[test]
fn corollary1_on_generalized_databases() {
    let dom = FiniteDomain::new(GdmOrder, universe());
    // Monotone query within the fragment: add the complete node item(1).
    let q = |x: &GenDb| {
        let mut out = x.clone();
        if !out.data.iter().any(|t| t == &vec![Value::Const(1)]) {
            out.add_node("item", vec![Value::Const(1)]);
        }
        out
    };
    assert!(dom.is_monotone(q));
    for x in &dom.objects {
        let up: Vec<GenDb> = dom
            .up(x)
            .into_iter()
            .map(|i| dom.objects[i].clone())
            .collect();
        let class = dom.certain_answer_class(q, &up);
        assert!(
            class.iter().any(|m| gdm_leq(m, &q(x)) && gdm_leq(&q(x), m)),
            "Corollary 1 fails at {x:?}"
        );
    }
}

#[test]
fn naive_evaluation_for_monotone_complete_valued_queries() {
    let dom = CompleteFiniteDomain::new(FiniteDomain::new(GdmOrder, universe()));
    // π_cpl composed with "add item(2)": monotone, complete-valued.
    let q = |x: &GenDb| {
        let mut out = GdmOrder.pi_cpl(x);
        if !out.data.iter().any(|t| t == &vec![Value::Const(2)]) {
            out.add_node("item", vec![Value::Const(2)]);
        }
        out
    };
    assert!(dom.domain.is_monotone(q));
    if dom.has_complete_saturation(&q) {
        for x in &dom.domain.objects {
            assert!(dom.naive_evaluation_correct_at(&q, x));
        }
    }
}
