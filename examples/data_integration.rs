//! Data integration: extracting the *certain* information from multiple
//! overlapping, incomplete sources.
//!
//! Scenario: three product catalogs report `listing(product, price,
//! warehouse)` with unknown (null) fields. The glb of the sources (the
//! paper's Proposition 5 construction) is exactly the information **all**
//! sources agree on; certain answers to queries over each source tell us
//! what holds regardless of how the unknowns resolve.
//!
//! Run with `cargo run --example data_integration`.

use ca_core::preorder::Preorder;
use ca_query::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_query::certain::{certain_table, naive_eval_table};
use ca_relational::database::build::{c, n, table};
use ca_relational::glb::{glb_many, glb_size_bound};
use ca_relational::ordering::InfoOrder;

// Product ids: 1 = keyboard, 2 = mouse. Warehouses: 10, 20.
fn main() {
    // Source A: knows the keyboard costs 49, somewhere; the mouse is in
    // warehouse 10 at an unknown price.
    let source_a = table("listing", 3, &[&[c(1), c(49), n(1)], &[c(2), n(2), c(10)]]);
    // Source B: keyboard costs 49 in warehouse 20; mouse unknown price,
    // warehouse 10.
    let source_b = table("listing", 3, &[&[c(1), c(49), c(20)], &[c(2), n(3), c(10)]]);
    // Source C: keyboard at 49, mouse at 15, warehouses unknown.
    let source_c = table("listing", 3, &[&[c(1), c(49), n(4)], &[c(2), c(15), n(5)]]);

    let sources = vec![source_a, source_b, source_c];
    for (i, s) in sources.iter().enumerate() {
        println!("source {}:", ["A", "B", "C"][i]);
        for f in s.facts() {
            println!("  listing{:?}", f.args);
        }
    }

    // The integrated certain knowledge: the glb of all three sources.
    let integrated = glb_many(&sources).expect("nonempty source set");
    println!(
        "\nintegrated (glb) database: {} rows (Prop 5 bound: {:.0})",
        integrated.len(),
        glb_size_bound(sources.iter().map(|s| s.len()).sum(), sources.len()),
    );
    for f in integrated.facts() {
        println!("  listing{:?}", f.args);
    }
    for s in &sources {
        assert!(InfoOrder.leq(&integrated, s), "glb is below every source");
    }

    // Query 1: which products certainly cost 49 in *some* warehouse,
    // according to every source simultaneously? Run on the glb.
    let q_price49 = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0],
        vec![Atom::new(
            "listing",
            vec![Term::Var(0), Term::Const(49), Term::Var(1)],
        )],
    ));
    let certain_in_all = naive_eval_table(&q_price49, &integrated);
    println!("\nproducts certainly priced 49 in the integrated view:");
    for row in &certain_in_all {
        println!("  product {}", row[0]);
    }
    assert!(certain_in_all.contains(&vec![c(1)])); // the keyboard

    // Query 2: certain answers per source, naïve evaluation vs the
    // brute-force intersection over possible worlds (they agree — the
    // classical theorem the paper re-derives from Theorem 2).
    let q_wh10 = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0],
        vec![Atom::new(
            "listing",
            vec![Term::Var(0), Term::Var(1), Term::Const(10)],
        )],
    ));
    println!("\nproducts certainly stocked in warehouse 10, per source:");
    for (i, s) in sources.iter().enumerate() {
        let fast = naive_eval_table(&q_wh10, s);
        let exact = certain_table(&q_wh10, s);
        assert_eq!(fast, exact, "naïve evaluation is exact for UCQs");
        let items: Vec<String> = fast.iter().map(|r| r[0].to_string()).collect();
        println!("  source {}: {{{}}}", ["A", "B", "C"][i], items.join(", "));
    }

    // The sources' unknowns are *not* certain: no source view can certify
    // the mouse's price is 15 except C; the integrated view cannot.
    let q_mouse15 = UnionQuery::single(ConjunctiveQuery::boolean(vec![Atom::new(
        "listing",
        vec![Term::Const(2), Term::Const(15), Term::Var(0)],
    )]));
    let on_integrated = ca_query::certain::certain_answer_bool(&q_mouse15, &integrated);
    println!("\n\"mouse costs 15\" certain in the integrated view? {on_integrated}");
    assert!(!on_integrated);
}
