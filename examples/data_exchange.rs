//! Data exchange: materializing a target instance under a schema mapping,
//! and why universal solutions are least upper bounds (Theorem 5).
//!
//! Scenario: migrate an HR source `emp(name, dept, salary)` into a target
//! with `works_in(name, dept_id)` and `dept(dept_id, dept_name)` — the
//! department id is *invented* (an existential null), the classic
//! data-exchange situation.
//!
//! Run with `cargo run --example data_exchange`.

use ca_core::value::Value;
use ca_exchange::solution::{canonical_solution, core_solution, is_universal_solution};
use ca_exchange::tgd::{st_mapping, TgdAtom};
use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_leq;
use ca_gdm::schema::GenSchema;

fn c(x: i64) -> Value {
    Value::Const(x)
}
fn n(id: u32) -> Value {
    Value::null(id)
}

fn atom(rel: &str, args: Vec<Value>) -> TgdAtom {
    TgdAtom {
        rel: rel.into(),
        args,
    }
}

fn main() {
    let source = GenSchema::from_parts(&[("emp", 3)], &[]);
    let target = GenSchema::from_parts(&[("works_in", 2), ("dept", 2)], &[]);

    // The mapping: emp(name, dname, sal) → ∃id works_in(name, id) ∧
    // dept(id, dname). Variables are nulls: 1 = name, 2 = dname, 3 = sal,
    // 4 = the invented department id.
    let mapping = st_mapping(
        &source,
        &target,
        &[(
            &[atom("emp", vec![n(1), n(2), n(3)])],
            &[
                atom("works_in", vec![n(1), n(4)]),
                atom("dept", vec![n(4), n(2)]),
            ],
        )],
    );

    // Source data (names/departments as interned integers):
    // ada and grace both in dept 100; linus in dept 200.
    let (ada, grace, linus) = (1, 2, 3);
    let (eng, kernels) = (100, 200);
    let mut src = GenDb::new(source);
    src.add_node("emp", vec![c(ada), c(eng), c(90)]);
    src.add_node("emp", vec![c(grace), c(eng), c(95)]);
    src.add_node("emp", vec![c(linus), c(kernels), c(80)]);

    // The canonical universal solution ⊔M(D): one invented id per rule
    // firing.
    let canonical = canonical_solution(&mapping, &src, &target);
    println!(
        "canonical universal solution ({} facts):",
        canonical.n_nodes()
    );
    for node in 0..canonical.n_nodes() {
        println!(
            "  {}{:?}",
            canonical.schema.label_name(canonical.labels[node]),
            canonical.data[node]
        );
    }
    assert!(mapping.is_solution(&src, &canonical));

    // The core solution folds the two parallel 'eng' chains: ada and
    // grace can share one invented department id? No — their names
    // differ, so both chains stay; but repeated firings with identical
    // frontier values *would* fold. Demonstrate with a duplicate row:
    let mut src_dup = src.clone();
    src_dup.add_node("emp", vec![c(ada), c(eng), c(91)]); // salary differs only
    let canon_dup = canonical_solution(&mapping, &src_dup, &target);
    let core_dup = core_solution(&mapping, &src_dup, &target);
    println!(
        "\nwith a duplicate (ada, eng) row: canonical = {} facts, core = {} facts",
        canon_dup.n_nodes(),
        core_dup.n_nodes()
    );
    assert!(core_dup.n_nodes() < canon_dup.n_nodes());
    assert!(gdm_leq(&core_dup, &canon_dup) && gdm_leq(&canon_dup, &core_dup));

    // Theorem 5: the canonical solution is universal — it maps into every
    // other solution. Here is a fully materialized alternative using
    // concrete ids 500/600:
    let mut concrete = GenDb::new(target.clone());
    concrete.add_node("works_in", vec![c(ada), c(500)]);
    concrete.add_node("works_in", vec![c(grace), c(500)]);
    concrete.add_node("works_in", vec![c(linus), c(600)]);
    concrete.add_node("dept", vec![c(500), c(eng)]);
    concrete.add_node("dept", vec![c(600), c(kernels)]);
    assert!(mapping.is_solution(&src, &concrete));
    assert!(is_universal_solution(
        &mapping,
        &src,
        &canonical,
        &[concrete.clone()]
    ));
    println!("\ncanonical solution maps into the concrete solution (universality ✓)");

    // The concrete solution is NOT universal: it committed to ids.
    let mut other = GenDb::new(target);
    other.add_node("works_in", vec![c(ada), c(700)]);
    other.add_node("works_in", vec![c(grace), c(700)]);
    other.add_node("works_in", vec![c(linus), c(800)]);
    other.add_node("dept", vec![c(700), c(eng)]);
    other.add_node("dept", vec![c(800), c(kernels)]);
    assert!(!is_universal_solution(&mapping, &src, &concrete, &[other]));
    println!("the id-committed solution is not universal (over-specified) ✓");
}
