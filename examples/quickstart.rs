//! Quickstart: incomplete databases, the information ordering, and
//! certain answers — the paper's Section 2.1 example, end to end.
//!
//! Run with `cargo run --example quickstart`.

use ca_core::preorder::{Preorder, PreorderExt};
use ca_query::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_query::certain::{certain_answer_bool, naive_eval_bool, naive_eval_table};
use ca_query::tableau::canonical_query;
use ca_relational::database::build::{c, n, table};
use ca_relational::glb::glb_databases;
use ca_relational::hom::find_hom;
use ca_relational::ordering::InfoOrder;

fn main() {
    // The incomplete table D from Section 2.1 of the paper:
    //   D(1, 2, ⊥1), D(⊥2, ⊥1, 3), D(⊥3, 5, 1).
    let d = table(
        "D",
        3,
        &[
            &[c(1), c(2), n(1)],
            &[n(2), n(1), c(3)],
            &[n(3), c(5), c(1)],
        ],
    );
    println!("incomplete database D (naïve table):");
    for fact in d.facts() {
        println!("  D{:?}", fact.args);
    }

    // A complete database R in [[D]], witnessed by the homomorphism
    // ⊥1 ↦ 4, ⊥2 ↦ 3, ⊥3 ↦ 5.
    let r = table(
        "D",
        3,
        &[
            &[c(1), c(2), c(4)],
            &[c(3), c(4), c(3)],
            &[c(5), c(5), c(1)],
            &[c(3), c(7), c(8)],
        ],
    );
    let h = find_hom(&d, &r).expect("R is a possible world of D");
    println!("\nR ∈ [[D]] via the homomorphism:");
    for (null, value) in h.iter() {
        println!("  {null} ↦ {value}");
    }

    // The information ordering ⊑ is homomorphism existence (Prop 3):
    // D is less informative than R (R has no nulls at all).
    assert!(InfoOrder.lt(&d, &r));
    println!("\nD ⊑ R (strictly): D is less informative than the complete R");

    // Certain answers. Q(x): ∃z  D(1, x, z) — what certainly follows 1 in
    // the second column? Naïve evaluation: evaluate with nulls as values,
    // then drop answer rows containing nulls.
    let q = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0],
        vec![Atom::new(
            "D",
            vec![Term::Const(1), Term::Var(0), Term::Var(1)],
        )],
    ));
    let answers = naive_eval_table(&q, &d);
    println!("\ncertain answers to Q(x) ← D(1,x,z), by naïve evaluation:");
    for row in &answers {
        println!("  x = {}", row[0]);
    }
    assert!(answers.contains(&vec![c(2)]));

    // A query whose only matches go through nulls has no certain answers.
    let q_null = UnionQuery::single(ConjunctiveQuery::with_head(
        vec![0],
        vec![
            Atom::new("D", vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
            Atom::new("D", vec![Term::Var(2), Term::Const(5), Term::Const(1)]),
        ],
    ));
    println!(
        "certain answers to Q(x) ← D(x,y,z) ∧ D(z,5,1): {} (the join only \
         exists in worlds where ⊥1 = ⊥3)",
        if naive_eval_table(&q_null, &d).is_empty() {
            "none"
        } else {
            "some"
        }
    );

    // The canonical Boolean query Q_D of D itself is certain on D
    // (Proposition 2: Q_D ⊆ Q_D, trivially).
    let qd = UnionQuery::single(canonical_query(&d));
    assert!(certain_answer_bool(&qd, &d));
    assert!(naive_eval_bool(&qd, &d));
    println!("\ncertain(Q_D, D) = true — D certainly satisfies its own description");

    // Greatest lower bounds: the certain information shared by two
    // incomplete databases (Proposition 5's ⊗-product).
    let d2 = table("D", 3, &[&[c(1), c(2), c(9)], &[n(7), c(5), c(1)]]);
    let meet = glb_databases(&d, &d2);
    println!(
        "\nglb of D with a second source ({} merged rows):",
        meet.len()
    );
    for fact in meet.facts() {
        println!("  D{:?}", fact.args);
    }
    assert!(InfoOrder.leq(&meet, &d));
    assert!(InfoOrder.leq(&meet, &d2));
    println!("the glb is below both sources in the information ordering ✓");
}
