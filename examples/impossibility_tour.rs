//! A tour of the paper's impossibility results, run live:
//!
//! * Theorem 3 — the power-of-two directed cycles have no greatest lower
//!   bound (so certain information need not exist for infinite sets);
//! * Proposition 6 — with sibling order, even two XML trees can lack a
//!   glb (why certain-answer machinery sticks to unordered documents);
//! * Proposition 10 — two trees with no least upper bound (why XML data
//!   exchange lacks canonical solutions).
//!
//! Run with `cargo run --example impossibility_tour`.

use ca_exchange::trees::{proposition10_trees, verify_proposition10};
use ca_graph::digraph::{random_digraph, Digraph};
use ca_graph::lattice::{refute_glb_of_power_cycles, verify_power_cycle_chain, GlbRefutation};
use ca_xml::ordered::verify_proposition6;

fn main() {
    // ---- Theorem 3 -------------------------------------------------
    println!("Theorem 3: {{C_2^m}} has no glb");
    println!(
        "  chain P1 ≺ … ≺ P6 ≺ … ≺ C32 ≺ … ≺ C2 verified: {}",
        verify_power_cycle_chain(6, 5)
    );
    let candidates: Vec<(&str, Digraph)> = vec![
        ("the path P5", Digraph::path(5)),
        ("the cycle C6", Digraph::cycle(6)),
        ("a random digraph", random_digraph(7, 1, 3, 99)),
    ];
    for (name, g) in candidates {
        match refute_glb_of_power_cycles(&g) {
            GlbRefutation::DominatedByPath { longest_path } => println!(
                "  {name}: acyclic with longest path {longest_path} — the lower bound P{} is not below it",
                longest_path + 1
            ),
            GlbRefutation::NotALowerBound { girth, witness_m } => println!(
                "  {name}: has a {girth}-cycle — not even a lower bound (no hom into C{})",
                1u32 << witness_m
            ),
        }
    }

    // ---- Proposition 6 ----------------------------------------------
    println!("\nProposition 6: ordered trees a[b c] vs a[c b]");
    let examined = verify_proposition6(4);
    println!(
        "  {examined} candidate ordered trees examined — none is a glb \
         (a[b] and a[c] stay incomparable maximal lower bounds)"
    );

    // ---- Proposition 10 ---------------------------------------------
    println!("\nProposition 10: no least upper bound for a[b] and a[c]");
    let (t1, t2, tp, tpp) = proposition10_trees();
    println!("  T1 = {t1},  T2 = {t2}");
    println!("  upper bound 1: T′  = {tp}");
    println!("  upper bound 2: T″ = {tpp}");
    let examined = verify_proposition10(4);
    println!(
        "  {examined} candidate trees examined — none sits below both upper \
         bounds while dominating T1 and T2"
    );
    println!(
        "  (the glb direction is fine: T1 ∧ T2 = {})",
        ca_xml::glb::glb_trees(&t1, &t2)
            .expect("glb exists")
            .display()
    );
}
