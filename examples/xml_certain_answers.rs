//! XML with incomplete information: tree patterns, the information
//! ordering on documents, and certain information as max-descriptions
//! (= greatest lower bounds, Theorem 1).
//!
//! Scenario: two partially-known versions of a product feed document. The
//! max-description of the set is the certain document content; incomplete
//! patterns can then be checked against it.
//!
//! Run with `cargo run --example xml_certain_answers`.

use ca_core::value::Value;
use ca_xml::glb::max_description;
use ca_xml::hom::{find_tree_hom, tree_leq};
use ca_xml::tree::{Alphabet, XmlTree};

fn c(x: i64) -> Value {
    Value::Const(x)
}
fn n(id: u32) -> Value {
    Value::null(id)
}

fn main() {
    // Alphabet: feed (root, 0 attrs), product(id, price), review(score).
    let alpha = Alphabet::from_labels(&[("feed", 0), ("product", 2), ("review", 1)]);

    // Version 1 of the feed: product 7 at price 100 with a review of
    // unknown score; a second product with unknown id at price 30.
    let mut v1 = XmlTree::new(alpha.clone(), "feed", vec![]);
    let p1 = v1.add_child(0, "product", vec![c(7), c(100)]);
    v1.add_child(p1, "review", vec![n(1)]);
    v1.add_child(0, "product", vec![n(2), c(30)]);

    // Version 2: product 7 at unknown price with a 5-star review; another
    // product 8 at price 30.
    let mut v2 = XmlTree::new(alpha.clone(), "feed", vec![]);
    let p2 = v2.add_child(0, "product", vec![c(7), n(3)]);
    v2.add_child(p2, "review", vec![c(5)]);
    v2.add_child(0, "product", vec![c(8), c(30)]);

    println!("version 1: {v1}");
    println!("version 2: {v2}");

    // The certain information in {v1, v2}: their max-description — by
    // Theorem 1 of the paper, exactly the glb in the information ordering.
    let certain = max_description(&[&v1, &v2]).expect("documents share the feed root");
    println!("\nmax-description (certain content): {certain}");
    assert!(tree_leq(&certain, &v1) && tree_leq(&certain, &v2));

    // Patterns (incomplete trees) as queries: does the certain content
    // guarantee a product 7 with a review?
    let mut pattern = XmlTree::new(alpha.clone(), "product", vec![c(7), n(9)]);
    pattern.add_child(0, "review", vec![n(10)]);
    let hit = find_tree_hom(&pattern, &certain);
    println!(
        "\npattern product(7,·)[review(·)] certain? {}",
        hit.is_some()
    );
    assert!(hit.is_some(), "both versions have a reviewed product 7");

    // A pattern that is true in each version but NOT certain: "a product
    // costs 30 with id 8" — v1 does not pin the id.
    let p8 = XmlTree::new(alpha.clone(), "product", vec![c(8), c(30)]);
    println!(
        "pattern product(8,30) holds in v2: {}, holds in v1: {}, certain: {}",
        tree_leq(&p8, &v2),
        tree_leq(&p8, &v1),
        tree_leq(&p8, &certain),
    );
    assert!(!tree_leq(&p8, &certain));

    // Homomorphisms need not map roots to roots (the paper's definition):
    // a bare review pattern matches deep inside the document.
    let deep = XmlTree::new(alpha, "review", vec![c(5)]);
    let h = find_tree_hom(&deep, &v2).expect("review(5) occurs in v2");
    println!(
        "\nreview(5) matches v2 at node {} (depth {})",
        h.node_map[0],
        v2.depth(h.node_map[0])
    );
}
