//! `certain` — a command-line front end for the library.
//!
//! Databases use the `ca-relational` text syntax (`R(1, ?x, _)`, facts
//! separated by `;` or newlines); queries use the `ca-query` syntax
//! (`(x) :- R(x, 1), S(x)`, disjuncts separated by `|`). Arguments
//! starting with `@` are read from files.
//!
//! ```text
//! certain eval   '<db>' '<ucq>'     # certain answers (naïve evaluation)
//! certain check  '<db>' '<ucq>'     # naïve vs brute-force cross-check
//! certain order  '<db1>' '<db2>'    # compare in the information ordering
//! certain glb    '<db1>' '<db2>'    # greatest lower bound (Prop 5)
//! certain minimize '<boolean cq>'   # minimize a conjunctive query
//! ```

use std::process::exit;

use certain_answers::core::preorder::Preorder;
use certain_answers::query::ast::UnionQuery;
use certain_answers::query::certain::{certain_answer_bool, naive_eval_table};
use certain_answers::query::minimize::minimize_cq;
use certain_answers::query::parse::{parse_cq, parse_ucq};
use certain_answers::relational::database::NaiveDatabase;
use certain_answers::relational::glb::glb_databases;
use certain_answers::relational::ordering::InfoOrder;
use certain_answers::relational::parse::parse_database;

fn load(arg: &str) -> String {
    if let Some(path) = arg.strip_prefix('@') {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2);
        })
    } else {
        arg.to_owned()
    }
}

fn db(arg: &str) -> NaiveDatabase {
    parse_database(&load(arg)).unwrap_or_else(|e| {
        eprintln!("database: {e}");
        exit(2);
    })
}

fn ucq(arg: &str) -> UnionQuery {
    parse_ucq(&load(arg)).unwrap_or_else(|e| {
        eprintln!("query: {e}");
        exit(2);
    })
}

fn print_db(d: &NaiveDatabase) {
    for fact in d.facts() {
        let args: Vec<String> = fact.args.iter().map(|v| v.to_string()).collect();
        println!("{}({})", d.schema.name(fact.rel), args.join(", "));
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: certain <eval|check|order|glb|minimize> <args…>   (see --help in source docs)"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("eval") if args.len() == 3 => {
            let d = db(&args[1]);
            let q = ucq(&args[2]);
            if q.head_arity() == 0 {
                let ans = certain_answers::query::certain::naive_eval_bool(&q, &d);
                println!("{ans}");
            } else {
                for row in naive_eval_table(&q, &d) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("({})", cells.join(", "));
                }
            }
        }
        Some("check") if args.len() == 3 => {
            let d = db(&args[1]);
            let q = ucq(&args[2]);
            if q.head_arity() != 0 {
                eprintln!("check works on Boolean queries");
                exit(2);
            }
            let naive = certain_answers::query::certain::naive_eval_bool(&q, &d);
            let brute = certain_answer_bool(&q, &d);
            println!("naive evaluation: {naive}");
            println!("brute force:      {brute}");
            if naive != brute {
                println!("DISAGREEMENT (query is outside UCQ semantics?)");
                exit(1);
            }
        }
        Some("order") if args.len() == 3 => {
            let a = db(&args[1]);
            let b = db(&args[2]);
            let le = InfoOrder.leq(&a, &b);
            let ge = InfoOrder.leq(&b, &a);
            match (le, ge) {
                (true, true) => println!("equivalent (A ∼ B)"),
                (true, false) => println!("A ⊑ B strictly (A is less informative)"),
                (false, true) => println!("B ⊑ A strictly (B is less informative)"),
                (false, false) => println!("incomparable"),
            }
        }
        Some("glb") if args.len() == 3 => {
            let a = db(&args[1]);
            let b = db(&args[2]);
            print_db(&glb_databases(&a, &b));
        }
        Some("minimize") if args.len() == 2 => {
            let q = parse_cq(&load(&args[1])).unwrap_or_else(|e| {
                eprintln!("query: {e}");
                exit(2);
            });
            if !q.is_boolean() {
                eprintln!("minimize works on Boolean queries");
                exit(2);
            }
            // Infer a schema from the query atoms.
            let mut schema = certain_answers::relational::schema::Schema::new();
            for atom in &q.atoms {
                schema.add_relation(&atom.rel, atom.args.len());
            }
            println!("{}", minimize_cq(&q, &schema));
        }
        _ => usage(),
    }
}
