//! # certain-answers
//!
//! A reference implementation of **Leonid Libkin, “Incomplete Information
//! and Certain Answers in General Data Models”, PODS 2011**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — values (constants and nulls) and the abstract ordered-set
//!   theory of incompleteness (Section 3): preorders, glbs,
//!   max-descriptions, complete objects, naïve evaluation.
//! * [`hom`] — the homomorphism engine: CSP search, bipartite matching,
//!   tree decompositions, the Theorem 6 polynomial membership algorithm.
//! * [`graph`] — digraphs, graph homomorphisms, cores, and the lattice of
//!   cores (Section 4), including the Theorem 3 counterexample families.
//! * [`relational`] — naïve and Codd tables/databases, the information
//!   ordering, glbs of naïve tables (Proposition 5), the 1990s orderings
//!   and CWA (Propositions 4 and 8).
//! * [`query`] — conjunctive queries, UCQs and first-order queries;
//!   tableaux, containment, naïve evaluation and certain answers
//!   (Propositions 1, 2, 7).
//! * [`xml`] — incomplete XML trees, tree homomorphisms, glbs of trees and
//!   max-descriptions (Section 2.2, Proposition 6, Corollary 2).
//! * [`gdm`] — the generalized data model of Section 5 and the
//!   computational problems of Section 6: consistency, membership, query
//!   answering in FO(S,∼).
//! * [`exchange`] — data exchange as least upper bounds (Section 5.3):
//!   mappings, solutions, canonical/universal/core solutions, Theorem 5
//!   and Proposition 10.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the paper-result-by-result reproduction record.

pub use ca_core as core;
pub use ca_exchange as exchange;
pub use ca_gdm as gdm;
pub use ca_graph as graph;
pub use ca_hom as hom;
pub use ca_query as query;
pub use ca_relational as relational;
pub use ca_xml as xml;
