//! Bridge between the `Vec<Value>`-based [`NaiveDatabase`] API surface
//! and the workspace columnar store ([`ca_core::store::FactStore`]).
//!
//! The naïve-database types stay the interface for tests, the parser,
//! and the differential oracles; the engines evaluate over the columnar
//! store. [`to_store`] is the O(facts) bulk ingest (the database is
//! already deduplicated and sorted, so it uses the store's unchecked
//! append path); [`from_store`] resolves live facts back to values.
//!
//! Relation symbols are registered in schema declaration order, so a
//! bridged store's symbols are *identical* (same indices) to the
//! schema's — engines can use one symbol space for both.

use ca_core::store::{FactStore, ValueId};

use crate::database::NaiveDatabase;
use crate::schema::Schema;

/// Load a naïve database into a fresh columnar store.
pub fn to_store(db: &NaiveDatabase) -> FactStore {
    let mut s = FactStore::new();
    for sym in db.schema.symbols() {
        let reg = s.add_relation(db.schema.name(sym), db.schema.arity(sym));
        debug_assert_eq!(reg, sym, "store symbols mirror schema symbols");
    }
    // Facts are sorted, so each relation's tuples are one consecutive
    // run: intern a whole run into one flat id buffer and bulk-append it
    // with `extend_ids` (columns reserve once per run instead of growing
    // per fact). This is the bulk path behind every `DbIndex::new`, so
    // per-fact overhead matters; run-by-run appends assign the same fact
    // ids as the per-fact path did.
    let mut ids: Vec<ValueId> = Vec::new();
    let mut run_rel = None;
    let mut run_len: u32 = 0;
    for f in db.facts() {
        if run_rel != Some(f.rel) {
            if let Some(rel) = run_rel {
                s.extend_ids(rel, run_len, &ids);
            }
            ids.clear();
            run_rel = Some(f.rel);
            run_len = 0;
        }
        ids.extend(f.args.iter().map(|&v| s.intern_value(v)));
        run_len += 1;
    }
    if let Some(rel) = run_rel {
        s.extend_ids(rel, run_len, &ids);
    }
    s
}

/// Materialize the live facts of a store as a naïve database.
pub fn from_store(s: &FactStore) -> NaiveDatabase {
    let mut schema = Schema::new();
    for rel in s.relations() {
        schema.add_relation(s.rel_name(rel), s.arity(rel));
    }
    let mut db = NaiveDatabase::new(schema);
    for f in s.iter_live() {
        db.add_fact(s.fact_rel(f), s.fact_values(f));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::build::{c, n};

    fn sample() -> NaiveDatabase {
        let schema = Schema::from_relations(&[("R", 2), ("S", 1)]);
        let mut db = NaiveDatabase::new(schema);
        db.add("R", vec![c(1), n(1)]);
        db.add("R", vec![n(1), c(2)]);
        db.add("R", vec![c(1), c(2)]);
        db.add("S", vec![n(2)]);
        db.add("S", vec![c(3)]);
        db
    }

    #[test]
    fn roundtrip_is_identity() {
        let db = sample();
        let s = to_store(&db);
        assert_eq!(s.n_live(), db.len() as u32);
        assert_eq!(from_store(&s), db);
    }

    #[test]
    fn store_symbols_mirror_schema_symbols() {
        let db = sample();
        let s = to_store(&db);
        for sym in db.schema.symbols() {
            assert_eq!(s.relation(db.schema.name(sym)), Some(sym));
            assert_eq!(s.arity(sym), db.schema.arity(sym));
        }
    }

    #[test]
    fn snapshot_roundtrip_through_bytes_preserves_database() {
        let db = sample();
        let bytes = to_store(&db).to_bytes();
        let loaded = FactStore::from_bytes(&bytes).expect("snapshot loads");
        assert_eq!(from_store(&loaded), db);
    }
}
