//! Deterministic random-instance generators for tests and experiments.
//!
//! A tiny splitmix64-based RNG keeps the crate dependency-free and the
//! workloads reproducible across runs (seeds appear in EXPERIMENTS.md).

use ca_core::value::{NullGen, Value};

use crate::database::NaiveDatabase;
use crate::schema::Schema;

/// A deterministic splitmix64 RNG.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Parameters for random naïve databases.
#[derive(Clone, Copy, Debug)]
pub struct DbParams {
    /// Number of facts.
    pub n_facts: usize,
    /// Arity of the single relation `R`.
    pub arity: usize,
    /// Constants are drawn from `0..n_constants`.
    pub n_constants: i64,
    /// Nulls are drawn from a pool of this size (reuse possible).
    pub n_nulls: u32,
    /// Probability (out of 100) that a position holds a null.
    pub null_pct: u64,
}

/// A random naïve database over one relation `R` with the given parameters.
pub fn random_naive_db(rng: &mut Rng, p: DbParams) -> NaiveDatabase {
    let schema = Schema::from_relations(&[("R", p.arity)]);
    let mut db = NaiveDatabase::new(schema);
    for _ in 0..p.n_facts {
        let row: Vec<Value> = (0..p.arity)
            .map(|_| {
                if p.n_nulls > 0 && rng.chance(p.null_pct, 100) {
                    Value::null(rng.below(p.n_nulls as u64) as u32)
                } else {
                    Value::Const(rng.below(p.n_constants as u64) as i64)
                }
            })
            .collect();
        db.add("R", row);
    }
    db
}

/// A random multi-relation schema: `n_relations` relations named
/// `R0, R1, …`, each with an arity drawn uniformly from `1..=max_arity`.
pub fn random_schema(rng: &mut Rng, n_relations: usize, max_arity: usize) -> Schema {
    let rels: Vec<(String, usize)> = (0..n_relations)
        .map(|i| (format!("R{i}"), rng.below(max_arity as u64) as usize + 1))
        .collect();
    let refs: Vec<(&str, usize)> = rels.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    Schema::from_relations(&refs)
}

/// A random naïve database over an arbitrary schema: `n_facts` facts, each
/// over a uniformly-chosen relation, with positions filled like
/// [`random_naive_db`] (`p.arity` is ignored — arities come from the
/// schema).
pub fn random_naive_db_over(rng: &mut Rng, schema: &Schema, p: DbParams) -> NaiveDatabase {
    let mut db = NaiveDatabase::new(schema.clone());
    let symbols: Vec<_> = schema.symbols().collect();
    for _ in 0..p.n_facts {
        let rel = symbols[rng.below(symbols.len() as u64) as usize];
        let row: Vec<Value> = (0..schema.arity(rel))
            .map(|_| {
                if p.n_nulls > 0 && rng.chance(p.null_pct, 100) {
                    Value::null(rng.below(p.n_nulls as u64) as u32)
                } else {
                    Value::Const(rng.below(p.n_constants as u64) as i64)
                }
            })
            .collect();
        db.add(schema.name(rel), row);
    }
    db
}

/// A random *Codd* database: every null occurrence is globally fresh.
pub fn random_codd_db(
    rng: &mut Rng,
    n_facts: usize,
    arity: usize,
    n_constants: i64,
) -> NaiveDatabase {
    let schema = Schema::from_relations(&[("R", arity)]);
    let mut db = NaiveDatabase::new(schema);
    let mut gen = NullGen::new();
    for _ in 0..n_facts {
        let row: Vec<Value> = (0..arity)
            .map(|_| {
                if rng.chance(30, 100) {
                    gen.fresh_value()
                } else {
                    Value::Const(rng.below(n_constants as u64) as i64)
                }
            })
            .collect();
        db.add("R", row);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn naive_db_has_requested_shape() {
        let mut rng = Rng::new(1);
        let db = random_naive_db(
            &mut rng,
            DbParams {
                n_facts: 20,
                arity: 3,
                n_constants: 5,
                n_nulls: 4,
                null_pct: 50,
            },
        );
        assert!(db.len() <= 20); // set semantics may dedup
        for f in db.facts() {
            assert_eq!(f.args.len(), 3);
        }
        for c in db.constants() {
            assert!((0..5).contains(&c));
        }
        for n in db.nulls() {
            assert!(n.0 < 4);
        }
    }

    #[test]
    fn codd_db_is_codd() {
        let mut rng = Rng::new(2);
        for _ in 0..20 {
            let db = random_codd_db(&mut rng, 10, 2, 4);
            assert!(db.is_codd());
        }
    }

    #[test]
    fn zero_null_pct_gives_complete_db() {
        let mut rng = Rng::new(3);
        let db = random_naive_db(
            &mut rng,
            DbParams {
                n_facts: 10,
                arity: 2,
                n_constants: 3,
                n_nulls: 4,
                null_pct: 0,
            },
        );
        assert!(db.is_complete());
    }
}
