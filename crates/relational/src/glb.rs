//! Greatest lower bounds of naïve tables and databases (Proposition 5).
//!
//! For tuples `t = (a₁…aₘ)` and `t′ = (b₁…bₘ)` the merge `t ⊗ t′` keeps
//! `aᵢ` where `aᵢ = bᵢ` is the same constant and introduces the fresh null
//! `⊥_{aᵢbᵢ}` otherwise. Proposition 5: `{t ⊗ t′ | t ∈ R, t′ ∈ R′}` is a
//! glb of naïve tables `R, R′` in the information preorder — the
//! database-aware analog of the graph product. Extended
//! relation-by-relation to databases, and iterated for finitely many
//! instances, with the `|⋀X| ≤ (‖X‖/n)ⁿ` size bound the paper derives.

use std::collections::BTreeMap;

use ca_core::value::{NullGen, Value};

use crate::database::NaiveDatabase;

/// The pair-indexed fresh nulls `⊥_{xy}` of the `⊗` construction: one
/// fresh null per *distinct* pair of merged values, shared across the
/// whole product so repeated pairs merge consistently.
#[derive(Debug, Default)]
pub struct PairNulls {
    map: BTreeMap<(Value, Value), Value>,
    gen: NullGen,
}

impl PairNulls {
    /// A pair-null table drawing fresh nulls from ids unused by either
    /// input database.
    pub fn fresh_for(a: &NaiveDatabase, b: &NaiveDatabase) -> Self {
        Self::avoiding(a.nulls().into_iter().chain(b.nulls()))
    }

    /// A pair-null table drawing fresh nulls avoiding the given ids (for
    /// callers outside the relational model, e.g. generalized databases).
    pub fn avoiding<I: IntoIterator<Item = ca_core::value::Null>>(used: I) -> Self {
        PairNulls {
            map: BTreeMap::new(),
            gen: NullGen::avoiding(used),
        }
    }

    /// `⊥_{xy}`: the null allocated to the pair `(x, y)`.
    pub fn get(&mut self, x: Value, y: Value) -> Value {
        let gen = &mut self.gen;
        *self.map.entry((x, y)).or_insert_with(|| gen.fresh_value())
    }
}

/// The tuple merge `t ⊗ t′` of equation (1) in the paper.
pub fn merge_tuples(t: &[Value], t2: &[Value], nulls: &mut PairNulls) -> Vec<Value> {
    assert_eq!(t.len(), t2.len(), "⊗ needs same-length tuples");
    t.iter()
        .zip(t2.iter())
        .map(|(&a, &b)| match (a, b) {
            (Value::Const(x), Value::Const(y)) if x == y => a,
            _ => nulls.get(a, b),
        })
        .collect()
}

/// The glb `D ∧ D′` of two naïve databases: relation-by-relation products
/// of all tuple pairs under `⊗` (Proposition 5).
///
/// ```
/// use ca_relational::database::build::{c, table};
/// use ca_relational::glb::glb_databases;
/// use ca_relational::ordering::InfoOrder;
/// use ca_core::preorder::Preorder;
///
/// let a = table("R", 2, &[&[c(1), c(2)]]);
/// let b = table("R", 2, &[&[c(1), c(3)]]);
/// let meet = glb_databases(&a, &b);
/// // The certain shared content: R(1, ·) with an unknown second column.
/// assert!(InfoOrder.leq(&meet, &a));
/// assert!(InfoOrder.leq(&meet, &b));
/// assert_eq!(meet.facts()[0].args[0], c(1));
/// assert!(meet.facts()[0].args[1].is_null());
/// ```
pub fn glb_databases(a: &NaiveDatabase, b: &NaiveDatabase) -> NaiveDatabase {
    assert!(a.schema.compatible_with(&b.schema), "incompatible schemas");
    let mut nulls = PairNulls::fresh_for(a, b);
    let mut out = NaiveDatabase::new(a.schema.clone());
    for fa in a.facts() {
        for fb in b.relation_by_name(a.schema.name(fa.rel)) {
            out.add_fact(fa.rel, merge_tuples(&fa.args, &fb.args, &mut nulls));
        }
    }
    out
}

/// The glb `⋀ X` of finitely many databases, by iterating the binary glb.
/// Returns `None` for an empty collection (no glb of nothing).
pub fn glb_many(xs: &[NaiveDatabase]) -> Option<NaiveDatabase> {
    let (first, rest) = xs.split_first()?;
    Some(
        rest.iter()
            .fold(first.clone(), |acc, x| glb_databases(&acc, x)),
    )
}

/// The paper's size bound: for `n` tables of total size `‖X‖`, the
/// construction yields at most `(‖X‖/n)ⁿ` tuples (arithmetic–geometric
/// mean inequality). Returns the bound as `f64` for comparison in
/// experiments.
pub fn glb_size_bound(total_tuples: usize, n_tables: usize) -> f64 {
    if n_tables == 0 {
        return 0.0;
    }
    (total_tuples as f64 / n_tables as f64).powi(n_tables as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::preorder::{Preorder, PreorderExt};

    use crate::database::build::{c, n, table};
    use crate::ordering::InfoOrder;

    #[test]
    fn merge_keeps_shared_constants() {
        let mut nulls = PairNulls::default();
        let t = merge_tuples(&[c(1), c(2), n(1)], &[c(1), c(3), c(2)], &mut nulls);
        assert_eq!(t[0], c(1));
        assert!(t[1].is_null());
        assert!(t[2].is_null());
        // Same pair ⇒ same null, different pair ⇒ different null.
        let t2 = merge_tuples(&[c(2)], &[c(3)], &mut nulls);
        assert_eq!(t2[0], t[1]);
        let t3 = merge_tuples(&[c(2)], &[c(4)], &mut nulls);
        assert_ne!(t3[0], t[1]);
    }

    #[test]
    fn glb_is_a_lower_bound() {
        let a = table("R", 2, &[&[c(1), c(2)], &[c(3), n(1)]]);
        let b = table("R", 2, &[&[c(1), c(5)], &[n(2), c(2)]]);
        let meet = glb_databases(&a, &b);
        assert!(InfoOrder.leq(&meet, &a));
        assert!(InfoOrder.leq(&meet, &b));
    }

    #[test]
    fn glb_dominates_other_lower_bounds() {
        let a = table("R", 2, &[&[c(1), c(2)]]);
        let b = table("R", 2, &[&[c(1), c(3)]]);
        let meet = glb_databases(&a, &b);
        // Candidate lower bounds.
        let lows = [
            table("R", 2, &[&[c(1), n(7)]]),
            table("R", 2, &[&[n(7), n(8)]]),
            table("R", 2, &[]),
        ];
        for l in &lows {
            assert!(InfoOrder.leq(l, &a) && InfoOrder.leq(l, &b));
            assert!(InfoOrder.leq(l, &meet), "glb must dominate {l:?}");
        }
        // And the glb keeps the shared first column.
        assert!(InfoOrder.equiv(&meet, &table("R", 2, &[&[c(1), n(7)]])));
    }

    #[test]
    fn glb_of_identical_databases_is_equivalent() {
        let a = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        let meet = glb_databases(&a, &a);
        assert!(InfoOrder.equiv(&meet, &a));
        // But it is the 4-tuple product, not a itself: size |R|².
        assert_eq!(meet.len(), 4);
    }

    #[test]
    fn glb_of_disjoint_databases_is_all_nulls() {
        let a = table("R", 1, &[&[c(1)]]);
        let b = table("R", 1, &[&[c(2)]]);
        let meet = glb_databases(&a, &b);
        assert_eq!(meet.len(), 1);
        assert!(meet.facts()[0].args[0].is_null());
        // Equivalent to the single-null table.
        assert!(InfoOrder.equiv(&meet, &table("R", 1, &[&[n(1)]])));
    }

    #[test]
    fn glb_many_and_size_bound() {
        let xs = vec![
            table("R", 1, &[&[c(1)], &[c(2)]]),
            table("R", 1, &[&[c(1)], &[c(3)]]),
            table("R", 1, &[&[c(1)], &[c(4)]]),
        ];
        let meet = glb_many(&xs).unwrap();
        // Product size 2×2×2 = 8 ≤ (6/3)³ = 8 — the bound is tight here.
        assert_eq!(meet.len(), 8);
        assert!(meet.len() as f64 <= glb_size_bound(6, 3));
        // Lower bound of every input.
        for x in &xs {
            assert!(InfoOrder.leq(&meet, x));
        }
        // R(1) survives in all: the glb is equivalent to {R(1), all-null…};
        // in particular R(1) must map into it.
        let r1 = table("R", 1, &[&[c(1)]]);
        assert!(InfoOrder.leq(&r1, &meet));
    }

    #[test]
    fn glb_none_for_empty_family() {
        assert!(glb_many(&[]).is_none());
    }

    #[test]
    fn glb_respects_multiple_relations() {
        let mut schema = crate::schema::Schema::new();
        schema.add_relation("R", 1);
        schema.add_relation("S", 1);
        let mut a = NaiveDatabase::new(schema.clone());
        a.add("R", vec![c(1)]);
        a.add("S", vec![c(2)]);
        let mut b = NaiveDatabase::new(schema.clone());
        b.add("R", vec![c(1)]);
        // b has no S facts: the glb must have none either.
        let meet = glb_databases(&a, &b);
        assert_eq!(meet.len(), 1);
        assert_eq!(meet.facts()[0].args, vec![c(1)]);
    }

    #[test]
    fn nested_glb_associates_up_to_equivalence() {
        let a = table("R", 1, &[&[c(1)], &[c(2)]]);
        let b = table("R", 1, &[&[c(2)], &[c(3)]]);
        let cdb = table("R", 1, &[&[c(2)], &[c(4)]]);
        let left = glb_databases(&glb_databases(&a, &b), &cdb);
        let right = glb_databases(&a, &glb_databases(&b, &cdb));
        assert!(InfoOrder.equiv(&left, &right));
    }
}
