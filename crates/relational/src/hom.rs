//! Database homomorphisms.
//!
//! A homomorphism `h : D → D′` is a map `h : N(D) → C(D′) ∪ N(D′)`,
//! extended as the identity on constants, such that the `h`-image of every
//! fact of `D` is a fact of `D′`. Homomorphism existence characterizes the
//! information ordering (Proposition 3) and, when `D′` is complete,
//! membership `D′ ∈ [[D]]`.
//!
//! The search is compiled to the [`ca_hom`] CSP engine: variables are the
//! nulls of `D`, candidate values are the values of `D′`, and each fact of
//! `D` contributes a table constraint listing the compatible facts of `D′`.

use ca_cert::HomCert;
use ca_core::store::{self, ValueInterner};
use ca_core::value::Value;
use ca_hom::csp::Csp;

use crate::database::{NaiveDatabase, Valuation};

/// The target-side value universe of a homomorphism problem: all values
/// occurring in the target, indexed for the CSP. Returned by [`hom_csp`]
/// so callers can translate CSP solutions back to [`Value`]s without
/// rebuilding the index.
///
/// Backed by the workspace value interner (`ca_core::store`): values are
/// interned in sorted order, so the dense CSP ids `0..len` enumerate the
/// constants first (ascending), then the nulls (ascending) — exactly the
/// order the pre-store `Vec<Value>` table produced.
pub struct ValueIndex {
    interner: ValueInterner,
    n_consts: u32,
}

impl ValueIndex {
    /// Index the values of `db` (sorted, deduplicated).
    pub fn of(db: &NaiveDatabase) -> Self {
        let mut values: Vec<Value> = db
            .facts()
            .iter()
            .flat_map(|f| f.args.iter().copied())
            .collect();
        values.sort_unstable();
        values.dedup();
        let mut interner = ValueInterner::new();
        for v in values {
            interner.intern(v);
        }
        let n_consts = interner.n_consts();
        ValueIndex { interner, n_consts }
    }

    /// The CSP id of a value, if it occurs in the target. Constants map
    /// to their interned id, nulls to `n_consts + dense null index` —
    /// the CSP wants one contiguous id space.
    pub fn id(&self, v: Value) -> Option<u32> {
        self.interner.lookup(v).map(|id| {
            if store::id_is_null(id) {
                self.n_consts + store::null_index(id)
            } else {
                id
            }
        })
    }

    /// The value behind a CSP id.
    pub fn value(&self, id: u32) -> Value {
        if id < self.n_consts {
            Value::Const(self.interner.const_at(id))
        } else {
            Value::null(self.interner.null_at(id - self.n_consts))
        }
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True if the target has no values at all.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }
}

/// Build the homomorphism CSP from `src` to `dst`. Exposed so callers can
/// add extra restrictions (e.g. forbidden values) before solving; the
/// returned [`ValueIndex`] translates solution ids back to values.
pub fn hom_csp(
    src: &NaiveDatabase,
    dst: &NaiveDatabase,
) -> (Csp, Vec<ca_core::value::Null>, ValueIndex) {
    let nulls: Vec<ca_core::value::Null> = src.nulls().into_iter().collect();
    let var_of = |n: ca_core::value::Null| -> u32 {
        match nulls.binary_search(&n) {
            Ok(i) => i as u32,
            // `nulls` enumerates every null of `src`, so any null found
            // in src's facts below is present.
            Err(_) => unreachable!("null not in src's null set"),
        }
    };
    let idx = ValueIndex::of(dst);
    let mut csp = Csp::with_uniform_domains(nulls.len(), idx.len() as u32);
    for fact in src.facts() {
        // Scope: one CSP variable per null position (repeats allowed).
        let scope: Vec<u32> = fact
            .args
            .iter()
            .filter_map(|v| v.as_null())
            .map(var_of)
            .collect();
        // Allowed tuples: for each matching fact of dst, the values at the
        // null positions — constants must match exactly.
        let mut allowed = Vec::new();
        'facts: for g in dst.relation_by_name(src.schema.name(fact.rel)) {
            let mut tuple = Vec::with_capacity(scope.len());
            for (a, b) in fact.args.iter().zip(g.args.iter()) {
                match a {
                    Value::Const(_) => {
                        if a != b {
                            continue 'facts;
                        }
                    }
                    Value::Null(_) => {
                        let Some(id) = idx.id(*b) else {
                            continue 'facts;
                        };
                        tuple.push(id);
                    }
                }
            }
            allowed.push(tuple);
        }
        csp.add_constraint(scope, allowed);
    }
    (csp, nulls, idx)
}

impl NaiveDatabase {
    /// Facts of the relation with the given name (empty if absent).
    pub fn relation_by_name<'a>(
        &'a self,
        name: &str,
    ) -> Box<dyn Iterator<Item = &'a crate::database::Fact> + 'a> {
        match self.schema.relation(name) {
            Some(sym) => Box::new(self.relation(sym)),
            None => Box::new(std::iter::empty()),
        }
    }
}

/// Find a homomorphism `src → dst`, if one exists.
///
/// ```
/// use ca_relational::database::build::{c, n, table};
/// use ca_relational::hom::find_hom;
///
/// let d = table("R", 2, &[&[c(1), n(1)]]);
/// let r = table("R", 2, &[&[c(1), c(7)]]);
/// let h = find_hom(&d, &r).unwrap();
/// assert_eq!(h.apply(n(1)), c(7));
/// assert!(find_hom(&r, &d).is_none());
/// ```
pub fn find_hom(src: &NaiveDatabase, dst: &NaiveDatabase) -> Option<Valuation> {
    assert!(
        src.schema.compatible_with(&dst.schema),
        "incompatible schemas"
    );
    let (csp, nulls, idx) = hom_csp(src, dst);
    let sol = csp.solve()?;
    Some(Valuation::from_pairs(
        nulls
            .iter()
            .zip(sol.iter())
            .map(|(&n, &v)| (n, idx.value(v))),
    ))
}

/// Is `h` a homomorphism from `src` to `dst`?
pub fn is_hom(src: &NaiveDatabase, dst: &NaiveDatabase, h: &Valuation) -> bool {
    src.facts().iter().all(|f| {
        let image = h.apply_tuple(&f.args);
        dst.relation_by_name(src.schema.name(f.rel))
            .any(|g| g.args == image)
    })
}

/// Outcome of an [`find_onto_hom`] search. The enumeration is capped, so
/// a negative answer comes in two flavours: a *definite* absence (the
/// enumeration was exhaustive) and an *inconclusive* one (the cap was hit
/// before the enumeration finished). Earlier versions of this API
/// collapsed both into `None`, silently turning "don't know" into "no".
#[derive(Clone, Debug, PartialEq)]
pub enum OntoOutcome {
    /// An onto homomorphism, witnessing `src ⊑_cwa dst`.
    Found(Valuation),
    /// All homomorphisms were enumerated; none is onto.
    NotFound,
    /// The enumeration limit was exhausted without finding an onto
    /// homomorphism; absence is *not* established. Carries the partial
    /// progress — how many candidate homomorphisms were enumerated and
    /// individually refuted before the cap — so callers (and tests) can
    /// see *why* the search gave up instead of a bare "don't know".
    Inconclusive {
        /// Candidates enumerated and refuted (equals the limit).
        examined: usize,
    },
}

impl OntoOutcome {
    /// True iff an onto homomorphism was found.
    pub fn found(&self) -> bool {
        matches!(self, OntoOutcome::Found(_))
    }

    /// True iff absence was definitely established (exhaustive search).
    pub fn definitely_absent(&self) -> bool {
        matches!(self, OntoOutcome::NotFound)
    }

    /// The witness, if one was found.
    pub fn into_hom(self) -> Option<Valuation> {
        match self {
            OntoOutcome::Found(h) => Some(h),
            _ => None,
        }
    }
}

/// Find an *onto* homomorphism `src → dst`: one whose image `h(src)`
/// contains every fact of `dst`. This is the closed-world ordering
/// `⊑_cwa`. Enumeration-based (exponential in the worst case); `limit`
/// caps the number of homomorphisms examined, and the returned
/// [`OntoOutcome`] distinguishes a definite "no" (exhaustive enumeration)
/// from an exhausted limit.
pub fn find_onto_hom(src: &NaiveDatabase, dst: &NaiveDatabase, limit: usize) -> OntoOutcome {
    assert!(
        src.schema.compatible_with(&dst.schema),
        "incompatible schemas"
    );
    let (csp, nulls, idx) = hom_csp(src, dst);
    let e = csp.solve_all(limit);
    for sol in &e.solutions {
        let h = Valuation::from_pairs(
            nulls
                .iter()
                .zip(sol.iter())
                .map(|(&n, &v)| (n, idx.value(v))),
        );
        let image = src.apply(&h);
        let covers = dst.facts().iter().all(|g| {
            image
                .relation_by_name(dst.schema.name(g.rel))
                .any(|f| f.args == g.args)
        });
        if covers {
            return OntoOutcome::Found(h);
        }
    }
    if e.truncated {
        OntoOutcome::Inconclusive {
            examined: e.solutions.len(),
        }
    } else {
        OntoOutcome::NotFound
    }
}

/// Build a [`HomCert`] for `h` as a homomorphism of `src`: the mapping on
/// the source's nulls, in ascending null order (the certificate's
/// canonical form).
fn hom_cert_of(src: &NaiveDatabase, h: &Valuation, onto: bool) -> HomCert {
    HomCert {
        mapping: src
            .nulls()
            .into_iter()
            .filter_map(|n| h.get(n).map(|v| (n, v)))
            .collect(),
        onto,
    }
}

/// [`find_hom`], emitting a typed certificate alongside the witness. The
/// certificate verifies against store snapshots of the two databases
/// ([`crate::store_bridge::to_store`]) via [`ca_cert::check_hom`];
/// [`find_hom`] itself stays the thin wrapper that discards it.
pub fn find_hom_certified(
    src: &NaiveDatabase,
    dst: &NaiveDatabase,
) -> Option<(Valuation, HomCert)> {
    let h = find_hom(src, dst)?;
    let cert = hom_cert_of(src, &h, false);
    Some((h, cert))
}

/// [`find_onto_hom`], emitting a typed certificate for a positive
/// outcome (`onto` set, so the checker also verifies coverage of every
/// target fact). Negative outcomes carry no certificate: absence is not
/// replayable, and the inconclusive case's partial progress lives in
/// [`OntoOutcome::Inconclusive`] itself.
pub fn find_onto_hom_certified(
    src: &NaiveDatabase,
    dst: &NaiveDatabase,
    limit: usize,
) -> (OntoOutcome, Option<HomCert>) {
    let outcome = find_onto_hom(src, dst, limit);
    let cert = match &outcome {
        OntoOutcome::Found(h) => Some(hom_cert_of(src, h, true)),
        _ => None,
    };
    (outcome, cert)
}

/// Membership: is the complete database `r` in `[[d]]`?
/// (`r` must be complete; then `r ∈ [[d]]` iff some homomorphism
/// `d → r` exists.)
pub fn in_semantics(r: &NaiveDatabase, d: &NaiveDatabase) -> bool {
    r.is_complete() && find_hom(d, r).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::build::{c, n, table};

    #[test]
    fn paper_example_hom_exists() {
        let d = table(
            "D",
            3,
            &[
                &[c(1), c(2), n(1)],
                &[n(2), n(1), c(3)],
                &[n(3), c(5), c(1)],
            ],
        );
        let r = table(
            "D",
            3,
            &[
                &[c(1), c(2), c(4)],
                &[c(3), c(4), c(3)],
                &[c(5), c(5), c(1)],
                &[c(3), c(7), c(8)],
            ],
        );
        let h = find_hom(&d, &r).expect("the paper's homomorphism exists");
        assert!(is_hom(&d, &r, &h));
        assert!(in_semantics(&r, &d));
        // The witness is forced: ⊥1=4, ⊥2=3, ⊥3=5.
        assert_eq!(h.get(ca_core::value::Null(1)), Some(c(4)));
        assert_eq!(h.get(ca_core::value::Null(2)), Some(c(3)));
        assert_eq!(h.get(ca_core::value::Null(3)), Some(c(5)));
    }

    #[test]
    fn no_hom_when_constants_clash() {
        let d = table("R", 1, &[&[c(1)]]);
        let r = table("R", 1, &[&[c(2)]]);
        assert!(find_hom(&d, &r).is_none());
        assert!(!in_semantics(&r, &d));
    }

    #[test]
    fn repeated_nulls_must_map_consistently() {
        // R(⊥1, ⊥1) needs a "diagonal" fact in the target.
        let d = table("R", 2, &[&[n(1), n(1)]]);
        let no_diag = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        assert!(find_hom(&d, &no_diag).is_none());
        let diag = table("R", 2, &[&[c(1), c(2)], &[c(3), c(3)]]);
        let h = find_hom(&d, &diag).unwrap();
        assert_eq!(h.apply(n(1)), c(3));
    }

    #[test]
    fn hom_into_incomplete_target_maps_nulls_to_nulls() {
        // R(⊥1, ⊥2) → R(⊥9, c): nulls may map to nulls.
        let d = table("R", 2, &[&[n(1), n(2)]]);
        let t = table("R", 2, &[&[n(9), c(5)]]);
        let h = find_hom(&d, &t).unwrap();
        assert!(is_hom(&d, &t, &h));
        assert_eq!(h.apply(n(1)), n(9));
        assert_eq!(h.apply(n(2)), c(5));
    }

    #[test]
    fn empty_source_always_maps() {
        let d = table("R", 1, &[]);
        let r = table("R", 1, &[&[c(1)]]);
        assert!(find_hom(&d, &r).is_some());
        // …and an empty complete target too.
        let empty = table("R", 1, &[]);
        assert!(find_hom(&d, &empty).is_some());
    }

    #[test]
    fn ground_fact_must_be_present() {
        let d = table("R", 2, &[&[c(1), c(2)], &[n(1), c(2)]]);
        let missing = table("R", 2, &[&[c(5), c(2)]]);
        assert!(find_hom(&d, &missing).is_none());
        let present = table("R", 2, &[&[c(1), c(2)]]);
        let h = find_hom(&d, &present).unwrap();
        assert_eq!(h.apply(n(1)), c(1));
    }

    #[test]
    fn onto_hom_distinguishes_cwa() {
        // D = {R(⊥1), R(⊥2)}, D′ = {R(1), R(2)}: onto hom exists (⊥i ↦ i).
        let d = table("R", 1, &[&[n(1)], &[n(2)]]);
        let d2 = table("R", 1, &[&[c(1)], &[c(2)]]);
        assert!(find_onto_hom(&d, &d2, 1000).found());
        // D = {R(⊥1)} cannot cover two facts.
        let small = table("R", 1, &[&[n(1)]]);
        assert!(find_hom(&small, &d2).is_some());
        assert!(find_onto_hom(&small, &d2, 1000).definitely_absent());
    }

    /// satellite: an exhausted enumeration cap carries its partial
    /// progress — the number of candidates examined and refuted — rather
    /// than a bare "don't know".
    #[test]
    fn inconclusive_carries_refuted_candidate_count() {
        // One null over three target facts: three homomorphisms, none
        // onto (a single-fact image cannot cover three facts).
        let d = table("R", 1, &[&[n(1)]]);
        let r = table("R", 1, &[&[c(1)], &[c(2)], &[c(3)]]);
        assert_eq!(
            find_onto_hom(&d, &r, 2),
            OntoOutcome::Inconclusive { examined: 2 }
        );
        // An exhaustive enumeration is a definite no, not inconclusive.
        assert!(find_onto_hom(&d, &r, 1000).definitely_absent());
    }

    /// satellite: certified wrappers emit certificates the independent
    /// checker accepts, and the plain APIs agree with them.
    #[test]
    fn certified_wrappers_roundtrip_through_checker() {
        use crate::store_bridge::to_store;
        let d = table("R", 2, &[&[c(1), n(1)], &[n(2), n(1)]]);
        let r = table("R", 2, &[&[c(1), c(4)], &[c(3), c(4)]]);
        let (h, cert) = find_hom_certified(&d, &r).expect("hom exists");
        assert!(is_hom(&d, &r, &h));
        assert_eq!(
            ca_cert::check_hom(&cert, &to_store(&d), &to_store(&r)),
            Ok(())
        );
        // Onto: the certificate additionally certifies coverage.
        let src = table("R", 1, &[&[n(1)], &[n(2)]]);
        let dst = table("R", 1, &[&[c(1)], &[c(2)]]);
        let (outcome, onto_cert) = find_onto_hom_certified(&src, &dst, 1000);
        assert!(outcome.found());
        let cert = onto_cert.expect("positive outcomes carry a certificate");
        assert!(cert.onto);
        assert_eq!(
            ca_cert::check_hom(&cert, &to_store(&src), &to_store(&dst)),
            Ok(())
        );
    }

    #[test]
    fn hom_composition_closure() {
        // d ⊑ e ⊑ f implies d ⊑ f (spot check of transitivity).
        let d = table("R", 2, &[&[n(1), n(2)]]);
        let e = table("R", 2, &[&[n(3), c(1)]]);
        let f = table("R", 2, &[&[c(2), c(1)]]);
        assert!(find_hom(&d, &e).is_some());
        assert!(find_hom(&e, &f).is_some());
        assert!(find_hom(&d, &f).is_some());
    }

    #[test]
    fn multi_relation_homs() {
        let mut schema = crate::schema::Schema::new();
        schema.add_relation("R", 2);
        schema.add_relation("S", 1);
        let mut d = NaiveDatabase::new(schema.clone());
        d.add("R", vec![c(1), n(1)]);
        d.add("S", vec![n(1)]);
        // Target: R(1,2), S(2): ⊥1 must be 2 in both relations.
        let mut t = NaiveDatabase::new(schema.clone());
        t.add("R", vec![c(1), c(2)]);
        t.add("S", vec![c(2)]);
        let h = find_hom(&d, &t).unwrap();
        assert_eq!(h.apply(n(1)), c(2));
        // Target with S(3) instead: no hom.
        let mut t2 = NaiveDatabase::new(schema);
        t2.add("R", vec![c(1), c(2)]);
        t2.add("S", vec![c(3)]);
        assert!(find_hom(&d, &t2).is_none());
    }
}
