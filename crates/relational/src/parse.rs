//! A concrete text syntax for naïve databases.
//!
//! One fact per `;`-or-newline-separated entry:
//!
//! ```text
//! R(1, ?x, 3); R(?x, 2, _); S(4)
//! ```
//!
//! * integers are constants;
//! * `?name` is a named null — repeated occurrences denote the *same*
//!   null (naïve interpretation);
//! * `_` is an anonymous null, fresh at every occurrence (Codd-style).
//!
//! The schema is inferred from the facts (relation name ↦ arity), or
//! checked against a provided one.

use ca_core::value::{NullGen, Value};

use crate::database::NaiveDatabase;
use crate::schema::Schema;

/// A parse error with a message and byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    named: Vec<String>,
    gen: NullGen,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace() || c == ';') {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.input.len()
    }

    fn eat(&mut self, token: char) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token) {
            self.pos += token.len_utf8();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let len = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .map(char::len_utf8)
            .sum::<usize>();
        if len == 0 || !rest.starts_with(|c: char| c.is_alphabetic()) {
            return Err(self.error("expected a relation name"));
        }
        self.pos += len;
        Ok(rest[..len].to_owned())
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.starts_with('_') {
            self.pos += 1;
            return Ok(self.gen.fresh_value());
        }
        if let Some(stripped) = rest.strip_prefix('?') {
            let len = stripped
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .map(char::len_utf8)
                .sum::<usize>();
            if len == 0 {
                return Err(self.error("expected a null name after `?`"));
            }
            let name = &stripped[..len];
            self.pos += 1 + len;
            let id = match self.named.iter().position(|n| n == name) {
                Some(i) => i as u32,
                None => {
                    self.named.push(name.to_owned());
                    (self.named.len() - 1) as u32
                }
            };
            return Ok(Value::null(id));
        }
        let len = rest
            .char_indices()
            .take_while(|&(i, c)| c.is_ascii_digit() || (i == 0 && c == '-'))
            .count();
        if len == 0 {
            return Err(self.error("expected a constant, `?null`, or `_`"));
        }
        let text = &rest[..len];
        let v: i64 = text
            .parse()
            .map_err(|_| self.error(format!("bad integer `{text}`")))?;
        self.pos += len;
        Ok(Value::Const(v))
    }
}

/// Parse a naïve database, inferring the schema from the facts. Named
/// nulls `?x` get ids `0, 1, …` in order of first appearance; anonymous
/// nulls `_` get fresh ids above them.
pub fn parse_database(input: &str) -> Result<NaiveDatabase, ParseError> {
    // Reserve null ids: named nulls are interned first; anonymous ones
    // start high to avoid clashes.
    let mut p = Parser {
        input,
        pos: 0,
        named: Vec::new(),
        gen: NullGen::starting_at(1_000_000),
    };
    let mut facts: Vec<(String, Vec<Value>)> = Vec::new();
    while !p.at_end() {
        let rel = p.ident()?;
        if !p.eat('(') {
            return Err(p.error("expected `(`"));
        }
        let mut args = Vec::new();
        p.skip_ws();
        if !p.input[p.pos..].starts_with(')') {
            loop {
                args.push(p.value()?);
                if !p.eat(',') {
                    break;
                }
            }
        }
        if !p.eat(')') {
            return Err(p.error("expected `)`"));
        }
        facts.push((rel, args));
    }
    // Infer schema.
    let mut schema = Schema::new();
    for (rel, args) in &facts {
        schema.add_relation(rel, args.len());
    }
    let mut db = NaiveDatabase::new(schema);
    for (rel, args) in facts {
        db.add(&rel, args);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::build::{c, n};

    #[test]
    fn constants_and_named_nulls() {
        let db = parse_database("R(1, ?x); R(?x, 2)").unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.facts()[0].args, vec![c(1), n(0)]);
        assert_eq!(db.facts()[1].args, vec![n(0), c(2)]);
        assert!(!db.is_codd()); // ?x repeats
    }

    #[test]
    fn anonymous_nulls_are_fresh() {
        let db = parse_database("R(_, _)").unwrap();
        let args = &db.facts()[0].args;
        assert!(args[0].is_null() && args[1].is_null());
        assert_ne!(args[0], args[1]);
        assert!(db.is_codd());
    }

    #[test]
    fn newline_and_semicolon_separators() {
        let db = parse_database("R(1)\nR(2);R(3)").unwrap();
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn multi_relation_schema_inference() {
        let db = parse_database("R(1, 2); S(?a); T()").unwrap();
        assert_eq!(db.schema.len(), 3);
        assert_eq!(db.schema.arity(db.schema.relation("R").unwrap()), 2);
        assert_eq!(db.schema.arity(db.schema.relation("T").unwrap()), 0);
    }

    #[test]
    fn negative_constants() {
        let db = parse_database("R(-7)").unwrap();
        assert_eq!(db.facts()[0].args, vec![c(-7)]);
    }

    #[test]
    fn errors() {
        assert!(parse_database("R(").is_err());
        assert!(parse_database("R(?)").is_err());
        assert!(parse_database("1(2)").is_err());
        assert!(parse_database("R(1) garbage").is_err());
    }

    #[test]
    fn parsed_database_interoperates() {
        // The paper's example via the text syntax.
        let d = parse_database("D(1,2,?x1); D(?x2,?x1,3); D(?x3,5,1)").unwrap();
        let r = parse_database("D(1,2,4); D(3,4,3); D(5,5,1); D(3,7,8)").unwrap();
        assert!(crate::hom::find_hom(&d, &r).is_some());
    }
}
