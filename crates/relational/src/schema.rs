//! Relational schemas: relation names with associated arities.

use std::sync::atomic::{AtomicU64, Ordering};

use ca_core::symbol::{Interner, Symbol};

/// A relational schema: a set of relation names with arities.
#[derive(Debug, Default)]
pub struct Schema {
    interner: Interner,
    arities: Vec<usize>,
    /// Name-resolution counter (observability only): bumped by every
    /// [`Self::relation`] call so tests can pin that bulk-ingest paths
    /// intern a name once instead of re-resolving per fact. Ignored by
    /// `Clone`/`PartialEq` — it is not part of the schema's identity.
    lookups: AtomicU64,
}

impl Clone for Schema {
    fn clone(&self) -> Self {
        Schema {
            interner: self.interner.clone(),
            arities: self.arities.clone(),
            lookups: AtomicU64::new(0),
        }
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.interner == other.interner && self.arities == other.arities
    }
}

impl Eq for Schema {}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from `(name, arity)` pairs.
    pub fn from_relations(rels: &[(&str, usize)]) -> Self {
        let mut s = Schema::new();
        for &(name, arity) in rels {
            s.add_relation(name, arity);
        }
        s
    }

    /// Add a relation; returns its symbol. Re-adding with the same arity is
    /// a no-op; re-adding with a different arity panics.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Symbol {
        if let Some(sym) = self.interner.get(name) {
            assert_eq!(
                self.arities[sym.index()],
                arity,
                "relation {name} redeclared with different arity"
            );
            return sym;
        }
        let sym = self.interner.intern(name);
        self.arities.push(arity);
        sym
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Option<Symbol> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.interner.get(name)
    }

    /// How many by-name lookups this schema has served (see the
    /// `lookups` field). Bulk-ingest paths memoize the resolved symbol,
    /// so this stays O(distinct names), not O(facts).
    pub fn name_lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// The arity of a relation.
    pub fn arity(&self, sym: Symbol) -> usize {
        self.arities[sym.index()]
    }

    /// The name of a relation.
    pub fn name(&self, sym: Symbol) -> &str {
        match self.interner.resolve(sym) {
            Some(name) => name,
            // Symbols are only minted by this schema's interner, and
            // interned names are never removed.
            None => unreachable!("symbol not from this schema"),
        }
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterate over all relation symbols.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.arities.len() as u32).map(Symbol)
    }

    /// Two schemas are compatible when they agree on names and arities
    /// (needed before comparing databases).
    pub fn compatible_with(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self.symbols().all(|s| {
                other.relation(self.name(s)).map(|t| other.arity(t)) == Some(self.arity(s))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 3);
        let t = s.add_relation("S", 2);
        assert_ne!(r, t);
        assert_eq!(s.arity(r), 3);
        assert_eq!(s.name(t), "S");
        assert_eq!(s.relation("R"), Some(r));
        assert_eq!(s.relation("T"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn readding_same_arity_is_noop() {
        let mut s = Schema::new();
        let r1 = s.add_relation("R", 2);
        let r2 = s.add_relation("R", 2);
        assert_eq!(r1, r2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn readding_different_arity_panics() {
        let mut s = Schema::new();
        s.add_relation("R", 2);
        s.add_relation("R", 3);
    }

    #[test]
    fn compatibility() {
        let a = Schema::from_relations(&[("R", 2), ("S", 1)]);
        let b = Schema::from_relations(&[("S", 1), ("R", 2)]);
        let c = Schema::from_relations(&[("R", 2), ("S", 2)]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
    }
}
