//! Naïve databases, Codd databases, valuations and completions.
//!
//! An incomplete relational instance associates with each `k`-ary relation
//! symbol a finite set of `k`-tuples over `C ∪ N`. If nulls may repeat it
//! is a *naïve* database; if each null occurs at most once, a *Codd*
//! database. The semantics `[[D]]` is the set of complete databases `R`
//! such that some homomorphism `h : D → R` exists.

use std::collections::{BTreeMap, BTreeSet};

use ca_core::symbol::Symbol;
use ca_core::value::{Null, NullGen, Value};

use crate::schema::Schema;

/// A fact: relation symbol plus argument tuple.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The relation this fact belongs to.
    pub rel: Symbol,
    /// The argument tuple (length = arity of `rel`).
    pub args: Vec<Value>,
}

/// A valuation of nulls: the map `h : N(D) → C ∪ N` underlying database
/// homomorphisms; extended to be the identity on constants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Valuation {
    map: BTreeMap<Null, Value>,
}

impl Valuation {
    /// The empty valuation (identity on everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Null, Value)>>(pairs: I) -> Self {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Bind a null.
    pub fn bind(&mut self, n: Null, v: Value) {
        self.map.insert(n, v);
    }

    /// Apply to a value (identity on constants and unbound nulls).
    pub fn apply(&self, v: Value) -> Value {
        match v {
            Value::Const(_) => v,
            Value::Null(n) => self.map.get(&n).copied().unwrap_or(v),
        }
    }

    /// Apply to a tuple.
    pub fn apply_tuple(&self, t: &[Value]) -> Vec<Value> {
        t.iter().map(|&v| self.apply(v)).collect()
    }

    /// The binding of a null, if any.
    pub fn get(&self, n: Null) -> Option<Value> {
        self.map.get(&n).copied()
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Null, Value)> + '_ {
        self.map.iter().map(|(&n, &v)| (n, v))
    }

    /// Does every binding map to a constant?
    pub fn is_grounding(&self) -> bool {
        self.map.values().all(|v| v.is_const())
    }
}

/// An incomplete relational database (a *naïve database*): a set of facts
/// over `C ∪ N` conforming to a schema.
#[derive(Clone, Debug)]
pub struct NaiveDatabase {
    /// The schema facts must conform to.
    pub schema: Schema,
    /// The facts, kept sorted and deduplicated (set semantics).
    facts: Vec<Fact>,
    /// The last name→symbol resolution served by [`Self::add`]: bulk
    /// ingest repeats the same relation name, so memoizing one pair
    /// makes the by-name path O(distinct names) lookups instead of
    /// O(facts). Not part of the database's identity (ignored by `==`).
    add_memo: Option<(String, Symbol)>,
}

impl PartialEq for NaiveDatabase {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.facts == other.facts
    }
}

impl Eq for NaiveDatabase {}

impl NaiveDatabase {
    /// An empty database over a schema.
    pub fn new(schema: Schema) -> Self {
        NaiveDatabase {
            schema,
            facts: Vec::new(),
            add_memo: None,
        }
    }

    /// Add a fact. Panics if the relation is unknown or the arity is wrong.
    pub fn add_fact(&mut self, rel: Symbol, args: Vec<Value>) {
        assert_eq!(
            args.len(),
            self.schema.arity(rel),
            "arity mismatch for {}",
            self.schema.name(rel)
        );
        let fact = Fact { rel, args };
        match self.facts.binary_search(&fact) {
            Ok(_) => {}
            Err(pos) => self.facts.insert(pos, fact),
        }
    }

    /// Convenience: add a fact by relation name. Consecutive adds with
    /// the same name reuse the memoized symbol instead of re-resolving.
    pub fn add(&mut self, rel_name: &str, args: Vec<Value>) {
        let rel = match &self.add_memo {
            Some((name, sym)) if name == rel_name => *sym,
            _ => {
                let sym = self
                    .schema
                    .relation(rel_name)
                    .unwrap_or_else(|| panic!("unknown relation {rel_name}"));
                self.add_memo = Some((rel_name.to_string(), sym));
                sym
            }
        };
        self.add_fact(rel, args);
    }

    /// All facts, sorted.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Facts of one relation.
    pub fn relation(&self, rel: Symbol) -> impl Iterator<Item = &Fact> {
        self.facts.iter().filter(move |f| f.rel == rel)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// `N(D)`: the set of nulls occurring in the database.
    pub fn nulls(&self) -> BTreeSet<Null> {
        self.facts
            .iter()
            .flat_map(|f| f.args.iter())
            .filter_map(|v| v.as_null())
            .collect()
    }

    /// `C(D)`: the set of constants occurring in the database.
    pub fn constants(&self) -> BTreeSet<i64> {
        self.facts
            .iter()
            .flat_map(|f| f.args.iter())
            .filter_map(|v| v.as_const())
            .collect()
    }

    /// Is the database *complete* (null-free)?
    pub fn is_complete(&self) -> bool {
        self.facts
            .iter()
            .all(|f| f.args.iter().all(|v| v.is_const()))
    }

    /// Is this a *Codd* database: does each null occur at most once?
    pub fn is_codd(&self) -> bool {
        let mut seen = BTreeSet::new();
        for f in &self.facts {
            for v in &f.args {
                if let Some(n) = v.as_null() {
                    if !seen.insert(n) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Apply a valuation, producing a new database (facts may merge).
    pub fn apply(&self, h: &Valuation) -> NaiveDatabase {
        let mut out = NaiveDatabase::new(self.schema.clone());
        for f in &self.facts {
            out.add_fact(f.rel, h.apply_tuple(&f.args));
        }
        out
    }

    /// `π_cpl(D)`: drop every fact containing a null — the greatest
    /// complete object below `D` (Section 3's retraction, instantiated).
    pub fn complete_part(&self) -> NaiveDatabase {
        let mut out = NaiveDatabase::new(self.schema.clone());
        for f in &self.facts {
            if f.args.iter().all(|v| v.is_const()) {
                out.add_fact(f.rel, f.args.clone());
            }
        }
        out
    }

    /// A *fresh-constant completion*: map each null to a distinct constant
    /// not occurring in the database (nor in `avoid`). This is the
    /// canonical element of `[[D]]` used repeatedly in the paper's proofs.
    pub fn freeze(&self, avoid: &BTreeSet<i64>) -> (NaiveDatabase, Valuation) {
        let used: BTreeSet<i64> = self.constants().union(avoid).copied().collect();
        let start = used.iter().max().map_or(0, |m| m + 1);
        let mut h = Valuation::new();
        for (offset, n) in self.nulls().into_iter().enumerate() {
            h.bind(n, Value::Const(start + offset as i64));
        }
        (self.apply(&h), h)
    }

    /// Enumerate **all** groundings of the nulls into the given constant
    /// pool, returning each completed database. Exponential
    /// (`|pool|^#nulls`); intended for brute-force certain-answer checks on
    /// small instances.
    pub fn completions_over(&self, pool: &[i64]) -> Vec<NaiveDatabase> {
        let nulls: Vec<Null> = self.nulls().into_iter().collect();
        let k = nulls.len();
        let mut out = Vec::new();
        let mut idx = vec![0usize; k];
        loop {
            let h = Valuation::from_pairs(
                nulls
                    .iter()
                    .zip(idx.iter())
                    .map(|(&n, &i)| (n, Value::Const(pool[i]))),
            );
            out.push(self.apply(&h));
            // Odometer increment.
            let mut pos = 0;
            loop {
                if pos == k {
                    return out;
                }
                idx[pos] += 1;
                if idx[pos] < pool.len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Rename all nulls to fresh ones from `gen`, returning the renamed
    /// database (hom-equivalent to the original). Needed when combining
    /// databases whose nulls must not clash (e.g. disjoint unions).
    pub fn rename_nulls(&self, gen: &mut NullGen) -> NaiveDatabase {
        let mut h = Valuation::new();
        for n in self.nulls() {
            h.bind(n, Value::Null(gen.fresh()));
        }
        self.apply(&h)
    }

    /// The union of two databases over compatible schemas (facts merged;
    /// nulls are **not** renamed — callers wanting disjointness should
    /// rename first).
    pub fn union(&self, other: &NaiveDatabase) -> NaiveDatabase {
        assert!(self.schema.compatible_with(&other.schema));
        let mut out = self.clone();
        for f in &other.facts {
            let rel = out
                .schema
                .relation(other.schema.name(f.rel))
                .expect("compatible schema");
            out.add_fact(rel, f.args.clone());
        }
        out
    }

    /// Does the database contain the given fact?
    pub fn contains(&self, rel: Symbol, args: &[Value]) -> bool {
        self.relation(rel).any(|f| f.args == args)
    }
}

/// Convenience macro-free builders used pervasively in tests and examples.
pub mod build {
    use super::*;

    /// Shorthand: constant value.
    pub fn c(x: i64) -> Value {
        Value::Const(x)
    }

    /// Shorthand: null value.
    pub fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// A single-relation database `R/arity` with the given rows.
    pub fn table(name: &str, arity: usize, rows: &[&[Value]]) -> NaiveDatabase {
        let schema = Schema::from_relations(&[(name, arity)]);
        let mut db = NaiveDatabase::new(schema);
        for row in rows {
            db.add(name, row.to_vec());
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::build::{c, n, table};
    use super::*;

    /// The example naïve table from Section 2.1 of the paper.
    fn paper_table() -> NaiveDatabase {
        table(
            "D",
            3,
            &[
                &[c(1), c(2), n(1)],
                &[n(2), n(1), c(3)],
                &[n(3), c(5), c(1)],
            ],
        )
    }

    #[test]
    fn facts_are_set_semantics() {
        let mut db = table("R", 1, &[&[c(1)]]);
        db.add("R", vec![c(1)]);
        assert_eq!(db.len(), 1);
    }

    /// Bulk-adding 10⁵ facts by name resolves the relation name exactly
    /// once: `add` memoizes the `(name, symbol)` pair, so the by-name
    /// path costs O(distinct names) schema lookups, not O(facts).
    #[test]
    fn bulk_add_does_not_rerun_name_resolution() {
        let schema = Schema::from_relations(&[("R", 1), ("S", 1)]);
        let mut db = NaiveDatabase::new(schema);
        for i in 0..100_000 {
            db.add("R", vec![c(i)]);
        }
        assert_eq!(db.len(), 100_000);
        assert_eq!(db.schema.name_lookups(), 1, "one lookup for 10⁵ adds");
        // Switching names re-resolves once each; switching back again
        // re-resolves (the memo is one entry deep, by design).
        db.add("S", vec![c(0)]);
        db.add("R", vec![c(-1)]);
        assert_eq!(db.schema.name_lookups(), 3);
    }

    #[test]
    fn nulls_and_constants() {
        let db = paper_table();
        let nulls: Vec<u32> = db.nulls().into_iter().map(|x| x.0).collect();
        assert_eq!(nulls, vec![1, 2, 3]);
        let consts: Vec<i64> = db.constants().into_iter().collect();
        assert_eq!(consts, vec![1, 2, 3, 5]);
        assert!(!db.is_complete());
        assert!(!db.is_codd()); // ⊥1 occurs twice
    }

    #[test]
    fn codd_detection() {
        let codd = table("R", 2, &[&[c(1), n(1)], &[n(2), c(2)]]);
        assert!(codd.is_codd());
        let naive = table("R", 2, &[&[c(1), n(1)], &[n(1), c(2)]]);
        assert!(!naive.is_codd());
    }

    #[test]
    fn paper_example_homomorphic_image() {
        // h(⊥1)=4, h(⊥2)=3, h(⊥3)=5 sends the paper's D into its R.
        let d = paper_table();
        let h = Valuation::from_pairs([(Null(1), c(4)), (Null(2), c(3)), (Null(3), c(5))]);
        let image = d.apply(&h);
        let r = table(
            "D",
            3,
            &[
                &[c(1), c(2), c(4)],
                &[c(3), c(4), c(3)],
                &[c(5), c(5), c(1)],
                &[c(3), c(7), c(8)],
            ],
        );
        // Every fact of the image is in R (it's a sub-instance).
        for f in image.facts() {
            assert!(r.contains(r.schema.relation("D").unwrap(), &f.args));
        }
    }

    #[test]
    fn complete_part_drops_null_rows() {
        let db = paper_table();
        let cp = db.complete_part();
        assert!(cp.is_empty()); // all three rows have nulls
        let mut db2 = db.clone();
        db2.add("D", vec![c(9), c(9), c(9)]);
        assert_eq!(db2.complete_part().len(), 1);
    }

    #[test]
    fn freeze_produces_complete_instance() {
        let db = paper_table();
        let (frozen, h) = db.freeze(&BTreeSet::new());
        assert!(frozen.is_complete());
        assert!(h.is_grounding());
        // Distinct nulls got distinct fresh constants.
        let vals: BTreeSet<Value> = db
            .nulls()
            .iter()
            .map(|&n| h.apply(Value::Null(n)))
            .collect();
        assert_eq!(vals.len(), 3);
        // Fresh constants avoid existing ones.
        for v in vals {
            assert!(!db.constants().contains(&v.as_const().unwrap()));
        }
    }

    #[test]
    fn completions_enumerate_the_pool() {
        let db = table("R", 2, &[&[c(0), n(1)], &[n(2), c(0)]]);
        let comps = db.completions_over(&[0, 1]);
        assert_eq!(comps.len(), 4); // 2 nulls × pool of 2
        for comp in &comps {
            assert!(comp.is_complete());
        }
    }

    #[test]
    fn completion_can_merge_facts() {
        // R(⊥1), R(⊥2) grounded to the same constant merges into one fact.
        let db = table("R", 1, &[&[n(1)], &[n(2)]]);
        let comps = db.completions_over(&[7]);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 1);
    }

    #[test]
    fn rename_preserves_shape() {
        let db = paper_table();
        let mut gen = NullGen::starting_at(100);
        let renamed = db.rename_nulls(&mut gen);
        assert_eq!(renamed.len(), db.len());
        assert!(renamed.nulls().iter().all(|n| n.0 >= 100));
    }

    #[test]
    fn union_merges_facts() {
        let a = table("R", 1, &[&[c(1)]]);
        let b = table("R", 1, &[&[c(2)]]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn valuation_identity_on_constants_and_unbound() {
        let h = Valuation::from_pairs([(Null(1), c(5))]);
        assert_eq!(h.apply(c(3)), c(3));
        assert_eq!(h.apply(n(1)), c(5));
        assert_eq!(h.apply(n(2)), n(2));
    }
}
