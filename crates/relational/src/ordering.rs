//! The information ordering on naïve databases.
//!
//! `D ⊑ D′` iff `[[D′]] ⊆ [[D]]` — more informative objects denote fewer
//! completions. Proposition 3 characterizes this semantically defined
//! preorder as homomorphism existence, which is how [`InfoOrder`]
//! implements it. The module also plugs naïve databases into the abstract
//! framework of [`ca_core`]: [`InfoOrder`] is a
//! [`Preorder`](ca_core::preorder::Preorder) with
//! [complete objects](ca_core::complete::CompleteObjects), so all the
//! Section 3 notions (glbs, max-descriptions, `certain_cpl`, naïve
//! evaluation) apply verbatim.

use ca_core::complete::CompleteObjects;
use ca_core::preorder::Preorder;

use crate::database::NaiveDatabase;
use crate::hom::find_hom;

/// The homomorphism-based information ordering of Proposition 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct InfoOrder;

impl Preorder for InfoOrder {
    type Object = NaiveDatabase;

    fn leq(&self, x: &NaiveDatabase, y: &NaiveDatabase) -> bool {
        find_hom(x, y).is_some()
    }
}

impl CompleteObjects for InfoOrder {
    fn is_complete(&self, x: &NaiveDatabase) -> bool {
        x.is_complete()
    }

    fn pi_cpl(&self, x: &NaiveDatabase) -> NaiveDatabase {
        x.complete_part()
    }
}

/// Brute-force semantic comparison for cross-validation of Proposition 3:
/// `[[y]] ⊆ [[x]]` checked over all completions of `y` into `pool`
/// (exponential; test-sized instances only). For the inclusion to be
/// meaningful the pool must be large enough to exercise the fresh-constant
/// argument of the proposition (≥ #nulls of `y` fresh constants).
pub fn semantic_leq_over_pool(x: &NaiveDatabase, y: &NaiveDatabase, pool: &[i64]) -> bool {
    y.completions_over(pool)
        .iter()
        .all(|r| crate::hom::in_semantics(r, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::complete::CompleteFiniteDomain;
    use ca_core::domain::FiniteDomain;
    use ca_core::preorder::PreorderExt;

    use crate::database::build::{c, n, table};

    #[test]
    fn leq_is_hom_existence() {
        let less = table("R", 2, &[&[n(1), n(2)]]);
        let more = table("R", 2, &[&[c(1), c(2)]]);
        assert!(InfoOrder.leq(&less, &more));
        assert!(!InfoOrder.leq(&more, &less));
        assert!(InfoOrder.lt(&less, &more));
    }

    #[test]
    fn equivalent_but_unequal_databases() {
        // R(⊥1, ⊥2) and R(⊥3, ⊥4) are ∼-equivalent, not equal.
        let a = table("R", 2, &[&[n(1), n(2)]]);
        let b = table("R", 2, &[&[n(3), n(4)]]);
        assert!(InfoOrder.equiv(&a, &b));
        assert_ne!(a, b);
    }

    /// Proposition 3, cross-validated by brute force: on a small universe,
    /// hom existence agrees with semantic inclusion over a sufficiently
    /// large constant pool.
    #[test]
    fn proposition3_hom_iff_semantic_inclusion() {
        let candidates = vec![
            table("R", 2, &[&[n(1), n(2)]]),
            table("R", 2, &[&[n(1), n(1)]]),
            table("R", 2, &[&[c(1), n(1)]]),
            table("R", 2, &[&[c(1), c(2)]]),
            table("R", 2, &[&[c(1), c(1)]]),
            table("R", 2, &[&[n(1), n(2)], &[n(2), n(3)]]),
            table("R", 2, &[]),
        ];
        // Pool: constants of the instances plus enough fresh ones.
        let pool: Vec<i64> = vec![1, 2, 10, 11, 12];
        for x in &candidates {
            for y in &candidates {
                let by_hom = InfoOrder.leq(x, y);
                let by_semantics = semantic_leq_over_pool(x, y, &pool);
                assert_eq!(
                    by_hom, by_semantics,
                    "Proposition 3 violated for x={x:?}, y={y:?}"
                );
            }
        }
    }

    #[test]
    fn complete_objects_axioms_on_enumerated_fragment() {
        // A small closed fragment: all subsets of {R(1), R(⊥1)} plus a few
        // richer objects.
        let objects = vec![
            table("R", 1, &[]),
            table("R", 1, &[&[c(1)]]),
            table("R", 1, &[&[n(1)]]),
            table("R", 1, &[&[c(1)], &[n(1)]]),
            table("R", 1, &[&[c(2)]]),
            table("R", 1, &[&[c(1)], &[c(2)]]),
        ];
        let dom = CompleteFiniteDomain::new(FiniteDomain::new(InfoOrder, objects));
        assert!(dom.domain.check_reflexive());
        assert!(dom.domain.check_transitive());
        // Axiom 1 and monotone retraction hold; axiom 3 needs "enough"
        // complete objects, which this fragment has (every null pattern
        // has complete instances above it inside the fragment).
        assert_eq!(dom.check_axioms(), Vec::<u8>::new());
        assert!(dom.check_lemma2());
    }

    #[test]
    fn empty_database_is_bottom() {
        let empty = table("R", 2, &[]);
        let others = [
            table("R", 2, &[&[c(1), c(2)]]),
            table("R", 2, &[&[n(1), n(1)]]),
        ];
        for o in &others {
            assert!(InfoOrder.leq(&empty, o));
            assert!(!InfoOrder.leq(o, &empty));
        }
    }

    #[test]
    fn null_reuse_is_more_informative() {
        // R(⊥1, ⊥1) is strictly above R(⊥1, ⊥2): the repeated null says
        // "these two are equal".
        let reuse = table("R", 2, &[&[n(1), n(1)]]);
        let fresh = table("R", 2, &[&[n(1), n(2)]]);
        assert!(InfoOrder.lt(&fresh, &reuse));
    }
}
