//! # ca-relational — incomplete relational databases (Sections 2.1 & 4)
//!
//! Naïve tables and databases over constants `C` and nulls `N`, exactly as
//! in the paper:
//!
//! * [`schema`] — relational schemas: relation names with arities.
//! * [`database`] — naïve databases (nulls may repeat) and Codd databases
//!   (each null occurs at most once); valuations and completions; the
//!   semantics `[[D]]` = homomorphic images over constants.
//! * [`hom`] — database homomorphisms: maps on nulls (identity on
//!   constants) preserving all facts, compiled to the [`ca_hom`] CSP
//!   engine. Includes onto-homomorphisms for the closed-world ordering.
//! * [`ordering`] — the information ordering `D ⊑ D′ ⇔ [[D′]] ⊆ [[D]]`,
//!   characterized by homomorphism existence (Proposition 3), as an
//!   implementation of the [`ca_core`] preorder framework with complete
//!   objects.
//! * [`glb`] — greatest lower bounds of naïve tables and databases via the
//!   `⊗` tuple-merge product (Proposition 5), with the
//!   `|⋀X| ≤ (‖X‖/n)^n` size bound.
//! * [`tuplewise`] — the 1990s orderings: tuple-wise `⊴`, its Hoare/Plotkin
//!   set liftings, Proposition 4 (`⊑ = ⊴` on Codd databases), the CWA
//!   ordering `⊑_cwa`, and Proposition 8 (Hall's condition).
//! * [`store_bridge`] — `to_store`/`from_store` between naïve databases
//!   and the workspace columnar fact store (`ca_core::store`), keeping
//!   the `Vec<Value>` types as the API surface while engines evaluate
//!   over columns.
//! * [`parse`] — a text syntax for naïve databases (`R(1, ?x, _)`).
//! * [`generate`] — deterministic random-instance generators for the
//!   experiments.

pub mod database;
pub mod generate;
pub mod glb;
pub mod hom;
pub mod ordering;
pub mod parse;
pub mod schema;
pub mod store_bridge;
pub mod tuplewise;

pub use database::{Fact, NaiveDatabase, Valuation};
pub use glb::{glb_databases, glb_many, merge_tuples};
pub use hom::{
    find_hom, find_hom_certified, find_onto_hom, find_onto_hom_certified, is_hom, OntoOutcome,
    ValueIndex,
};
pub use ordering::InfoOrder;
pub use parse::parse_database;
pub use schema::Schema;
pub use store_bridge::{from_store, to_store};
