//! The 1990s orderings and the closed world (Propositions 4 and 8).
//!
//! Before the semantics-based ordering `⊑`, the literature ordered
//! incomplete relations tuple-wise: `(a₁…aₘ) ⊴ (b₁…bₘ)` iff each `aᵢ` is a
//! null or equals `bᵢ`, lifted to sets by
//!
//! * **Hoare**: `X ⊴ Y ⇔ ∀x∈X ∃y∈Y: x ⊴ y`;
//! * **Plotkin**: Hoare plus `∀y∈Y ∃x∈X: x ⊴ y`.
//!
//! Proposition 4: on *Codd* databases `⊑` coincides with the Hoare lifting
//! (so the old orderings were adequate exactly for SQL's primitive view of
//! nulls); on naïve databases they differ. Proposition 8: the closed-world
//! ordering `⊑_cwa` (existence of an *onto* homomorphism) coincides, on
//! Codd databases, with `⊴` plus Hall's condition on `⊴⁻¹`.

use ca_hom::matching::{hall_condition, Bipartite};

use crate::database::{Fact, NaiveDatabase};

/// Tuple-wise dominance `t ⊴ t′` on facts: same relation, and position-wise
/// each value is a null or the matching constant.
pub fn fact_leq(a: &Fact, b: &Fact, a_db: &NaiveDatabase, b_db: &NaiveDatabase) -> bool {
    a_db.schema.name(a.rel) == b_db.schema.name(b.rel)
        && a.args.len() == b.args.len()
        && a.args
            .iter()
            .zip(b.args.iter())
            .all(|(&x, &y)| x.tuplewise_leq(y))
}

/// The Hoare lifting `D ⊴ D′`: every fact of `D` is dominated by some fact
/// of `D′`.
pub fn hoare_leq(a: &NaiveDatabase, b: &NaiveDatabase) -> bool {
    a.facts()
        .iter()
        .all(|fa| b.facts().iter().any(|fb| fact_leq(fa, fb, a, b)))
}

/// The Plotkin lifting: Hoare in both directions
/// (`∀x∃y: x ⊴ y` and `∀y∃x: x ⊴ y`).
pub fn plotkin_leq(a: &NaiveDatabase, b: &NaiveDatabase) -> bool {
    hoare_leq(a, b)
        && b.facts()
            .iter()
            .all(|fb| a.facts().iter().any(|fa| fact_leq(fa, fb, a, b)))
}

/// Does `⊴⁻¹ ⊆ D′ × D` satisfy Hall's condition: for every set `U` of
/// facts of `D′`, at least `|U|` facts of `D` are dominated by members of
/// `U`? Checked via maximum matching (marriage theorem), in polynomial
/// time.
pub fn hall_on_dominance(a: &NaiveDatabase, b: &NaiveDatabase) -> bool {
    // Left vertices: facts of b (= D′); right: facts of a (= D);
    // edge (t′, t) iff t ⊴ t′.
    let mut g = Bipartite::new(b.len(), a.len());
    for (i, fb) in b.facts().iter().enumerate() {
        for (j, fa) in a.facts().iter().enumerate() {
            if fact_leq(fa, fb, a, b) {
                g.add_edge(i as u32, j as u32);
            }
        }
    }
    hall_condition(&g)
}

/// The Proposition 8 decision procedure for `D ⊑_cwa D′` on **Codd**
/// databases: `D ⊴ D′` (Hoare) together with Hall's condition on `⊴⁻¹`.
/// Polynomial time, in contrast to the onto-homomorphism search.
///
/// # Panics
///
/// Panics if `a` is not a Codd database (the characterization is only
/// proved under the Codd interpretation).
pub fn cwa_leq_codd(a: &NaiveDatabase, b: &NaiveDatabase) -> bool {
    assert!(a.is_codd(), "Proposition 8 requires a Codd left argument");
    hoare_leq(a, b) && hall_on_dominance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::preorder::Preorder;

    use crate::database::build::{c, n, table};
    use crate::generate::{random_codd_db, Rng};
    use crate::hom::find_onto_hom;
    use crate::ordering::InfoOrder;

    #[test]
    fn fact_dominance() {
        let a = table("R", 2, &[&[n(1), c(2)]]);
        let b = table("R", 2, &[&[c(1), c(2)]]);
        assert!(fact_leq(&a.facts()[0], &b.facts()[0], &a, &b));
        assert!(!fact_leq(&b.facts()[0], &a.facts()[0], &b, &a));
    }

    #[test]
    fn hoare_and_plotkin_differ() {
        // A null dominates nothing but is dominated by everything, so
        // {⊥1} ⊴ {1, 2} holds in both liftings (⊥1 witnesses ∀y∃x).
        let small = table("R", 1, &[&[n(1)]]);
        let big = table("R", 1, &[&[c(1)], &[c(2)]]);
        assert!(hoare_leq(&small, &big));
        assert!(plotkin_leq(&small, &big));
        // With constants the liftings separate: 4 is not dominated by 3.
        let a = table("R", 1, &[&[c(3)]]);
        let b = table("R", 1, &[&[c(3)], &[c(4)]]);
        assert!(hoare_leq(&a, &b));
        assert!(!plotkin_leq(&a, &b)); // 4 is not dominated by 3
    }

    /// Proposition 4 on hand-picked Codd databases plus the classical
    /// counterexample showing it fails for naïve (null-repeating) ones.
    #[test]
    fn proposition4_codd_orderings_coincide() {
        let codd_pairs = [
            (
                table("R", 2, &[&[n(1), c(2)]]),
                table("R", 2, &[&[c(1), c(2)]]),
                true,
            ),
            (
                table("R", 2, &[&[c(1), n(1)]]),
                table("R", 2, &[&[c(2), c(2)]]),
                false,
            ),
            (
                table("R", 2, &[&[n(1), n(2)], &[c(1), c(2)]]),
                table("R", 2, &[&[c(1), c(2)]]),
                true,
            ),
        ];
        for (a, b, expect) in &codd_pairs {
            assert!(a.is_codd() && b.is_codd());
            assert_eq!(hoare_leq(a, b), *expect);
            assert_eq!(InfoOrder.leq(a, b), *expect, "⊑ vs ⊴ on {a:?} vs {b:?}");
        }
        // Naïve counterexample: repeated null. ⊴ ignores the repetition.
        let naive = table("R", 2, &[&[n(1), n(1)]]);
        let target = table("R", 2, &[&[c(1), c(2)]]);
        assert!(hoare_leq(&naive, &target));
        assert!(!InfoOrder.leq(&naive, &target));
    }

    /// Proposition 4 on random Codd databases: ⊑ = ⊴ (Hoare).
    #[test]
    fn proposition4_random_codd() {
        let mut rng = Rng::new(2024);
        for trial in 0..60 {
            let a = random_codd_db(&mut rng, 4, 2, 3);
            let b = random_codd_db(&mut rng, 4, 2, 3);
            assert_eq!(
                InfoOrder.leq(&a, &b),
                hoare_leq(&a, &b),
                "Proposition 4 violated on trial {trial}: {a:?} vs {b:?}"
            );
        }
    }

    /// Proposition 8 on random Codd databases: `⊑_cwa` (onto homomorphism,
    /// by enumeration) coincides with ⊴ + Hall.
    #[test]
    fn proposition8_random_codd() {
        let mut rng = Rng::new(4711);
        let mut positives = 0;
        for trial in 0..60 {
            let a = random_codd_db(&mut rng, 3, 2, 2);
            let b = random_codd_db(&mut rng, 3, 2, 2);
            let by_onto = find_onto_hom(&a, &b, 100_000).found();
            let by_prop8 = cwa_leq_codd(&a, &b);
            assert_eq!(
                by_onto, by_prop8,
                "Proposition 8 violated on trial {trial}: {a:?} vs {b:?}"
            );
            positives += usize::from(by_onto);
        }
        assert!(positives > 0, "test never exercised the positive case");
    }

    #[test]
    fn proposition8_hall_failure_case() {
        // D = {R(⊥1)}, D′ = {R(1), R(2)}: ⊴ holds but Hall fails
        // (two D′ facts dominated by one D fact).
        let a = table("R", 1, &[&[n(1)]]);
        let b = table("R", 1, &[&[c(1)], &[c(2)]]);
        assert!(hoare_leq(&a, &b));
        assert!(!hall_on_dominance(&a, &b));
        assert!(!cwa_leq_codd(&a, &b));
        assert!(find_onto_hom(&a, &b, 100_000).definitely_absent());
    }

    #[test]
    fn cwa_positive_case() {
        let a = table("R", 1, &[&[n(1)], &[n(2)]]);
        let b = table("R", 1, &[&[c(1)], &[c(2)]]);
        assert!(cwa_leq_codd(&a, &b));
        assert!(find_onto_hom(&a, &b, 100_000).found());
    }
}

/// The *Codd weakening* of a naïve database: replace every null
/// *occurrence* by a globally fresh null, forgetting all equalities
/// between unknowns. This is the best Codd-interpretable approximation
/// from below: `codd_weakening(D) ⊑ D`, with equality exactly when `D`
/// was already (equivalent to) a Codd database — the quantitative content
/// of the paper's remark that the 1990s orderings fit "SQL's primitive
/// view of nulls".
pub fn codd_weakening(d: &crate::database::NaiveDatabase) -> crate::database::NaiveDatabase {
    use ca_core::value::{NullGen, Value};
    let mut gen = NullGen::avoiding(d.nulls());
    let mut out = crate::database::NaiveDatabase::new(d.schema.clone());
    for f in d.facts() {
        let args: Vec<Value> = f
            .args
            .iter()
            .map(|v| match v {
                Value::Null(_) => gen.fresh_value(),
                c => *c,
            })
            .collect();
        out.add_fact(f.rel, args);
    }
    out
}

#[cfg(test)]
mod weakening_tests {
    use super::codd_weakening;
    use crate::database::build::{c, n, table};
    use crate::ordering::InfoOrder;
    use ca_core::preorder::{Preorder, PreorderExt};

    #[test]
    fn weakening_is_below_and_codd() {
        let d = table("R", 2, &[&[n(1), n(1)], &[n(1), c(2)]]);
        let w = codd_weakening(&d);
        assert!(w.is_codd());
        assert!(InfoOrder.leq(&w, &d));
        // Strictly below: the repeated-null equality is lost.
        assert!(InfoOrder.lt(&w, &d));
    }

    #[test]
    fn weakening_fixes_codd_databases() {
        let d = table("R", 2, &[&[n(1), c(1)], &[n(2), c(2)]]);
        assert!(d.is_codd());
        let w = codd_weakening(&d);
        assert!(InfoOrder.equiv(&w, &d));
    }

    #[test]
    fn weakening_is_the_greatest_codd_lower_bound_spot_check() {
        // Any Codd database below D is below the weakening.
        let d = table("R", 2, &[&[n(1), n(1)]]);
        let w = codd_weakening(&d);
        let candidates = [table("R", 2, &[&[n(5), n(6)]]), table("R", 2, &[])];
        for cand in &candidates {
            assert!(cand.is_codd());
            if InfoOrder.leq(cand, &d) {
                assert!(InfoOrder.leq(cand, &w));
            }
        }
    }
}
