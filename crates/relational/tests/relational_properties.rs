//! Property-based tests inside the relational crate: homomorphism
//! verification, glb laws with the fresh-null discipline, parsing
//! round-trips, and the Codd/CWA algorithms.

use proptest::prelude::*;

use ca_core::preorder::Preorder;
use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::generate::{random_codd_db, random_naive_db, DbParams, Rng};
use ca_relational::glb::glb_databases;
use ca_relational::hom::{find_hom, is_hom};
use ca_relational::ordering::InfoOrder;
use ca_relational::parse::parse_database;
use ca_relational::schema::Schema;
use ca_relational::tuplewise::{cwa_leq_codd, hoare_leq};

fn arb_db() -> impl Strategy<Value = NaiveDatabase> {
    any::<u64>().prop_map(|seed| {
        random_naive_db(
            &mut Rng::new(seed),
            DbParams {
                n_facts: 4,
                arity: 2,
                n_constants: 3,
                n_nulls: 2,
                null_pct: 40,
            },
        )
    })
}

fn arb_codd() -> impl Strategy<Value = NaiveDatabase> {
    any::<u64>().prop_map(|seed| random_codd_db(&mut Rng::new(seed), 3, 2, 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn found_homs_verify(a in arb_db(), b in arb_db()) {
        if let Some(h) = find_hom(&a, &b) {
            prop_assert!(is_hom(&a, &b, &h));
        }
    }

    /// The glb's projection homomorphisms exist in both directions of the
    /// construction (lower bound), and the glb of `a` with itself is
    /// equivalent to `a`.
    #[test]
    fn glb_self_is_identity_up_to_equivalence(a in arb_db()) {
        let meet = glb_databases(&a, &a);
        prop_assert!(InfoOrder.leq(&meet, &a));
        prop_assert!(InfoOrder.leq(&a, &meet));
    }

    /// Monotonicity of glb: if a ⊑ a′ then a ∧ b ⊑ a′ ∧ b.
    #[test]
    fn glb_is_monotone(a in arb_db(), b in arb_db()) {
        let (a_grounded, _) = a.freeze(&std::collections::BTreeSet::new());
        let m1 = glb_databases(&a, &b);
        let m2 = glb_databases(&a_grounded, &b);
        prop_assert!(InfoOrder.leq(&m1, &m2));
    }

    /// Proposition 4 and Proposition 8 as properties (Codd pairs).
    #[test]
    fn codd_orderings(a in arb_codd(), b in arb_codd()) {
        prop_assert_eq!(InfoOrder.leq(&a, &b), hoare_leq(&a, &b));
        // Prop 8 implies ⊑_cwa ⇒ ⊑ (an onto hom is a hom).
        if cwa_leq_codd(&a, &b) {
            prop_assert!(InfoOrder.leq(&a, &b));
        }
    }

    /// Print-and-reparse round trip: rendering a database in the text
    /// syntax and parsing it back yields an isomorphic instance (equal up
    /// to null renaming — we check hom-equivalence plus size).
    #[test]
    fn parse_roundtrip(a in arb_db()) {
        let mut text = String::new();
        for f in a.facts() {
            text.push_str(a.schema.name(f.rel));
            text.push('(');
            for (i, v) in f.args.iter().enumerate() {
                if i > 0 {
                    text.push(',');
                }
                match v {
                    Value::Const(c) => text.push_str(&c.to_string()),
                    Value::Null(n) => text.push_str(&format!("?n{}", n.0)),
                }
            }
            text.push_str(")\n");
        }
        if a.is_empty() {
            return Ok(()); // the empty text parses to an empty schema
        }
        let parsed = parse_database(&text).unwrap();
        prop_assert_eq!(parsed.len(), a.len());
        prop_assert!(find_hom(&a, &parsed).is_some());
        prop_assert!(find_hom(&parsed, &a).is_some());
    }

    /// Completions are models: every completion over a pool is in [[D]].
    #[test]
    fn completions_are_members(a in arb_codd()) {
        for r in a.completions_over(&[0, 1]) {
            prop_assert!(ca_relational::hom::in_semantics(&r, &a));
        }
    }
}

/// Deterministic regression: schema compatibility is reflexive/symmetric
/// on generated schemas.
#[test]
fn schema_compat_laws() {
    let schemas = [
        Schema::from_relations(&[("R", 2)]),
        Schema::from_relations(&[("R", 2), ("S", 1)]),
        Schema::from_relations(&[("S", 1), ("R", 2)]),
    ];
    for a in &schemas {
        assert!(a.compatible_with(a));
    }
    assert!(schemas[1].compatible_with(&schemas[2]));
    assert!(schemas[2].compatible_with(&schemas[1]));
    assert!(!schemas[0].compatible_with(&schemas[1]));
}
