//! Offline stand-in for the subset of [proptest](https://proptest-rs.github.io/)
//! this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim implements the same surface — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, range and
//! tuple strategies, `prop::collection::vec`, `.prop_map` — with a
//! deterministic splitmix64 generator so failures reproduce exactly.
//! There is no shrinking: a failing case reports its case index instead.
//!
//! Set `PROPTEST_CASES` to override the per-test case count.

/// A failed property: carries the failure message back to the runner.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod rng {
    /// Deterministic splitmix64 stream, seeded per test case.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
        }

        /// The generator for the `case`-th run of a property.
        pub fn for_case(case: u64) -> Self {
            TestRng::new(0xCA5E_0000_0000_0000 ^ case)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;

    /// A value generator. Unlike real proptest there is no shrink tree;
    /// `generate` is the whole contract.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `s.prop_map(f)`.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternatives; built by [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! of nothing");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if width == 0 {
                        // Full-width integer range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(width) as $t)
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod test_runner {
    /// Per-`proptest!` configuration (`cases` only).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0u8..4, 0..6)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let __cases: u32 = ::std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(__cfg.cases);
            for __case in 0..__cases as u64 {
                let mut __rng = $crate::rng::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "proptest case {} of {} failed: {}",
                        __case, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current case without panicking past the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(::std::format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), __l, __r
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err($crate::TestCaseError(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)*), __l, __r
                    )));
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let __u = $crate::strategy::Union::new();
        $(let __u = __u.or($s);)+
        __u
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0i64..3).prop_map(|c| (0u8, c)),
            (10i64..13).prop_map(|c| (1u8, c)),
        ]) {
            match v {
                (0, c) => prop_assert!((0..3).contains(&c)),
                (1, c) => prop_assert!((10..13).contains(&c)),
                _ => prop_assert!(false, "impossible tag"),
            }
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::rng::TestRng::for_case(7);
        let mut b = crate::rng::TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
