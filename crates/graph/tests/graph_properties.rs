//! Property-based tests for digraphs, cores, and lattice operations.

use proptest::prelude::*;

use ca_graph::core::{core_of, is_core};
use ca_graph::digraph::Digraph;
use ca_graph::lattice::{glb, lub};

/// Strategy: a random digraph on ≤ 5 vertices.
fn arb_digraph() -> impl Strategy<Value = Digraph> {
    prop::collection::vec((0u32..5, 0u32..5), 0..10)
        .prop_map(|edges| Digraph::from_edges(5, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hom_order_is_reflexive(g in arb_digraph()) {
        prop_assert!(g.leq(&g));
    }

    #[test]
    fn core_is_equivalent_and_minimal(g in arb_digraph()) {
        let (core, kept) = core_of(&g);
        prop_assert!(core.hom_equiv(&g));
        prop_assert!(is_core(&core));
        prop_assert!(core.n <= g.n);
        prop_assert_eq!(kept.len(), core.n);
    }

    #[test]
    fn core_is_idempotent(g in arb_digraph()) {
        let (once, _) = core_of(&g);
        let (twice, _) = core_of(&once);
        prop_assert_eq!(once.n, twice.n);
        prop_assert_eq!(once.edges.len(), twice.edges.len());
    }

    #[test]
    fn glb_is_a_lower_bound(g in arb_digraph(), h in arb_digraph()) {
        let meet = glb(&g, &h);
        prop_assert!(meet.leq(&g));
        prop_assert!(meet.leq(&h));
        prop_assert!(is_core(&meet));
    }

    #[test]
    fn lub_is_an_upper_bound(g in arb_digraph(), h in arb_digraph()) {
        let join = lub(&g, &h);
        prop_assert!(g.leq(&join));
        prop_assert!(h.leq(&join));
        prop_assert!(is_core(&join));
    }

    #[test]
    fn glb_below_lub(g in arb_digraph(), h in arb_digraph()) {
        let meet = glb(&g, &h);
        let join = lub(&g, &h);
        prop_assert!(meet.leq(&join));
    }

    #[test]
    fn lattice_absorption(g in arb_digraph(), h in arb_digraph()) {
        // g ∧ (g ∨ h) ∼ g and g ∨ (g ∧ h) ∼ g.
        let join = lub(&g, &h);
        prop_assert!(glb(&g, &join).hom_equiv(&g));
        let meet = glb(&g, &h);
        prop_assert!(lub(&g, &meet).hom_equiv(&g));
    }

    #[test]
    fn product_projections_are_homs(g in arb_digraph(), h in arb_digraph()) {
        let p = g.product(&h);
        prop_assert!(p.leq(&g));
        prop_assert!(p.leq(&h));
    }

    #[test]
    fn disjoint_union_embeds_both(g in arb_digraph(), h in arb_digraph()) {
        let u = g.disjoint_union(&h);
        prop_assert!(g.leq(&u));
        prop_assert!(h.leq(&u));
    }
}
