//! Differential tests: the incremental retraction engine behind
//! `ca_graph::core` against the retained seed-era loop in
//! `ca_graph::reference` on random digraphs.
//!
//! Cores are unique only up to isomorphism, so the engines need not keep
//! the *same* vertices; what must agree exactly is the core size, the
//! `is_core` verdict, and hom-equivalence (of the two cores with each
//! other and with the original graph). Any disagreement is a regression
//! in the new engine (or, historically, a bug in the old one).

use proptest::prelude::*;

use ca_graph::digraph::random_digraph;
use ca_graph::{core_of, core_of_with, is_core, reference};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: same core size, mutually hom-equivalent,
    /// both hom-equivalent to the original.
    #[test]
    fn core_agrees_with_reference(n in 1usize..8, num in 1u64..4, seed in 0u64..10_000) {
        let g = random_digraph(n, num, 5, seed);
        let (new_core, new_kept) = core_of(&g);
        let (old_core, old_kept) = reference::core_of(&g);
        prop_assert_eq!(new_core.n, old_core.n, "core sizes diverged on {:?}", &g);
        prop_assert_eq!(new_kept.len(), new_core.n);
        prop_assert_eq!(old_kept.len(), old_core.n);
        prop_assert!(new_core.hom_equiv(&old_core));
        prop_assert!(new_core.hom_equiv(&g));
    }

    /// `is_core` verdicts agree, and the computed core really is one by
    /// the reference's own definition.
    #[test]
    fn is_core_agrees_with_reference(n in 1usize..7, num in 1u64..4, seed in 0u64..10_000) {
        let g = random_digraph(n, num, 5, seed);
        prop_assert_eq!(is_core(&g), reference::is_core(&g));
        let (core, _) = core_of(&g);
        prop_assert!(reference::is_core(&core), "engine returned a non-core on {:?}", &g);
    }

    /// Thread width is invisible: identical graphs and kept sets.
    #[test]
    fn core_is_thread_width_independent(n in 1usize..8, num in 1u64..4, seed in 0u64..10_000) {
        let g = random_digraph(n, num, 5, seed);
        let (base_core, base_kept) = core_of_with(&g, 1);
        for threads in [2usize, 4] {
            let (core, kept) = core_of_with(&g, threads);
            prop_assert_eq!(&base_kept, &kept, "kept set diverged at {} threads", threads);
            prop_assert_eq!(&base_core.edges, &core.edges);
        }
    }
}
