//! Reference core computation: the seed-era retract search, kept
//! verbatim as a differential-testing oracle and benchmark baseline for
//! the incremental engine behind [`crate::core`] (`ca_hom::retract`).
//!
//! This is deliberately the naive algorithm: every candidate vertex in
//! every shrink round recompiles and re-propagates a fresh
//! self-homomorphism CSP — `O(n²)` solver compilations per core. Do not
//! optimize it; its value is being obviously correct.

use crate::digraph::Digraph;

/// Is `g` a core: does every endomorphism use all vertices?
///
/// Equivalent (for finite graphs) to having no homomorphism into a proper
/// induced subgraph, which is what we check: for each vertex `v`, is there
/// an endomorphism avoiding `v`?
pub fn is_core(g: &Digraph) -> bool {
    let s = g.as_structure();
    for v in 0..g.n as u32 {
        if s.hom_csp(&s).solve_avoiding(v).is_some() {
            return false;
        }
    }
    true
}

/// Compute the core of `g` (a specific representative; unique up to
/// isomorphism). Returns the core together with the list of original
/// vertices retained.
pub fn core_of(g: &Digraph) -> (Digraph, Vec<u32>) {
    let mut current = g.clone();
    // Track which original vertices the current graph's vertices are.
    let mut original: Vec<u32> = (0..g.n as u32).collect();
    loop {
        let s = current.as_structure();
        let mut shrunk = false;
        for v in 0..current.n as u32 {
            if let Some(h) = s.hom_csp(&s).solve_avoiding(v) {
                // Restrict to the image of h.
                let mut image: Vec<u32> = h.clone();
                image.sort_unstable();
                image.dedup();
                original = image.iter().map(|&i| original[i as usize]).collect();
                current = current.induced(&image);
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return (current, original);
        }
    }
}
