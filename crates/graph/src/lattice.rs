//! The lattice of cores and Theorem 3.
//!
//! Restricted to cores, the homomorphism preorder on digraphs is a lattice
//! with `G ∧ G′ = core(G × G′)` and `G ∨ G′ = core(G ⊔ G′)` (Section 4,
//! citing Hell–Nešetřil). This module implements both operations and the
//! full machinery of **Theorem 3**: the family of directed cycles whose
//! length is a power of two has *no* greatest lower bound, witnessed by the
//! infinite chain
//!
//! ```text
//! P_1 ≺ P_2 ≺ … ≺ P_n ≺ … … ≺ C_{2^m} ≺ … ≺ C_8 ≺ C_4 ≺ C_2
//! ```
//!
//! and a constructive refutation of any candidate glb: an acyclic candidate
//! is strictly below some path that is itself a lower bound; a cyclic
//! candidate with shortest cycle `k` is not even a lower bound, since it
//! has no homomorphism to `C_{2^m}` once `2^m > k`.

use crate::core::core_of;
use crate::digraph::Digraph;

/// `G ∧ G′` in the lattice of cores: `core(G × G′)`.
///
/// ```
/// use ca_graph::digraph::Digraph;
/// use ca_graph::lattice::glb;
///
/// // Coprime directed cycles meet at their "lcm" cycle: C2 ∧ C3 ∼ C6.
/// let meet = glb(&Digraph::cycle(2), &Digraph::cycle(3));
/// assert!(meet.hom_equiv(&Digraph::cycle(6)));
/// ```
pub fn glb(g: &Digraph, h: &Digraph) -> Digraph {
    core_of(&g.product(h)).0
}

/// `G ∨ G′` in the lattice of cores: `core(G ⊔ G′)`.
pub fn lub(g: &Digraph, h: &Digraph) -> Digraph {
    core_of(&g.disjoint_union(h)).0
}

/// The explicit homomorphism `g_m : C_{2^m} → C_{2^{m-1}}` from the proof
/// of Theorem 3: vertex `i` maps to `i mod 2^{m-1}`. Returns the map and
/// checks it is a homomorphism (cheaply, without search).
pub fn power_cycle_hom(m: u32) -> Vec<u32> {
    assert!(m >= 1);
    let n = 1u32 << m;
    let half = n / 2;
    let map: Vec<u32> = (0..n).map(|i| i % half).collect();
    let src = Digraph::cycle(n as usize);
    let dst = Digraph::cycle(half as usize);
    debug_assert!(src.is_hom(&dst, &map));
    map
}

/// Verify the Theorem 3 chain up to parameters `max_path` and `max_m`:
///
/// * `P_n ≺ P_{n+1}` for `n < max_path`;
/// * `P_n ⊑ C_{2^m}` for all `n ≤ max_path`, `m ≤ max_m`;
/// * `C_{2^m} ≺ C_{2^{m-1}}` for `1 < m ≤ max_m` (strictness by rigidity
///   of directed cycles as cores).
///
/// Returns `true` iff every claim checks out.
pub fn verify_power_cycle_chain(max_path: usize, max_m: u32) -> bool {
    for n in 1..max_path {
        let p = Digraph::path(n);
        let q = Digraph::path(n + 1);
        if !p.strictly_below(&q) {
            return false;
        }
    }
    for n in 1..=max_path {
        for m in 1..=max_m {
            if !Digraph::path(n).leq(&Digraph::cycle(1 << m)) {
                return false;
            }
        }
    }
    for m in 2..=max_m {
        let big = Digraph::cycle(1 << m);
        let small = Digraph::cycle(1 << (m - 1));
        // The explicit wrap-around map is a homomorphism…
        if !big.is_hom(&small, &power_cycle_hom(m)) {
            return false;
        }
        // …and there is none the other way (m | n criterion).
        if small.leq(&big) {
            return false;
        }
    }
    true
}

/// Why a candidate graph fails to be a glb of `{C_{2^m} | m > 0}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlbRefutation {
    /// The candidate is acyclic with longest path `k`; the lower bound
    /// `P_{k+1}` is not below it, so it is not a *greatest* lower bound.
    DominatedByPath {
        /// Longest path length of the candidate.
        longest_path: usize,
    },
    /// The candidate has a shortest cycle of length `k`; it has no
    /// homomorphism to `C_{2^m}` (for the returned `m` with `2^m > k`),
    /// so it is not a lower bound of the family at all.
    NotALowerBound {
        /// Shortest-cycle length of the candidate.
        girth: usize,
        /// An `m` with `2^m > girth` witnessing failure.
        witness_m: u32,
    },
}

/// Constructively refute that `g` is a glb of the family
/// `{C_{2^m} | m > 0}` — the two cases of the Theorem 3 proof. Every
/// digraph is refuted one way or the other (that is the theorem); both
/// branches re-verify their claim with the homomorphism solver.
///
/// # Panics
///
/// Panics if a verification step fails — which would falsify Theorem 3.
pub fn refute_glb_of_power_cycles(g: &Digraph) -> GlbRefutation {
    match g.longest_path() {
        Some(k) => {
            // Acyclic case: P_{k+1} is a lower bound of the family (paths
            // map into every cycle) but does not map into g.
            let p = Digraph::path(k + 1);
            assert!(
                !p.leq(g),
                "P_{} unexpectedly maps into an acyclic graph of longest path {k}",
                k + 1
            );
            GlbRefutation::DominatedByPath { longest_path: k }
        }
        None => {
            let k = match g.shortest_cycle() {
                Some(k) => k,
                // `longest_path()` returned None, so `g` has a cycle.
                None => unreachable!("graph with no longest path must contain a cycle"),
            };
            // Find m with 2^m > k; then g ⋢ C_{2^m} because its k-cycle
            // cannot map into a longer directed cycle.
            let mut m = 1u32;
            while (1usize << m) <= k {
                m += 1;
            }
            assert!(
                !g.leq(&Digraph::cycle(1 << m)),
                "graph with girth {k} unexpectedly maps into C_{}",
                1 << m
            );
            GlbRefutation::NotALowerBound {
                girth: k,
                witness_m: m,
            }
        }
    }
}

/// Check the two lattice laws for a pair of graphs, using homomorphism
/// search: `glb(g, h)` is a lower bound dominating the given other lower
/// bounds, and dually for `lub`. Used by tests and the E13 experiment.
pub fn verify_lattice_laws(
    g: &Digraph,
    h: &Digraph,
    other_lower: &[Digraph],
    other_upper: &[Digraph],
) -> bool {
    let meet = glb(g, h);
    if !(meet.leq(g) && meet.leq(h)) {
        return false;
    }
    for l in other_lower {
        if l.leq(g) && l.leq(h) && !l.leq(&meet) {
            return false;
        }
    }
    let join = lub(g, h);
    if !(g.leq(&join) && h.leq(&join)) {
        return false;
    }
    for u in other_upper {
        if g.leq(u) && h.leq(u) && !join.leq(u) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::random_digraph;

    #[test]
    fn glb_of_coprime_cycles_is_their_lcm_cycle() {
        // C2 ∧ C3 = core(C2 × C3) = core(C6) = C6.
        let meet = glb(&Digraph::cycle(2), &Digraph::cycle(3));
        assert!(meet.hom_equiv(&Digraph::cycle(6)));
        assert_eq!(meet.n, 6);
    }

    #[test]
    fn glb_of_nested_cycles_is_the_larger() {
        // C2 ∧ C4: C4 ⊑ C2 so the glb is C4.
        let meet = glb(&Digraph::cycle(2), &Digraph::cycle(4));
        assert!(meet.hom_equiv(&Digraph::cycle(4)));
    }

    #[test]
    fn lub_of_comparable_is_the_larger() {
        // C4 ⊑ C2 so C4 ∨ C2 = C2.
        let join = lub(&Digraph::cycle(4), &Digraph::cycle(2));
        assert!(join.hom_equiv(&Digraph::cycle(2)));
        assert_eq!(join.n, 2);
    }

    #[test]
    fn lub_of_incomparable_keeps_both() {
        let join = lub(&Digraph::cycle(3), &Digraph::cycle(4));
        assert_eq!(join.n, 7);
        assert!(Digraph::cycle(3).leq(&join));
        assert!(Digraph::cycle(4).leq(&join));
    }

    #[test]
    fn chain_verifies() {
        assert!(verify_power_cycle_chain(5, 4));
    }

    #[test]
    fn power_cycle_hom_is_explicit_and_valid() {
        for m in 1..=6u32 {
            let map = power_cycle_hom(m);
            let src = Digraph::cycle(1 << m);
            let dst = Digraph::cycle(1 << (m - 1));
            assert!(src.is_hom(&dst, &map), "g_{m} is not a homomorphism");
        }
    }

    #[test]
    fn theorem3_refutes_acyclic_candidates() {
        for k in 0..4usize {
            let r = refute_glb_of_power_cycles(&Digraph::path(k));
            assert_eq!(r, GlbRefutation::DominatedByPath { longest_path: k });
        }
        // The transitive tournament T4 is acyclic with longest path 3.
        let r = refute_glb_of_power_cycles(&Digraph::transitive_tournament(4));
        assert_eq!(r, GlbRefutation::DominatedByPath { longest_path: 3 });
    }

    #[test]
    fn theorem3_refutes_cyclic_candidates() {
        let r = refute_glb_of_power_cycles(&Digraph::cycle(3));
        assert_eq!(
            r,
            GlbRefutation::NotALowerBound {
                girth: 3,
                witness_m: 2
            }
        );
        // Even a power-of-two cycle itself is not a lower bound of the
        // whole family (C4 ⋢ C8).
        let r = refute_glb_of_power_cycles(&Digraph::cycle(4));
        assert_eq!(
            r,
            GlbRefutation::NotALowerBound {
                girth: 4,
                witness_m: 3
            }
        );
    }

    #[test]
    fn lattice_laws_on_random_graphs() {
        let candidates: Vec<Digraph> = vec![
            Digraph::path(1),
            Digraph::path(2),
            Digraph::cycle(2),
            Digraph::cycle(3),
            Digraph::cycle(6),
        ];
        for seed in 0..5u64 {
            let g = random_digraph(4, 1, 3, seed);
            let h = random_digraph(4, 1, 3, seed + 100);
            assert!(
                verify_lattice_laws(&g, &h, &candidates, &candidates),
                "lattice laws failed for seed {seed}"
            );
        }
    }

    #[test]
    fn glb_with_k3_detects_three_colorability() {
        // G ∧ K3 ∼ G iff G ⊑ K3 iff G is 3-colorable.
        let g = Digraph::cycle(5);
        let meet = glb(&g, &Digraph::complete(3));
        assert_eq!(meet.hom_equiv(&g), g.three_colorable());
    }
}
