//! Graphs as null-only naïve tables.
//!
//! Theorem 3's proof moves freely between digraphs and naïve binary
//! tables whose entries are all nulls: "we can assume that the nodes of
//! all the `G_q`'s come from `N`, i.e., we can view graphs in `G_Q` as
//! naïve binary tables". This module implements that identification and
//! proves (by tests) that it is an order-embedding: graph homomorphisms
//! coincide with database homomorphisms on the encodings.

use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::schema::Schema;

use crate::digraph::Digraph;

/// The relation name used by the encoding.
pub const EDGE_REL: &str = "E";

/// Encode a digraph as a naïve table: one fact `E(⊥u, ⊥v)` per edge, all
/// values nulls. Isolated vertices are dropped (facts are the carriers of
/// information in a database; a vertex with no edges imposes nothing).
pub fn graph_to_table(g: &Digraph) -> NaiveDatabase {
    let schema = Schema::from_relations(&[(EDGE_REL, 2)]);
    let mut db = NaiveDatabase::new(schema);
    for &(u, v) in &g.edges {
        db.add(EDGE_REL, vec![Value::null(u), Value::null(v)]);
    }
    db
}

/// Decode a null-only binary table back into a digraph (nulls become
/// vertices, renumbered densely).
///
/// # Panics
///
/// Panics if the table contains constants or is not binary over [`EDGE_REL`].
pub fn table_to_graph(db: &NaiveDatabase) -> Digraph {
    let nulls: Vec<ca_core::value::Null> = db.nulls().into_iter().collect();
    let id_of = |v: Value| -> u32 {
        match v {
            Value::Null(n) => nulls.binary_search(&n).expect("known null") as u32,
            Value::Const(_) => panic!("table_to_graph expects a null-only table"),
        }
    };
    let mut g = Digraph::new(nulls.len());
    for f in db.facts() {
        assert_eq!(
            db.schema.name(f.rel),
            EDGE_REL,
            "single edge relation expected"
        );
        assert_eq!(f.args.len(), 2);
        g.add_edge(id_of(f.args[0]), id_of(f.args[1]));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::random_digraph;
    use ca_core::preorder::Preorder;
    use ca_relational::ordering::InfoOrder;

    #[test]
    fn round_trip_preserves_structure() {
        let g = Digraph::cycle(5);
        let back = table_to_graph(&graph_to_table(&g));
        assert!(g.hom_equiv(&back));
        assert_eq!(back.edges.len(), 5);
    }

    /// The identification is an order-embedding: graph homs ⟺ database
    /// homs, on the classical families and random pairs.
    #[test]
    fn embedding_preserves_the_ordering() {
        let cases: Vec<(Digraph, Digraph)> = vec![
            (Digraph::cycle(6), Digraph::cycle(3)),
            (Digraph::cycle(3), Digraph::cycle(6)),
            (Digraph::path(3), Digraph::cycle(4)),
            (Digraph::cycle(4), Digraph::path(3)),
            (Digraph::complete(3), Digraph::complete(4)),
        ];
        for (g, h) in cases {
            assert_eq!(
                g.leq(&h),
                InfoOrder.leq(&graph_to_table(&g), &graph_to_table(&h)),
                "embedding failed for {g:?} vs {h:?}"
            );
        }
        for seed in 0..10u64 {
            let g = random_digraph(4, 1, 2, seed);
            let h = random_digraph(4, 1, 2, seed + 50);
            assert_eq!(
                g.leq(&h),
                InfoOrder.leq(&graph_to_table(&g), &graph_to_table(&h))
            );
        }
    }

    /// Through the embedding, Theorem 3's cycle family lives inside the
    /// preorder of naïve tables — the form the theorem actually asserts.
    #[test]
    fn theorem3_family_as_tables() {
        let c2 = graph_to_table(&Digraph::cycle(2));
        let c4 = graph_to_table(&Digraph::cycle(4));
        let c8 = graph_to_table(&Digraph::cycle(8));
        assert!(InfoOrder.leq(&c8, &c4));
        assert!(InfoOrder.leq(&c4, &c2));
        assert!(!InfoOrder.leq(&c2, &c4));
        assert!(!InfoOrder.leq(&c4, &c8));
        // Paths (as tables) are below every cycle (as tables).
        let p3 = graph_to_table(&Digraph::path(3));
        for c in [&c2, &c4, &c8] {
            assert!(InfoOrder.leq(&p3, c));
        }
    }

    #[test]
    #[should_panic(expected = "null-only")]
    fn constants_are_rejected() {
        let schema = Schema::from_relations(&[(EDGE_REL, 2)]);
        let mut db = NaiveDatabase::new(schema);
        db.add(EDGE_REL, vec![Value::Const(1), Value::null(0)]);
        table_to_graph(&db);
    }
}
