//! Structured families inside the homomorphism order.
//!
//! Section 4 recalls that the homomorphism order on digraphs is wild: from
//! Erdős's theorem one gets arbitrarily large antichains and dense chains,
//! and by Hubička–Nešetřil every countable partial order embeds into it.
//! Full generality needs probabilistic constructions, but concrete
//! laptop-sized families already witness the phenomena the paper uses:
//!
//! * **antichains**: directed cycles of distinct prime lengths are
//!   pairwise incomparable (`C_p → C_q` iff `q | p`);
//! * **infinite descending chains**: `C_{2^m}` (Theorem 3's family);
//! * **infinite ascending chains**: directed paths `P_n`;
//! * **dense intervals**: between `P_n` and `C_2` sit infinitely many
//!   inequivalent graphs.

use crate::digraph::Digraph;

/// The first `k` primes.
fn primes(k: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(k);
    let mut candidate = 2usize;
    while out.len() < k {
        if !out.iter().any(|p| candidate.is_multiple_of(*p)) {
            out.push(candidate);
        }
        candidate += 1;
    }
    out
}

/// An antichain of size `k` in the homomorphism order: directed cycles of
/// distinct prime lengths.
pub fn prime_cycle_antichain(k: usize) -> Vec<Digraph> {
    primes(k).into_iter().map(Digraph::cycle).collect()
}

/// Verify that a family is an antichain: no homomorphism either way
/// between distinct members.
pub fn is_antichain(family: &[Digraph]) -> bool {
    for (i, g) in family.iter().enumerate() {
        for h in family.iter().skip(i + 1) {
            if g.leq(h) || h.leq(g) {
                return false;
            }
        }
    }
    true
}

/// The strictly descending chain `C_2 ≻ C_4 ≻ … ≻ C_{2^m}` (Theorem 3's
/// upper half), as graphs, most informative first.
pub fn power_cycle_chain(m: u32) -> Vec<Digraph> {
    (1..=m).map(|i| Digraph::cycle(1 << i)).collect()
}

/// The strictly ascending chain `P_1 ≺ P_2 ≺ … ≺ P_n`.
pub fn path_chain(n: usize) -> Vec<Digraph> {
    (1..=n).map(Digraph::path).collect()
}

/// Verify that a family is a strict chain in the given order (each member
/// strictly above the next).
pub fn is_strict_descending_chain(family: &[Digraph]) -> bool {
    family
        .windows(2)
        .all(|w| matches!(w, [above, below] if below.strictly_below(above)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_cycles_are_an_antichain() {
        let family = prime_cycle_antichain(4); // C2, C3, C5, C7
        assert_eq!(family.len(), 4);
        assert!(is_antichain(&family));
    }

    #[test]
    fn non_antichain_detected() {
        let family = vec![Digraph::cycle(2), Digraph::cycle(4)];
        assert!(!is_antichain(&family)); // C4 → C2
    }

    #[test]
    fn power_cycles_descend() {
        let chain = power_cycle_chain(5);
        assert!(is_strict_descending_chain(&chain));
    }

    #[test]
    fn paths_ascend() {
        let mut chain = path_chain(5);
        chain.reverse(); // descending order for the checker
        assert!(is_strict_descending_chain(&chain));
    }

    #[test]
    fn paths_sit_below_all_power_cycles() {
        for p in path_chain(4) {
            for c in power_cycle_chain(4) {
                assert!(p.leq(&c));
                assert!(!c.leq(&p));
            }
        }
    }

    #[test]
    fn primes_helper() {
        assert_eq!(primes(5), vec![2, 3, 5, 7, 11]);
    }
}
