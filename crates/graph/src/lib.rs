//! # ca-graph — digraphs, cores, and the lattice of cores (Section 4)
//!
//! The homomorphism-based information ordering of the paper is, on the
//! purely structural side, the classical homomorphism preorder on directed
//! graphs studied in graph theory (Hell–Nešetřil). This crate implements:
//!
//! * [`digraph`] — directed graphs, homomorphism search (via the
//!   [`ca_hom`] engine), generators for the families the paper uses
//!   (directed paths `P_n`, directed cycles `C_n`, complete graphs `K_n`,
//!   random digraphs), and rigidity checks.
//! * [`core`] — graph cores: the smallest retract, unique up to
//!   isomorphism, computed by the incremental retraction engine
//!   (`ca_hom::retract`).
//! * [`reference`] — the seed-era naive retract search, kept verbatim as
//!   the differential oracle and benchmark baseline for [`core`].
//! * [`bridge`] — graphs as null-only naïve tables (the identification
//!   Theorem 3's proof uses).
//! * [`families`] — antichains and chains inside the homomorphism order
//!   (prime cycles, power-of-two cycles, paths).
//! * [`lattice`] — the lattice of cores: `G ∧ G′ = core(G × G′)` and
//!   `G ∨ G′ = core(G ⊔ G′)`, plus the machinery for Theorem 3's
//!   counterexample — the chain
//!   `P_1 ≺ P_2 ≺ … ≺ C_{2^m} ≺ … ≺ C_4 ≺ C_2` and the proof that
//!   `{C_{2^m} | m > 0}` has no greatest lower bound.

pub mod bridge;
pub mod core;
pub mod digraph;
pub mod families;
pub mod lattice;
pub mod reference;

pub use crate::core::{core_of, core_of_with, is_core, is_core_with};
pub use digraph::Digraph;
pub use lattice::{glb, lub};
