//! Graph cores.
//!
//! The core of a graph `G` is the smallest subgraph `G₀ ⊆ G` such that
//! `G` has a homomorphism onto `G₀`; it is unique up to isomorphism
//! (Hell–Nešetřil), and two graphs are hom-equivalent iff their cores are
//! isomorphic. Cores canonicalize the equivalence classes of the
//! information preorder: the paper's `G ∧ G′` and `G ∨ G′` are
//! `core(G × G′)` and `core(G ⊔ G′)`.
//!
//! Computing cores is NP-hard; both entry points route through the
//! incremental retraction engine ([`ca_hom::retract`]): the
//! self-homomorphism CSP is compiled once, dominated vertices are folded
//! away by a PTIME prepass, found endomorphisms are greedily composed,
//! and remaining candidates are probed with in-place bitset domain
//! restriction — `O(n)` solver probes per core instead of the `O(n²)`
//! recompiles of the seed implementation (kept in [`crate::reference`]
//! as the differential oracle).

use ca_hom::csp::default_threads;
use ca_hom::retract::retract_core_with;

use crate::digraph::Digraph;

/// Is `g` a core: does every endomorphism use all vertices?
///
/// Equivalent (for finite graphs) to having no homomorphism into a proper
/// induced subgraph: `g` is a core iff the retraction engine keeps every
/// vertex.
pub fn is_core(g: &Digraph) -> bool {
    is_core_with(g, default_threads())
}

/// [`is_core`] with an explicit probe-thread count (deterministic at
/// every width).
pub fn is_core_with(g: &Digraph, threads: usize) -> bool {
    let probe: Vec<u32> = (0..g.n as u32).collect();
    retract_core_with(&g.as_structure(), &probe, threads)
        .kept
        .len()
        == g.n
}

/// Compute the core of `g` (a specific representative; unique up to
/// isomorphism). Returns the core together with the list of original
/// vertices retained, ascending.
pub fn core_of(g: &Digraph) -> (Digraph, Vec<u32>) {
    core_of_with(g, default_threads())
}

/// [`core_of`] with an explicit probe-thread count. The kept vertex set
/// (and hence the returned graph) is identical at every thread width.
pub fn core_of_with(g: &Digraph, threads: usize) -> (Digraph, Vec<u32>) {
    let probe: Vec<u32> = (0..g.n as u32).collect();
    let r = retract_core_with(&g.as_structure(), &probe, threads);
    (g.induced(&r.kept), r.kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_cycles_are_cores() {
        for n in 2..=6usize {
            assert!(is_core(&Digraph::cycle(n)), "C{n} is a core");
        }
    }

    #[test]
    fn paths_are_cores() {
        for n in 0..=4usize {
            assert!(is_core(&Digraph::path(n)), "P{n} is a core");
        }
    }

    #[test]
    fn complete_graphs_are_cores() {
        for n in 1..=4usize {
            assert!(is_core(&Digraph::complete(n)));
        }
    }

    #[test]
    fn core_of_two_disjoint_cycles() {
        // C6 ⊔ C3 retracts onto C3 (C6 → C3 exists).
        let g = Digraph::cycle(6).disjoint_union(&Digraph::cycle(3));
        let (core, kept) = core_of(&g);
        assert_eq!(core.n, 3);
        assert!(core.hom_equiv(&Digraph::cycle(3)));
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn core_of_two_incomparable_cycles_is_everything() {
        // C3 ⊔ C4: neither maps to the other, so the union is a core.
        let g = Digraph::cycle(3).disjoint_union(&Digraph::cycle(4));
        assert!(is_core(&g));
        let (core, _) = core_of(&g);
        assert_eq!(core.n, 7);
    }

    #[test]
    fn core_is_hom_equivalent_to_original() {
        let g = Digraph::cycle(8).disjoint_union(&Digraph::cycle(2));
        let (core, _) = core_of(&g);
        assert!(core.hom_equiv(&g));
        assert!(is_core(&core));
        // C8 → C2 so the whole thing retracts to C2.
        assert_eq!(core.n, 2);
    }

    #[test]
    fn core_of_path_with_pendant() {
        // Path 0→1→2 plus an extra edge 3→1: the extra vertex folds onto 0.
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (3, 1)]);
        let (core, _) = core_of(&g);
        assert!(core.hom_equiv(&Digraph::path(2)));
        assert_eq!(core.n, 3);
    }

    #[test]
    fn core_of_graph_with_loop_is_the_loop() {
        // A self-loop absorbs everything reachable: G with a loop vertex
        // adjacent to all has core = single loop vertex.
        let mut g = Digraph::new(3);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        let (core, _) = core_of(&g);
        assert_eq!(core.n, 1);
        assert_eq!(core.edges, vec![(0, 0)]);
    }

    #[test]
    fn hom_equivalent_graphs_have_isomorphic_cores() {
        // C6 ⊔ C2 and C2 are hom-equivalent; both cores are C2 (same size
        // and both cycles — isomorphic).
        let a = Digraph::cycle(6).disjoint_union(&Digraph::cycle(2));
        let b = Digraph::cycle(2);
        assert!(a.hom_equiv(&b));
        let (ca, _) = core_of(&a);
        let (cb, _) = core_of(&b);
        assert_eq!(ca.n, cb.n);
        assert_eq!(ca.edges.len(), cb.edges.len());
        assert!(ca.hom_equiv(&cb));
    }

    #[test]
    fn agrees_with_reference_on_fixed_families() {
        let cases = [
            Digraph::cycle(6).disjoint_union(&Digraph::cycle(3)),
            Digraph::cycle(3).disjoint_union(&Digraph::cycle(4)),
            Digraph::from_edges(4, &[(0, 1), (1, 2), (3, 1)]),
            Digraph::path(4),
        ];
        for g in cases {
            let (new, _) = core_of(&g);
            let (old, _) = crate::reference::core_of(&g);
            assert_eq!(new.n, old.n, "core size diverged on {g:?}");
            assert!(new.hom_equiv(&old));
            assert_eq!(is_core(&g), crate::reference::is_core(&g));
        }
    }
}
