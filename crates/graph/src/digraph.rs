//! Directed graphs and the homomorphism preorder.
//!
//! Graphs here are the *purely structural* objects of Section 4: nodes may
//! be thought of as nulls (the paper views null-only naïve binary tables as
//! digraphs), and `G ⊑ G′` is the existence of a graph homomorphism.

use ca_hom::structure::RelStructure;

/// The relation symbol used for the edge relation when a digraph is viewed
/// as a relational structure.
pub const EDGE: u32 = 0;

/// A finite directed graph with vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Digraph {
    /// Number of vertices.
    pub n: usize,
    /// Directed edges (duplicates allowed but normalized away).
    pub edges: Vec<(u32, u32)>,
}

impl Digraph {
    /// A graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Build from an edge list, deduplicating.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut e = edges.to_vec();
        e.sort_unstable();
        e.dedup();
        debug_assert!(e.iter().all(|&(u, v)| (u as usize) < n && (v as usize) < n));
        Digraph { n, edges: e }
    }

    /// Add an edge.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if !self.edges.contains(&(u, v)) {
            self.edges.push((u, v));
        }
    }

    /// The directed path `P_n` with `n` edges (n+1 vertices):
    /// `0 → 1 → … → n`. `P_0` is a single vertex.
    pub fn path(n: usize) -> Self {
        Digraph {
            n: n + 1,
            edges: (0..n as u32).map(|i| (i, i + 1)).collect(),
        }
    }

    /// The directed cycle `C_n` (`n ≥ 1`): `0 → 1 → … → n−1 → 0`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 1);
        Digraph {
            n,
            edges: (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect(),
        }
    }

    /// The complete digraph `K_n` (all ordered pairs of distinct vertices).
    /// Homomorphisms into `K_n` are exactly proper `n`-colorings.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        Digraph { n, edges }
    }

    /// The transitive tournament on `n` vertices: edge `u → v` iff `u < v`.
    pub fn transitive_tournament(n: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        Digraph { n, edges }
    }

    /// View as a relational structure with one binary relation [`EDGE`].
    pub fn as_structure(&self) -> RelStructure {
        let mut s = RelStructure::new(self.n);
        for &(u, v) in &self.edges {
            s.add_tuple(EDGE, vec![u, v]);
        }
        s
    }

    /// Find a homomorphism `self → other`, if any.
    pub fn hom_to(&self, other: &Digraph) -> Option<Vec<u32>> {
        self.as_structure().hom_to(&other.as_structure())
    }

    /// The homomorphism preorder `G ⊑ G′` of Section 4.
    pub fn leq(&self, other: &Digraph) -> bool {
        self.hom_to(other).is_some()
    }

    /// Hom-equivalence `G ∼ G′` (same core up to isomorphism).
    pub fn hom_equiv(&self, other: &Digraph) -> bool {
        self.leq(other) && other.leq(self)
    }

    /// Strictly below in the homomorphism order.
    pub fn strictly_below(&self, other: &Digraph) -> bool {
        self.leq(other) && !other.leq(self)
    }

    /// Is `map` a homomorphism from `self` to `other`?
    pub fn is_hom(&self, other: &Digraph, map: &[u32]) -> bool {
        map.len() == self.n
            && self
                .edges
                .iter()
                .all(|&(u, v)| other.edges.contains(&(map[u as usize], map[v as usize])))
    }

    /// The direct (categorical) product `G × G′`.
    pub fn product(&self, other: &Digraph) -> Digraph {
        let n2 = other.n as u32;
        let mut edges = Vec::new();
        for &(u1, v1) in &self.edges {
            for &(u2, v2) in &other.edges {
                edges.push((u1 * n2 + u2, v1 * n2 + v2));
            }
        }
        Digraph::from_edges(self.n * other.n, &edges)
    }

    /// The disjoint union `G ⊔ G′`.
    pub fn disjoint_union(&self, other: &Digraph) -> Digraph {
        let shift = self.n as u32;
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().map(|&(u, v)| (u + shift, v + shift)));
        Digraph {
            n: self.n + other.n,
            edges,
        }
    }

    /// The induced subgraph on `keep` (renumbered in `keep` order).
    pub fn induced(&self, keep: &[u32]) -> Digraph {
        let mut renumber = vec![u32::MAX; self.n];
        for (new, &old) in keep.iter().enumerate() {
            renumber[old as usize] = new as u32;
        }
        let edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| renumber[u as usize] != u32::MAX && renumber[v as usize] != u32::MAX)
            .map(|&(u, v)| (renumber[u as usize], renumber[v as usize]))
            .collect();
        Digraph::from_edges(keep.len(), &edges)
    }

    /// Is the graph *rigid*: its only endomorphism is the identity?
    /// (The paper uses the rigidity of directed paths in Theorem 3.)
    pub fn is_rigid(&self) -> bool {
        let s = self.as_structure();
        let sols = s.hom_csp(&s).solve_all(2 + self.n);
        sols.solutions
            .iter()
            .all(|h| h.iter().enumerate().all(|(i, &v)| v == i as u32))
            && sols.solutions.len() == 1
    }

    /// Length of the longest directed path (number of edges), or `None` if
    /// the graph has a directed cycle. DP over a topological order.
    pub fn longest_path(&self) -> Option<usize> {
        // Kahn's algorithm for topological order.
        let mut indeg = vec![0usize; self.n];
        for &(_, v) in &self.edges {
            indeg[v as usize] += 1;
        }
        let mut queue: Vec<u32> = (0..self.n as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &(a, b) in &self.edges {
                if a == v {
                    indeg[b as usize] -= 1;
                    if indeg[b as usize] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if order.len() != self.n {
            return None; // cyclic
        }
        let mut dist = vec![0usize; self.n];
        for &v in &order {
            for &(a, b) in &self.edges {
                if a == v {
                    dist[b as usize] = dist[b as usize].max(dist[v as usize] + 1);
                }
            }
        }
        Some(dist.into_iter().max().unwrap_or(0))
    }

    /// Length of the shortest directed cycle (the directed girth), or
    /// `None` if acyclic. BFS from every vertex.
    pub fn shortest_cycle(&self) -> Option<usize> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
        }
        let mut best: Option<usize> = None;
        for start in 0..self.n as u32 {
            // BFS distances from start; an edge back to start closes a cycle.
            let mut dist = vec![usize::MAX; self.n];
            dist[start as usize] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u as usize] {
                    if v == start {
                        let len = dist[u as usize] + 1;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    } else if dist[v as usize] == usize::MAX {
                        dist[v as usize] = dist[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        best
    }

    /// Is the graph properly 3-colorable (ignoring edge directions is
    /// irrelevant here because `K_3` is symmetric)? Equivalent to
    /// `self ⊑ K_3`.
    pub fn three_colorable(&self) -> bool {
        self.leq(&Digraph::complete(3))
    }
}

/// A deterministic pseudo-random digraph with edge probability ~`num/den`,
/// seeded; used by experiments and property tests.
pub fn random_digraph(n: usize, num: u64, den: u64, seed: u64) -> Digraph {
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && next() % den < num {
                edges.push((u, v));
            }
        }
    }
    Digraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_hom_iff_divides() {
        // C_n → C_m iff m | n for directed cycles.
        for n in 1..=8usize {
            for m in 1..=8usize {
                let expect = n % m == 0;
                assert_eq!(
                    Digraph::cycle(n).leq(&Digraph::cycle(m)),
                    expect,
                    "C{n} → C{m}"
                );
            }
        }
    }

    #[test]
    fn path_hom_iff_shorter() {
        // P_n → P_m iff n ≤ m.
        for n in 0..=5usize {
            for m in 0..=5usize {
                assert_eq!(
                    Digraph::path(n).leq(&Digraph::path(m)),
                    n <= m,
                    "P{n} → P{m}"
                );
            }
        }
    }

    #[test]
    fn paths_below_cycles() {
        // Every directed path maps into every directed cycle.
        for n in 0..=5usize {
            for m in 1..=5usize {
                assert!(Digraph::path(n).leq(&Digraph::cycle(m)));
                // And never the other way (cycles cannot map to acyclic
                // graphs; paths of length ≥ 1 have no cycle).
                if m >= 1 {
                    assert!(!Digraph::cycle(m).leq(&Digraph::path(n)));
                }
            }
        }
    }

    #[test]
    fn paths_are_rigid() {
        for n in 1..=5usize {
            assert!(Digraph::path(n).is_rigid(), "P{n} should be rigid");
        }
        // The 2-cycle is not rigid (rotation).
        assert!(!Digraph::cycle(2).is_rigid());
    }

    #[test]
    fn directed_cycles_are_rigid_under_no_proper_endo() {
        // Every endomorphism of C_n is a rotation, so C_n (n ≥ 2) is not
        // rigid but *is* a core (no endomorphism onto a proper subgraph).
        let c4 = Digraph::cycle(4);
        let s = c4.as_structure();
        let sols = s.hom_csp(&s).solve_all(100);
        assert_eq!(sols.solutions.len(), 4); // 4 rotations
    }

    #[test]
    fn three_coloring() {
        assert!(Digraph::cycle(3).three_colorable());
        assert!(Digraph::complete(3).three_colorable());
        assert!(!Digraph::complete(4).three_colorable());
    }

    #[test]
    fn longest_path_and_girth() {
        assert_eq!(Digraph::path(4).longest_path(), Some(4));
        assert_eq!(Digraph::cycle(4).longest_path(), None);
        assert_eq!(Digraph::cycle(4).shortest_cycle(), Some(4));
        assert_eq!(Digraph::path(4).shortest_cycle(), None);
        // Two cycles: girth is the smaller.
        let g = Digraph::cycle(3).disjoint_union(&Digraph::cycle(5));
        assert_eq!(g.shortest_cycle(), Some(3));
    }

    #[test]
    fn product_and_union_shapes() {
        let p = Digraph::cycle(2).product(&Digraph::cycle(3));
        assert_eq!(p.n, 6);
        assert_eq!(p.edges.len(), 6);
        let u = Digraph::cycle(2).disjoint_union(&Digraph::cycle(3));
        assert_eq!(u.n, 5);
        assert_eq!(u.edges.len(), 5);
    }

    #[test]
    fn product_is_glb_like() {
        // G × G′ maps to both factors and anything below both maps to it.
        let g = Digraph::cycle(4);
        let h = Digraph::cycle(6);
        let p = g.product(&h);
        assert!(p.leq(&g));
        assert!(p.leq(&h));
        // C_12 is below both (12 divisible by 4 and 6), so below product.
        assert!(Digraph::cycle(12).leq(&p));
    }

    #[test]
    fn induced_subgraph() {
        let g = Digraph::path(3); // 0→1→2→3
        let h = g.induced(&[1, 2]);
        assert_eq!(h.n, 2);
        assert_eq!(h.edges, vec![(0, 1)]);
    }

    #[test]
    fn is_hom_checks_edges() {
        let p1 = Digraph::path(1);
        let c3 = Digraph::cycle(3);
        assert!(p1.is_hom(&c3, &[0, 1]));
        assert!(!p1.is_hom(&c3, &[0, 2]));
        assert!(!p1.is_hom(&c3, &[0]));
    }

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph(10, 1, 3, 42);
        let b = random_digraph(10, 1, 3, 42);
        assert_eq!(a, b);
        let c = random_digraph(10, 1, 3, 43);
        assert_ne!(a, c);
    }
}
