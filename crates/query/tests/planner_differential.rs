//! Differential tests for the cost-based planner and the plan cache:
//! on random schemas, databases, and (U)CQs, the reference evaluator,
//! the greedy-planned engine, the cost-planned engine, the cached plan,
//! and every partition width must produce identical answers — plan
//! choice moves wall time only, never contents. Plan choice itself is
//! pinned deterministic, and the cache is exercised against an evolving
//! store so revision-keyed invalidation is covered end to end.

use std::collections::BTreeSet;

use ca_core::value::Value;
use ca_query::engine::{
    eval_ucq_gated, eval_ucq_on, eval_ucq_partitioned, CompiledUcq, CostModel, DbIndex, PlanCache,
};
use ca_query::generate::{random_ucq_over, QueryParams};
use ca_query::reference;
use ca_relational::database::NaiveDatabase;
use ca_relational::generate::{random_naive_db_over, DbParams, Rng};
use ca_relational::schema::Schema;
use ca_relational::to_store;

/// A modest multi-relation schema: mixed arities so random queries get
/// real join shapes and the planner has asymmetry to exploit.
fn test_schema() -> Schema {
    Schema::from_relations(&[("R", 2), ("S", 3), ("T", 1)])
}

fn db_params(seed: u64) -> DbParams {
    DbParams {
        n_facts: 40 + (seed as usize % 60),
        arity: 2, // ignored by `random_naive_db_over`
        n_constants: 8,
        n_nulls: 4,
        null_pct: 15,
    }
}

fn query_params(seed: u64) -> QueryParams {
    QueryParams {
        n_disjuncts: 1 + (seed as usize % 3),
        n_atoms: 1 + (seed as usize % 4),
        n_vars: 5,
        arity: 2, // ignored by `random_ucq_over`
        n_constants: 8,
        const_pct: 25,
    }
}

fn random_instance(seed: u64) -> (NaiveDatabase, ca_query::UnionQuery) {
    let schema = test_schema();
    let mut rng = Rng::new(seed);
    let db = random_naive_db_over(&mut rng, &schema, db_params(seed));
    let q = random_ucq_over(&mut rng, &schema, (seed % 3) as usize, query_params(seed));
    (db, q)
}

/// Reference, greedy plan, cost-based plan, cached plan, and the gated
/// parallel entry all agree on random instances.
#[test]
fn cost_greedy_reference_agree_on_random_ucqs() {
    for seed in 0..60u64 {
        let (db, q) = random_instance(seed);
        let expected = reference::eval_ucq(&q, &db);

        let greedy = CompiledUcq::compile(&q, &db.schema).unwrap();
        assert_eq!(
            expected,
            eval_ucq_on(&greedy, &mut DbIndex::new(&db)),
            "greedy plan diverges from reference (seed {seed})"
        );

        let st = to_store(&db);
        let model = CostModel::from_store(&st);
        let costed = CompiledUcq::compile_costed(&q, &db.schema, &model).unwrap();
        assert_eq!(
            expected,
            eval_ucq_on(&costed, &mut DbIndex::new(&db)),
            "cost-based plan diverges from reference (seed {seed})"
        );

        let mut cache = PlanCache::new();
        let cached = cache.get_or_compile(&q, &db.schema, &st).unwrap();
        assert_eq!(
            expected,
            eval_ucq_on(&cached, &mut DbIndex::new(&db)),
            "cached plan diverges from reference (seed {seed})"
        );

        assert_eq!(
            expected,
            eval_ucq_gated(&costed, &mut DbIndex::new(&db), 4),
            "gated parallel entry diverges from reference (seed {seed})"
        );
    }
}

/// Plan choice is a pure function of (query, statistics): compiling
/// twice — directly or through a cache — yields structurally identical
/// plans.
#[test]
fn plan_choice_is_deterministic() {
    for seed in 0..20u64 {
        let (db, q) = random_instance(seed);
        let st = to_store(&db);
        let model = CostModel::from_store(&st);
        let a = CompiledUcq::compile_costed(&q, &db.schema, &model).unwrap();
        let b = CompiledUcq::compile_costed(&q, &db.schema, &CostModel::from_store(&st)).unwrap();
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "plan choice not deterministic (seed {seed})"
        );
        let mut cache = PlanCache::new();
        let c = cache.get_or_compile(&q, &db.schema, &st).unwrap();
        assert_eq!(
            format!("{a:?}"),
            format!("{c:?}"),
            "cache-compiled plan differs from direct compilation (seed {seed})"
        );
    }
}

/// A cached plan evaluated at any partition width returns exactly the
/// answers of a fresh sequential compile — cached-vs-fresh and
/// width-vs-width are both byte-identical.
#[test]
fn cached_answers_identical_across_widths() {
    for seed in 0..20u64 {
        let (db, q) = random_instance(seed);
        let st = to_store(&db);
        let model = CostModel::from_store(&st);
        let fresh = CompiledUcq::compile_costed(&q, &db.schema, &model).unwrap();
        let expected: BTreeSet<Vec<Value>> = eval_ucq_on(&fresh, &mut DbIndex::new(&db));

        let mut cache = PlanCache::new();
        let cached = cache.get_or_compile(&q, &db.schema, &st).unwrap();
        for width in [1usize, 2, 4, 8] {
            assert_eq!(
                expected,
                eval_ucq_partitioned(&cached, &mut DbIndex::new(&db), width),
                "cached plan at width {width} diverges (seed {seed})"
            );
        }
    }
}

/// The cache against an evolving store: every revision serves a plan
/// whose answers match a fresh compile at that revision, a quiet
/// re-lookup is a hit, and every mutation forces a recompile.
#[test]
fn cache_invalidation_tracks_store_growth() {
    let schema = test_schema();
    let mut rng = Rng::new(42);
    let db = random_naive_db_over(&mut rng, &schema, db_params(42));
    let q = random_ucq_over(&mut rng, &schema, 1, query_params(7));
    let mut st = to_store(&db);
    let mut cache = PlanCache::new();

    for round in 0..5u64 {
        let cached = cache.get_or_compile(&q, &schema, &st).unwrap();
        let again = cache.get_or_compile(&q, &schema, &st).unwrap();
        assert_eq!(
            cache.hits(),
            round + 1,
            "quiet re-lookup must hit (round {round})"
        );
        let fresh = CompiledUcq::compile_costed(&q, &schema, &CostModel::from_store(&st)).unwrap();
        assert_eq!(format!("{fresh:?}"), format!("{cached:?}"));
        assert_eq!(
            eval_ucq_on(&fresh, &mut DbIndex::over(&st)),
            eval_ucq_on(&again, &mut DbIndex::over(&st)),
            "cached answers diverge from fresh at revision {round}"
        );
        // Mutate: the next round must recompile against new statistics.
        let r = st.relation("R").unwrap();
        assert!(st
            .insert(r, &[Value::Const(100 + round as i64), Value::Const(1)])
            .is_some());
    }
    assert_eq!(cache.misses(), 5, "every revision bump must recompile");
}
