//! # ca-query — queries over incomplete databases (Sections 2.1 & 4)
//!
//! Conjunctive queries, unions of conjunctive queries, and full first-order
//! queries over relational schemas, together with everything the paper does
//! with them:
//!
//! * [`ast`] — terms, atoms, CQs (with free head variables), UCQs, and a
//!   full FO syntax with negation and universal quantification.
//! * [`engine`] — the compiled evaluation engine: CQs compile once into
//!   join plans (greedy bound-variable ordering, constants and repeated
//!   variables pushed into atom matchers), execute against lazily-built
//!   per-relation hash indices, and batch drivers sweep completion grids
//!   in parallel (`CA_EVAL_THREADS`) for brute-force certain answers.
//! * [`eval`] — the legacy evaluation entry points: CQs/UCQs over naïve
//!   databases *treating nulls as ordinary values* (the first phase of
//!   naïve evaluation; now routed through [`engine`] leniently), and FO
//!   sentences over complete databases under active-domain semantics.
//! * [`reference`] — the original nested-loop evaluator, kept as the
//!   differential-testing oracle and benchmark baseline for [`engine`].
//! * [`tableau`] — the CQ ↔ naïve-database correspondence: the tableau
//!   `D_Q` of a Boolean CQ and the canonical query `Q_D` of a database.
//! * [`containment`] — CQ containment via tableau homomorphisms
//!   (Chandra–Merlin, used by Proposition 2).
//! * [`certain`] — certain answers: the brute-force intersection
//!   `⋂{Q(R) | R ∈ [[D]]}` over a constant pool, naïve evaluation
//!   `Q_naïve(D)`, and the Proposition 2 three-way equivalence.
//! * [`generate`] — random CQs/UCQs for the experiments.
//!
//! The headline results exercised here: naïve evaluation computes certain
//! answers for unions of conjunctive queries (classical; re-proved via
//! Theorem 2 + Proposition 7 in the paper), and *only* for them among FO
//! queries (Proposition 1).

pub mod ast;
pub mod certain;
pub mod certify;
pub mod containment;
pub mod engine;
pub mod eval;
pub mod generate;
pub mod minimize;
pub mod parse;
pub mod preservation;
pub mod reference;
pub mod tableau;

pub use ast::{Atom, ConjunctiveQuery, Fo, Term, UnionQuery};
pub use certain::{certain_answer_bool, naive_eval_bool, naive_eval_table};
pub use containment::cq_contained_in;
pub use engine::{CompiledCq, CompiledUcq, DbIndex, PlanError};
pub use minimize::{cq_equivalent, minimize_cq};
pub use parse::{parse_cq, parse_ucq};
pub use tableau::{canonical_query, tableau};
