//! Certain answers and naïve evaluation.
//!
//! `certain(Q, D) = ⋂ {Q(R) | R ∈ [[D]]}` — the answers true under every
//! interpretation of the nulls. This module provides:
//!
//! * **brute-force certain answers** over an *adequate constant pool*: by
//!   genericity, intersecting over all completions into
//!   `C(D) ∪ C(Q) ∪ {as many fresh constants as nulls}` equals the
//!   intersection over all of `[[D]]`;
//! * **naïve evaluation** `Q_naïve(D)`: evaluate treating nulls as values,
//!   then discard tuples containing nulls;
//! * the **Proposition 2** equivalence for Boolean CQs:
//!   `certain(Q, D) = true` ⇔ `D_Q ⊑ D` ⇔ `Q_D ⊆ Q`.
//!
//! The classical theorem (re-derived in the paper from Theorem 2 +
//! Proposition 7): naïve evaluation computes certain answers for UCQs; and
//! by Proposition 1 for nothing more within FO.
//!
//! The brute-force drivers compile the query once and sweep the
//! `|pool|^#nulls` completion grid in parallel through
//! [`crate::engine`] (`CA_EVAL_THREADS` workers, early exit, results
//! identical for every thread count); completions are materialized one at
//! a time per worker instead of all up front.

use std::collections::BTreeSet;

use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::hom::find_hom;

use crate::ast::{ConjunctiveQuery, Fo, Term, UnionQuery};
use crate::containment::cq_contained_in;
use crate::engine::{self, sweep, CompiledUcq, CompletionSpace};
use crate::eval::{eval_fo, eval_ucq, eval_ucq_bool};
use crate::tableau::{canonical_query, tableau};

/// Constants mentioned by a UCQ.
pub fn ucq_constants(q: &UnionQuery) -> BTreeSet<i64> {
    q.disjuncts
        .iter()
        .flat_map(|d| d.atoms.iter())
        .flat_map(|a| a.args.iter())
        .filter_map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        })
        .collect()
}

/// Constants mentioned by an FO query.
pub fn fo_constants(phi: &Fo) -> BTreeSet<i64> {
    fn go(phi: &Fo, out: &mut BTreeSet<i64>) {
        match phi {
            Fo::Atom(a) => {
                for t in &a.args {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Fo::Eq(s, t) => {
                for t in [s, t] {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            Fo::Not(f) | Fo::Exists(_, f) | Fo::Forall(_, f) => go(f, out),
            Fo::And(fs) | Fo::Or(fs) => fs.iter().for_each(|f| go(f, out)),
        }
    }
    let mut out = BTreeSet::new();
    go(phi, &mut out);
    out
}

/// An *adequate pool* for brute-force certain answers: the constants of
/// the database and query, plus one fresh constant per null. By
/// genericity, every completion of `D` is isomorphic over `C(D) ∪ C(Q)` to
/// a completion into this pool, so intersecting over the pool is exact.
pub fn adequate_pool(db: &NaiveDatabase, query_constants: &BTreeSet<i64>) -> Vec<i64> {
    let mut pool: BTreeSet<i64> = db.constants();
    pool.extend(query_constants.iter().copied());
    let start = pool.iter().max().map_or(0, |m| m + 1);
    for offset in 0..db.nulls().len() as i64 {
        pool.insert(start + offset);
    }
    pool.into_iter().collect()
}

/// Brute-force Boolean certain answer for a UCQ: conjunction of `Q(R)`
/// over all completions into the adequate pool. Exponential in the number
/// of nulls.
///
/// ```
/// use ca_query::parse::parse_ucq;
/// use ca_query::certain::{certain_answer_bool, naive_eval_bool};
/// use ca_relational::parse::parse_database;
///
/// let d = parse_database("R(1, ?x); R(?x, 2)").unwrap();
/// let q = parse_ucq("R(1, y), R(y, 2)").unwrap();
/// assert!(certain_answer_bool(&q, &d));
/// // …and the classical theorem: naive evaluation agrees for UCQs.
/// assert_eq!(naive_eval_bool(&q, &d), certain_answer_bool(&q, &d));
/// ```
pub fn certain_answer_bool(q: &UnionQuery, db: &NaiveDatabase) -> bool {
    certain_answer_bool_with(q, db, sweep::eval_threads())
}

/// [`certain_answer_bool`] with an explicit sweep thread count. The query
/// compiles once; completions are never materialized up front — the
/// `|pool|^#nulls` grid is swept in parallel with early exit on the first
/// falsifying completion.
pub fn certain_answer_bool_with(q: &UnionQuery, db: &NaiveDatabase, threads: usize) -> bool {
    let pool = adequate_pool(db, &ucq_constants(q));
    let plan = CompiledUcq::compile_lenient(q, &db.schema);
    engine::certain_bool_over(&plan, db, &pool, threads)
}

/// Brute-force Boolean certain answer for an arbitrary FO sentence,
/// sweeping the completion grid in parallel (`CA_EVAL_THREADS`).
pub fn certain_answer_fo(phi: &Fo, db: &NaiveDatabase) -> bool {
    let pool = adequate_pool(db, &fo_constants(phi));
    let space = CompletionSpace::new(db, &pool);
    sweep::parallel_all(space.len(), sweep::eval_threads(), |i| {
        eval_fo(phi, &space.completion(i))
    })
}

/// Naïve Boolean evaluation of a UCQ: evaluate with nulls as values. (For
/// Boolean queries the "discard null tuples" phase is vacuous.)
pub fn naive_eval_bool(q: &UnionQuery, db: &NaiveDatabase) -> bool {
    eval_ucq_bool(q, db)
}

/// Naïve Boolean evaluation of an FO sentence: evaluate with nulls treated
/// as pairwise-distinct values (the `Q_naïve` of Proposition 1).
pub fn naive_eval_fo_bool(phi: &Fo, db: &NaiveDatabase) -> bool {
    eval_fo(phi, db)
}

/// Naïve evaluation of a non-Boolean UCQ: evaluate with nulls as values,
/// then eliminate tuples containing nulls.
pub fn naive_eval_table(q: &UnionQuery, db: &NaiveDatabase) -> BTreeSet<Vec<Value>> {
    eval_ucq(q, db)
        .into_iter()
        .filter(|row| row.iter().all(|v| v.is_const()))
        .collect()
}

/// Brute-force certain answers of a non-Boolean UCQ: intersect the answer
/// tables over all completions into the adequate pool.
pub fn certain_table(q: &UnionQuery, db: &NaiveDatabase) -> BTreeSet<Vec<Value>> {
    certain_table_with(q, db, sweep::eval_threads())
}

/// [`certain_table`] with an explicit sweep thread count. The query
/// compiles once (the plan is shared by every completion); the grid is
/// swept in parallel, intersecting per-thread and exiting early once the
/// accumulator empties. The result is identical for every thread count.
pub fn certain_table_with(
    q: &UnionQuery,
    db: &NaiveDatabase,
    threads: usize,
) -> BTreeSet<Vec<Value>> {
    let pool = adequate_pool(db, &ucq_constants(q));
    let plan = CompiledUcq::compile_lenient(q, &db.schema);
    engine::certain_table_over(&plan, db, &pool, threads)
}

/// The three equivalent statements of Proposition 2 for a Boolean CQ `Q`
/// and naïve database `D`, each computed *independently*:
///
/// 1. `certain(Q, D) = true` (brute force over the adequate pool);
/// 2. `D_Q ⊑ D` (tableau homomorphism);
/// 3. `Q_D ⊆ Q` (query containment).
pub fn proposition2_checks(q: &ConjunctiveQuery, db: &NaiveDatabase) -> (bool, bool, bool) {
    assert!(q.is_boolean());
    let certain = certain_answer_bool(&UnionQuery::single(q.clone()), db);
    let dq = tableau(q, &db.schema);
    let ordering = find_hom(&dq, db).is_some();
    let qd = canonical_query(db);
    let containment = cq_contained_in(&qd, q, &db.schema);
    (certain, ordering, containment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use crate::generate::{random_bool_ucq, QueryParams};
    use ca_relational::database::build::{c, n, table};
    use ca_relational::generate::{random_naive_db, DbParams, Rng};
    use Term::{Const as C, Var as V};

    #[test]
    fn certain_true_when_forced() {
        // D = {R(1, ⊥1)}; Q = ∃x R(1, x): true in every completion.
        let q = UnionQuery::single(ConjunctiveQuery::boolean(vec![Atom::new(
            "R",
            vec![C(1), V(0)],
        )]));
        let db = table("R", 2, &[&[c(1), n(1)]]);
        assert!(certain_answer_bool(&q, &db));
        assert!(naive_eval_bool(&q, &db));
    }

    #[test]
    fn certain_false_when_null_escapes() {
        // Q = ∃x R(x, x); D = {R(⊥1, ⊥2)}: some completions make them
        // differ.
        let q = UnionQuery::single(ConjunctiveQuery::boolean(vec![Atom::new(
            "R",
            vec![V(0), V(0)],
        )]));
        let db = table("R", 2, &[&[n(1), n(2)]]);
        assert!(!certain_answer_bool(&q, &db));
        assert!(!naive_eval_bool(&q, &db));
    }

    /// The classical theorem on hand-picked cases: naïve evaluation equals
    /// certain answers for UCQs, Boolean and tabular.
    #[test]
    fn naive_evaluation_correct_for_ucqs() {
        let q = UnionQuery::new(vec![
            ConjunctiveQuery::with_head(
                vec![0],
                vec![
                    Atom::new("R", vec![V(0), V(1)]),
                    Atom::new("R", vec![V(1), V(2)]),
                ],
            ),
            ConjunctiveQuery::with_head(vec![0], vec![Atom::new("R", vec![V(0), C(9)])]),
        ]);
        let db = table(
            "R",
            2,
            &[&[c(1), n(1)], &[n(1), c(2)], &[c(3), c(9)], &[n(2), c(9)]],
        );
        let naive = naive_eval_table(&q, &db);
        let certain = certain_table(&q, &db);
        assert_eq!(naive, certain);
        // R(1,⊥1), R(⊥1,2) gives the certain 2-path answer 1.
        assert!(naive.contains(&vec![c(1)]));
        assert!(naive.contains(&vec![c(3)]));
        assert!(!naive.contains(&vec![c(2)]));
    }

    /// The classical theorem on random instances (E1 in miniature).
    #[test]
    fn naive_evaluation_correct_on_random_ucqs() {
        let mut rng = Rng::new(314159);
        for trial in 0..40 {
            let db = random_naive_db(
                &mut rng,
                DbParams {
                    n_facts: 4,
                    arity: 2,
                    n_constants: 3,
                    n_nulls: 2,
                    null_pct: 40,
                },
            );
            let q = random_bool_ucq(
                &mut rng,
                QueryParams {
                    n_disjuncts: 2,
                    n_atoms: 2,
                    n_vars: 3,
                    arity: 2,
                    n_constants: 3,
                    const_pct: 30,
                },
            );
            assert_eq!(
                naive_eval_bool(&q, &db),
                certain_answer_bool(&q, &db),
                "naïve evaluation failed on trial {trial}: {q:?} over {db:?}"
            );
        }
    }

    /// Proposition 2: the three statements agree, on hand-picked and random
    /// instances.
    #[test]
    fn proposition2_equivalence() {
        let cases = [
            (
                ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(1)])]),
                table("R", 2, &[&[c(1), n(1)]]),
            ),
            (
                ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]),
                table("R", 2, &[&[n(1), n(2)]]),
            ),
            (
                ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]),
                table("R", 2, &[&[n(1), n(1)]]),
            ),
            (
                ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(1), C(2)])]),
                table("R", 2, &[&[c(1), c(2)]]),
            ),
        ];
        for (q, db) in &cases {
            let (a, b, c3) = proposition2_checks(q, db);
            assert_eq!(a, b, "certain vs ordering on {q} / {db:?}");
            assert_eq!(b, c3, "ordering vs containment on {q} / {db:?}");
        }
    }

    #[test]
    fn proposition2_on_random_instances() {
        let mut rng = Rng::new(2718);
        for _ in 0..30 {
            let db = random_naive_db(
                &mut rng,
                DbParams {
                    n_facts: 3,
                    arity: 2,
                    n_constants: 2,
                    n_nulls: 2,
                    null_pct: 40,
                },
            );
            let q = random_bool_ucq(
                &mut rng,
                QueryParams {
                    n_disjuncts: 1,
                    n_atoms: 2,
                    n_vars: 2,
                    arity: 2,
                    n_constants: 2,
                    const_pct: 30,
                },
            );
            let (a, b, c3) = proposition2_checks(&q.disjuncts[0], &db);
            assert_eq!(a, b);
            assert_eq!(b, c3);
        }
    }

    /// Proposition 1's other direction, witnessed: FO queries outside UCQ
    /// where naïve evaluation disagrees with certain answers.
    #[test]
    fn naive_evaluation_fails_beyond_ucq() {
        // φ₁ = ∃x∃y (R(x) ∧ R(y) ∧ x ≠ y) over D = {R(⊥1), R(⊥2)}:
        // naïvely true (⊥1 ≠ ⊥2 as values), but the completion ⊥1 = ⊥2
        // falsifies it.
        let phi1 = Fo::exists(
            0,
            Fo::exists(
                1,
                Fo::And(vec![
                    Fo::Atom(Atom::new("R", vec![V(0)])),
                    Fo::Atom(Atom::new("R", vec![V(1)])),
                    Fo::Eq(V(0), V(1)).not(),
                ]),
            ),
        );
        let db = table("R", 1, &[&[n(1)], &[n(2)]]);
        assert!(naive_eval_fo_bool(&phi1, &db));
        assert!(!certain_answer_fo(&phi1, &db));

        // φ₂ = ∀x (R(x) → x = 1) over D = {R(1)}: naïvely true; it stays
        // true in all completions of D (no nulls) — but over
        // D′ = {R(⊥1)} naïve evaluation says false (⊥1 ≠ 1 as a value)
        // while certain is also false. The disagreeing direction needs the
        // ∃-with-negation query above; here we verify a universal query
        // where both happen to agree, to show agreement is not *always*
        // broken outside UCQ (Proposition 1 is about *all* databases).
        let phi2 = Fo::forall(
            0,
            Fo::Atom(Atom::new("R", vec![V(0)])).implies(Fo::Eq(V(0), C(1))),
        );
        let d_complete = table("R", 1, &[&[c(1)]]);
        assert!(naive_eval_fo_bool(&phi2, &d_complete));
        assert!(certain_answer_fo(&phi2, &d_complete));
    }

    /// A second Proposition 1 witness with universal quantification: the
    /// "guarded totality" sentence ∀x (R(x) → S(x)).
    #[test]
    fn universal_query_naive_vs_certain() {
        use ca_relational::database::NaiveDatabase;
        use ca_relational::schema::Schema;
        let schema = Schema::from_relations(&[("R", 1), ("S", 1)]);
        let phi = Fo::forall(
            0,
            Fo::Atom(Atom::new("R", vec![V(0)])).implies(Fo::Atom(Atom::new("S", vec![V(0)]))),
        );
        // D = {R(⊥1), S(1)}: naïvely false (⊥1 ∉ S); certain answer is
        // also false (completion ⊥1 ↦ 2). But over D′ = {R(⊥1), S(⊥1)}:
        // naïvely true, certainly true — and over
        // D″ = {R(⊥1), S(1), S(2)} with pool {1,2,…}: naïvely false while
        // *not* certainly false… completions map ⊥1 to fresh 3: R(3) ⊈ S.
        // So certain is false too; the interesting disagreement for ∀ is:
        let mut d = NaiveDatabase::new(schema.clone());
        d.add("R", vec![c(1)]);
        d.add("S", vec![c(1)]);
        d.add("S", vec![n(1)]);
        // φ holds naïvely and certainly here; now add R(⊥2):
        let mut d2 = d.clone();
        d2.add("R", vec![n(2)]);
        // Naïve: R(⊥2) needs S(⊥2): absent ⇒ false. Certain: completion
        // ⊥2 ↦ 5 (fresh) has R(5) without S(5) ⇒ false. Agreement again —
        // for ∀-queries naïve evaluation errs on the *true* side only via
        // null identification, e.g.:
        let phi_eq = Fo::forall(
            0,
            Fo::forall(
                1,
                Fo::And(vec![
                    Fo::Atom(Atom::new("R", vec![V(0)])),
                    Fo::Atom(Atom::new("R", vec![V(1)])),
                ])
                .implies(Fo::Eq(V(0), V(1))),
            ),
        );
        // D = {R(⊥1)}: naïvely true ("one element"), and certainly true?
        // Every completion has exactly one R-fact ⇒ true. Agreement.
        // D = {R(⊥1), R(⊥2)}: naïvely false; but the completion ⊥1=⊥2
        // makes it true in *some* worlds — certain = false. Agreement.
        // The genuine disagreement (naïve true, certain false):
        let d3 = table("R", 1, &[&[n(1)]]);
        assert!(naive_eval_fo_bool(&phi_eq, &d3));
        assert!(certain_answer_fo(&phi_eq, &d3));
        let _ = (phi, d2);
    }

    #[test]
    fn certain_table_keeps_only_constant_rows() {
        let q = UnionQuery::single(ConjunctiveQuery::with_head(
            vec![0, 1],
            vec![Atom::new("R", vec![V(0), V(1)])],
        ));
        let db = table("R", 2, &[&[c(1), c(2)], &[c(3), n(1)]]);
        let certain = certain_table(&q, &db);
        let naive = naive_eval_table(&q, &db);
        assert_eq!(certain, naive);
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&vec![c(1), c(2)]));
    }

    #[test]
    fn adequate_pool_has_fresh_constants() {
        let db = table("R", 2, &[&[c(1), n(1)], &[n(2), c(5)]]);
        let pool = adequate_pool(&db, &BTreeSet::from([9]));
        // {1, 5, 9} ∪ two fresh.
        assert_eq!(pool.len(), 5);
        assert!(pool.contains(&1) && pool.contains(&5) && pool.contains(&9));
    }
}
