//! The tableau correspondence between Boolean CQs and naïve databases.
//!
//! Every naïve database `D` is a Boolean CQ `Q_D` (replace each null by an
//! existentially quantified variable) and every Boolean CQ `Q` is a naïve
//! database `D_Q` (its tableau: replace each variable by a null). The paper
//! leans on this duality throughout — `R ∈ [[D]]` iff `R ⊨ Q_D`, and
//! Proposition 2 ties certain answers, the information ordering, and query
//! containment together through it.

use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::schema::Schema;

use crate::ast::{Atom, ConjunctiveQuery, Term};

/// The tableau `D_Q` of a Boolean CQ: each variable becomes the null with
/// the same index.
///
/// # Panics
///
/// Panics if the query is not Boolean or mentions a relation absent from
/// `schema`.
pub fn tableau(q: &ConjunctiveQuery, schema: &Schema) -> NaiveDatabase {
    assert!(q.is_boolean(), "tableaux are defined for Boolean CQs");
    let mut db = NaiveDatabase::new(schema.clone());
    for atom in &q.atoms {
        let args: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => Value::null(*v),
                Term::Const(c) => Value::Const(*c),
            })
            .collect();
        db.add(&atom.rel, args);
    }
    db
}

/// The canonical Boolean CQ `Q_D` of a naïve database: each null `⊥ᵢ`
/// becomes the variable `xᵢ`.
pub fn canonical_query(d: &NaiveDatabase) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = d
        .facts()
        .iter()
        .map(|f| {
            let args: Vec<Term> = f
                .args
                .iter()
                .map(|v| match v {
                    Value::Const(c) => Term::Const(*c),
                    Value::Null(n) => Term::Var(n.0),
                })
                .collect();
            Atom::new(d.schema.name(f.rel), args)
        })
        .collect();
    ConjunctiveQuery::boolean(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq_bool;
    use ca_relational::database::build::{c, n, table};
    use ca_relational::hom::in_semantics;
    use Term::{Const as C, Var as V};

    #[test]
    fn tableau_round_trip() {
        let d = table("D", 3, &[&[c(1), c(2), n(1)], &[n(2), n(1), c(3)]]);
        let q = canonical_query(&d);
        let d2 = tableau(&q, &d.schema);
        assert_eq!(d, d2);
    }

    #[test]
    fn paper_canonical_query_shape() {
        // The Section 2.1 example: D becomes
        // ∃x1,x2,x3 D(1,2,x1) ∧ D(x2,x1,3) ∧ D(x3,5,1).
        let d = table(
            "D",
            3,
            &[
                &[c(1), c(2), n(1)],
                &[n(2), n(1), c(3)],
                &[n(3), c(5), c(1)],
            ],
        );
        let q = canonical_query(&d);
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 3);
        assert!(q.atoms.contains(&Atom::new("D", vec![C(1), C(2), V(1)])));
        assert!(q.atoms.contains(&Atom::new("D", vec![V(2), V(1), C(3)])));
        assert!(q.atoms.contains(&Atom::new("D", vec![V(3), C(5), C(1)])));
    }

    /// `R ∈ [[D]]` iff `R ⊨ Q_D`: membership is satisfaction of the
    /// canonical query.
    #[test]
    fn membership_is_satisfaction() {
        let d = table("R", 2, &[&[c(1), n(1)], &[n(1), c(2)]]);
        let q = canonical_query(&d);
        let yes = table("R", 2, &[&[c(1), c(7)], &[c(7), c(2)]]);
        let no = table("R", 2, &[&[c(1), c(7)], &[c(8), c(2)]]);
        assert!(in_semantics(&yes, &d));
        assert!(eval_cq_bool(&q, &yes));
        assert!(!in_semantics(&no, &d));
        assert!(!eval_cq_bool(&q, &no));
    }

    #[test]
    fn tableau_of_query_with_constants() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(5), V(0)])]);
        let schema = Schema::from_relations(&[("R", 2)]);
        let d = tableau(&q, &schema);
        assert_eq!(d.facts()[0].args, vec![c(5), n(0)]);
    }

    #[test]
    #[should_panic(expected = "Boolean")]
    fn tableau_rejects_non_boolean() {
        let q = ConjunctiveQuery::with_head(vec![0], vec![Atom::new("R", vec![V(0)])]);
        let schema = Schema::from_relations(&[("R", 1)]);
        tableau(&q, &schema);
    }
}
