//! Query evaluation.
//!
//! Two evaluators:
//!
//! * CQs/UCQs over naïve databases, **treating nulls as ordinary values**
//!   (`⊥₁ = ⊥₁`, `⊥₁ ≠ ⊥₂`, `⊥₁ ≠ c`) — the first phase of naïve
//!   evaluation. These entry points delegate to the compiled
//!   [`crate::engine`] (plan once, probe lazily-built hash indices) via
//!   *lenient* compilation, which exactly reproduces the historical
//!   semantics: an atom over an unknown relation, or at the wrong arity,
//!   silently matches nothing (the CLI depends on this — a query over a
//!   relation absent from the database prints nothing and exits 0).
//!   Callers that want schema errors surfaced should use the engine's
//!   strict API ([`crate::engine::eval_ucq`] and friends) instead. The
//!   original nested-loop evaluator survives as [`crate::reference`].
//! * Full FO over databases under active-domain semantics, likewise
//!   treating any nulls present as distinct fresh values (evaluating FO
//!   "as if nulls were values" is exactly what Proposition 1 analyzes).

use std::collections::BTreeSet;

use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;

use crate::ast::{ConjunctiveQuery, Fo, Term, UnionQuery};
use crate::engine::{self, CompiledCq, DbIndex};

/// Evaluate a CQ over a database treating nulls as values. Returns the set
/// of head-variable bindings (each a tuple of values, possibly containing
/// nulls). A Boolean query returns `{[]}` for true, `{}` for false.
pub fn eval_cq(q: &ConjunctiveQuery, db: &NaiveDatabase) -> BTreeSet<Vec<Value>> {
    let Ok(plan) = CompiledCq::compile(q, &db.schema) else {
        return BTreeSet::new(); // lenient: unknown relation / arity → no matches
    };
    let mut idx = DbIndex::new(db);
    let mut out = BTreeSet::new();
    engine::eval_cq_into(&plan, &mut idx, &mut |row| {
        out.insert(row.to_vec());
        true
    });
    out
}

/// Evaluate a UCQ (union of the disjuncts' answers).
pub fn eval_ucq(q: &UnionQuery, db: &NaiveDatabase) -> BTreeSet<Vec<Value>> {
    let plan = engine::CompiledUcq::compile_lenient(q, &db.schema);
    engine::eval_ucq_on(&plan, &mut DbIndex::new(db))
}

/// Boolean CQ evaluation (nulls as values).
pub fn eval_cq_bool(q: &ConjunctiveQuery, db: &NaiveDatabase) -> bool {
    assert!(q.is_boolean());
    let Ok(plan) = CompiledCq::compile(q, &db.schema) else {
        return false;
    };
    let mut idx = DbIndex::new(db);
    let mut hit = false;
    engine::eval_cq_into(&plan, &mut idx, &mut |_| {
        hit = true;
        false
    });
    hit
}

/// Boolean UCQ evaluation (nulls as values).
pub fn eval_ucq_bool(q: &UnionQuery, db: &NaiveDatabase) -> bool {
    let plan = engine::CompiledUcq::compile_lenient(q, &db.schema);
    engine::eval_ucq_bool_on(&plan, &mut DbIndex::new(db))
}

/// Evaluate an FO sentence over a database under active-domain semantics,
/// treating nulls as distinct values. `φ` must be a sentence (no free
/// variables beyond those bound by quantifiers along the way).
pub fn eval_fo(phi: &Fo, db: &NaiveDatabase) -> bool {
    let domain: Vec<Value> = active_domain(db);
    eval_fo_rec(phi, db, &domain, &mut Vec::new())
}

/// The active domain: every value occurring in the database.
pub fn active_domain(db: &NaiveDatabase) -> Vec<Value> {
    let mut d: Vec<Value> = db
        .facts()
        .iter()
        .flat_map(|f| f.args.iter().copied())
        .collect();
    d.sort_unstable();
    d.dedup();
    d
}

fn lookup(env: &[(u32, Value)], t: Term) -> Value {
    match t {
        Term::Const(c) => Value::Const(c),
        Term::Var(v) => match env.iter().rev().find(|(u, _)| *u == v) {
            Some(&(_, val)) => val,
            // Queries are sentences: every variable is bound by the
            // quantifier that pushed it onto `env` before its atoms are
            // evaluated.
            None => unreachable!("FO evaluation: unbound variable {v} (not a sentence?)"),
        },
    }
}

fn eval_fo_rec(
    phi: &Fo,
    db: &NaiveDatabase,
    domain: &[Value],
    env: &mut Vec<(u32, Value)>,
) -> bool {
    match phi {
        Fo::Atom(a) => {
            let Some(rel) = db.schema.relation(&a.rel) else {
                return false;
            };
            let args: Vec<Value> = a.args.iter().map(|&t| lookup(env, t)).collect();
            db.contains(rel, &args)
        }
        Fo::Eq(s, t) => lookup(env, *s) == lookup(env, *t),
        Fo::Not(f) => !eval_fo_rec(f, db, domain, env),
        Fo::And(fs) => fs.iter().all(|f| eval_fo_rec(f, db, domain, env)),
        Fo::Or(fs) => fs.iter().any(|f| eval_fo_rec(f, db, domain, env)),
        Fo::Exists(v, f) => domain.iter().any(|&val| {
            env.push((*v, val));
            let r = eval_fo_rec(f, db, domain, env);
            env.pop();
            r
        }),
        Fo::Forall(v, f) => domain.iter().all(|&val| {
            env.push((*v, val));
            let r = eval_fo_rec(f, db, domain, env);
            env.pop();
            r
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use ca_relational::database::build::{c, n, table};
    use Term::{Const as C, Var as V};

    #[test]
    fn cq_join_over_complete_db() {
        // Q() ← R(x, y) ∧ R(y, z): paths of length 2.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("R", vec![V(1), V(2)]),
        ]);
        let yes = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        let no = table("R", 2, &[&[c(1), c(2)], &[c(3), c(4)]]);
        assert!(eval_cq_bool(&q, &yes));
        assert!(!eval_cq_bool(&q, &no));
    }

    #[test]
    fn nulls_are_values_in_naive_phase() {
        // R(⊥1, ⊥1) matches R(x, x); R(⊥1, ⊥2) does not.
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]);
        assert!(eval_cq_bool(&q, &table("R", 2, &[&[n(1), n(1)]])));
        assert!(!eval_cq_bool(&q, &table("R", 2, &[&[n(1), n(2)]])));
    }

    #[test]
    fn head_projection_and_null_rows() {
        // Q(x) ← R(x, y): project first column.
        let q = ConjunctiveQuery::with_head(vec![0], vec![Atom::new("R", vec![V(0), V(1)])]);
        let db = table("R", 2, &[&[c(1), c(2)], &[n(1), c(3)]]);
        let ans = eval_cq(&q, &db);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![c(1)]));
        assert!(ans.contains(&vec![n(1)]));
    }

    #[test]
    fn constants_in_atoms_filter() {
        let q = ConjunctiveQuery::with_head(vec![0], vec![Atom::new("R", vec![C(1), V(0)])]);
        let db = table("R", 2, &[&[c(1), c(2)], &[c(3), c(4)]]);
        let ans = eval_cq(&q, &db);
        assert_eq!(ans, BTreeSet::from([vec![c(2)]]));
    }

    #[test]
    fn ucq_unions_disjuncts() {
        let q = UnionQuery::new(vec![
            ConjunctiveQuery::with_head(vec![0], vec![Atom::new("R", vec![V(0), C(2)])]),
            ConjunctiveQuery::with_head(vec![0], vec![Atom::new("R", vec![C(1), V(0)])]),
        ]);
        let db = table("R", 2, &[&[c(1), c(2)]]);
        let ans = eval_ucq(&q, &db);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn lenient_semantics_for_unknown_relations() {
        // The legacy entry points keep the pre-engine behaviour: a query
        // over a relation absent from the schema answers empty/false, and
        // a mixed UCQ still answers through its well-formed disjuncts.
        let db = table("R", 1, &[&[c(1)]]);
        let broken = ConjunctiveQuery::boolean(vec![Atom::new("S", vec![V(0)])]);
        assert!(eval_cq(&broken, &db).is_empty());
        assert!(!eval_cq_bool(&broken, &db));
        let mixed = UnionQuery::new(vec![
            broken.clone(),
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0)])]),
        ]);
        assert!(eval_ucq_bool(&mixed, &db));
        assert_eq!(eval_ucq(&mixed, &db), BTreeSet::from([vec![]]));
    }

    #[test]
    fn fo_universal_and_negation() {
        // ∀x R(x, x) over active domain.
        let phi = Fo::forall(0, Fo::Atom(Atom::new("R", vec![V(0), V(0)])));
        let all_loops = table("R", 2, &[&[c(1), c(1)], &[c(2), c(2)]]);
        assert!(eval_fo(&phi, &all_loops));
        let not_all = table("R", 2, &[&[c(1), c(1)], &[c(1), c(2)]]);
        assert!(!eval_fo(&phi, &not_all));
        // ¬∃x R(x, x).
        let no_loop = Fo::exists(0, Fo::Atom(Atom::new("R", vec![V(0), V(0)]))).not();
        assert!(!eval_fo(&no_loop, &all_loops));
        assert!(eval_fo(&no_loop, &table("R", 2, &[&[c(1), c(2)]])));
    }

    #[test]
    fn fo_agrees_with_cq_on_ucq_fragment() {
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("R", vec![V(1), V(0)]),
        ]);
        let phi = Fo::from_cq(&q);
        let dbs = [
            table("R", 2, &[&[c(1), c(2)], &[c(2), c(1)]]),
            table("R", 2, &[&[c(1), c(2)]]),
            table("R", 2, &[&[c(1), c(1)]]),
            table("R", 2, &[&[n(1), n(2)], &[n(2), n(1)]]),
        ];
        for db in &dbs {
            assert_eq!(eval_cq_bool(&q, db), eval_fo(&phi, db), "on {db:?}");
        }
    }

    #[test]
    fn fo_equality() {
        // ∃x∃y (R(x,y) ∧ x = y).
        let phi = Fo::exists(
            0,
            Fo::exists(
                1,
                Fo::And(vec![
                    Fo::Atom(Atom::new("R", vec![V(0), V(1)])),
                    Fo::Eq(V(0), V(1)),
                ]),
            ),
        );
        assert!(eval_fo(&phi, &table("R", 2, &[&[c(3), c(3)]])));
        assert!(!eval_fo(&phi, &table("R", 2, &[&[c(3), c(4)]])));
    }

    #[test]
    fn empty_database_semantics() {
        let db = table("R", 1, &[]);
        // ∃x R(x) is false; ∀x R(x) is vacuously true (empty domain).
        let ex = Fo::exists(0, Fo::Atom(Atom::new("R", vec![V(0)])));
        let fa = Fo::forall(0, Fo::Atom(Atom::new("R", vec![V(0)])));
        assert!(!eval_fo(&ex, &db));
        assert!(eval_fo(&fa, &db));
    }
}
