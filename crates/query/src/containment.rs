//! Conjunctive-query containment (Chandra–Merlin).
//!
//! `Q₁ ⊆ Q₂` for Boolean CQs iff there is a homomorphism from the tableau
//! of `Q₂` to the tableau of `Q₁` — equivalently, iff `Q₂` evaluates to
//! true on the tableau of `Q₁` under nulls-as-values semantics (a match
//! of `Q₂`'s atoms into `D_{Q₁}` *is* such a homomorphism). This is the
//! third leg of Proposition 2's equivalence (with certain answers and the
//! information ordering).
//!
//! The check runs `Q₂` through the compiled [`crate::engine`], so the
//! homomorphism search benefits from the same join ordering and hash
//! indices as query evaluation. Leniently: if `Q₂` mentions a relation
//! outside the schema it simply cannot be matched, so containment fails.

use ca_relational::schema::Schema;

use crate::ast::{ConjunctiveQuery, UnionQuery};
use crate::engine::CompiledUcq;
use crate::engine::{self, DbIndex};
use crate::tableau::tableau;

/// Is `q1 ⊆ q2` (every database satisfying `q1` satisfies `q2`)?
/// Boolean CQs only; decided by evaluating `q2` over the tableau of `q1`
/// (Chandra–Merlin, via the compiled engine).
pub fn cq_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery, schema: &Schema) -> bool {
    let d1 = tableau(q1, schema);
    let plan = CompiledUcq::compile_lenient(&UnionQuery::single(q2.clone()), &d1.schema);
    engine::eval_ucq_bool_on(&plan, &mut DbIndex::new(&d1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term::Const as C, Term::Var as V};
    use crate::eval::eval_cq_bool;
    use ca_relational::generate::{random_naive_db, DbParams, Rng};

    fn schema() -> Schema {
        Schema::from_relations(&[("R", 2)])
    }

    #[test]
    fn longer_paths_are_contained_in_shorter() {
        // "∃ path of length 2" ⊆ "∃ edge".
        let edge = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(1)])]);
        let path2 = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("R", vec![V(1), V(2)]),
        ]);
        assert!(cq_contained_in(&path2, &edge, &schema()));
        assert!(!cq_contained_in(&edge, &path2, &schema()));
    }

    #[test]
    fn constants_break_containment() {
        let edge_at_1 = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(1), V(0)])]);
        let edge = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(1), V(0)])]);
        assert!(cq_contained_in(&edge_at_1, &edge, &schema()));
        assert!(!cq_contained_in(&edge, &edge_at_1, &schema()));
    }

    #[test]
    fn self_loop_contained_in_edge() {
        let loop_q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]);
        let edge = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(1)])]);
        assert!(cq_contained_in(&loop_q, &edge, &schema()));
        assert!(!cq_contained_in(&edge, &loop_q, &schema()));
    }

    #[test]
    fn containment_is_reflexive_and_transitive() {
        let qs = [
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(1)])]),
            ConjunctiveQuery::boolean(vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("R", vec![V(1), V(2)]),
            ]),
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]),
        ];
        let s = schema();
        for q in &qs {
            assert!(cq_contained_in(q, q, &s));
        }
        for a in &qs {
            for b in &qs {
                for c in &qs {
                    if cq_contained_in(a, b, &s) && cq_contained_in(b, c, &s) {
                        assert!(cq_contained_in(a, c, &s));
                    }
                }
            }
        }
    }

    /// Semantic soundness on random complete databases: if q1 ⊆ q2 then
    /// every database satisfying q1 satisfies q2.
    #[test]
    fn containment_is_semantically_sound() {
        let s = schema();
        let q1 = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("R", vec![V(1), V(1)]),
        ]);
        let q2 = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(1)])]);
        assert!(cq_contained_in(&q1, &q2, &s));
        let mut rng = Rng::new(99);
        for _ in 0..30 {
            let db = random_naive_db(
                &mut rng,
                DbParams {
                    n_facts: 5,
                    arity: 2,
                    n_constants: 3,
                    n_nulls: 0,
                    null_pct: 0,
                },
            );
            if eval_cq_bool(&q1, &db) {
                assert!(eval_cq_bool(&q2, &db));
            }
        }
    }
}
