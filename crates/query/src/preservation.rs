//! Preservation under homomorphisms — the engine behind Proposition 1.
//!
//! Proposition 1's proof routes through Rossman's theorem: an FO sentence
//! is preserved under homomorphisms (in the finite) iff it is equivalent
//! to a union of conjunctive queries. This module makes the preservation
//! side *testable*: it checks whether a sentence is preserved under
//! homomorphisms across an enumerated family of small databases, and
//! exposes the bridge the proof uses — `certain(Q, D) = Q_naïve(D)` for
//! all `D` iff `Q` is preserved under (database) homomorphisms on complete
//! instances.
//!
//! A failed exhaustive check is a *refutation* with a concrete witness
//! pair; a passed check on all databases up to size `n` is evidence, not
//! proof (preservation is undecidable in general).

use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::schema::Schema;

use crate::ast::Fo;
use crate::eval::eval_fo;

/// A counterexample to homomorphism preservation: `source ⊨ φ`,
/// a homomorphism maps `source` into `target` (as first-order structures,
/// i.e. constants may move), yet `target ⊭ φ`.
#[derive(Clone, Debug)]
pub struct PreservationWitness {
    /// The satisfying source instance.
    pub source: NaiveDatabase,
    /// The non-satisfying homomorphic target.
    pub target: NaiveDatabase,
    /// The structure map (value at index `i` is the image of domain value
    /// `i` in the enumeration order used by the checker).
    pub map: Vec<i64>,
}

/// Enumerate all complete databases over one binary relation `R` with
/// domain `{0, …, domain-1}` and at most `max_facts` facts.
fn enumerate_dbs(domain: i64, max_facts: usize) -> Vec<NaiveDatabase> {
    let schema = Schema::from_relations(&[("R", 2)]);
    let pairs: Vec<(i64, i64)> = (0..domain)
        .flat_map(|a| (0..domain).map(move |b| (a, b)))
        .collect();
    let mut out = Vec::new();
    let n = pairs.len();
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize > max_facts {
            continue;
        }
        let mut db = NaiveDatabase::new(schema.clone());
        for (i, &(a, b)) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                db.add("R", vec![Value::Const(a), Value::Const(b)]);
            }
        }
        out.push(db);
    }
    out
}

/// Apply a *structure* homomorphism (a map on all domain elements, not
/// just nulls) to a complete database.
fn apply_structure_map(db: &NaiveDatabase, map: &[i64]) -> NaiveDatabase {
    let mut out = NaiveDatabase::new(db.schema.clone());
    for f in db.facts() {
        let args: Vec<Value> = f
            .args
            .iter()
            .map(|v| match v {
                Value::Const(c) => Value::Const(map[*c as usize]),
                Value::Null(_) => unreachable!("complete database"),
            })
            .collect();
        out.add_fact(f.rel, args);
    }
    out
}

/// Exhaustively search for a homomorphism-preservation counterexample for
/// `phi` among complete databases over `{0…domain-1}` with ≤ `max_facts`
/// facts and all self-maps of the domain. Returns the first witness, or
/// `None` if `phi` is preserved on the whole family.
///
/// Exponential in `domain²`; keep `domain ≤ 3`.
pub fn find_preservation_counterexample(
    phi: &Fo,
    domain: i64,
    max_facts: usize,
) -> Option<PreservationWitness> {
    assert!(
        domain <= 3,
        "exhaustive preservation check limited to domain 3"
    );
    let dbs = enumerate_dbs(domain, max_facts);
    // All maps domain → domain.
    let n_maps = (domain as u64).pow(domain as u32);
    for db in &dbs {
        if !eval_fo(phi, db) {
            continue;
        }
        for code in 0..n_maps {
            let mut map = Vec::with_capacity(domain as usize);
            let mut c = code;
            for _ in 0..domain {
                map.push((c % domain as u64) as i64);
                c /= domain as u64;
            }
            let image = apply_structure_map(db, &map);
            if !eval_fo(phi, &image) {
                return Some(PreservationWitness {
                    source: db.clone(),
                    target: image,
                    map,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term::Var as V};
    use crate::parse::parse_cq;

    /// UCQ-shaped sentences are preserved (the easy direction of
    /// Rossman/Proposition 1) — exhaustively on the small family.
    #[test]
    fn ucqs_are_preserved() {
        let sentences = [
            Fo::from_cq(&parse_cq("R(x, y)").unwrap()),
            Fo::from_cq(&parse_cq("R(x, x)").unwrap()),
            Fo::from_cq(&parse_cq("R(x, y), R(y, z)").unwrap()),
            Fo::Or(vec![
                Fo::from_cq(&parse_cq("R(x, x)").unwrap()),
                Fo::from_cq(&parse_cq("R(x, y), R(y, x)").unwrap()),
            ]),
        ];
        for phi in &sentences {
            assert!(
                find_preservation_counterexample(phi, 3, 4).is_none(),
                "UCQ not preserved: {phi:?}"
            );
        }
    }

    /// Negation breaks preservation, with a concrete witness.
    #[test]
    fn negation_is_not_preserved() {
        // ¬∃x R(x, x): killed by mapping an edge onto a loop.
        let phi = Fo::exists(0, Fo::Atom(Atom::new("R", vec![V(0), V(0)]))).not();
        let w = find_preservation_counterexample(&phi, 2, 2).expect("witness exists");
        assert!(eval_fo(&phi, &w.source));
        assert!(!eval_fo(&phi, &w.target));
    }

    /// Inequality breaks preservation.
    #[test]
    fn inequality_is_not_preserved() {
        // ∃x∃y (R(x,y) ∧ x ≠ y).
        let phi = Fo::exists(
            0,
            Fo::exists(
                1,
                Fo::And(vec![
                    Fo::Atom(Atom::new("R", vec![V(0), V(1)])),
                    Fo::Eq(V(0), V(1)).not(),
                ]),
            ),
        );
        assert!(find_preservation_counterexample(&phi, 2, 2).is_some());
    }

    /// Universal sentences break preservation.
    #[test]
    fn universals_are_not_preserved() {
        // ∀x∀y (R(x,y) → R(y,x)) — symmetric graphs map onto asymmetric
        // ones? No: homomorphic images of symmetric graphs stay… let's
        // check the other classic: ∀x ∃y R(x,y) ("total"). A total graph
        // can map onto a non-total one? Image of totality… every image
        // node is the image of some source node with an out-edge, whose
        // image has an out-edge — but nodes of the target outside the
        // image break totality. Here targets are images (surjective), so
        // use ∀x∀y∀z (R(x,y) ∧ R(x,z) → y = z) — functionality — which
        // merging destroys… merging *sources*: R(0,1),R(2,0) functional;
        // map 2 ↦ 1: R(0,1),R(1,0) still functional. Try the checker on
        // symmetry instead and accept either outcome, then assert the
        // *known* breaker below.
        let functional = Fo::forall(
            0,
            Fo::forall(
                1,
                Fo::forall(
                    2,
                    Fo::And(vec![
                        Fo::Atom(Atom::new("R", vec![V(0), V(1)])),
                        Fo::Atom(Atom::new("R", vec![V(0), V(2)])),
                    ])
                    .implies(Fo::Eq(V(1), V(2))),
                ),
            ),
        );
        // Functionality is destroyed by identifying two sources with
        // different targets: R(0,1), R(2,0); map 2 ↦ 0 gives R(0,1),
        // R(0,0) — not functional.
        assert!(
            find_preservation_counterexample(&functional, 3, 3).is_some(),
            "functionality should not be preserved under homomorphisms"
        );
    }

    #[test]
    fn enumerated_family_is_reasonable() {
        let dbs = enumerate_dbs(2, 2);
        // 4 possible pairs, subsets of size ≤ 2: C(4,0)+C(4,1)+C(4,2) = 11.
        assert_eq!(dbs.len(), 11);
    }
}
