//! Conjunctive-query minimization (tableau cores).
//!
//! The core of a CQ's tableau is the unique (up to renaming) minimal
//! equivalent query — the query-side face of the graph-theoretic cores of
//! Section 4. Minimization is how the paper's `∼`-equivalence classes get
//! canonical representatives: two Boolean CQs are equivalent iff their
//! minimized tableaux are isomorphic, and `certain(Q, D)` only depends on
//! the core of `D_Q`.

use ca_relational::database::NaiveDatabase;
use ca_relational::hom::{find_hom, hom_csp};
use ca_relational::schema::Schema;

use crate::ast::ConjunctiveQuery;
use crate::tableau::{canonical_query, tableau};

/// The core of a naïve database: iteratively find an endomorphism that
/// avoids some null entirely (a proper folding), apply it, and repeat.
/// Exponential in the worst case; the result is hom-equivalent to the
/// input and no proper sub-instance of it is.
pub fn core_database(db: &NaiveDatabase) -> NaiveDatabase {
    let mut current = db.clone();
    'outer: loop {
        let nulls: Vec<ca_core::value::Null> = current.nulls().into_iter().collect();
        for (i, _) in nulls.iter().enumerate() {
            // Endomorphism whose image avoids value ⊥ᵢ; the index returned
            // by `hom_csp` translates between values and CSP ids.
            let (csp, csp_nulls, idx) = hom_csp(&current, &current);
            let avoid = ca_core::value::Value::Null(nulls[i]);
            let Some(avoid_id) = idx.id(avoid) else {
                continue;
            };
            if let Some(sol) = csp.solve_avoiding(avoid_id) {
                let h = ca_relational::database::Valuation::from_pairs(
                    csp_nulls
                        .iter()
                        .zip(sol.iter())
                        .map(|(&n, &v)| (n, idx.value(v))),
                );
                let image = current.apply(&h);
                if image.len() < current.len() || image.nulls().len() < current.nulls().len() {
                    current = image;
                    continue 'outer;
                }
            }
        }
        return current;
    }
}

/// Minimize a Boolean CQ: take the core of its tableau and read the query
/// back. The result is equivalent to the input (mutual containment) and
/// has the fewest atoms among equivalent CQs.
pub fn minimize_cq(q: &ConjunctiveQuery, schema: &Schema) -> ConjunctiveQuery {
    assert!(q.is_boolean(), "minimization implemented for Boolean CQs");
    let tb = tableau(q, schema);
    let core = core_database(&tb);
    canonical_query(&core)
}

/// Are two Boolean CQs equivalent (mutual containment)?
pub fn cq_equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery, schema: &Schema) -> bool {
    let ta = tableau(a, schema);
    let tb = tableau(b, schema);
    find_hom(&ta, &tb).is_some() && find_hom(&tb, &ta).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_cq;

    fn schema() -> Schema {
        Schema::from_relations(&[("R", 2)])
    }

    #[test]
    fn redundant_atom_is_folded() {
        // R(x,y) ∧ R(x,z) is equivalent to R(x,y): z folds onto y.
        let q = parse_cq("R(x, y), R(x, z)").unwrap();
        let m = minimize_cq(&q, &schema());
        assert_eq!(m.atoms.len(), 1);
        assert!(cq_equivalent(&q, &m, &schema()));
    }

    #[test]
    fn loops_absorb_paths() {
        // R(x,x) ∧ R(x,y) ∧ R(y,z): everything folds into the loop.
        let q = parse_cq("R(x, x), R(x, y), R(y, z)").unwrap();
        let m = minimize_cq(&q, &schema());
        assert_eq!(m.atoms.len(), 1);
        assert!(cq_equivalent(&q, &m, &schema()));
    }

    #[test]
    fn irreducible_queries_stay_put() {
        // A 2-path with distinct variables is already minimal.
        let q = parse_cq("R(x, y), R(y, z)").unwrap();
        let m = minimize_cq(&q, &schema());
        assert_eq!(m.atoms.len(), 2);
        assert!(cq_equivalent(&q, &m, &schema()));
    }

    #[test]
    fn constants_block_folding() {
        // R(x,1) ∧ R(x,2): both atoms are needed.
        let q = parse_cq("R(x, 1), R(x, 2)").unwrap();
        let m = minimize_cq(&q, &schema());
        assert_eq!(m.atoms.len(), 2);
    }

    #[test]
    fn core_is_idempotent() {
        let q = parse_cq("R(x, y), R(x, z), R(w, y)").unwrap();
        let t = tableau(&q, &schema());
        let once = core_database(&t);
        let twice = core_database(&once);
        assert_eq!(once.len(), twice.len());
        assert!(find_hom(&once, &t).is_some() && find_hom(&t, &once).is_some());
    }

    #[test]
    fn equivalence_detects_renaming() {
        let a = parse_cq("R(x, y), R(y, x)").unwrap();
        let b = parse_cq("R(u, v), R(v, u)").unwrap();
        assert!(cq_equivalent(&a, &b, &schema()));
        let c = parse_cq("R(x, y)").unwrap();
        assert!(!cq_equivalent(&a, &c, &schema()));
    }
}
