//! Query syntax: terms, atoms, (unions of) conjunctive queries, and full
//! first-order queries.
//!
//! Relation names are kept as strings and resolved against a database's
//! schema at evaluation time, so the same query value can run against any
//! compatible instance.

use std::fmt;

/// A term: a query variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A variable (implicitly existentially quantified in a CQ body unless
    /// it appears in the head).
    Var(u32),
    /// A constant from `C`.
    Const(i64),
}

impl Term {
    /// Shorthand for a variable term.
    pub const fn v(i: u32) -> Term {
        Term::Var(i)
    }

    /// Shorthand for a constant term.
    pub const fn c(x: i64) -> Term {
        Term::Const(x)
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Relation name (resolved against the target schema at evaluation).
    pub rel: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(rel: &str, args: Vec<Term>) -> Self {
        Atom {
            rel: rel.to_owned(),
            args,
        }
    }

    /// The variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = u32> + '_ {
        self.args.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }
}

/// A conjunctive query `head(x̄) ← body`: existential positive, with the
/// head variables free. `head = []` makes it Boolean.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConjunctiveQuery {
    /// Free (answer) variables.
    pub head: Vec<u32>,
    /// The conjunction of atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// A Boolean CQ (empty head).
    pub fn boolean(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            head: vec![],
            atoms,
        }
    }

    /// A CQ with answer variables.
    pub fn with_head(head: Vec<u32>, atoms: Vec<Atom>) -> Self {
        let q = ConjunctiveQuery { head, atoms };
        debug_assert!(
            q.head.iter().all(|h| q.body_vars().contains(h)),
            "head variables must occur in the body (safe queries)"
        );
        q
    }

    /// Is the query Boolean?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// All variables occurring in the body.
    pub fn body_vars(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self.atoms.iter().flat_map(Atom::vars).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// A union of conjunctive queries. All disjuncts must share the head arity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Build a UCQ, checking head arities agree.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        if let Some(first) = disjuncts.first() {
            assert!(
                disjuncts.iter().all(|d| d.head.len() == first.head.len()),
                "UCQ disjuncts must share head arity"
            );
        }
        UnionQuery { disjuncts }
    }

    /// A single-CQ union.
    pub fn single(q: ConjunctiveQuery) -> Self {
        UnionQuery { disjuncts: vec![q] }
    }

    /// Head arity (0 for Boolean).
    pub fn head_arity(&self) -> usize {
        self.disjuncts.first().map_or(0, |d| d.head.len())
    }
}

/// Full first-order queries (Boolean, evaluated under active-domain
/// semantics). Used for Proposition 1 and the naïve-evaluation-limits
/// experiments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fo {
    /// A relational atom.
    Atom(Atom),
    /// Equality of two terms.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Fo>),
    /// Conjunction (empty = true).
    And(Vec<Fo>),
    /// Disjunction (empty = false).
    Or(Vec<Fo>),
    /// Existential quantification.
    Exists(u32, Box<Fo>),
    /// Universal quantification (active domain).
    Forall(u32, Box<Fo>),
}

impl Fo {
    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Fo {
        Fo::Not(Box::new(self))
    }

    /// `∃v φ`.
    pub fn exists(v: u32, body: Fo) -> Fo {
        Fo::Exists(v, Box::new(body))
    }

    /// `∀v φ`.
    pub fn forall(v: u32, body: Fo) -> Fo {
        Fo::Forall(v, Box::new(body))
    }

    /// `φ → ψ` as `¬φ ∨ ψ`.
    pub fn implies(self, then: Fo) -> Fo {
        Fo::Or(vec![self.not(), then])
    }

    /// Lift a Boolean CQ into FO (existentially closing body variables).
    pub fn from_cq(q: &ConjunctiveQuery) -> Fo {
        assert!(q.is_boolean(), "only Boolean CQs lift directly");
        let body = Fo::And(q.atoms.iter().map(|a| Fo::Atom(a.clone())).collect());
        q.body_vars()
            .into_iter()
            .rev()
            .fold(body, |acc, v| Fo::exists(v, acc))
    }

    /// Lift a Boolean UCQ into FO.
    pub fn from_ucq(q: &UnionQuery) -> Fo {
        Fo::Or(q.disjuncts.iter().map(Fo::from_cq).collect())
    }

    /// Is this sentence in the existential-positive (UCQ-shaped) fragment:
    /// built from atoms, ∧, ∨, ∃ only?
    pub fn is_existential_positive(&self) -> bool {
        match self {
            Fo::Atom(_) => true,
            Fo::Eq(_, _) => true,
            Fo::Not(_) | Fo::Forall(_, _) => false,
            Fo::And(fs) | Fo::Or(fs) => fs.iter().all(Fo::is_existential_positive),
            Fo::Exists(_, f) => f.is_existential_positive(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "x{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{v}")?;
        }
        write!(f, ") ← ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Term::{Const as C, Var as V};

    #[test]
    fn atom_vars() {
        let a = Atom::new("R", vec![V(1), C(3), V(1), V(2)]);
        let vs: Vec<u32> = a.vars().collect();
        assert_eq!(vs, vec![1, 1, 2]);
    }

    #[test]
    fn cq_body_vars_dedup() {
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(2), V(1)]),
            Atom::new("R", vec![V(1), V(3)]),
        ]);
        assert_eq!(q.body_vars(), vec![1, 2, 3]);
        assert!(q.is_boolean());
    }

    #[test]
    #[should_panic(expected = "head arity")]
    fn mismatched_ucq_heads_panic() {
        UnionQuery::new(vec![
            ConjunctiveQuery::with_head(vec![1], vec![Atom::new("R", vec![V(1)])]),
            ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(1)])]),
        ]);
    }

    #[test]
    fn fo_fragment_detection() {
        let cq = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(1), V(2)])]);
        let f = Fo::from_cq(&cq);
        assert!(f.is_existential_positive());
        assert!(!f.clone().not().is_existential_positive());
        assert!(
            !Fo::forall(1, Fo::Atom(Atom::new("R", vec![V(1), V(1)]))).is_existential_positive()
        );
    }

    #[test]
    fn display_round_trip_shapes() {
        let q = ConjunctiveQuery::with_head(vec![1], vec![Atom::new("R", vec![V(1), C(5)])]);
        assert_eq!(q.to_string(), "(x1) ← R(x1, 5)");
    }
}
