//! A small concrete syntax for (unions of) conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! ucq    := cq ("|" cq)*
//! cq     := head? ":-" atoms | atoms          (no ":-" ⇒ Boolean body)
//! head   := "(" vars? ")"
//! atoms  := atom ("," atom)*
//! atom   := NAME "(" term ("," term)* ")" | NAME "(" ")"
//! term   := VAR | INT                         (VARs start with a letter)
//! ```
//!
//! Examples: `R(x, y), R(y, x)` (Boolean), `(x) :- R(x, 1)` (unary head),
//! `R(x,x) | S(x)` (union).

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};

/// A parse error with a human-readable message and byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    /// Variable-name interning: name → variable id.
    vars: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            vars: Vec::new(),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        let len = rest
            .char_indices()
            .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 || !rest.starts_with(|c: char| c.is_alphabetic() || c == '_') {
            return Err(self.error("expected an identifier"));
        }
        self.pos += len;
        Ok(rest[..len].to_owned())
    }

    fn var_id(&mut self, name: &str) -> u32 {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            return i as u32;
        }
        self.vars.push(name.to_owned());
        (self.vars.len() - 1) as u32
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        let c = self.peek().ok_or_else(|| self.error("expected a term"))?;
        if c == '-' || c.is_ascii_digit() {
            let rest = &self.input[self.pos..];
            let len = rest
                .char_indices()
                .take_while(|&(i, ch)| ch.is_ascii_digit() || (i == 0 && ch == '-'))
                .count();
            let text = &rest[..len];
            let value: i64 = text
                .parse()
                .map_err(|_| self.error(format!("bad integer `{text}`")))?;
            self.pos += len;
            Ok(Term::Const(value))
        } else {
            let name = self.ident()?;
            Ok(Term::Var(self.var_id(&name)))
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let rel = self.ident()?;
        self.expect_tok("(")?;
        let mut args = Vec::new();
        if self.peek() != Some(')') {
            loop {
                args.push(self.term()?);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect_tok(")")?;
        Ok(Atom { rel, args })
    }

    fn atoms(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut out = vec![self.atom()?];
        while self.eat(",") {
            out.push(self.atom()?);
        }
        Ok(out)
    }

    fn cq(&mut self) -> Result<ConjunctiveQuery, ParseError> {
        // Optional head "(x, y) :-".
        let mut head = Vec::new();
        let mut has_head = false;
        let save = self.pos;
        if self.eat("(") {
            let mut names = Vec::new();
            if self.peek() != Some(')') {
                loop {
                    names.push(self.ident()?);
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect_tok(")")?;
            if self.eat(":-") {
                has_head = true;
                for name in names {
                    head.push(self.var_id(&name));
                }
            } else {
                // Not a head after all; rewind.
                self.pos = save;
            }
        }
        let atoms = self.atoms()?;
        let q = ConjunctiveQuery { head, atoms };
        if has_head {
            for h in &q.head {
                if !q.body_vars().contains(h) {
                    return Err(self.error("unsafe query: head variable not in body"));
                }
            }
        }
        Ok(q)
    }

    fn ucq(&mut self) -> Result<UnionQuery, ParseError> {
        let mut disjuncts = vec![self.cq()?];
        while self.eat("|") {
            // Fresh variable scope per disjunct.
            self.vars.clear();
            disjuncts.push(self.cq()?);
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.error("trailing input"));
        }
        let first_arity = disjuncts.first().map_or(0, |d| d.head.len());
        if disjuncts.iter().any(|d| d.head.len() != first_arity) {
            return Err(self.error("disjuncts have different head arities"));
        }
        Ok(UnionQuery { disjuncts })
    }
}

/// Parse a single conjunctive query.
pub fn parse_cq(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut p = Parser::new(input);
    let q = p.cq()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.error("trailing input"));
    }
    Ok(q)
}

/// Parse a union of conjunctive queries (disjuncts separated by `|`).
pub fn parse_ucq(input: &str) -> Result<UnionQuery, ParseError> {
    Parser::new(input).ucq()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq_bool;
    use ca_relational::database::build::{c, table};

    #[test]
    fn boolean_cq() {
        let q = parse_cq("R(x, y), R(y, x)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 2);
        // Shared variable y got the same id.
        assert_eq!(q.atoms[0].args[1], q.atoms[1].args[0]);
    }

    #[test]
    fn head_and_constants() {
        let q = parse_cq("(x) :- R(x, 1), S(x)").unwrap();
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.atoms[0].args[1], crate::ast::Term::Const(1));
    }

    #[test]
    fn negative_constants_and_nullary_atoms() {
        let q = parse_cq("R(-5), T()").unwrap();
        assert_eq!(q.atoms[0].args[0], crate::ast::Term::Const(-5));
        assert!(q.atoms[1].args.is_empty());
    }

    #[test]
    fn unions() {
        let q = parse_ucq("R(x, x) | S(y)").unwrap();
        assert_eq!(q.disjuncts.len(), 2);
        assert!(q.disjuncts.iter().all(|d| d.is_boolean()));
    }

    #[test]
    fn parsed_query_evaluates() {
        let q = parse_cq("R(x, y), R(y, z)").unwrap();
        let db = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        assert!(eval_cq_bool(&q, &db));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_cq("").is_err());
        assert!(parse_cq("R(x").is_err());
        assert!(parse_cq("R(x) extra").is_err());
        assert!(parse_cq("(z) :- R(x)").is_err()); // unsafe head
        assert!(parse_ucq("(x) :- R(x) | S(y)").is_err()); // arity clash
    }

    #[test]
    fn parse_display_roundtrip() {
        let q = parse_cq("(x) :- R(x, 5)").unwrap();
        let printed = q.to_string();
        assert_eq!(printed, "(x0) ← R(x0, 5)");
    }
}
