//! Morsel-driven partitioned CQ evaluation.
//!
//! The completion sweep parallelizes *across* completions, but each join
//! itself ran single-threaded: on one large instance the engine used one
//! core. This module splits a compiled plan's **leading atom** into
//! disjoint row partitions (hash-partitioned on its first bound column
//! via `ca_core::store::partition`, or on row ids when the atom binds
//! nothing) and evaluates each partition as an independent seeded join
//! ([`super::eval_seeded_into`]) on its own worker.
//!
//! Correctness is the partition layer's completeness property: the
//! partitions disjointly cover the leading atom's live rows, and every
//! answer of the unpartitioned join extends a match of the leading atom,
//! so the per-partition answer sets union to exactly the unpartitioned
//! answer set. The union is a set merge folded in **partition-index
//! order** — commutative and duplicate-free — so the result is
//! byte-identical at every worker count and under every scheduling, the
//! same contract the sweep and the chase pin.
//!
//! The partitioned path engages automatically (see [`eval_cq_auto_into`])
//! only when `CA_PART_THREADS` resolves above one **and** the leading
//! relation has at least [`PART_MIN_ROWS`] live rows: below that,
//! spawning costs more than the join. Boolean evaluation never
//! partitions — it early-exits on the first witness, which a fan-out
//! would only delay.

use std::collections::BTreeSet;

use ca_core::config;
use ca_core::store::partition::{partition_ids, partition_rows};
use ca_core::value::Value;

use super::{eval_cq_into, eval_seeded_into, prepare_cq, CompiledCq, DbIndex};

/// Minimum live rows of the leading relation before the automatic path
/// partitions: under this, fixed spawn/merge overhead dominates the join
/// itself (a few thousand probes run in tens of microseconds).
pub const PART_MIN_ROWS: usize = 4096;

/// Minimum estimated plan work (the cost model's `card × (1 + est)`
/// accumulation, roughly "rows enumerated") before partitioning pays.
/// Chosen off `BENCH_query.json`: two-atom chains at 1024 lead rows
/// (≈ 6k estimated work) lose to spawn/merge overhead, the same chains
/// at 4096 rows (≈ 25k) win.
pub const PART_MIN_WORK: f64 = 16384.0;

/// Should this plan take the partitioned path at all? Requires a real
/// join (≥ 2 atoms — a single-atom scan has no work to split), a lead
/// relation worth splitting, and an estimated total work above
/// [`PART_MIN_WORK`] so coordination cannot dominate. Decisions move
/// wall time only; both paths produce identical contents.
fn worth_partitioning(cq: &CompiledCq, idx: &DbIndex<'_>) -> bool {
    cq.atoms.len() >= 2
        && cq
            .atoms
            .first()
            .is_some_and(|a| idx.rows(a.rel).len() >= PART_MIN_ROWS)
        && idx.model().plan_work(cq) >= PART_MIN_WORK
}

/// Sequential evaluation with semijoin reduction where it applies (see
/// [`super::semijoin_filter_lead`]): chain/star plans over a large lead
/// relation pre-filter the lead rows through later atoms' postings, then
/// run the reduced seeded join; everything else takes the plain engine.
fn eval_cq_seq_into(cq: &CompiledCq, idx: &mut DbIndex<'_>, out: &mut BTreeSet<Vec<Value>>) {
    let reducible = cq.atoms.len() >= 3
        && cq
            .atoms
            .first()
            .is_some_and(|a| idx.rows(a.rel).len() >= super::SEMIJOIN_MIN_ROWS);
    if reducible {
        let prep = prepare_cq(cq, idx);
        if let Some(kept) = super::semijoin_filter_lead(cq, &prep, idx) {
            eval_seeded_into(cq, &prep, idx, &kept, &mut |row| {
                out.insert(row.to_vec());
                true
            });
            return;
        }
    }
    eval_cq_into(cq, idx, &mut |row| {
        out.insert(row.to_vec());
        true
    });
}

/// Evaluate a compiled CQ with its leading atom split into `parts`
/// hash partitions on separate workers, inserting every head row into
/// `out`. Result contents are identical to [`eval_cq_into`] for every
/// `parts`, including `parts == 1`.
pub fn eval_cq_partitioned_into(
    cq: &CompiledCq,
    idx: &mut DbIndex<'_>,
    parts: usize,
    out: &mut BTreeSet<Vec<Value>>,
) {
    let Some(lead) = cq.atoms.first() else {
        // The empty conjunction has no atom to partition; its one
        // (empty) row comes from the sequential path.
        eval_cq_into(cq, idx, &mut |row| {
            out.insert(row.to_vec());
            true
        });
        return;
    };
    let parts = parts.max(1);
    // Resolve posting tables while the index is still borrowed mutably;
    // afterwards the workers share it immutably.
    let prep = prepare_cq(cq, idx);
    // Semijoin-reduce the lead rows before splitting them: pruned rows
    // are pruned on every worker at once.
    let reduced = super::semijoin_filter_lead(cq, &prep, idx);
    let rows = match &reduced {
        Some(kept) => kept.as_slice(),
        None => idx.rows(lead.rel),
    };
    // Partition on the first column the leading atom binds — rows
    // sharing a join key land on one worker — else on row ids.
    let partitions = match lead.binds.first() {
        Some(&(pos, _)) => partition_rows(&idx.cols(lead.rel)[pos], rows, parts),
        None => partition_ids(rows, parts),
    };
    let idx = &*idx;
    let prep = &prep;
    let sets: Vec<BTreeSet<Vec<Value>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|part| {
                scope.spawn(move || {
                    let mut local: BTreeSet<Vec<Value>> = BTreeSet::new();
                    eval_seeded_into(cq, prep, idx, part, &mut |row| {
                        local.insert(row.to_vec());
                        true
                    });
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(set) => set,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Deterministic merge: fold the disjoint per-partition answer sets
    // in partition-index order. Set union is order-insensitive, so the
    // partition count can never leak into the result bytes.
    sets.into_iter().fold(&mut *out, |acc, set| {
        acc.extend(set);
        acc
    });
}

/// Partitioned evaluation into a fresh answer set. See
/// [`eval_cq_partitioned_into`].
pub fn eval_cq_partitioned(
    cq: &CompiledCq,
    idx: &mut DbIndex<'_>,
    parts: usize,
) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    eval_cq_partitioned_into(cq, idx, parts, &mut out);
    out
}

/// Evaluate a compiled UCQ partitioned: the union of the disjuncts'
/// partitioned answer sets. Identical contents to
/// [`super::eval_ucq_on`] at every `parts`.
pub fn eval_ucq_partitioned(
    ucq: &super::CompiledUcq,
    idx: &mut DbIndex<'_>,
    parts: usize,
) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    for d in &ucq.disjuncts {
        eval_cq_partitioned_into(d, idx, parts, &mut out);
    }
    out
}

/// The automatic route every UCQ disjunct takes ([`super::eval_ucq_on`]):
/// partition when `CA_PART_THREADS` resolves above one and the leading
/// relation is at least [`PART_MIN_ROWS`] live rows, else run the
/// sequential engine. Both arms produce identical contents, so the knob
/// only moves wall time.
pub(crate) fn eval_cq_auto_into(
    cq: &CompiledCq,
    idx: &mut DbIndex<'_>,
    out: &mut BTreeSet<Vec<Value>>,
) {
    let parts = config::part_threads();
    if parts > 1 && worth_partitioning(cq, idx) {
        eval_cq_partitioned_into(cq, idx, parts, out);
    } else {
        eval_cq_seq_into(cq, idx, out);
    }
}

/// Cost-gated partitioned UCQ evaluation, the entry the benches and
/// batch callers use: each disjunct partitions only when
/// `worth_partitioning` says the join can amortize the fan-out, at a
/// width of an explicit `CA_PART_THREADS` verbatim (the determinism
/// suites pin widths wider than the host) or else `requested` clamped
/// to the machine's cores — oversubscribing cores loses by pure
/// coordination, the `e02_ucq_edge` regression of `BENCH_query.json`.
/// Contents are identical to [`super::eval_ucq_on`] at every width.
pub fn eval_ucq_gated(
    ucq: &super::CompiledUcq,
    idx: &mut DbIndex<'_>,
    requested: usize,
) -> BTreeSet<Vec<Value>> {
    let width = config::part_threads_set()
        .unwrap_or_else(|| requested.min(config::available_parallelism_or(1)))
        .max(1);
    let mut out = BTreeSet::new();
    for d in &ucq.disjuncts {
        if width > 1 && worth_partitioning(d, idx) {
            eval_cq_partitioned_into(d, idx, width, &mut out);
        } else {
            eval_cq_seq_into(d, idx, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
    use crate::engine::{compile_cq, compile_ucq, eval_ucq_on};
    use ca_relational::database::build::{c, n};
    use ca_relational::database::NaiveDatabase;
    use Term::{Const as C, Var as V};

    /// A two-relation instance big enough to exercise real partitioning.
    fn chain_db(rows: i64) -> NaiveDatabase {
        let schema = ca_relational::schema::Schema::from_relations(&[("R", 2), ("S", 2)]);
        let mut db = NaiveDatabase::new(schema);
        for i in 0..rows {
            db.add("R", vec![c(i % 257), c((i * 31) % 257)]);
            if i % 3 == 0 {
                db.add("S", vec![c((i * 31) % 257), n((i % 11) as u32)]);
            }
        }
        db
    }

    #[test]
    fn partitioned_matches_sequential_at_every_width() {
        let db = chain_db(600);
        let q = ConjunctiveQuery::with_head(
            vec![0, 2],
            vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("S", vec![V(1), V(2)]),
            ],
        );
        let plan = compile_cq(&q, &db.schema).unwrap();
        let seq = crate::engine::eval_cq(&q, &db).unwrap();
        assert!(!seq.is_empty());
        for parts in [1, 2, 4, 7] {
            let mut idx = DbIndex::new(&db);
            assert_eq!(
                eval_cq_partitioned(&plan, &mut idx, parts),
                seq,
                "width {parts}"
            );
        }
    }

    #[test]
    fn constant_only_and_empty_plans_partition_correctly() {
        let db = chain_db(100);
        // Leading atom binds nothing: all-constant atom → row-id fallback.
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![C(0), C(0)])]);
        let plan = compile_cq(&q, &db.schema).unwrap();
        let seq = crate::engine::eval_cq(&q, &db).unwrap();
        for parts in [1, 3] {
            let mut idx = DbIndex::new(&db);
            assert_eq!(eval_cq_partitioned(&plan, &mut idx, parts), seq);
        }
        // Empty conjunction: the vacuous row survives partitioning.
        let empty = compile_cq(&ConjunctiveQuery::boolean(vec![]), &db.schema).unwrap();
        let mut idx = DbIndex::new(&db);
        assert_eq!(
            eval_cq_partitioned(&empty, &mut idx, 4),
            BTreeSet::from([vec![]])
        );
    }

    #[test]
    fn ucq_partitioned_matches_eval_ucq_on() {
        let db = chain_db(400);
        let q = UnionQuery::new(vec![
            ConjunctiveQuery::with_head(
                vec![0, 2],
                vec![
                    Atom::new("R", vec![V(0), V(1)]),
                    Atom::new("R", vec![V(1), V(2)]),
                ],
            ),
            ConjunctiveQuery::with_head(vec![0, 0], vec![Atom::new("S", vec![C(2), V(0)])]),
        ]);
        let plan = compile_ucq(&q, &db.schema).unwrap();
        let seq = eval_ucq_on(&plan, &mut DbIndex::new(&db));
        for parts in [2, 5] {
            assert_eq!(
                eval_ucq_partitioned(&plan, &mut DbIndex::new(&db), parts),
                seq
            );
        }
    }
}
