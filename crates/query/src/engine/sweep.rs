//! Parallel sweeps over completion spaces.
//!
//! Brute-force certain answers intersect (or conjoin) a query's result
//! over every completion of a naïve database into an adequate constant
//! pool. That space is a `|pool|^#nulls` grid; this module addresses it
//! by linear index, partitions it into contiguous per-thread chunks
//! (`std::thread::scope`), and sweeps with early exit: once any thread's
//! partial intersection is empty (or any completion falsifies a Boolean
//! query), a shared flag stops every worker — the global answer is
//! already determined.
//!
//! Determinism: per-thread partial results are sets, set intersection is
//! commutative and associative, and the final merge folds the per-thread
//! results in thread-index order, so the answer is byte-identical for
//! every thread count (asserted by `tests/eval_differential.rs`).
//!
//! The thread count comes from `CA_EVAL_THREADS` (default: available
//! parallelism), mirroring the solver's `CA_HOM_THREADS`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use ca_core::store::{null_index, FactStore, ValueId};
use ca_core::value::{Null, Value};
use ca_relational::database::{NaiveDatabase, Valuation};
use ca_relational::store_bridge::to_store;

/// The sweep thread count: `CA_EVAL_THREADS`, else available parallelism
/// (parsed by the shared [`ca_core::config`] policy: saturating, explicit
/// fallback on malformed values).
pub fn eval_threads() -> usize {
    ca_core::config::eval_threads()
}

/// The space of completions of `db` into a constant pool, addressable by
/// linear index: completion `i` grounds null `j` (in sorted null order)
/// to `pool[d_j]` where `d_0 d_1 …` are the base-`|pool|` digits of `i`.
pub struct CompletionSpace<'a> {
    db: &'a NaiveDatabase,
    nulls: Vec<Null>,
    pool: &'a [i64],
    /// The database loaded once into the columnar store; completions are
    /// stamped out of it by [`FactStore::clone_remapped`] without
    /// re-interning or re-hashing anything per completion.
    base: FactStore,
    /// Pool constants pre-interned in `base` (parallel to `pool`).
    pool_ids: Vec<ValueId>,
    /// Dense null index in `base` → position in the sorted `nulls` list
    /// (the digit position in the linear completion index).
    digit_of_dense: Vec<usize>,
}

impl<'a> CompletionSpace<'a> {
    /// Set up the space. The pool may be empty only if the database has
    /// no nulls (otherwise the space is empty — see [`Self::len`]).
    pub fn new(db: &'a NaiveDatabase, pool: &'a [i64]) -> Self {
        let nulls: Vec<Null> = db.nulls().into_iter().collect();
        let mut base = to_store(db);
        let pool_ids = pool
            .iter()
            .map(|&k| base.intern_value(Value::Const(k)))
            .collect();
        // Every null in `nulls` occurs in some fact, so it is already
        // interned; map its dense store index back to its digit position.
        let mut digit_of_dense = vec![0usize; nulls.len()];
        for (pos, &n) in nulls.iter().enumerate() {
            if let Some(id) = base.lookup_value(Value::Null(n)) {
                digit_of_dense[null_index(id) as usize] = pos;
            } else {
                debug_assert!(false, "database nulls are interned by to_store");
            }
        }
        CompletionSpace {
            nulls,
            db,
            pool,
            base,
            pool_ids,
            digit_of_dense,
        }
    }

    /// Number of completions: `|pool|^#nulls` (1 when there are no nulls
    /// — the database is its own sole completion — and 0 when there are
    /// nulls but nothing to ground them to).
    ///
    /// # Panics
    ///
    /// Panics if the count overflows `u128`; such a sweep could never
    /// finish anyway.
    pub fn len(&self) -> u128 {
        // A null count past u32 saturates the exponent; checked_pow then
        // overflows (pool ≥ 2 in that regime) and the documented panic
        // below fires, same as any other hopeless sweep.
        let exp = u32::try_from(self.nulls.len()).unwrap_or(u32::MAX);
        (self.pool.len() as u128)
            .checked_pow(exp)
            // ca-lint: allow(L002, reason = "deliberate documented panic (see # Panics): a sweep past u128 completions can never terminate, so failing fast beats a wrong answer")
            .expect("completion space exceeds u128 — brute force is hopeless here")
    }

    /// Is the space empty (nulls present but an empty pool)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize completion `i`.
    pub fn completion(&self, i: u128) -> NaiveDatabase {
        let mut h = Valuation::new();
        let mut rest = i;
        let base = self.pool.len() as u128;
        for &n in &self.nulls {
            h.bind(n, Value::Const(self.pool[(rest % base) as usize]));
            rest /= base;
        }
        self.db.apply(&h)
    }

    /// Materialize completion `i` directly in the columnar store: clone
    /// the base column pages with each null's id overwritten by its pool
    /// constant's id. Same digit convention as [`Self::completion`], no
    /// per-completion interning or hashing.
    pub fn completion_store(&self, i: u128) -> FactStore {
        let base = self.pool.len() as u128;
        let mut digits: Vec<ValueId> = Vec::with_capacity(self.nulls.len());
        let mut rest = i;
        for _ in &self.nulls {
            digits.push(self.pool_ids[(rest % base) as usize]);
            rest /= base;
        }
        self.base
            .clone_remapped(|dense| digits[self.digit_of_dense[dense as usize]])
    }
}

/// Below this many completions the sweeps stay sequential regardless of
/// the requested thread count: spawning a scope and merging per-thread
/// sets costs more than the whole sweep on small grids (mirrors
/// `auto_config()` in `ca_hom::csp`, which gates the solver's pool the
/// same way). Measured on `BENCH_query.json`: the 1296-completion
/// `phi0_C4` grid ran at 0.16× under a forced pool; grids past ~20k
/// amortize it.
const PAR_MIN_COMPLETIONS: u128 = 20_000;

/// The thread count actually used for a sweep of `count` completions.
fn effective_threads(count: u128, threads: usize) -> usize {
    if count < PAR_MIN_COMPLETIONS {
        1
    } else {
        threads.max(1)
    }
}

/// Split `0..count` into at most `threads` contiguous non-empty chunks.
fn chunks(count: u128, threads: usize) -> Vec<(u128, u128)> {
    let threads = (threads.max(1) as u128).min(count.max(1));
    let per = count.div_ceil(threads.max(1)).max(1);
    let mut out = Vec::new();
    let mut lo = 0;
    while lo < count {
        let hi = (lo + per).min(count);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Does `check(i)` hold for every `i` in `0..count`? Sweeps in parallel
/// with early exit on the first failure. Vacuously true for `count == 0`
/// (the usual convention for an intersection over an empty family).
pub fn parallel_all(count: u128, threads: usize, check: impl Fn(u128) -> bool + Sync) -> bool {
    let parts = chunks(count, effective_threads(count, threads));
    if parts.len() <= 1 {
        return parts.first().is_none_or(|&(lo, hi)| (lo..hi).all(&check));
    }
    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for &(lo, hi) in &parts {
            let failed = &failed;
            let check = &check;
            scope.spawn(move || {
                for i in lo..hi {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    if !check(i) {
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Intersect `eval(i)` over every `i` in `0..count`, in parallel with
/// early exit once the intersection is known to be empty. Returns `None`
/// for `count == 0` — the intersection over no sets is "everything",
/// which has no finite representation; callers choose their semantics
/// (brute-force certain answers return the empty table, documented at
/// the call site).
pub fn parallel_intersect(
    count: u128,
    threads: usize,
    eval: impl Fn(u128) -> BTreeSet<Vec<Value>> + Sync,
) -> Option<BTreeSet<Vec<Value>>> {
    if count == 0 {
        return None;
    }
    let parts = chunks(count, effective_threads(count, threads));
    if let [(lo, hi)] = parts.as_slice() {
        let (lo, hi) = (*lo, *hi);
        let mut acc = eval(lo);
        for i in lo + 1..hi {
            if acc.is_empty() {
                break;
            }
            let next = eval(i);
            acc.retain(|row| next.contains(row));
        }
        return Some(acc);
    }
    let dead = AtomicBool::new(false);
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                let dead = &dead;
                let eval = &eval;
                scope.spawn(move || {
                    let mut acc = eval(lo);
                    for i in lo + 1..hi {
                        if acc.is_empty() || dead.load(Ordering::Relaxed) {
                            break;
                        }
                        let next = eval(i);
                        acc.retain(|row| next.contains(row));
                    }
                    if acc.is_empty() {
                        dead.store(true, Ordering::Relaxed);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(partial) => partial,
                // A worker only panics if `eval` panicked; re-raise the
                // original payload rather than inventing a new panic here.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    // A set flag means some thread's partial intersection over a prefix of
    // its range emptied; the global intersection is a subset of it.
    if dead.load(Ordering::Relaxed) {
        return Some(BTreeSet::new());
    }
    // `count > 0` guarantees at least one chunk; if that invariant ever
    // broke, the empty-default is still the correct empty intersection.
    Some(
        partials
            .into_iter()
            .reduce(|mut acc, next| {
                acc.retain(|row| next.contains(row));
                acc
            })
            .unwrap_or_default(),
    )
}

/// Deterministic parallel map: compute `f(0), …, f(count - 1)` on at most
/// `threads` workers over contiguous index chunks and return the results
/// **in index order**, so the output is byte-identical at every thread
/// count. Used by the chase engine's match phase (this module is the
/// sanctioned home for `std::thread` in the query crate). Runs
/// sequentially for `threads <= 1` or fewer than two items.
pub fn parallel_map<T: Send>(
    count: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let width = threads.max(1).min(count.max(1));
    if width <= 1 {
        return (0..count).map(f).collect();
    }
    let per = count.div_ceil(width).max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut lo = 0;
        while lo < count {
            let hi = (lo + per).min(count);
            let f = &f;
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
            lo = hi;
        }
        let mut out = Vec::with_capacity(count);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                // A worker only panics if `f` panicked; re-raise the
                // original payload rather than inventing a new panic here.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_relational::database::build::{c, n, table};

    #[test]
    fn parallel_map_is_order_preserving_at_every_width() {
        let expected: Vec<usize> = (0..103).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 9] {
            assert_eq!(parallel_map(103, threads, |i| i * i), expected);
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i), vec![0]);
    }

    #[test]
    fn completion_space_counts() {
        let db = table("R", 2, &[&[c(0), n(1)], &[n(2), c(0)]]);
        let pool = [0, 1];
        let space = CompletionSpace::new(&db, &pool);
        assert_eq!(space.len(), 4);
        for i in 0..4 {
            assert!(space.completion(i).is_complete());
        }
        // No nulls: exactly one completion, the database itself.
        let complete = table("R", 1, &[&[c(7)]]);
        let space = CompletionSpace::new(&complete, &[]);
        assert_eq!(space.len(), 1);
        assert_eq!(space.completion(0), complete);
        // Nulls but empty pool: the space is empty.
        let stuck = table("R", 1, &[&[n(1)]]);
        let space = CompletionSpace::new(&stuck, &[]);
        assert!(space.is_empty());
    }

    #[test]
    fn completion_space_matches_completions_over() {
        let db = table("R", 2, &[&[c(0), n(1)], &[n(2), n(1)]]);
        let pool = [0, 1, 2];
        let space = CompletionSpace::new(&db, &pool);
        let mut by_index: Vec<NaiveDatabase> =
            (0..space.len()).map(|i| space.completion(i)).collect();
        let mut legacy = db.completions_over(&pool);
        assert_eq!(by_index.len(), legacy.len());
        by_index.sort_by(|a, b| a.facts().cmp(b.facts()));
        legacy.sort_by(|a, b| a.facts().cmp(b.facts()));
        assert_eq!(by_index, legacy);
    }

    /// The columnar completion path grounds every null exactly as the
    /// legacy `Valuation`-based one, at every linear index — including
    /// when grounding collapses distinct facts into duplicates.
    #[test]
    fn completion_store_matches_completion() {
        use ca_relational::store_bridge::from_store;
        let db = table("R", 2, &[&[c(0), n(1)], &[n(2), n(1)], &[n(2), c(0)]]);
        let pool = [0, 1, 5];
        let space = CompletionSpace::new(&db, &pool);
        assert_eq!(space.len(), 9);
        for i in 0..space.len() {
            let store = space.completion_store(i);
            assert_eq!(from_store(&store), space.completion(i), "index {i}");
        }
        // No nulls: the sole completion is the database itself.
        let complete = table("R", 1, &[&[c(7)]]);
        let space = CompletionSpace::new(&complete, &[]);
        assert_eq!(from_store(&space.completion_store(0)), complete);
    }

    #[test]
    fn parallel_all_agrees_across_thread_counts() {
        for threads in [1, 2, 4, 7] {
            assert!(parallel_all(100, threads, |i| i < 1000));
            assert!(!parallel_all(100, threads, |i| i != 63));
            assert!(parallel_all(0, threads, |_| false), "vacuous truth");
        }
    }

    /// Counts below [`PAR_MIN_COMPLETIONS`] must stay sequential (pool
    /// spawn would dominate); above it the requested width applies.
    #[test]
    fn small_grids_stay_sequential() {
        assert_eq!(effective_threads(PAR_MIN_COMPLETIONS - 1, 8), 1);
        assert_eq!(effective_threads(PAR_MIN_COMPLETIONS, 8), 8);
        assert_eq!(effective_threads(0, 8), 1);
        assert_eq!(effective_threads(PAR_MIN_COMPLETIONS, 0), 1);
    }

    /// The genuinely parallel path (count past the threshold) agrees
    /// with sequential on both sweeps.
    #[test]
    fn parallel_path_agrees_past_threshold() {
        let count = PAR_MIN_COMPLETIONS + 5_000;
        assert!(parallel_all(count, 4, |i| i < count));
        assert!(!parallel_all(count, 4, |i| i != PAR_MIN_COMPLETIONS + 63));
        let eval = |i: u128| -> BTreeSet<Vec<Value>> {
            (0..4u8)
                .filter(|&j| u128::from(j) != i % 97)
                .map(|j| vec![c(i64::from(j))])
                .collect()
        };
        let expected = parallel_intersect(count, 1, eval).unwrap();
        assert_eq!(parallel_intersect(count, 4, eval).unwrap(), expected);
    }

    #[test]
    fn parallel_intersect_agrees_across_thread_counts() {
        let eval = |i: u128| -> BTreeSet<Vec<Value>> {
            // Row {c(j)} survives completion i iff j divides 60... use a
            // simple shrinking family: completion i keeps rows >= i/8.
            (0..8u8)
                .filter(|&j| u128::from(j) >= i / 8)
                .map(|j| vec![c(i64::from(j))])
                .collect()
        };
        let expected = parallel_intersect(20, 1, eval).unwrap();
        for threads in [2, 3, 4, 9] {
            assert_eq!(parallel_intersect(20, threads, eval).unwrap(), expected);
        }
        assert!(parallel_intersect(0, 4, eval).is_none());
        // A family that empties early.
        let empty = parallel_intersect(64, 4, |i| {
            if i == 5 {
                BTreeSet::new()
            } else {
                BTreeSet::from([vec![c(1)]])
            }
        });
        assert_eq!(empty, Some(BTreeSet::new()));
    }
}
