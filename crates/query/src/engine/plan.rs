//! Plan compilation: a CQ becomes a sequence of indexed atom matchers.
//!
//! Compilation resolves relation names against a schema (rejecting
//! unknown names and arity mismatches with a typed [`PlanError`] instead
//! of the reference evaluator's silent empty answer), picks a greedy join
//! order (most-bound atom first), and classifies every atom position into
//! one of three roles:
//!
//! * part of the **probe key** — a constant, or a variable bound by an
//!   earlier atom in the plan: these positions form the atom's *index
//!   signature*, the set of positions a hash index on the relation must
//!   be keyed by;
//! * a **bind** — the first occurrence of a variable: matching a fact
//!   writes the value into the variable's slot;
//! * a **check** — a repeated occurrence of a variable first bound
//!   *within the same atom* (e.g. the second `x` of `R(x, x)`): checked
//!   against the just-bound slot after the probe.
//!
//! Variables compile to dense slot numbers, so evaluation never searches
//! an association list the way the reference evaluator does.

use std::collections::BTreeMap;
use std::fmt;

use ca_core::symbol::Symbol;
use ca_core::value::Value;
use ca_relational::schema::Schema;

use crate::ast::{ConjunctiveQuery, Term, UnionQuery};

use super::cost::CostModel;

/// A typed plan-compilation failure. The reference evaluator silently
/// returns no matches in all of these situations; the engine surfaces
/// them so callers can distinguish "no certain answers" from "the query
/// does not fit the schema".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// An atom names a relation absent from the schema.
    UnknownRelation {
        /// The offending relation name.
        rel: String,
    },
    /// An atom uses a relation at the wrong arity.
    ArityMismatch {
        /// The relation name.
        rel: String,
        /// The arity declared by the schema.
        declared: usize,
        /// The arity the atom used.
        used: usize,
    },
    /// A head variable does not occur in the body (the query is unsafe).
    UnboundHeadVar {
        /// The offending head variable.
        var: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownRelation { rel } => {
                write!(f, "unknown relation {rel} (not in the schema)")
            }
            PlanError::ArityMismatch {
                rel,
                declared,
                used,
            } => write!(
                f,
                "relation {rel} has arity {declared} but the atom uses {used} arguments"
            ),
            PlanError::UnboundHeadVar { var } => {
                write!(f, "head variable x{var} does not occur in the body")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One component of an atom's probe key.
#[derive(Clone, Copy, Debug)]
pub(crate) enum KeyPart {
    /// A constant from the query.
    Const(Value),
    /// The value of an already-bound variable slot.
    Slot(usize),
}

/// One atom of a compiled plan.
#[derive(Clone, Debug)]
pub(crate) struct AtomPlan {
    /// The relation to match.
    pub rel: Symbol,
    /// Sorted positions whose values are known before matching — the
    /// index signature. Empty signature = full relation scan.
    pub sig: Vec<usize>,
    /// Key components aligned with `sig`.
    pub key: Vec<KeyPart>,
    /// `(position, slot)` pairs: first occurrences of variables, bound
    /// from the matched fact.
    pub binds: Vec<(usize, usize)>,
    /// `(position, slot)` pairs: repeated occurrences of variables first
    /// bound within this same atom, checked after binding.
    pub checks: Vec<(usize, usize)>,
}

/// A compiled conjunctive query: atoms in join order plus the head
/// projection.
#[derive(Clone, Debug)]
pub struct CompiledCq {
    pub(crate) atoms: Vec<AtomPlan>,
    pub(crate) head_slots: Vec<usize>,
    pub(crate) n_slots: usize,
}

impl CompiledCq {
    /// Compile a CQ against a schema.
    pub fn compile(q: &ConjunctiveQuery, schema: &Schema) -> Result<CompiledCq, PlanError> {
        Self::compile_with_pin(q, schema, None)
    }

    /// Compile with atom `pin` forced to the front of the join order (the
    /// remaining atoms are ordered greedily as usual). Because nothing
    /// precedes the pinned atom, its key parts are all constants, which
    /// is what lets [`crate::engine::eval_seeded_into`] range it over an
    /// explicit fact list (a semi-naive delta set) instead of the whole
    /// relation. A `pin` out of range is ignored (plain compilation).
    pub fn compile_pinned(
        q: &ConjunctiveQuery,
        schema: &Schema,
        pin: usize,
    ) -> Result<CompiledCq, PlanError> {
        Self::compile_with_pin(q, schema, Some(pin))
    }

    /// The column position of the leading atom's first variable binding,
    /// if any — the join-key column the morsel-driven paths
    /// (`crate::engine::par`, the chase's partitioned match phase)
    /// hash-partition the leading atom's row lists on. `None` when the
    /// plan is empty or its leading atom binds nothing (all-constant
    /// atom); callers then partition by row id instead.
    pub fn lead_bind_pos(&self) -> Option<usize> {
        self.atoms
            .first()
            .and_then(|a| a.binds.first().map(|&(pos, _)| pos))
    }

    /// Compile with the join order picked by a [`CostModel`]: the DP
    /// searches all orders where that is affordable and falls back to
    /// the greedy order beyond its width limit. Plan *choice* changes
    /// with the model; plan *answers* never do.
    pub fn compile_costed(
        q: &ConjunctiveQuery,
        schema: &Schema,
        model: &CostModel,
    ) -> Result<CompiledCq, PlanError> {
        Self::compile_with_model(q, schema, None, model)
    }

    /// Cost-based compilation with atom `pin` forced to the front (the
    /// seeded-evaluation contract of [`Self::compile_pinned`] holds).
    pub fn compile_costed_pinned(
        q: &ConjunctiveQuery,
        schema: &Schema,
        pin: usize,
        model: &CostModel,
    ) -> Result<CompiledCq, PlanError> {
        Self::compile_with_model(q, schema, Some(pin), model)
    }

    fn compile_with_model(
        q: &ConjunctiveQuery,
        schema: &Schema,
        pin: Option<usize>,
        model: &CostModel,
    ) -> Result<CompiledCq, PlanError> {
        let rels = resolve_rels(q, schema)?;
        let greedy = join_order(q, pin);
        match model.order(q, &rels, pin) {
            // Hysteresis: take the DP's order only for a predicted win
            // past [`cost::DP_WIN_MARGIN`]. On near-ties the greedy
            // baseline is kept, so plan choice is stable under
            // statistics jitter and genuinely equivalent plans stay
            // identical to the greedy compilation.
            Some(dp)
                if dp != greedy
                    && model.order_cost(q, &rels, &dp)
                        < super::cost::DP_WIN_MARGIN * model.order_cost(q, &rels, &greedy) =>
            {
                build(q, &rels, &dp)
            }
            _ => build(q, &rels, &greedy),
        }
    }

    fn compile_with_pin(
        q: &ConjunctiveQuery,
        schema: &Schema,
        pin: Option<usize>,
    ) -> Result<CompiledCq, PlanError> {
        let rels = resolve_rels(q, schema)?;
        let order = join_order(q, pin);
        build(q, &rels, &order)
    }
}

/// Resolve every atom's relation against the schema, validating arities.
fn resolve_rels(q: &ConjunctiveQuery, schema: &Schema) -> Result<Vec<Symbol>, PlanError> {
    let mut rels = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        let rel = schema
            .relation(&atom.rel)
            .ok_or_else(|| PlanError::UnknownRelation {
                rel: atom.rel.clone(),
            })?;
        let declared = schema.arity(rel);
        if declared != atom.args.len() {
            return Err(PlanError::ArityMismatch {
                rel: atom.rel.clone(),
                declared,
                used: atom.args.len(),
            });
        }
        rels.push(rel);
    }
    Ok(rels)
}

/// Classify every atom position along the given join `order` (see the
/// module docs) and wire the head projection. The ordering policy —
/// greedy or cost-based — is fully decided by here; classification is
/// policy-independent.
fn build(q: &ConjunctiveQuery, rels: &[Symbol], order: &[usize]) -> Result<CompiledCq, PlanError> {
    let mut slots: BTreeMap<u32, usize> = BTreeMap::new();
    let mut atoms = Vec::with_capacity(order.len());
    for &i in order {
        let atom = &q.atoms[i];
        let mut plan = AtomPlan {
            rel: rels[i],
            sig: Vec::new(),
            key: Vec::new(),
            binds: Vec::new(),
            checks: Vec::new(),
        };
        for (pos, term) in atom.args.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    plan.sig.push(pos);
                    plan.key.push(KeyPart::Const(Value::Const(*c)));
                }
                Term::Var(v) => {
                    if let Some(&slot) = slots.get(v) {
                        if plan.binds.iter().any(|&(_, s)| s == slot) {
                            // Bound earlier in this very atom: the value
                            // is only known after the probe.
                            plan.checks.push((pos, slot));
                        } else {
                            plan.sig.push(pos);
                            plan.key.push(KeyPart::Slot(slot));
                        }
                    } else {
                        let slot = slots.len();
                        slots.insert(*v, slot);
                        plan.binds.push((pos, slot));
                    }
                }
            }
        }
        atoms.push(plan);
    }

    let head_slots = q
        .head
        .iter()
        .map(|v| {
            slots
                .get(v)
                .copied()
                .ok_or(PlanError::UnboundHeadVar { var: *v })
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(CompiledCq {
        atoms,
        head_slots,
        n_slots: slots.len(),
    })
}

/// Greedy bound-variable join ordering: repeatedly pick the atom with the
/// most positions already known (constants + variables bound by earlier
/// picks), tie-breaking on fewer fresh variables, then original order.
/// Deterministic by construction. When `pin` names an atom, that atom is
/// forced to the front and the greedy order continues from its variable
/// bindings.
fn join_order(q: &ConjunctiveQuery, pin: Option<usize>) -> Vec<usize> {
    let n = q.atoms.len();
    let mut bound: Vec<u32> = Vec::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    if let Some(p) = pin.filter(|&p| p < n) {
        remaining.retain(|&i| i != p);
        for v in q.atoms[p].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(p);
    }
    loop {
        let best = remaining
            .iter()
            .map(|&i| {
                let atom = &q.atoms[i];
                let mut known = 0usize;
                let mut fresh: Vec<u32> = Vec::new();
                for t in &atom.args {
                    match t {
                        Term::Const(_) => known += 1,
                        Term::Var(v) => {
                            if bound.contains(v) {
                                known += 1;
                            } else if !fresh.contains(v) {
                                fresh.push(*v);
                            }
                        }
                    }
                }
                // Max known, then min fresh, then min index.
                (usize::MAX - known, fresh.len(), i)
            })
            .min()
            .map(|(_, _, i)| i);
        // `min()` is `None` exactly when no atoms remain: we are done.
        let Some(best) = best else {
            break;
        };
        remaining.retain(|&i| i != best);
        for v in q.atoms[best].vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        order.push(best);
    }
    order
}

/// A compiled union of conjunctive queries.
#[derive(Clone, Debug)]
pub struct CompiledUcq {
    pub(crate) disjuncts: Vec<CompiledCq>,
    pub(crate) head_arity: usize,
}

impl CompiledUcq {
    /// Compile every disjunct; fails on the first disjunct that does not
    /// fit the schema.
    pub fn compile(q: &UnionQuery, schema: &Schema) -> Result<CompiledUcq, PlanError> {
        let disjuncts = q
            .disjuncts
            .iter()
            .map(|d| CompiledCq::compile(d, schema))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledUcq {
            disjuncts,
            head_arity: q.head_arity(),
        })
    }

    /// Assemble a UCQ plan from already-compiled disjuncts (the plan
    /// cache's pinned path compiles disjunct-by-disjunct).
    pub(crate) fn from_parts(disjuncts: Vec<CompiledCq>, head_arity: usize) -> CompiledUcq {
        CompiledUcq {
            disjuncts,
            head_arity,
        }
    }

    /// Compile every disjunct with cost-based ordering; fails on the
    /// first disjunct that does not fit the schema.
    pub fn compile_costed(
        q: &UnionQuery,
        schema: &Schema,
        model: &CostModel,
    ) -> Result<CompiledUcq, PlanError> {
        let disjuncts = q
            .disjuncts
            .iter()
            .map(|d| CompiledCq::compile_costed(d, schema, model))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CompiledUcq {
            disjuncts,
            head_arity: q.head_arity(),
        })
    }

    /// Compile leniently, **dropping** disjuncts that do not fit the
    /// schema. This reproduces the reference evaluator's semantics, where
    /// an atom over an unknown relation (or at the wrong arity) silently
    /// matches nothing, so the whole disjunct contributes no answers.
    /// Used by the legacy [`crate::eval`] entry points.
    pub fn compile_lenient(q: &UnionQuery, schema: &Schema) -> CompiledUcq {
        CompiledUcq {
            disjuncts: q
                .disjuncts
                .iter()
                .filter_map(|d| CompiledCq::compile(d, schema).ok())
                .collect(),
            head_arity: q.head_arity(),
        }
    }

    /// The shared head arity (0 for Boolean queries).
    pub fn head_arity(&self) -> usize {
        self.head_arity
    }

    /// The compiled disjuncts in declaration order. The chase engine
    /// caches single-disjunct UCQ plans per rule body and evaluates the
    /// lone disjunct seeded; everything it needs is this slice.
    pub fn disjuncts(&self) -> &[CompiledCq] {
        &self.disjuncts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use Term::{Const as C, Var as V};

    fn schema() -> Schema {
        Schema::from_relations(&[("R", 2), ("S", 1)])
    }

    #[test]
    fn constants_and_bound_vars_come_first() {
        // R(x, y) ∧ S(x) ∧ R(y, 3): the constant-bearing atom leads, then
        // atoms join on bound variables.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("S", vec![V(0)]),
            Atom::new("R", vec![V(1), C(3)]),
        ]);
        let order = join_order(&q, None);
        assert_eq!(order[0], 2, "constant atom should lead: {order:?}");
        // Whatever follows, every later atom shares a variable with the
        // prefix (the query is connected), so no cartesian products.
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn pinned_atom_leads_and_its_key_is_constant_only() {
        // Same query: pinning atom 0 overrides the greedy leader, and the
        // pinned atom's probe key carries no Slot parts (nothing is bound
        // before it), the invariant seeded evaluation relies on.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("S", vec![V(0)]),
            Atom::new("R", vec![V(1), C(3)]),
        ]);
        assert_eq!(join_order(&q, Some(0))[0], 0);
        let plan = CompiledCq::compile_pinned(&q, &schema(), 0).unwrap();
        assert!(plan.atoms[0]
            .key
            .iter()
            .all(|k| matches!(k, KeyPart::Const(_))));
        // Out-of-range pin falls back to the plain greedy order.
        assert_eq!(join_order(&q, Some(17)), join_order(&q, None));
    }

    #[test]
    fn repeated_var_within_atom_becomes_check() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]);
        let plan = CompiledCq::compile(&q, &schema()).unwrap();
        assert_eq!(plan.atoms[0].binds.len(), 1);
        assert_eq!(plan.atoms[0].checks.len(), 1);
        assert!(plan.atoms[0].sig.is_empty());
    }

    #[test]
    fn unknown_relation_is_a_typed_error() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("T", vec![V(0)])]);
        assert_eq!(
            CompiledCq::compile(&q, &schema()).unwrap_err(),
            PlanError::UnknownRelation { rel: "T".into() }
        );
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0)])]);
        assert_eq!(
            CompiledCq::compile(&q, &schema()).unwrap_err(),
            PlanError::ArityMismatch {
                rel: "R".into(),
                declared: 2,
                used: 1
            }
        );
    }

    #[test]
    fn unsafe_head_is_a_typed_error() {
        let q = ConjunctiveQuery {
            head: vec![7],
            atoms: vec![Atom::new("S", vec![V(0)])],
        };
        assert_eq!(
            CompiledCq::compile(&q, &schema()).unwrap_err(),
            PlanError::UnboundHeadVar { var: 7 }
        );
    }

    #[test]
    fn lenient_compilation_drops_broken_disjuncts() {
        let q = UnionQuery::new(vec![
            ConjunctiveQuery::boolean(vec![Atom::new("S", vec![V(0)])]),
            ConjunctiveQuery::boolean(vec![Atom::new("T", vec![V(0)])]),
        ]);
        assert!(CompiledUcq::compile(&q, &schema()).is_err());
        let lenient = CompiledUcq::compile_lenient(&q, &schema());
        assert_eq!(lenient.disjuncts.len(), 1);
    }
}
