//! Per-relation hash indices over a naïve database.
//!
//! A [`DbIndex`] is built against one database and cached across all the
//! disjuncts of a UCQ (and across repeated evaluations on the same
//! database). Facts are grouped by relation once at construction; hash
//! indices keyed by *bound-position signatures* (the sorted positions a
//! compiled atom knows values for before matching — see
//! [`crate::engine::plan`]) are built lazily, on the first atom that
//! probes with that signature. Nulls index as ordinary values, which is
//! exactly the nulls-as-values semantics of naïve evaluation.
//!
//! [`DbIndex::ensure_cq`] resolves a compiled CQ's signatures to integer
//! handles once per (plan, database) pair, so the execution inner loop
//! probes by handle with no hashing of signatures and no allocation.

use std::collections::HashMap;

use ca_core::symbol::Symbol;
use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;

use super::plan::CompiledCq;

/// Handle of an atom's index table; [`SCAN`] means "scan the whole
/// relation" — either because the atom has no bound positions, or because
/// the relation is too small for a hash index to pay for itself (the
/// executor then checks the bound positions per candidate instead).
pub(crate) const SCAN: usize = usize::MAX;

/// Relations smaller than this are scanned rather than indexed: building
/// a `HashMap` over a handful of facts costs more than the comparisons it
/// saves, and the brute-force certain-answer sweep evaluates thousands of
/// such tiny completions.
pub(crate) const INDEX_THRESHOLD: usize = 16;

/// Lazily-built hash indices over one database.
pub struct DbIndex<'a> {
    /// Argument tuples of every fact, indexed by fact id.
    args: Vec<&'a [Value]>,
    /// Fact ids grouped per relation (indexed by `Symbol::index()`).
    by_rel: Vec<Vec<u32>>,
    /// The index tables, addressed by handle.
    tables: Vec<HashMap<Vec<Value>, Vec<u32>>>,
    /// `(relation, signature) → handle` — consulted only when ensuring.
    dir: HashMap<(Symbol, Vec<usize>), usize>,
}

impl<'a> DbIndex<'a> {
    /// Group the database's facts by relation (one linear pass); hash
    /// indices come later, on demand.
    pub fn new(db: &'a NaiveDatabase) -> Self {
        let mut by_rel = vec![Vec::new(); db.schema.len()];
        let mut args = Vec::with_capacity(db.len());
        for (id, fact) in db.facts().iter().enumerate() {
            by_rel[fact.rel.index()].push(id as u32);
            args.push(fact.args.as_slice());
        }
        DbIndex {
            args,
            by_rel,
            tables: Vec::new(),
            dir: HashMap::new(),
        }
    }

    /// Build an index over an explicit fact list instead of a
    /// [`NaiveDatabase`] — used by the chase engine, whose interned fact
    /// store is not a database. Fact ids are assigned in iteration order,
    /// so callers can translate their own ids onto index ids. Every
    /// `Symbol` yielded must satisfy `index() < n_relations`.
    pub fn from_facts<I>(n_relations: usize, facts: I) -> Self
    where
        I: IntoIterator<Item = (Symbol, &'a [Value])>,
    {
        let mut by_rel = vec![Vec::new(); n_relations];
        let mut args = Vec::new();
        for (id, (rel, tuple)) in facts.into_iter().enumerate() {
            by_rel[rel.index()].push(id as u32);
            args.push(tuple);
        }
        DbIndex {
            args,
            by_rel,
            tables: Vec::new(),
            dir: HashMap::new(),
        }
    }

    /// All fact ids of a relation.
    pub(crate) fn rows(&self, rel: Symbol) -> &[u32] {
        &self.by_rel[rel.index()]
    }

    /// The argument tuple of a fact.
    pub(crate) fn fact(&self, id: u32) -> &'a [Value] {
        self.args[id as usize]
    }

    /// Make sure every index signature the plan probes with exists,
    /// returning one table handle per atom ([`SCAN`] for scan atoms).
    /// Called once per (plan, database) pair before execution, so the
    /// execution loop can borrow the index immutably and probe by handle.
    pub(crate) fn ensure_cq(&mut self, cq: &CompiledCq) -> Vec<usize> {
        cq.atoms
            .iter()
            .map(|atom| {
                if atom.sig.is_empty() || self.by_rel[atom.rel.index()].len() < INDEX_THRESHOLD {
                    return SCAN;
                }
                if let Some(&h) = self.dir.get(&(atom.rel, atom.sig.clone())) {
                    return h;
                }
                let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
                for &id in &self.by_rel[atom.rel.index()] {
                    let fact = self.args[id as usize];
                    let key: Vec<Value> = atom.sig.iter().map(|&p| fact[p]).collect();
                    map.entry(key).or_default().push(id);
                }
                let h = self.tables.len();
                self.tables.push(map);
                self.dir.insert((atom.rel, atom.sig.clone()), h);
                h
            })
            .collect()
    }

    /// Fact ids matching `key` on the table behind `handle`.
    pub(crate) fn probe(&self, handle: usize, key: &[Value]) -> &[u32] {
        self.tables[handle].get(key).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_relational::database::build::{c, n, table};

    #[test]
    fn rows_group_by_relation() {
        let db = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        let idx = DbIndex::new(&db);
        let rel = db.schema.relation("R").unwrap();
        assert_eq!(idx.rows(rel).len(), 2);
    }

    #[test]
    fn small_relations_are_scanned_not_indexed() {
        use crate::ast::{Atom, ConjunctiveQuery, Term};
        let db = table("R", 2, &[&[n(1), c(2)], &[n(2), c(2)], &[c(5), c(9)]]);
        let mut idx = DbIndex::new(&db);
        let q = ConjunctiveQuery::with_head(
            vec![0],
            vec![Atom::new("R", vec![Term::Var(0), Term::Const(2)])],
        );
        let plan = CompiledCq::compile(&q, &db.schema).unwrap();
        // Three facts < INDEX_THRESHOLD: no table is built.
        let handles = idx.ensure_cq(&plan);
        assert_eq!(handles, vec![SCAN]);
        assert!(idx.tables.is_empty());
    }

    #[test]
    fn nulls_index_as_values_and_handles_are_shared() {
        use crate::ast::{Atom, ConjunctiveQuery, Term};
        // INDEX_THRESHOLD facts, so the hash index is actually built.
        let rows: Vec<Vec<Value>> = (0..INDEX_THRESHOLD as i64 - 2)
            .map(|i| vec![c(100 + i), c(9)])
            .chain([vec![n(1), c(2)], vec![n(2), c(2)]])
            .collect();
        let refs: Vec<&[Value]> = rows.iter().map(Vec::as_slice).collect();
        let db = table("R", 2, &refs);
        let mut idx = DbIndex::new(&db);
        // Q(x) ← R(x, 2): signature {1}.
        let q = ConjunctiveQuery::with_head(
            vec![0],
            vec![Atom::new("R", vec![Term::Var(0), Term::Const(2)])],
        );
        let plan = CompiledCq::compile(&q, &db.schema).unwrap();
        let handles = idx.ensure_cq(&plan);
        assert_eq!(handles.len(), 1);
        assert_ne!(handles[0], SCAN);
        // Nulls are grouped as ordinary values.
        assert_eq!(idx.probe(handles[0], &[c(2)]).len(), 2);
        assert_eq!(idx.probe(handles[0], &[c(9)]).len(), INDEX_THRESHOLD - 2);
        assert!(idx.probe(handles[0], &[c(7)]).is_empty());
        // Re-ensuring the same signature reuses the table.
        let again = idx.ensure_cq(&plan);
        assert_eq!(handles, again);
        assert_eq!(idx.tables.len(), 1);
    }
}
