//! Signature-keyed secondary indices over the columnar fact store.
//!
//! A [`DbIndex`] is built against one [`FactStore`] — owned (bridged
//! from a [`NaiveDatabase`] or a grounded completion) or borrowed (the
//! chase's live store) — and cached across all the disjuncts of a UCQ
//! (and across repeated evaluations on the same store). Live rows are
//! grouped per relation once at construction; postings keyed by
//! *bound-position signatures* (the sorted positions a compiled atom
//! knows values for before matching — see [`crate::engine::plan`]) are
//! built lazily, on the first atom that probes with that signature.
//! Nulls index as ordinary values (their ids carry the null tag bit),
//! which is exactly the nulls-as-values semantics of naïve evaluation.
//!
//! Two posting layouts, chosen per table deterministically from the
//! store's contents:
//!
//! * **CSR** for single-column signatures over a dense value universe:
//!   one `offsets` array indexed by value slot (constants first, then
//!   nulls) into one flat `rows` array — probe is two array reads, no
//!   hashing at all;
//! * **hash** for multi-column signatures (or when the value universe is
//!   much larger than the relation, where CSR offsets would waste
//!   memory): `Vec<ValueId> → Vec<row>`, hashing dense `u32`s instead of
//!   the old `Vec<Value>` keys.
//!
//! [`DbIndex::ensure_cq`] resolves a compiled CQ's signatures to table
//! handles and its plan constants to interned value ids once per
//! (plan, store) pair, so the execution inner loop probes by handle and
//! compares `u32`s with no hashing of signatures and no allocation.

use std::collections::HashMap;
use std::sync::OnceLock;

use ca_core::store::{self, FactStore, ValueId, INVALID_ID};
use ca_core::symbol::Symbol;
use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::store_bridge::to_store;

use super::cost::CostModel;
use super::plan::{CompiledCq, KeyPart};

/// Handle of an atom's index table; [`SCAN`] means "scan the whole
/// relation" — either because the atom has no bound positions, or because
/// the relation is too small for an index to pay for itself (the
/// executor then checks the bound positions per candidate instead).
pub(crate) const SCAN: usize = usize::MAX;

/// Relations smaller than this are scanned rather than indexed: building
/// postings over a handful of facts costs more than the comparisons it
/// saves, and the brute-force certain-answer sweep evaluates thousands of
/// such tiny completions.
pub(crate) const INDEX_THRESHOLD: usize = 16;

/// A CSR table wastes memory when the value universe dwarfs the
/// relation; build one only while `slots ≤ CSR_MAX_SLOT_FACTOR × rows`
/// (or the universe is trivially small). Deterministic in the store's
/// contents, so layout choice can never leak into results.
const CSR_MAX_SLOT_FACTOR: usize = 8;
const CSR_MIN_SLOTS: usize = 1024;

/// One atom's resolved access path: a posting-table handle (or [`SCAN`])
/// plus its key parts with plan constants pre-interned to value ids.
/// A constant absent from the store resolves to [`INVALID_ID`], which
/// matches no stored id — probes and scans find nothing, no special case.
pub(crate) struct AtomAccess {
    pub(crate) handle: usize,
    pub(crate) key: Vec<IdKey>,
}

/// A key part at the id level: an interned constant or a variable slot.
#[derive(Clone, Copy)]
pub(crate) enum IdKey {
    Const(ValueId),
    Slot(usize),
}

/// One lazily built posting table.
enum Table {
    /// Single-column signature over a dense universe: `offsets[slot] ..
    /// offsets[slot + 1]` indexes `rows`. Slots enumerate constants then
    /// nulls (`n_consts + null index`).
    Csr {
        n_consts: u32,
        offsets: Vec<u32>,
        rows: Vec<u32>,
    },
    /// General signature: id tuple → rows.
    Hash(HashMap<Vec<ValueId>, Vec<u32>>),
}

/// The store backing an index: owned (bridged databases, grounded
/// completions) or borrowed (the chase's live store).
enum Backing<'a> {
    Owned(Box<FactStore>),
    Borrowed(&'a FactStore),
}

/// Lazily-built secondary indices over one columnar store.
pub struct DbIndex<'a> {
    backing: Backing<'a>,
    /// Live row ids grouped per relation (indexed by `Symbol::index()`).
    by_rel: Vec<Vec<u32>>,
    /// The posting tables, addressed by handle.
    tables: Vec<Table>,
    /// `(relation, signature) → handle` — consulted only when ensuring.
    dir: HashMap<(Symbol, Vec<usize>), usize>,
    /// The cost model priced off the backing store, built on first use
    /// and shared immutably afterwards (`OnceLock`: the partitioned
    /// paths hand `&DbIndex` to scoped workers).
    model: OnceLock<CostModel>,
}

fn live_rows_by_rel(store: &FactStore) -> Vec<Vec<u32>> {
    store
        .relations()
        .map(|rel| {
            let t = store.table(rel);
            (0..t.n_rows()).filter(|&r| t.is_live(r)).collect()
        })
        .collect()
}

impl<'a> DbIndex<'a> {
    /// Bridge a naïve database into an owned store and index it. The
    /// store's relation symbols mirror the schema's, so plans compiled
    /// against the schema run unchanged.
    pub fn new(db: &'a NaiveDatabase) -> Self {
        Self::from_store(to_store(db))
    }

    /// Index an owned store (e.g. a grounded completion).
    pub fn from_store(store: FactStore) -> Self {
        let by_rel = live_rows_by_rel(&store);
        DbIndex {
            backing: Backing::Owned(Box::new(store)),
            by_rel,
            tables: Vec::new(),
            dir: HashMap::new(),
            model: OnceLock::new(),
        }
    }

    /// Index a borrowed store — the chase borrows its live store per
    /// round. Row lists snapshot the live rows at construction; facts
    /// inserted afterwards are *not* visible through this index.
    pub fn over(store: &'a FactStore) -> Self {
        let by_rel = live_rows_by_rel(store);
        DbIndex {
            backing: Backing::Borrowed(store),
            by_rel,
            tables: Vec::new(),
            dir: HashMap::new(),
            model: OnceLock::new(),
        }
    }

    /// The store behind this index.
    pub fn store(&self) -> &FactStore {
        match &self.backing {
            Backing::Owned(s) => s,
            Backing::Borrowed(s) => s,
        }
    }

    /// The cost model priced off the backing store (lazily built; a
    /// snapshot — later store mutations do not flow in, matching the
    /// index's own row-list snapshot semantics).
    pub fn model(&self) -> &CostModel {
        self.model
            .get_or_init(|| CostModel::from_store(self.store()))
    }

    /// Live row ids of a relation (in row order).
    pub(crate) fn rows(&self, rel: Symbol) -> &[u32] {
        &self.by_rel[rel.index()]
    }

    /// The column pages of a relation.
    pub(crate) fn cols(&self, rel: Symbol) -> &[Vec<ValueId>] {
        self.store().table(rel).cols()
    }

    /// The value behind an id (for head-row translation).
    pub(crate) fn value(&self, id: ValueId) -> Value {
        self.store().value(id)
    }

    /// Resolve an atom's key parts to the id level without touching the
    /// posting tables (used by scan paths).
    pub(crate) fn resolve_key(&self, key: &[KeyPart]) -> Vec<IdKey> {
        let values = self.store().values();
        key.iter()
            .map(|kp| match kp {
                KeyPart::Const(v) => IdKey::Const(values.lookup(*v).unwrap_or(INVALID_ID)),
                KeyPart::Slot(s) => IdKey::Slot(*s),
            })
            .collect()
    }

    /// The CSR slot of a value id: constants first, then nulls.
    /// [`INVALID_ID`] maps past every slot, so probes find nothing.
    fn csr_slot(n_consts: u32, id: ValueId) -> usize {
        if id == INVALID_ID {
            usize::MAX
        } else if store::id_is_null(id) {
            (n_consts + store::null_index(id)) as usize
        } else {
            id as usize
        }
    }

    /// Make sure every posting table the plan probes with exists,
    /// returning one access path per atom ([`SCAN`] handles for scan
    /// atoms). Called once per (plan, store) pair before execution, so
    /// the execution loop can borrow the index immutably and probe by
    /// handle.
    pub(crate) fn ensure_cq(&mut self, cq: &CompiledCq) -> Vec<AtomAccess> {
        cq.atoms
            .iter()
            .map(|atom| {
                let key = self.resolve_key(&atom.key);
                if atom.sig.is_empty() || self.by_rel[atom.rel.index()].len() < INDEX_THRESHOLD {
                    return AtomAccess { handle: SCAN, key };
                }
                if let Some(&h) = self.dir.get(&(atom.rel, atom.sig.clone())) {
                    return AtomAccess { handle: h, key };
                }
                let h = self.build_table(atom.rel, &atom.sig);
                self.dir.insert((atom.rel, atom.sig.clone()), h);
                AtomAccess { handle: h, key }
            })
            .collect()
    }

    /// Build the posting table for `(rel, sig)`, returning its handle.
    fn build_table(&mut self, rel: Symbol, sig: &[usize]) -> usize {
        let store = match &self.backing {
            Backing::Owned(s) => &**s,
            Backing::Borrowed(s) => *s,
        };
        let rows = &self.by_rel[rel.index()];
        let cols = store.table(rel).cols();
        let values = store.values();
        let n_consts = values.n_consts();
        let n_slots = (n_consts + values.n_nulls()) as usize;
        let table = match sig {
            &[pos] if n_slots <= CSR_MIN_SLOTS.max(CSR_MAX_SLOT_FACTOR * rows.len()) => {
                // Two-pass CSR: count per slot, prefix-sum, then place.
                let col = &cols[pos];
                let mut offsets = vec![0u32; n_slots + 1];
                for &row in rows {
                    offsets[Self::csr_slot(n_consts, col[row as usize]) + 1] += 1;
                }
                for s in 1..offsets.len() {
                    offsets[s] += offsets[s - 1];
                }
                let mut cursor = offsets.clone();
                let mut out = vec![0u32; rows.len()];
                for &row in rows {
                    let slot = Self::csr_slot(n_consts, col[row as usize]);
                    out[cursor[slot] as usize] = row;
                    cursor[slot] += 1;
                }
                Table::Csr {
                    n_consts,
                    offsets,
                    rows: out,
                }
            }
            _ => {
                let mut map: HashMap<Vec<ValueId>, Vec<u32>> = HashMap::new();
                for &row in rows {
                    let key: Vec<ValueId> = sig.iter().map(|&p| cols[p][row as usize]).collect();
                    map.entry(key).or_default().push(row);
                }
                Table::Hash(map)
            }
        };
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Row ids matching `key` on the table behind `handle`.
    pub(crate) fn probe(&self, handle: usize, key: &[ValueId]) -> &[u32] {
        match &self.tables[handle] {
            Table::Csr {
                n_consts,
                offsets,
                rows,
            } => {
                let &[id] = key else { return &[] };
                let slot = Self::csr_slot(*n_consts, id);
                let hi_slot = slot.checked_add(1).and_then(|s| offsets.get(s));
                let (Some(&lo), Some(&hi)) = (offsets.get(slot), hi_slot) else {
                    return &[];
                };
                rows.get(lo as usize..hi as usize).unwrap_or(&[])
            }
            Table::Hash(map) => map.get(key).map_or(&[], Vec::as_slice),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_relational::database::build::{c, n, table};

    #[test]
    fn rows_group_by_relation() {
        let db = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        let idx = DbIndex::new(&db);
        let rel = db.schema.relation("R").unwrap();
        assert_eq!(idx.rows(rel).len(), 2);
    }

    #[test]
    fn small_relations_are_scanned_not_indexed() {
        use crate::ast::{Atom, ConjunctiveQuery, Term};
        let db = table("R", 2, &[&[n(1), c(2)], &[n(2), c(2)], &[c(5), c(9)]]);
        let mut idx = DbIndex::new(&db);
        let q = ConjunctiveQuery::with_head(
            vec![0],
            vec![Atom::new("R", vec![Term::Var(0), Term::Const(2)])],
        );
        let plan = CompiledCq::compile(&q, &db.schema).unwrap();
        // Three facts < INDEX_THRESHOLD: no table is built.
        let access = idx.ensure_cq(&plan);
        assert_eq!(access.len(), 1);
        assert_eq!(access[0].handle, SCAN);
        assert!(idx.tables.is_empty());
    }

    #[test]
    fn nulls_index_as_values_and_handles_are_shared() {
        use crate::ast::{Atom, ConjunctiveQuery, Term};
        // INDEX_THRESHOLD facts, so the posting table is actually built.
        let rows: Vec<Vec<Value>> = (0..INDEX_THRESHOLD as i64 - 2)
            .map(|i| vec![c(100 + i), c(9)])
            .chain([vec![n(1), c(2)], vec![n(2), c(2)]])
            .collect();
        let refs: Vec<&[Value]> = rows.iter().map(Vec::as_slice).collect();
        let db = table("R", 2, &refs);
        let mut idx = DbIndex::new(&db);
        // Q(x) ← R(x, 2): signature {1}.
        let q = ConjunctiveQuery::with_head(
            vec![0],
            vec![Atom::new("R", vec![Term::Var(0), Term::Const(2)])],
        );
        let plan = CompiledCq::compile(&q, &db.schema).unwrap();
        let access = idx.ensure_cq(&plan);
        assert_eq!(access.len(), 1);
        let handle = access[0].handle;
        assert_ne!(handle, SCAN);
        // Nulls are grouped as ordinary values; probe keys are ids.
        let id2 = idx.store().lookup_value(c(2)).unwrap();
        let id9 = idx.store().lookup_value(c(9)).unwrap();
        assert_eq!(idx.probe(handle, &[id2]).len(), 2);
        assert_eq!(idx.probe(handle, &[id9]).len(), INDEX_THRESHOLD - 2);
        assert!(idx.probe(handle, &[INVALID_ID]).is_empty());
        // Re-ensuring the same signature reuses the table.
        let again = idx.ensure_cq(&plan);
        assert_eq!(handle, again[0].handle);
        assert_eq!(idx.tables.len(), 1);
        // Single-column signature over a small universe: the CSR layout.
        assert!(matches!(idx.tables[handle], Table::Csr { .. }));
    }

    #[test]
    fn absent_plan_constants_resolve_to_invalid_and_match_nothing() {
        use crate::ast::{Atom, ConjunctiveQuery, Term};
        let rows: Vec<Vec<Value>> = (0..INDEX_THRESHOLD as i64)
            .map(|i| vec![c(i), c(i + 1)])
            .collect();
        let refs: Vec<&[Value]> = rows.iter().map(Vec::as_slice).collect();
        let db = table("R", 2, &refs);
        let mut idx = DbIndex::new(&db);
        // Q(x) ← R(x, 999): 999 is not in the store.
        let q = ConjunctiveQuery::with_head(
            vec![0],
            vec![Atom::new("R", vec![Term::Var(0), Term::Const(999)])],
        );
        let plan = CompiledCq::compile(&q, &db.schema).unwrap();
        let access = idx.ensure_cq(&plan);
        let [IdKey::Const(id)] = access[0].key.as_slice() else {
            panic!("one const key part expected");
        };
        assert_eq!(*id, INVALID_ID);
        assert!(idx.probe(access[0].handle, &[*id]).is_empty());
    }

    #[test]
    fn borrowed_store_indexes_only_live_rows() {
        use ca_core::store::FactStore;
        use ca_core::value::Null;
        let mut s = FactStore::new();
        let r = s.add_relation("R", 2);
        s.insert(r, &[c(1), n(7)]);
        s.insert(r, &[c(1), c(3)]);
        // Collapse the null fact onto the ground one: one live row left.
        s.rewrite(&[Null(7)], |v| if v == n(7) { c(3) } else { v });
        let idx = DbIndex::over(&s);
        assert_eq!(idx.rows(r).len(), 1);
    }
}
