//! Cardinality-estimating cost model over store statistics.
//!
//! PR 2's greedy join order counts bound positions and nothing else: a
//! 32-row lookup relation and an 8192-row fact relation are
//! indistinguishable, so the greedy order can lead with the big relation
//! and enumerate thousands of rows that a selective atom would have cut
//! to a handful. This module prices join orders with the store
//! statistics of `ca_core::store::stats`:
//!
//! * the **estimated matches** of an atom given a set of already-bound
//!   variables is `rows / Π distinct(p)` over the atom's known positions
//!   (constants and bound variables) — the classic uniform-independence
//!   estimate;
//! * the **cost of an order** accumulates `card × (1 + est)` per step,
//!   where `card` is the estimated intermediate binding count (clamped
//!   at 1 so a selective prefix cannot make later work free);
//! * [`CostModel::order`] searches all orders by dynamic programming
//!   over atom subsets (System-R style, exact under the model) for
//!   plans up to [`DP_MAX_ATOMS`] atoms, and declines (`None` — the
//!   caller keeps the greedy order) above that width, so planning stays
//!   O(2ⁿ·n²) only where that is trivially affordable.
//!
//! Everything here is deterministic: estimates are pure arithmetic over
//! the statistics snapshot, the DP iterates masks and atoms in
//! ascending order with strict-improvement updates, and ties keep the
//! first (lowest-index) candidate. Statistics are advisory — a stale or
//! absent snapshot changes *which* correct plan runs, never the
//! answers, which stay pinned by the reference oracles.

use ca_core::store::{FactStore, StoreStats};
use ca_core::symbol::Symbol;

use crate::ast::{ConjunctiveQuery, Term};

use super::plan::CompiledCq;

/// Exhaustive-search width limit: the subset DP prices `2ⁿ` masks, so
/// past this many atoms the planner falls back to the greedy order.
pub(crate) const DP_MAX_ATOMS: usize = 11;

/// Plan-switch hysteresis: the DP's order replaces the greedy baseline
/// only when its estimated cost is below this fraction of the greedy
/// order's. Cardinality estimates carry error bars far wider than a few
/// percent, so a sub-margin predicted win is noise — switching on it
/// buys nothing and makes plan choice flap with statistics jitter.
pub(crate) const DP_WIN_MARGIN: f64 = 0.9;

/// Per-relation estimates: live rows and per-column distinct counts,
/// both clamped to ≥ 1 so divisions stay finite and an empty relation
/// still prices as "almost free" rather than zero-cost everywhere.
#[derive(Clone, Debug)]
struct RelEst {
    rows: f64,
    distinct: Vec<f64>,
}

impl RelEst {
    fn unknown(arity: usize) -> RelEst {
        RelEst {
            rows: 1.0,
            distinct: vec![1.0; arity],
        }
    }
}

/// A priced view of one store's relations, indexed by `Symbol::index()`.
/// Build one per [`super::DbIndex`] (lazily, see `DbIndex::model`) — it
/// is a snapshot: later store mutations do not flow in.
#[derive(Clone, Debug)]
pub struct CostModel {
    rels: Vec<RelEst>,
}

impl CostModel {
    /// Price a store. Prefers the incremental statistics tracker; a
    /// store whose history is unknown (remapped completion clones) falls
    /// back to live row counts with every column assumed unique — the
    /// shape is identical across completions, so the ordering decisions
    /// still track the base instance.
    pub fn from_store(store: &FactStore) -> CostModel {
        match store.stats() {
            Some(stats) => Self::from_stats(&stats),
            None => CostModel {
                rels: store
                    .relations()
                    .map(|rel| {
                        let rows = store.table(rel).n_live() as f64;
                        RelEst {
                            rows: rows.max(1.0),
                            distinct: vec![rows.max(1.0); store.arity(rel)],
                        }
                    })
                    .collect(),
            },
        }
    }

    /// Price a statistics snapshot.
    pub fn from_stats(stats: &StoreStats) -> CostModel {
        CostModel {
            rels: stats
                .rels
                .iter()
                .map(|rs| RelEst {
                    rows: (rs.n_live as f64).max(1.0),
                    distinct: rs
                        .cols
                        .iter()
                        // The tracker's distinct is an upper bound over
                        // history; cap it by the live rows so selectivity
                        // can never price below one row per key.
                        .map(|c| (c.distinct as f64).clamp(1.0, (rs.n_live as f64).max(1.0)))
                        .collect(),
                })
                .collect(),
        }
    }

    fn rel(&self, rel: Symbol, arity: usize) -> RelEst {
        self.rels
            .get(rel.index())
            .cloned()
            .unwrap_or_else(|| RelEst::unknown(arity))
    }

    /// Estimated matches of atom `i` of `q` when the variables in
    /// `bound` (a bitmask over `var_bit`) are already bound.
    fn est_atom(
        &self,
        q: &ConjunctiveQuery,
        rels: &[Symbol],
        i: usize,
        bound: u64,
        var_bit: impl Fn(u32) -> u32,
    ) -> f64 {
        let atom = &q.atoms[i];
        let est = self.rel(rels[i], atom.args.len());
        let mut sel = est.rows;
        for (pos, term) in atom.args.iter().enumerate() {
            let known = match term {
                Term::Const(_) => true,
                Term::Var(v) => bound & (1u64 << var_bit(*v)) != 0,
            };
            if known {
                sel /= est.distinct.get(pos).copied().unwrap_or(1.0).max(1.0);
            }
        }
        sel
    }

    /// The minimum-cost join order of `q` under this model, with atom
    /// `pin` (if any, in range) forced to the front. `None` when the
    /// query is outside the DP's reach — more than [`DP_MAX_ATOMS`]
    /// atoms or more than 64 distinct variables — or trivially ordered
    /// (fewer than two atoms); callers keep the greedy order then.
    pub(crate) fn order(
        &self,
        q: &ConjunctiveQuery,
        rels: &[Symbol],
        pin: Option<usize>,
    ) -> Option<Vec<usize>> {
        let n = q.atoms.len();
        if !(2..=DP_MAX_ATOMS).contains(&n) {
            return None;
        }
        // Dense variable numbering for the bound-set bitmask.
        let mut vars: Vec<u32> = Vec::new();
        for atom in &q.atoms {
            for v in atom.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        if vars.len() > 64 {
            return None;
        }
        // ca-lint: allow(L002, reason = "var_bit is only called on variables just collected from these same atoms")
        let var_bit = |v: u32| vars.iter().position(|&w| w == v).expect("collected") as u32;
        let atom_vars: Vec<u64> = q
            .atoms
            .iter()
            .map(|a| a.vars().fold(0u64, |m, v| m | (1u64 << var_bit(v))))
            .collect();

        // best[mask] = (cost, card, last atom) of the cheapest order
        // found covering exactly `mask`; `bound[mask]` its bound vars.
        #[derive(Clone, Copy)]
        struct State {
            cost: f64,
            card: f64,
            last: usize,
        }
        let full: usize = (1usize << n) - 1;
        let mut best: Vec<Option<State>> = vec![None; full + 1];
        let seed = |i: usize, best: &mut Vec<Option<State>>| {
            let est = self.est_atom(q, rels, i, 0, var_bit);
            best[1 << i] = Some(State {
                cost: est,
                card: est.max(1.0),
                last: i,
            });
        };
        match pin.filter(|&p| p < n) {
            Some(p) => seed(p, &mut best),
            None => (0..n).for_each(|i| seed(i, &mut best)),
        }
        for mask in 1..=full {
            let Some(state) = best[mask] else { continue };
            let bound = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .fold(0u64, |m, i| m | atom_vars[i]);
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let est = self.est_atom(q, rels, j, bound, var_bit);
                let next = State {
                    cost: state.cost + state.card * (1.0 + est),
                    card: (state.card * est).max(1.0),
                    last: j,
                };
                let slot = &mut best[mask | (1 << j)];
                // Strict improvement keeps the first (lowest-index)
                // candidate on ties: deterministic plan choice.
                if slot.is_none_or(|cur| next.cost < cur.cost) {
                    *slot = Some(next);
                }
            }
        }
        // Reconstruct by peeling the `last` atom off the full mask.
        let mut order = vec![0usize; n];
        let mut mask = full;
        for k in (0..n).rev() {
            // ca-lint: allow(L002, reason = "the DP seeds every single-atom mask and extends monotonically, so the full mask always holds a state")
            let state = best[mask].expect("full mask reachable: queries are finite");
            order[k] = state.last;
            mask &= !(1 << state.last);
        }
        debug_assert_eq!(mask, 0);
        Some(order)
    }

    /// The estimated cost of executing `q`'s atoms in exactly `order` —
    /// the same accumulation the DP minimizes, priced for one explicit
    /// order. Used to compare the DP's pick against the greedy baseline
    /// for the [`DP_WIN_MARGIN`] hysteresis check.
    pub(crate) fn order_cost(&self, q: &ConjunctiveQuery, rels: &[Symbol], order: &[usize]) -> f64 {
        let mut vars: Vec<u32> = Vec::new();
        for atom in &q.atoms {
            for v in atom.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        if vars.len() > 64 {
            // Outside the DP's reach the caller never compares orders.
            return f64::INFINITY;
        }
        // ca-lint: allow(L002, reason = "var_bit is only called on variables just collected from these same atoms")
        let var_bit = |v: u32| vars.iter().position(|&w| w == v).expect("collected") as u32;
        let mut bound = 0u64;
        let mut cost = 0.0;
        let mut card = 1.0f64;
        for (k, &i) in order.iter().enumerate() {
            let est = self.est_atom(q, rels, i, bound, var_bit);
            if k == 0 {
                cost = est;
            } else {
                cost += card * (1.0 + est);
            }
            card = (card * est).max(1.0);
            for v in q.atoms[i].vars() {
                bound |= 1 << var_bit(v);
            }
        }
        cost
    }

    /// Estimated matches of a compiled atom given its bound-position
    /// signature (every signature position counts as known).
    fn est_plan_atom(&self, atom: &crate::engine::plan::AtomPlan) -> f64 {
        let est = self.rel(atom.rel, atom.sig.len() + atom.binds.len());
        let mut sel = est.rows;
        for &pos in &atom.sig {
            sel /= est.distinct.get(pos).copied().unwrap_or(1.0).max(1.0);
        }
        sel
    }

    /// Estimated total work of executing a compiled plan in its chosen
    /// order: the same per-step `card × (1 + est)` accumulation the DP
    /// minimizes, read off the plan's bound-position signatures. Used to
    /// gate the parallel paths — partitioning only pays when the join
    /// itself is worth more than the spawn/merge overhead.
    pub fn plan_work(&self, cq: &CompiledCq) -> f64 {
        let mut cost = 0.0;
        let mut card = 1.0f64;
        for atom in &cq.atoms {
            let sel = self.est_plan_atom(atom);
            cost += card * (1.0 + sel);
            card = (card * sel).max(1.0);
        }
        cost
    }

    /// Estimated work of **seeded** evaluation of a compiled plan
    /// ([`crate::engine::eval_seeded_into`]): like [`Self::plan_work`],
    /// but the leading atom ranges over `n_seed` explicit rows instead
    /// of its whole relation. The chase gates its match-phase fan-out on
    /// this — a round with a small delta over a big store has little
    /// work no matter how big the store is.
    pub fn seeded_work(&self, cq: &CompiledCq, n_seed: usize) -> f64 {
        let Some((lead, rest)) = cq.atoms.split_first() else {
            return 0.0;
        };
        let seed = n_seed as f64;
        let mut cost = seed;
        // The lead's signature constants filter the seed the same way
        // they filter the relation: scale by the relative selectivity.
        let est = self.rel(lead.rel, lead.sig.len() + lead.binds.len());
        let mut frac = 1.0f64;
        for &pos in &lead.sig {
            frac /= est.distinct.get(pos).copied().unwrap_or(1.0).max(1.0);
        }
        let mut card = (seed * frac).max(1.0);
        for atom in rest {
            let sel = self.est_plan_atom(atom);
            cost += card * (1.0 + sel);
            card = (card * sel).max(1.0);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use ca_core::store::stats::{ColStats, RelStats};
    use Term::{Const as C, Var as V};

    /// Stats for Big(a,b): 8192 rows, both columns 256-distinct; and
    /// Tiny(b): 32 rows, 32-distinct.
    fn model() -> CostModel {
        CostModel::from_stats(&StoreStats {
            version: 0,
            rels: vec![
                RelStats {
                    n_live: 8192,
                    cols: vec![
                        ColStats {
                            distinct: 256,
                            min_const: 0,
                            max_const: 255,
                        },
                        ColStats {
                            distinct: 256,
                            min_const: 0,
                            max_const: 255,
                        },
                    ],
                },
                RelStats {
                    n_live: 32,
                    cols: vec![ColStats {
                        distinct: 32,
                        min_const: 0,
                        max_const: 31,
                    }],
                },
            ],
        })
    }

    #[test]
    fn selective_relation_leads() {
        // Big(x, y) ∧ Tiny(x): greedy sees equal bound counts and keeps
        // input order (Big first → 8192 enumerations); the cost model
        // leads with Tiny and probes Big 32 times.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("Big", vec![V(0), V(1)]),
            Atom::new("Tiny", vec![V(0)]),
        ]);
        let rels = [Symbol(0), Symbol(1)];
        let order = model().order(&q, &rels, None).expect("within DP reach");
        assert_eq!(order, vec![1, 0], "tiny relation first");
    }

    #[test]
    fn pin_overrides_cost() {
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("Big", vec![V(0), V(1)]),
            Atom::new("Tiny", vec![V(0)]),
        ]);
        let rels = [Symbol(0), Symbol(1)];
        let order = model().order(&q, &rels, Some(0)).unwrap();
        assert_eq!(order[0], 0, "pinned atom leads even when expensive");
        // Out-of-range pins are ignored, like the greedy orderer's.
        assert_eq!(
            model().order(&q, &rels, Some(9)),
            model().order(&q, &rels, None)
        );
    }

    #[test]
    fn wide_queries_decline_to_greedy() {
        let atoms: Vec<Atom> = (0..DP_MAX_ATOMS as u32 + 1)
            .map(|i| Atom::new("Tiny", vec![V(i)]))
            .collect();
        let rels = vec![Symbol(1); atoms.len()];
        let q = ConjunctiveQuery::boolean(atoms);
        assert_eq!(model().order(&q, &rels, None), None);
        let small = ConjunctiveQuery::boolean(vec![Atom::new("Tiny", vec![V(0)])]);
        assert_eq!(
            model().order(&small, &[Symbol(1)], None),
            None,
            "single atom: nothing to order"
        );
    }

    #[test]
    fn constants_make_atoms_cheap() {
        // Big(3, x) ∧ Big(x, y): the constant-keyed atom estimates
        // 8192/256 = 32 matches and must lead.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("Big", vec![V(0), V(1)]),
            Atom::new("Big", vec![C(3), V(0)]),
        ]);
        let rels = [Symbol(0), Symbol(0)];
        assert_eq!(model().order(&q, &rels, None).unwrap(), vec![1, 0]);
    }

    #[test]
    fn order_is_deterministic_under_symmetry() {
        // Two indistinguishable atoms: ties keep ascending input order.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("Tiny", vec![V(0)]),
            Atom::new("Tiny", vec![V(0)]),
        ]);
        let rels = [Symbol(1), Symbol(1)];
        assert_eq!(model().order(&q, &rels, None).unwrap(), vec![0, 1]);
    }
}
