//! A revision-keyed cache of compiled (U)CQ plans.
//!
//! The chase compiles every rule body once per round and the bench
//! harness recompiles each query per evaluation; both rebuilds are pure
//! waste when the store has not changed. A [`PlanCache`] keys compiled
//! plans by the query **and** the store's revision counter
//! ([`ca_core::store::FactStore::version`]): a hit requires the exact
//! query (structural equality, not just the fingerprint) at the exact
//! revision, so a mutated store can never serve a plan priced on stale
//! statistics. Invalidation is exact and free — the revision bump *is*
//! the invalidation.
//!
//! A stale plan would still be **correct** (compiled plans hold no row
//! references, only relation symbols), so invalidation here is about
//! re-optimizing against fresh statistics, not soundness. The cache
//! still refuses to serve stale entries: the contract "a cached plan is
//! the plan cold compilation would produce right now" is what the
//! determinism pins rely on.
//!
//! Determinism: buckets live in a `BTreeMap` and fingerprints come from
//! the workspace Fx hasher (`ca_core::fxhash::FxHasher` — fixed seed,
//! stable across runs and processes, and an order of magnitude cheaper
//! than SipHash on the hit path, which is the whole point of a cache),
//! so cache behaviour is reproducible and ca-lint's L007 hash-iteration
//! rule has nothing to flag. Entries whose pin or query collide on the
//! fingerprint fall back to structural equality within the bucket.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ca_core::fxhash::FxHasher;
use ca_core::store::FactStore;
use ca_relational::schema::Schema;

use crate::ast::UnionQuery;

use super::cost::CostModel;
use super::plan::{CompiledUcq, PlanError};

/// One cached compilation: the query it came from (for exact matching
/// under fingerprint collisions), the store revision it was priced at,
/// and the shared plan.
struct Entry {
    query: UnionQuery,
    pin: Option<usize>,
    version: u64,
    plan: Arc<CompiledUcq>,
}

/// A cache of cost-based compiled plans for **one** store's lifetime.
/// Create one per pipeline that repeatedly evaluates over the same
/// evolving store (the chase engine owns one); do not share a cache
/// across unrelated stores — revisions of different stores are not
/// comparable.
#[derive(Default)]
pub struct PlanCache {
    buckets: BTreeMap<u64, Vec<Entry>>,
    hits: u64,
    misses: u64,
}

/// A shape-level fingerprint: disjunct/atom counts, relation names,
/// arities, head widths, and the pin. Deliberately does **not** hash
/// the terms — the fingerprint only routes to a bucket, structural
/// equality inside the bucket decides the hit, so a coarser (and much
/// cheaper) hash trades a vanishingly rare extra comparison for less
/// work on every single hit.
fn fingerprint(q: &UnionQuery, pin: Option<usize>) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(q.disjuncts.len());
    for d in &q.disjuncts {
        h.write_usize(d.head.len());
        h.write_usize(d.atoms.len());
        for a in &d.atoms {
            h.write(a.rel.as_bytes());
            h.write_usize(a.args.len());
        }
    }
    pin.hash(&mut h);
    h.finish()
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The plan for `q` against `store`'s schema-compatible contents:
    /// served from cache when `q` was already compiled at the store's
    /// current revision, else compiled cost-based from the store's
    /// statistics and cached. Identical to cold
    /// [`CompiledUcq::compile_costed`] in every observable way.
    pub fn get_or_compile(
        &mut self,
        q: &UnionQuery,
        schema: &Schema,
        store: &FactStore,
    ) -> Result<Arc<CompiledUcq>, PlanError> {
        self.lookup(q, None, schema, store)
    }

    /// Like [`Self::get_or_compile`], but every disjunct is compiled
    /// with atom `pin` forced to the front (the seeded-evaluation
    /// contract of [`super::plan::CompiledCq::compile_pinned`]). The pin
    /// is part of the cache key.
    pub fn get_or_compile_pinned(
        &mut self,
        q: &UnionQuery,
        pin: usize,
        schema: &Schema,
        store: &FactStore,
    ) -> Result<Arc<CompiledUcq>, PlanError> {
        self.lookup(q, Some(pin), schema, store)
    }

    fn lookup(
        &mut self,
        q: &UnionQuery,
        pin: Option<usize>,
        schema: &Schema,
        store: &FactStore,
    ) -> Result<Arc<CompiledUcq>, PlanError> {
        let fp = fingerprint(q, pin);
        let version = store.version();
        if let Some(entries) = self.buckets.get(&fp) {
            if let Some(e) = entries
                .iter()
                .find(|e| e.version == version && e.pin == pin && e.query == *q)
            {
                self.hits += 1;
                return Ok(Arc::clone(&e.plan));
            }
        }
        self.misses += 1;
        let model = CostModel::from_store(store);
        let plan = Arc::new(match pin {
            None => CompiledUcq::compile_costed(q, schema, &model)?,
            Some(p) => {
                let disjuncts = q
                    .disjuncts
                    .iter()
                    .map(|d| super::plan::CompiledCq::compile_costed_pinned(d, schema, p, &model))
                    .collect::<Result<Vec<_>, _>>()?;
                CompiledUcq::from_parts(disjuncts, q.head_arity())
            }
        });
        let entries = self.buckets.entry(fp).or_default();
        // One entry per (query, pin): a revision bump replaces, so the
        // cache stays bounded by the number of distinct queries.
        entries.retain(|e| e.pin != pin || e.query != *q);
        entries.push(Entry {
            query: q.clone(),
            pin,
            version,
            plan: Arc::clone(&plan),
        });
        Ok(plan)
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Compilations performed (cold misses and revision-bump recompiles).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, ConjunctiveQuery, Term::Var as V};
    use ca_core::value::Value;

    fn setup() -> (FactStore, Schema, UnionQuery) {
        let mut s = FactStore::new();
        let r = s.add_relation("R", 2);
        for i in 0..20 {
            s.insert(r, &[Value::Const(i), Value::Const(i + 1)]);
        }
        let schema = Schema::from_relations(&[("R", 2)]);
        let q = UnionQuery::single(ConjunctiveQuery::with_head(
            vec![0, 2],
            vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("R", vec![V(1), V(2)]),
            ],
        ));
        (s, schema, q)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_plan() {
        let (s, schema, q) = setup();
        let mut cache = PlanCache::new();
        let a = cache.get_or_compile(&q, &schema, &s).unwrap();
        let b = cache.get_or_compile(&q, &schema, &s).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the compiled plan");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn store_mutation_invalidates_exactly() {
        let (mut s, schema, q) = setup();
        let mut cache = PlanCache::new();
        let a = cache.get_or_compile(&q, &schema, &s).unwrap();
        let r = s.relation("R").unwrap();
        assert!(s
            .insert(r, &[Value::Const(100), Value::Const(101)])
            .is_some());
        let b = cache.get_or_compile(&q, &schema, &s).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "revision bump must recompile");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1, "the stale entry is replaced, not kept");
        // A duplicate insert does not bump the revision: still a hit.
        assert!(s
            .insert(r, &[Value::Const(100), Value::Const(101)])
            .is_none());
        let c = cache.get_or_compile(&q, &schema, &s).unwrap();
        assert!(Arc::ptr_eq(&b, &c));
    }

    #[test]
    fn pinned_and_unpinned_plans_are_distinct_entries() {
        let (s, schema, q) = setup();
        let mut cache = PlanCache::new();
        let plain = cache.get_or_compile(&q, &schema, &s).unwrap();
        let pinned = cache.get_or_compile_pinned(&q, 1, &schema, &s).unwrap();
        assert!(!Arc::ptr_eq(&plain, &pinned));
        assert_eq!(cache.len(), 2);
        assert!(Arc::ptr_eq(
            &pinned,
            &cache.get_or_compile_pinned(&q, 1, &schema, &s).unwrap()
        ));
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let (s, schema, _) = setup();
        let bad = UnionQuery::single(ConjunctiveQuery::boolean(vec![Atom::new(
            "Nope",
            vec![V(0)],
        )]));
        let mut cache = PlanCache::new();
        assert!(cache.get_or_compile(&bad, &schema, &s).is_err());
        assert!(cache.is_empty());
    }
}
