//! The compiled CQ/UCQ evaluation engine.
//!
//! Naïve evaluation is the paper's central positive result (for UCQs it
//! computes certain answers), so it is this repo's hottest query path.
//! The engine replaces the reference evaluator's nested-loop rescans
//! with three layers:
//!
//! 1. **plan compilation** ([`plan`]) — each CQ compiles once into a
//!    join plan: greedy bound-variable atom ordering, constants and
//!    repeated variables pushed into per-atom matchers, variables
//!    resolved to dense slots, schema errors rejected with a typed
//!    [`PlanError`];
//! 2. **columnar indexed execution** ([`index`]) — plans execute over
//!    the workspace columnar store (`ca_core::store`): the inner join
//!    loop reads interned `u32` ids straight from column pages (no tuple
//!    cloning, no `Value` hashing), with per-relation posting tables
//!    (CSR or hash) keyed by each atom's bound-position signature, built
//!    lazily on first probe and cached across the disjuncts of a UCQ and
//!    across repeated evaluations on the same store;
//! 3. **parallel completion sweep** ([`sweep`]) — brute-force certain
//!    answers sweep the `|pool|^#nulls` completion grid in parallel
//!    (`CA_EVAL_THREADS`), grounding each completion by remapping null
//!    ids over shared column pages, with early exit once the
//!    intersection empties and thread-count-independent results.
//!
//! The old evaluator survives unchanged as [`crate::reference`] and
//! serves as the differential-testing oracle (`tests/eval_differential.rs`),
//! mirroring the `ca_hom::csp` / `ca_hom::reference` kernel pattern.

pub mod cache;
pub mod cost;
pub mod index;
pub mod par;
pub mod plan;
pub mod sweep;

use std::collections::BTreeSet;

use ca_core::store::ValueId;
use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;
use ca_relational::schema::Schema;

use crate::ast::{ConjunctiveQuery, UnionQuery};

pub use cache::PlanCache;
pub use cost::CostModel;
pub use index::DbIndex;
pub use par::{
    eval_cq_partitioned, eval_ucq_gated, eval_ucq_partitioned, PART_MIN_ROWS, PART_MIN_WORK,
};
pub use plan::{CompiledCq, CompiledUcq, PlanError};
pub use sweep::{eval_threads, CompletionSpace};

/// Compile a CQ against a schema.
pub fn compile_cq(q: &ConjunctiveQuery, schema: &Schema) -> Result<CompiledCq, PlanError> {
    CompiledCq::compile(q, schema)
}

/// Compile a UCQ against a schema.
pub fn compile_ucq(q: &UnionQuery, schema: &Schema) -> Result<CompiledUcq, PlanError> {
    CompiledUcq::compile(q, schema)
}

/// Reusable per-evaluation buffers threaded through [`exec`]: the
/// variable-slot assignment (interned value ids), one probe-key scratch
/// buffer per join depth, and the head-row buffer handed to `emit`
/// (translated back to [`Value`]s only at emission).
struct ExecBufs {
    slots: Vec<ValueId>,
    scratch: Vec<Vec<ValueId>>,
    head_buf: Vec<Value>,
}

/// Execute the plan suffix from `depth`, with `access` naming each
/// atom's posting table and id-resolved key. The join loop compares
/// interned `u32` ids read straight from the store's column pages.
/// Returns `false` iff `emit` requested a stop.
fn exec(
    cq: &CompiledCq,
    access: &[index::AtomAccess],
    idx: &DbIndex<'_>,
    depth: usize,
    bufs: &mut ExecBufs,
    emit: &mut dyn FnMut(&[Value]) -> bool,
) -> bool {
    if depth == cq.atoms.len() {
        // One reused buffer for every head row: `emit` sees a borrow, so
        // no per-row allocation on the hot path.
        bufs.head_buf.clear();
        for &s in &cq.head_slots {
            bufs.head_buf.push(idx.value(bufs.slots[s]));
        }
        return emit(&bufs.head_buf);
    }
    let atom = &cq.atoms[depth];
    let acc = &access[depth];
    let cols = idx.cols(atom.rel);
    let scanning = acc.handle == index::SCAN;
    // Borrow this depth's scratch buffer by taking it out of the slice
    // (and restoring it below), so the recursive call can borrow the rest.
    let mut key_buf = std::mem::take(&mut bufs.scratch[depth]);
    let candidates: &[u32] = if scanning {
        // Full scan: bound positions (if any) are verified per candidate.
        idx.rows(atom.rel)
    } else {
        // Reuse this depth's scratch buffer for the probe key.
        key_buf.clear();
        key_buf.extend(acc.key.iter().map(|kp| match kp {
            index::IdKey::Const(id) => *id,
            index::IdKey::Slot(s) => bufs.slots[*s],
        }));
        idx.probe(acc.handle, &key_buf)
    };
    let mut keep_going = true;
    'cand: for &row in candidates {
        let r = row as usize;
        if scanning {
            // The index did not filter on the signature; do it here.
            for (&pos, kp) in atom.sig.iter().zip(&acc.key) {
                let expected = match kp {
                    index::IdKey::Const(id) => *id,
                    index::IdKey::Slot(s) => bufs.slots[*s],
                };
                if cols[pos][r] != expected {
                    continue 'cand;
                }
            }
        }
        for &(pos, slot) in &atom.binds {
            bufs.slots[slot] = cols[pos][r];
        }
        for &(pos, slot) in &atom.checks {
            if cols[pos][r] != bufs.slots[slot] {
                continue 'cand;
            }
        }
        if !exec(cq, access, idx, depth + 1, bufs, emit) {
            keep_going = false;
            break;
        }
    }
    bufs.scratch[depth] = key_buf;
    keep_going
}

/// Evaluate a compiled CQ, calling `emit` on every head row (with
/// duplicates; `emit` returning `false` stops the enumeration early).
pub fn eval_cq_into(
    cq: &CompiledCq,
    idx: &mut DbIndex<'_>,
    emit: &mut dyn FnMut(&[Value]) -> bool,
) {
    let mut slots: Vec<ValueId> = vec![0; cq.n_slots];
    let mut head_buf = Vec::with_capacity(cq.head_slots.len());
    if let [atom] = cq.atoms.as_slice() {
        // Single-atom fast path: with one atom there is no join to
        // accelerate, so building (or even resolving) a posting table
        // can never amortize against the single scan that replaces it —
        // measurably so on small relations (`e02_ucq_edge`). Verify the
        // bound-position signature inline, exactly as the scanning
        // branch of `exec` would.
        let key = idx.resolve_key(&atom.key);
        let cols = idx.cols(atom.rel);
        'cand: for &row in idx.rows(atom.rel) {
            let r = row as usize;
            for (&pos, kp) in atom.sig.iter().zip(&key) {
                let expected = match kp {
                    index::IdKey::Const(id) => *id,
                    index::IdKey::Slot(s) => slots[*s],
                };
                if cols[pos][r] != expected {
                    continue 'cand;
                }
            }
            for &(pos, slot) in &atom.binds {
                slots[slot] = cols[pos][r];
            }
            for &(pos, slot) in &atom.checks {
                if cols[pos][r] != slots[slot] {
                    continue 'cand;
                }
            }
            head_buf.clear();
            head_buf.extend(cq.head_slots.iter().map(|&s| idx.value(slots[s])));
            if !emit(&head_buf) {
                return;
            }
        }
        return;
    }
    let access = idx.ensure_cq(cq);
    let mut bufs = ExecBufs {
        slots,
        scratch: vec![Vec::new(); cq.atoms.len()],
        head_buf,
    };
    exec(cq, &access, &*idx, 0, &mut bufs, emit);
}

/// Minimum live rows of the leading relation before semijoin reduction
/// pays: below this, one posting probe per lead row costs more than the
/// dead enumerations it prunes.
pub(crate) const SEMIJOIN_MIN_ROWS: usize = 1024;

/// Semijoin-reduce the leading atom of a chain/star plan: keep only the
/// lead rows whose join-key values have a non-empty posting in some
/// later atom's single-column table. Sound because an empty posting for
/// the key value means that atom (hence the whole conjunction) cannot
/// match once the lead row binds it — pruned rows contribute no answers,
/// kept rows are evaluated in full, so the answer set is untouched.
///
/// Applies only when the plan has ≥ 3 atoms (on a two-atom join the
/// probe that filters *is* the join step — nothing is saved), the lead
/// relation has ≥ [`SEMIJOIN_MIN_ROWS`] live rows, and at least one
/// later atom probes a built (non-scan) single-column table keyed by a
/// slot the lead atom binds. Returns `None` when inapplicable; callers
/// then run the unreduced plan.
pub(crate) fn semijoin_filter_lead(
    cq: &CompiledCq,
    prep: &PreparedCq,
    idx: &DbIndex<'_>,
) -> Option<Vec<u32>> {
    let lead = cq.atoms.first()?;
    let rows = idx.rows(lead.rel);
    if cq.atoms.len() < 3 || rows.len() < SEMIJOIN_MIN_ROWS {
        return None;
    }
    // `(lead column, posting handle)` per eligible later atom.
    let mut filters: Vec<(usize, usize)> = Vec::new();
    for (atom, acc) in cq.atoms.iter().zip(&prep.access).skip(1) {
        if acc.handle == index::SCAN {
            continue;
        }
        if let (&[_], &[index::IdKey::Slot(s)]) = (atom.sig.as_slice(), acc.key.as_slice()) {
            if let Some(&(lead_pos, _)) = lead.binds.iter().find(|&&(_, slot)| slot == s) {
                filters.push((lead_pos, acc.handle));
            }
        }
    }
    if filters.is_empty() {
        return None;
    }
    let cols = idx.cols(lead.rel);
    let mut kept = Vec::with_capacity(rows.len());
    'row: for &r in rows {
        for &(pos, h) in &filters {
            if idx.probe(h, &[cols[pos][r as usize]]).is_empty() {
                continue 'row;
            }
        }
        kept.push(r);
    }
    Some(kept)
}

/// The resolved access paths of one compiled CQ on one [`DbIndex`],
/// resolved once by [`prepare_cq`]: per atom, a posting-table handle and
/// the key with plan constants interned to value ids. Keeping them
/// outside the index lets many evaluations (and many threads) share one
/// immutably borrowed index afterwards — the access pattern of the
/// semi-naive chase, which prepares every rule plan up front and then
/// runs the match phase in parallel.
pub struct PreparedCq {
    access: Vec<index::AtomAccess>,
}

/// Resolve a compiled CQ's posting tables on `idx` (building any missing
/// ones). The returned access paths are only meaningful for this (plan,
/// index) pair.
pub fn prepare_cq(cq: &CompiledCq, idx: &mut DbIndex<'_>) -> PreparedCq {
    PreparedCq {
        access: idx.ensure_cq(cq),
    }
}

/// Evaluate a prepared CQ against an immutably borrowed index, calling
/// `emit` on every head row (with duplicates; returning `false` stops
/// early). `prep` must come from [`prepare_cq`] for the same plan and
/// index.
pub fn eval_prepared_into(
    cq: &CompiledCq,
    prep: &PreparedCq,
    idx: &DbIndex<'_>,
    emit: &mut dyn FnMut(&[Value]) -> bool,
) {
    debug_assert_eq!(prep.access.len(), cq.atoms.len());
    let mut bufs = ExecBufs {
        slots: vec![0; cq.n_slots],
        scratch: vec![Vec::new(); cq.atoms.len()],
        head_buf: Vec::with_capacity(cq.head_slots.len()),
    };
    exec(cq, &prep.access, idx, 0, &mut bufs, emit);
}

/// Semi-naive evaluation of a prepared CQ: the **first** atom of the
/// plan ranges over `seed` — an explicit list of live *row ids of its
/// relation* (a fact id translates via `FactStore::fact_row`), typically
/// a delta set — instead of the whole relation, and the remaining atoms
/// join as usual. Compile the plan with [`CompiledCq::compile_pinned`]
/// so the atom to be seeded leads the join order; nothing precedes it,
/// so its key parts are all constants, verified inline per candidate
/// here (a `Slot` part is treated as unmatched rather than trusted). A
/// plan with no atoms emits nothing: there is no atom to seed.
pub fn eval_seeded_into(
    cq: &CompiledCq,
    prep: &PreparedCq,
    idx: &DbIndex<'_>,
    seed: &[u32],
    emit: &mut dyn FnMut(&[Value]) -> bool,
) {
    let Some(atom) = cq.atoms.first() else {
        return;
    };
    debug_assert_eq!(prep.access.len(), cq.atoms.len());
    let Some(acc) = prep.access.first() else {
        return;
    };
    let cols = idx.cols(atom.rel);
    let mut bufs = ExecBufs {
        slots: vec![0; cq.n_slots],
        scratch: vec![Vec::new(); cq.atoms.len()],
        head_buf: Vec::with_capacity(cq.head_slots.len()),
    };
    'cand: for &row in seed {
        let r = row as usize;
        for (&pos, kp) in atom.sig.iter().zip(&acc.key) {
            let expected = match kp {
                index::IdKey::Const(id) => *id,
                index::IdKey::Slot(_) => continue 'cand,
            };
            if cols[pos][r] != expected {
                continue 'cand;
            }
        }
        for &(pos, slot) in &atom.binds {
            bufs.slots[slot] = cols[pos][r];
        }
        for &(pos, slot) in &atom.checks {
            if cols[pos][r] != bufs.slots[slot] {
                continue 'cand;
            }
        }
        if !exec(cq, &prep.access, idx, 1, &mut bufs, emit) {
            return;
        }
    }
}

/// Evaluate a compiled UCQ on a prepared index: the union of the
/// disjuncts' answer sets. Each disjunct takes the partitioned path
/// ([`par`]) when `CA_PART_THREADS` resolves above one and its leading
/// relation is large enough — contents are identical either way, so the
/// knob only moves wall time.
pub fn eval_ucq_on(ucq: &CompiledUcq, idx: &mut DbIndex<'_>) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    for d in &ucq.disjuncts {
        par::eval_cq_auto_into(d, idx, &mut out);
    }
    out
}

/// Boolean evaluation of a compiled UCQ on a prepared index, with early
/// exit on the first witness.
pub fn eval_ucq_bool_on(ucq: &CompiledUcq, idx: &mut DbIndex<'_>) -> bool {
    ucq.disjuncts.iter().any(|d| {
        let mut hit = false;
        eval_cq_into(d, idx, &mut |_| {
            hit = true;
            false
        });
        hit
    })
}

/// Compile and evaluate a UCQ over a database (nulls as values). The
/// plan is cost-based: ordered by the index's statistics model (falling
/// back to the greedy order out of the DP's reach) — plan choice, never
/// answers, depends on the statistics.
pub fn eval_ucq(q: &UnionQuery, db: &NaiveDatabase) -> Result<BTreeSet<Vec<Value>>, PlanError> {
    let mut idx = DbIndex::new(db);
    let plan = CompiledUcq::compile_costed(q, &db.schema, idx.model())?;
    Ok(eval_ucq_on(&plan, &mut idx))
}

/// Compile (cost-based) and evaluate a CQ over a database (nulls as
/// values). Takes the same automatic partitioned route as
/// [`eval_ucq_on`] — the `CA_PART_THREADS` knob applies here too and
/// only moves wall time.
pub fn eval_cq(
    q: &ConjunctiveQuery,
    db: &NaiveDatabase,
) -> Result<BTreeSet<Vec<Value>>, PlanError> {
    let mut idx = DbIndex::new(db);
    let plan = CompiledCq::compile_costed(q, &db.schema, idx.model())?;
    let mut out = BTreeSet::new();
    par::eval_cq_auto_into(&plan, &mut idx, &mut out);
    Ok(out)
}

/// Compile (cost-based) and evaluate a Boolean UCQ over a database.
pub fn eval_ucq_bool(q: &UnionQuery, db: &NaiveDatabase) -> Result<bool, PlanError> {
    let mut idx = DbIndex::new(db);
    let plan = CompiledUcq::compile_costed(q, &db.schema, idx.model())?;
    Ok(eval_ucq_bool_on(&plan, &mut idx))
}

/// Brute-force certain answers of a compiled UCQ: intersect the answer
/// tables over every completion of `db` into `pool`, sweeping the
/// completion grid with `threads` workers and early exit.
///
/// Semantics at the corners (unit-tested below): when the completion
/// space is **empty** (nulls present but an empty pool) the intersection
/// over no completions is vacuous — the table form returns the **empty
/// table** (there is no finite "all rows"), while the Boolean form
/// returns **true**. With no nulls the sole completion is `db` itself.
pub fn certain_table_over(
    plan: &CompiledUcq,
    db: &NaiveDatabase,
    pool: &[i64],
    threads: usize,
) -> BTreeSet<Vec<Value>> {
    let space = CompletionSpace::new(db, pool);
    sweep::parallel_intersect(space.len(), threads, |i| {
        eval_ucq_on(plan, &mut DbIndex::from_store(space.completion_store(i)))
    })
    .unwrap_or_default()
}

/// Brute-force Boolean certain answer of a compiled UCQ over a pool:
/// true iff every completion satisfies the query. Vacuously true when
/// the completion space is empty.
pub fn certain_bool_over(
    plan: &CompiledUcq,
    db: &NaiveDatabase,
    pool: &[i64],
    threads: usize,
) -> bool {
    let space = CompletionSpace::new(db, pool);
    sweep::parallel_all(space.len(), threads, |i| {
        eval_ucq_bool_on(plan, &mut DbIndex::from_store(space.completion_store(i)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};
    use crate::reference;
    use ca_relational::database::build::{c, n, table};
    use Term::{Const as C, Var as V};

    #[test]
    fn engine_matches_reference_on_basic_joins() {
        let q = UnionQuery::new(vec![
            ConjunctiveQuery::with_head(
                vec![0, 2],
                vec![
                    Atom::new("R", vec![V(0), V(1)]),
                    Atom::new("R", vec![V(1), V(2)]),
                ],
            ),
            ConjunctiveQuery::with_head(vec![0, 0], vec![Atom::new("R", vec![C(1), V(0)])]),
        ]);
        let db = table(
            "R",
            2,
            &[&[c(1), n(1)], &[n(1), c(2)], &[c(3), c(9)], &[n(2), c(9)]],
        );
        assert_eq!(eval_ucq(&q, &db).unwrap(), reference::eval_ucq(&q, &db));
    }

    #[test]
    fn repeated_head_and_within_atom_vars() {
        // Q(x, x) ← R(x, x): both the check path and head repetition.
        let q = ConjunctiveQuery::with_head(vec![0, 0], vec![Atom::new("R", vec![V(0), V(0)])]);
        let db = table("R", 2, &[&[n(1), n(1)], &[n(1), n(2)], &[c(4), c(4)]]);
        let ans = eval_cq(&q, &db).unwrap();
        assert_eq!(ans, reference::eval_cq(&q, &db));
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![n(1), n(1)]));
        assert!(ans.contains(&vec![c(4), c(4)]));
    }

    // ----- satellite: unknown relation / arity mismatch regression -----

    #[test]
    fn unknown_relation_engine_errors_reference_is_empty() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("S", vec![V(0)])]);
        let db = table("R", 1, &[&[c(1)]]);
        // Engine: typed error at plan-compile time.
        assert_eq!(
            eval_cq(&q, &db).unwrap_err(),
            PlanError::UnknownRelation { rel: "S".into() }
        );
        // Reference oracle: silently no matches (pinned legacy quirk).
        assert!(reference::eval_cq(&q, &db).is_empty());
        // Legacy eval entry point routes through the engine leniently and
        // keeps the old observable behaviour.
        assert!(crate::eval::eval_cq(&q, &db).is_empty());
    }

    #[test]
    fn arity_mismatch_engine_errors_reference_is_empty() {
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(1), V(2)])]);
        let db = table("R", 2, &[&[c(1), c(2)]]);
        assert_eq!(
            eval_cq(&q, &db).unwrap_err(),
            PlanError::ArityMismatch {
                rel: "R".into(),
                declared: 2,
                used: 3
            }
        );
        assert!(reference::eval_cq(&q, &db).is_empty());
        assert!(crate::eval::eval_cq(&q, &db).is_empty());
    }

    // ----- satellite: empty-query / empty-database corners -----

    #[test]
    fn boolean_cq_with_zero_atoms_is_true() {
        // The empty conjunction holds vacuously: {()} — on any database,
        // including the empty one. Engine and reference agree.
        let q = ConjunctiveQuery::boolean(vec![]);
        let db = table("R", 1, &[]);
        assert_eq!(eval_cq(&q, &db).unwrap(), BTreeSet::from([vec![]]));
        assert_eq!(reference::eval_cq(&q, &db), BTreeSet::from([vec![]]));
        let nonempty = table("R", 1, &[&[c(1)]]);
        assert_eq!(eval_cq(&q, &nonempty).unwrap(), BTreeSet::from([vec![]]));
    }

    #[test]
    fn ucq_with_no_disjuncts_is_false() {
        // The empty disjunction is false: no rows, Boolean false.
        let q = UnionQuery::new(vec![]);
        let db = table("R", 1, &[&[c(1)]]);
        assert!(eval_ucq(&q, &db).unwrap().is_empty());
        assert!(!eval_ucq_bool(&q, &db).unwrap());
        assert!(reference::eval_ucq(&q, &db).is_empty());
    }

    #[test]
    fn empty_completion_space_semantics() {
        // D = {R(⊥1)} with an empty pool: completions_over would have
        // nothing to enumerate. The chosen semantics, documented here:
        // the Boolean certain answer is vacuously TRUE (a conjunction
        // over no completions), while the table form returns the EMPTY
        // table (the vacuous intersection "all rows" has no finite
        // representation). This asymmetry mirrors the legacy
        // `certain_table`, which returned an empty accumulator.
        let db = table("R", 1, &[&[n(1)]]);
        let q = UnionQuery::single(ConjunctiveQuery::with_head(
            vec![0],
            vec![Atom::new("R", vec![V(0)])],
        ));
        let plan = compile_ucq(&q, &db.schema).unwrap();
        for threads in [1, 4] {
            assert!(certain_table_over(&plan, &db, &[], threads).is_empty());
            assert!(certain_bool_over(&plan, &db, &[], threads));
        }
    }

    #[test]
    fn seeded_eval_finds_exactly_the_delta_joins() {
        // R(x,y) ∧ R(y,z) with the first atom seeded by the last fact
        // only: answers must use that fact in position one.
        let q = ConjunctiveQuery::with_head(
            vec![0, 2],
            vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("R", vec![V(1), V(2)]),
            ],
        );
        let db = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)], &[c(3), c(4)]]);
        let plan = CompiledCq::compile_pinned(&q, &db.schema, 0).unwrap();
        let mut idx = DbIndex::new(&db);
        let prep = prepare_cq(&plan, &mut idx);
        let seed_id = db
            .facts()
            .iter()
            .position(|f| f.args == vec![c(2), c(3)])
            .unwrap() as u32;
        let mut rows = BTreeSet::new();
        eval_seeded_into(&plan, &prep, &idx, &[seed_id], &mut |row| {
            rows.insert(row.to_vec());
            true
        });
        assert_eq!(rows, BTreeSet::from([vec![c(2), c(4)]]));
        // Seeding with every fact recovers the full answer set.
        let all: Vec<u32> = (0..db.facts().len() as u32).collect();
        let mut full = BTreeSet::new();
        eval_seeded_into(&plan, &prep, &idx, &all, &mut |row| {
            full.insert(row.to_vec());
            true
        });
        assert_eq!(full, eval_cq(&q, &db).unwrap());
    }

    #[test]
    fn store_backed_index_matches_database_index() {
        let db = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)], &[c(2), c(4)]]);
        let store = ca_relational::to_store(&db);
        let mut idx = DbIndex::over(&store);
        let q = ConjunctiveQuery::with_head(
            vec![0, 2],
            vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("R", vec![V(1), V(2)]),
            ],
        );
        let plan = CompiledCq::compile(&q, &db.schema).unwrap();
        let mut out = BTreeSet::new();
        eval_cq_into(&plan, &mut idx, &mut |row| {
            out.insert(row.to_vec());
            true
        });
        assert_eq!(out, eval_cq(&q, &db).unwrap());
    }

    #[test]
    fn certain_sweep_matches_legacy_bruteforce() {
        let q = UnionQuery::single(ConjunctiveQuery::with_head(
            vec![0],
            vec![
                Atom::new("R", vec![V(0), V(1)]),
                Atom::new("R", vec![V(1), V(2)]),
            ],
        ));
        let db = table("R", 2, &[&[c(1), n(1)], &[n(1), c(2)], &[n(2), c(5)]]);
        let pool = [1, 2, 5, 6, 7];
        let plan = compile_ucq(&q, &db.schema).unwrap();
        // Legacy: materialize all completions, intersect reference answers.
        let mut legacy: Option<BTreeSet<Vec<Value>>> = None;
        for r in db.completions_over(&pool) {
            let ans = reference::eval_ucq(&q, &r);
            legacy = Some(match legacy {
                None => ans,
                Some(acc) => acc.intersection(&ans).cloned().collect(),
            });
        }
        let legacy = legacy.unwrap();
        for threads in [1, 3, 4] {
            assert_eq!(certain_table_over(&plan, &db, &pool, threads), legacy);
        }
    }
}
