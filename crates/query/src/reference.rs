//! The original CQ/UCQ evaluator, retained as a differential-testing
//! oracle and benchmark baseline for [`crate::engine`] (the same pattern
//! as `ca_hom::reference` for the CSP kernel).
//!
//! Semantics: nulls are treated as ordinary values (`⊥₁ = ⊥₁`,
//! `⊥₁ ≠ ⊥₂`, `⊥₁ ≠ c`) — the first phase of naïve evaluation. The
//! implementation is a nested-loop backtracking join that rescans every
//! fact of a relation for every atom; it is deliberately simple and slow.
//!
//! Pinned quirk (see the regression tests in `crate::engine`): an atom
//! over an unknown relation name, or used at the wrong arity, silently
//! matches nothing. The engine instead rejects such queries at
//! plan-compile time with a typed [`crate::engine::PlanError`].

use std::collections::BTreeSet;

use ca_core::value::Value;
use ca_relational::database::NaiveDatabase;

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};

/// A partial variable binding during join evaluation.
type Binding = [(u32, Value)];

/// Evaluate a CQ over a database treating nulls as values. Returns the set
/// of head-variable bindings (each a tuple of values, possibly containing
/// nulls). A Boolean query returns `{[]}` for true, `{}` for false.
pub fn eval_cq(q: &ConjunctiveQuery, db: &NaiveDatabase) -> BTreeSet<Vec<Value>> {
    let mut results = BTreeSet::new();
    let mut binding: Vec<(u32, Value)> = Vec::new();
    eval_atoms(&q.atoms, 0, db, &mut binding, &mut |b| {
        let row: Option<Vec<Value>> = q
            .head
            .iter()
            .map(|h| b.iter().find(|(v, _)| v == h).map(|&(_, val)| val))
            .collect();
        results.insert(row.expect("safe query: head vars bound by body"));
    });
    results
}

/// Evaluate a UCQ (union of the disjuncts' answers).
pub fn eval_ucq(q: &UnionQuery, db: &NaiveDatabase) -> BTreeSet<Vec<Value>> {
    let mut out = BTreeSet::new();
    for d in &q.disjuncts {
        out.extend(eval_cq(d, db));
    }
    out
}

/// Boolean CQ evaluation (nulls as values).
pub fn eval_cq_bool(q: &ConjunctiveQuery, db: &NaiveDatabase) -> bool {
    assert!(q.is_boolean());
    !eval_cq(q, db).is_empty()
}

/// Boolean UCQ evaluation (nulls as values).
pub fn eval_ucq_bool(q: &UnionQuery, db: &NaiveDatabase) -> bool {
    q.disjuncts.iter().any(|d| eval_cq_bool(d, db))
}

/// Backtracking join: try to match atom `i` against every fact, extending
/// the binding; on full match call `found`.
fn eval_atoms(
    atoms: &[Atom],
    i: usize,
    db: &NaiveDatabase,
    binding: &mut Vec<(u32, Value)>,
    found: &mut dyn FnMut(&Binding),
) {
    if i == atoms.len() {
        found(binding);
        return;
    }
    let atom = &atoms[i];
    let Some(rel) = db.schema.relation(&atom.rel) else {
        return; // unknown relation: no matches
    };
    'facts: for fact in db.relation(rel) {
        if fact.args.len() != atom.args.len() {
            continue;
        }
        let mark = binding.len();
        for (t, &val) in atom.args.iter().zip(fact.args.iter()) {
            match t {
                Term::Const(c) => {
                    if val != Value::Const(*c) {
                        binding.truncate(mark);
                        continue 'facts;
                    }
                }
                Term::Var(v) => {
                    if let Some(&(_, bound)) = binding.iter().find(|(u, _)| u == v) {
                        if bound != val {
                            binding.truncate(mark);
                            continue 'facts;
                        }
                    } else {
                        binding.push((*v, val));
                    }
                }
            }
        }
        eval_atoms(atoms, i + 1, db, binding, found);
        binding.truncate(mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_relational::database::build::{c, n, table};
    use Term::Var as V;

    #[test]
    fn cq_join_over_complete_db() {
        // Q() ← R(x, y) ∧ R(y, z): paths of length 2.
        let q = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![V(0), V(1)]),
            Atom::new("R", vec![V(1), V(2)]),
        ]);
        let yes = table("R", 2, &[&[c(1), c(2)], &[c(2), c(3)]]);
        let no = table("R", 2, &[&[c(1), c(2)], &[c(3), c(4)]]);
        assert!(eval_cq_bool(&q, &yes));
        assert!(!eval_cq_bool(&q, &no));
    }

    #[test]
    fn nulls_are_values_in_naive_phase() {
        // R(⊥1, ⊥1) matches R(x, x); R(⊥1, ⊥2) does not.
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0), V(0)])]);
        assert!(eval_cq_bool(&q, &table("R", 2, &[&[n(1), n(1)]])));
        assert!(!eval_cq_bool(&q, &table("R", 2, &[&[n(1), n(2)]])));
    }

    #[test]
    fn unknown_relation_matches_nothing() {
        // Pinned legacy behaviour: the reference evaluator returns the
        // empty answer for atoms over relations absent from the schema.
        let q = ConjunctiveQuery::boolean(vec![Atom::new("S", vec![V(0)])]);
        let db = table("R", 1, &[&[c(1)]]);
        assert!(eval_cq(&q, &db).is_empty());
    }

    #[test]
    fn arity_mismatch_matches_nothing() {
        // Pinned legacy behaviour: an atom using a known relation at the
        // wrong arity silently matches no fact.
        let q = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![V(0)])]);
        let db = table("R", 2, &[&[c(1), c(2)]]);
        assert!(eval_cq(&q, &db).is_empty());
    }
}
