//! Certificate emission for the certain-answer drivers.
//!
//! The fast paths in [`crate::certain`] and [`crate::engine`] stay
//! allocation-lean and parallel; this module wraps them with entry points
//! that additionally produce [`ca_cert`] certificates an engine-blind
//! checker can replay:
//!
//! * **certain = true** — a [`MatchCert`]: one naïve match of one
//!   disjunct, null-free in the projected row. By the classical theorem
//!   (naïve evaluation computes UCQ certain answers) such a match always
//!   exists when the sweep says "certain", so emission never needs the
//!   sweep's verdict on faith.
//! * **certain = false** — a [`NonCertainCert`]: one completion valuation
//!   into the adequate pool under which no disjunct matches (or, for
//!   tables, under which the claimed row is not an answer). This is the
//!   checker's one documented search carve-out: verifying it naïvely
//!   evaluates the single named completion, polynomial in the data.
//!
//! Witness assignments are extracted with the *augmented-head* trick:
//! re-evaluate the disjunct with every body variable in the head, so each
//! result row **is** a full body assignment; the first row in `BTreeSet`
//! order makes emission deterministic across thread widths.

use std::collections::{BTreeMap, BTreeSet};

use ca_cert::{
    CertAtom, CertCq, CertFact, CertQuery, CertTerm, CertainVerdictCert, MatchCert, NonCertainCert,
};
use ca_core::value::{Null, Value};
use ca_relational::database::NaiveDatabase;

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use crate::certain::{adequate_pool, certain_answer_bool_with, certain_table_with, ucq_constants};
use crate::engine::{self, CompiledUcq, CompletionSpace, DbIndex};

/// Translate a UCQ into the checker's engine-free vocabulary.
pub fn cert_query(q: &UnionQuery) -> CertQuery {
    CertQuery {
        head_arity: q.head_arity(),
        disjuncts: q.disjuncts.iter().map(cert_cq).collect(),
    }
}

fn cert_cq(cq: &ConjunctiveQuery) -> CertCq {
    CertCq {
        head: cq.head.clone(),
        atoms: cq.atoms.iter().map(cert_atom).collect(),
    }
}

fn cert_atom(a: &Atom) -> CertAtom {
    CertAtom {
        rel: a.rel.clone(),
        args: a
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => CertTerm::Var(*v),
                Term::Const(c) => CertTerm::Const(*c),
            })
            .collect(),
    }
}

/// The database's fact set in checker vocabulary (nulls as values).
pub fn db_facts(db: &NaiveDatabase) -> BTreeSet<CertFact> {
    db.facts()
        .iter()
        .map(|f| (db.schema.name(f.rel).to_owned(), f.args.clone()))
        .collect()
}

/// Find a naïve match of disjunct `d` (nulls as values) whose projected
/// head row equals `row`, as a full body assignment. Deterministic: the
/// augmented query's first answer row in `BTreeSet` order wins.
fn naive_match(q: &UnionQuery, db: &NaiveDatabase, row: &[Value]) -> Option<MatchCert> {
    for (d, cq) in q.disjuncts.iter().enumerate() {
        let vars = cq.body_vars();
        let aug = ConjunctiveQuery::with_head(vars.clone(), cq.atoms.clone());
        let Ok(answers) = engine::eval_cq(&aug, db) else {
            continue;
        };
        for assignment_row in answers {
            let binding: BTreeMap<u32, Value> = vars.iter().copied().zip(assignment_row).collect();
            let projected: Option<Vec<Value>> =
                cq.head.iter().map(|h| binding.get(h).copied()).collect();
            if projected.as_deref() == Some(row) {
                return Some(MatchCert {
                    disjunct: d,
                    assignment: binding.into_iter().collect(),
                    row: row.to_vec(),
                });
            }
        }
    }
    None
}

/// Decode completion index `i` of `space` into an explicit valuation
/// (sorted null order; digit `j` picks `pool[(i / |pool|^j) % |pool|]`).
fn decode_valuation(nulls: &[Null], pool: &[i64], i: u128) -> Vec<(Null, i64)> {
    let base = pool.len() as u128;
    let mut rest = i;
    let mut out = Vec::with_capacity(nulls.len());
    for &n in nulls {
        let digit = (rest % base) as usize;
        if let Some(&c) = pool.get(digit) {
            out.push((n, c));
        }
        rest /= base;
    }
    out
}

/// Scan the completion grid sequentially for one completion falsifying
/// `test`, returning its decoded valuation. Sequential on purpose:
/// emission must be deterministic (lowest falsifying index wins) and runs
/// only after the parallel sweep has already said "not certain".
fn falsifying_valuation(
    db: &NaiveDatabase,
    pool: &[i64],
    test: impl Fn(&mut DbIndex<'_>) -> bool,
) -> Option<Vec<(Null, i64)>> {
    let space = CompletionSpace::new(db, pool);
    let nulls: Vec<Null> = db.nulls().into_iter().collect();
    let mut i: u128 = 0;
    while i < space.len() {
        let mut idx = DbIndex::from_store(space.completion_store(i));
        if !test(&mut idx) {
            return Some(decode_valuation(&nulls, pool, i));
        }
        i += 1;
    }
    None
}

/// Boolean certain answer with a replayable verdict certificate.
///
/// Returns the same Boolean as
/// [`certain_answer_bool_with`](crate::certain::certain_answer_bool_with)
/// plus, when one exists, a certificate for that verdict against the
/// *heads-dropped* (Boolean) form of `q` — check it with
/// [`ca_cert::check_certain_row`] / [`ca_cert::check_non_certain`] against
/// [`cert_query`]`(&boolean form)` and [`db_facts`]. `None` arises only in
/// the vacuous corner (nulls present, empty pool — never with the
/// adequate pool).
pub fn certain_bool_certified(
    q: &UnionQuery,
    db: &NaiveDatabase,
    threads: usize,
) -> (bool, Option<CertainVerdictCert>) {
    let verdict = certain_answer_bool_with(q, db, threads);
    let bq = boolean_form(q);
    if verdict {
        let cert = naive_match(&bq, db, &[]).map(CertainVerdictCert::Certain);
        return (true, cert);
    }
    let pool = adequate_pool(db, &ucq_constants(q));
    let plan = CompiledUcq::compile_lenient(&bq, &db.schema);
    let cert = falsifying_valuation(db, &pool, |idx| engine::eval_ucq_bool_on(&plan, idx)).map(
        |valuation| {
            CertainVerdictCert::NonCertain(NonCertainCert {
                valuation,
                row: vec![],
            })
        },
    );
    (false, cert)
}

/// The heads-dropped Boolean form of a UCQ: the query whose certain
/// answer is "does some disjunct match in every completion".
pub fn boolean_form(q: &UnionQuery) -> UnionQuery {
    UnionQuery {
        disjuncts: q
            .disjuncts
            .iter()
            .map(|d| ConjunctiveQuery::boolean(d.atoms.clone()))
            .collect(),
    }
}

/// A certified certain-answer table: the table itself plus one checkable
/// [`MatchCert`] per row.
pub type CertifiedTable = (BTreeSet<Vec<Value>>, Vec<(Vec<Value>, MatchCert)>);

/// Certain answers of a non-Boolean UCQ with one [`MatchCert`] per row.
///
/// Returns the same table as
/// [`certain_table_with`](crate::certain::certain_table_with) plus, for
/// every certain row, a naïve-match certificate (null-free row — check
/// with [`ca_cert::check_certain_row`]). The classical theorem guarantees
/// a witness for every certain row, so the second component covers the
/// whole table.
pub fn certain_table_certified(
    q: &UnionQuery,
    db: &NaiveDatabase,
    threads: usize,
) -> CertifiedTable {
    let table = certain_table_with(q, db, threads);
    let certs = table
        .iter()
        .filter_map(|row| naive_match(q, db, row).map(|c| (row.clone(), c)))
        .collect();
    (table, certs)
}

/// Certify that `row` is **not** a certain answer of `q` over `db`: find
/// a completion into the adequate pool whose answer table omits `row`.
/// `None` when `row` is in fact certain (or the space is vacuous).
pub fn refute_row(q: &UnionQuery, db: &NaiveDatabase, row: &[Value]) -> Option<NonCertainCert> {
    let pool = adequate_pool(db, &ucq_constants(q));
    let plan = CompiledUcq::compile_lenient(q, &db.schema);
    falsifying_valuation(db, &pool, |idx| {
        engine::eval_ucq_on(&plan, idx).contains(row)
    })
    .map(|valuation| NonCertainCert {
        valuation,
        row: row.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_cert::{check_certain_row, check_non_certain, Reject};
    use ca_relational::parse::parse_database;

    use crate::parse::parse_ucq;

    fn setup(db: &str, q: &str) -> (NaiveDatabase, UnionQuery) {
        let db = parse_database(db).expect("test database parses");
        let q = parse_ucq(q).expect("test query parses");
        (db, q)
    }

    #[test]
    fn certain_bool_emits_checkable_match() {
        let (db, q) = setup("R(1, ?x); R(?x, 2)", "R(1, y), R(y, 2)");
        let (verdict, cert) = certain_bool_certified(&q, &db, 1);
        assert!(verdict);
        let Some(CertainVerdictCert::Certain(m)) = cert else {
            panic!("expected a match certificate, got {cert:?}");
        };
        let bq = cert_query(&boolean_form(&q));
        assert_eq!(check_certain_row(&bq, &db_facts(&db), &m), Ok(()));
    }

    #[test]
    fn non_certain_bool_emits_checkable_valuation() {
        // R(⊥1) with Q = ∃x R(x), S(x): S is empty, never certain.
        let (db, q) = setup("R(?x); S(3)", "R(y), S(y)");
        let (verdict, cert) = certain_bool_certified(&q, &db, 1);
        assert!(!verdict);
        let Some(CertainVerdictCert::NonCertain(nc)) = cert else {
            panic!("expected a non-certainty certificate, got {cert:?}");
        };
        let bq = cert_query(&boolean_form(&q));
        assert_eq!(check_non_certain(&bq, &db_facts(&db), &nc), Ok(()));
        // Tampering: point the valuation at a constant that *does* match.
        let mut forged = nc;
        forged.valuation = vec![(ca_core::value::Null(0), 3)];
        assert_eq!(
            check_non_certain(&bq, &db_facts(&db), &forged),
            Err(Reject::MatchExists { disjunct: 0 })
        );
    }

    #[test]
    fn certain_table_certifies_every_row() {
        let (db, q) = setup("R(1, 2); R(2, 3); R(4, ?x)", "(x, y) :- R(x, y)");
        let (table, certs) = certain_table_certified(&q, &db, 1);
        assert_eq!(certs.len(), table.len(), "every certain row needs a cert");
        let cq = cert_query(&q);
        let facts = db_facts(&db);
        for (row, m) in &certs {
            assert!(table.contains(row));
            assert_eq!(check_certain_row(&cq, &facts, m), Ok(()));
        }
        // A non-answer row is refutable with a checkable completion.
        let bad = vec![Value::Const(4), Value::Const(1)];
        assert!(!table.contains(&bad));
        let nc = refute_row(&q, &db, &bad).expect("refutation exists");
        assert_eq!(check_non_certain(&cq, &facts, &nc), Ok(()));
    }
}
