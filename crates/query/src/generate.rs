//! Random query generation for experiments.

use ca_relational::generate::Rng;

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};

/// Parameters for random Boolean (U)CQs over a single relation `R`.
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Number of disjuncts (1 = plain CQ).
    pub n_disjuncts: usize,
    /// Atoms per disjunct.
    pub n_atoms: usize,
    /// Variable pool size per disjunct.
    pub n_vars: u32,
    /// Arity of `R`.
    pub arity: usize,
    /// Constants drawn from `0..n_constants`.
    pub n_constants: i64,
    /// Probability (out of 100) that a position holds a constant.
    pub const_pct: u64,
}

/// A random Boolean conjunctive query over relation `R`.
pub fn random_bool_cq(rng: &mut Rng, p: QueryParams) -> ConjunctiveQuery {
    let atoms = (0..p.n_atoms)
        .map(|_| {
            let args: Vec<Term> = (0..p.arity)
                .map(|_| {
                    if rng.chance(p.const_pct, 100) {
                        Term::Const(rng.below(p.n_constants as u64) as i64)
                    } else {
                        Term::Var(rng.below(p.n_vars as u64) as u32)
                    }
                })
                .collect();
            Atom::new("R", args)
        })
        .collect();
    ConjunctiveQuery::boolean(atoms)
}

/// A random Boolean union of conjunctive queries.
pub fn random_bool_ucq(rng: &mut Rng, p: QueryParams) -> UnionQuery {
    UnionQuery::new((0..p.n_disjuncts).map(|_| random_bool_cq(rng, p)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_queries_have_requested_shape() {
        let mut rng = Rng::new(5);
        let p = QueryParams {
            n_disjuncts: 3,
            n_atoms: 2,
            n_vars: 4,
            arity: 3,
            n_constants: 2,
            const_pct: 50,
        };
        let q = random_bool_ucq(&mut rng, p);
        assert_eq!(q.disjuncts.len(), 3);
        for d in &q.disjuncts {
            assert!(d.is_boolean());
            assert_eq!(d.atoms.len(), 2);
            for a in &d.atoms {
                assert_eq!(a.args.len(), 3);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = QueryParams {
            n_disjuncts: 2,
            n_atoms: 2,
            n_vars: 3,
            arity: 2,
            n_constants: 3,
            const_pct: 30,
        };
        let a = random_bool_ucq(&mut Rng::new(1), p);
        let b = random_bool_ucq(&mut Rng::new(1), p);
        assert_eq!(a, b);
    }
}
