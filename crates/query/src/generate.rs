//! Random query generation for experiments.

use ca_relational::generate::Rng;
use ca_relational::schema::Schema;

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};

/// Parameters for random Boolean (U)CQs over a single relation `R`.
#[derive(Clone, Copy, Debug)]
pub struct QueryParams {
    /// Number of disjuncts (1 = plain CQ).
    pub n_disjuncts: usize,
    /// Atoms per disjunct.
    pub n_atoms: usize,
    /// Variable pool size per disjunct.
    pub n_vars: u32,
    /// Arity of `R`.
    pub arity: usize,
    /// Constants drawn from `0..n_constants`.
    pub n_constants: i64,
    /// Probability (out of 100) that a position holds a constant.
    pub const_pct: u64,
}

/// A random Boolean conjunctive query over relation `R`.
pub fn random_bool_cq(rng: &mut Rng, p: QueryParams) -> ConjunctiveQuery {
    let atoms = (0..p.n_atoms)
        .map(|_| {
            let args: Vec<Term> = (0..p.arity)
                .map(|_| {
                    if rng.chance(p.const_pct, 100) {
                        Term::Const(rng.below(p.n_constants as u64) as i64)
                    } else {
                        Term::Var(rng.below(p.n_vars as u64) as u32)
                    }
                })
                .collect();
            Atom::new("R", args)
        })
        .collect();
    ConjunctiveQuery::boolean(atoms)
}

/// A random Boolean union of conjunctive queries.
pub fn random_bool_ucq(rng: &mut Rng, p: QueryParams) -> UnionQuery {
    UnionQuery::new((0..p.n_disjuncts).map(|_| random_bool_cq(rng, p)).collect())
}

/// A random CQ over an arbitrary schema, with a head of the requested
/// arity. Atoms pick their relation uniformly (argument counts follow the
/// schema; `p.arity` is ignored); head variables are drawn *with
/// replacement* from the variables occurring in the body, so repeated head
/// variables and head projections both arise. Queries with `head_arity >
/// 0` but a constants-only body retry until at least one variable occurs
/// (guaranteed to terminate for `const_pct < 100`).
pub fn random_cq_over(
    rng: &mut Rng,
    schema: &Schema,
    head_arity: usize,
    p: QueryParams,
) -> ConjunctiveQuery {
    let symbols: Vec<_> = schema.symbols().collect();
    loop {
        let atoms: Vec<Atom> = (0..p.n_atoms.max(1))
            .map(|_| {
                let rel = symbols[rng.below(symbols.len() as u64) as usize];
                let args: Vec<Term> = (0..schema.arity(rel))
                    .map(|_| {
                        if rng.chance(p.const_pct, 100) {
                            Term::Const(rng.below(p.n_constants as u64) as i64)
                        } else {
                            Term::Var(rng.below(p.n_vars as u64) as u32)
                        }
                    })
                    .collect();
                Atom::new(schema.name(rel), args)
            })
            .collect();
        let body_vars: Vec<u32> = {
            let mut vs: Vec<u32> = atoms.iter().flat_map(|a| a.vars()).collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        if body_vars.is_empty() && head_arity > 0 {
            continue; // no variable to project — redraw
        }
        let head: Vec<u32> = (0..head_arity)
            .map(|_| body_vars[rng.below(body_vars.len() as u64) as usize])
            .collect();
        return ConjunctiveQuery::with_head(head, atoms);
    }
}

/// A random UCQ over an arbitrary schema: `p.n_disjuncts` disjuncts
/// sharing the given head arity.
pub fn random_ucq_over(
    rng: &mut Rng,
    schema: &Schema,
    head_arity: usize,
    p: QueryParams,
) -> UnionQuery {
    UnionQuery::new(
        (0..p.n_disjuncts.max(1))
            .map(|_| random_cq_over(rng, schema, head_arity, p))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_queries_have_requested_shape() {
        let mut rng = Rng::new(5);
        let p = QueryParams {
            n_disjuncts: 3,
            n_atoms: 2,
            n_vars: 4,
            arity: 3,
            n_constants: 2,
            const_pct: 50,
        };
        let q = random_bool_ucq(&mut rng, p);
        assert_eq!(q.disjuncts.len(), 3);
        for d in &q.disjuncts {
            assert!(d.is_boolean());
            assert_eq!(d.atoms.len(), 2);
            for a in &d.atoms {
                assert_eq!(a.args.len(), 3);
            }
        }
    }

    #[test]
    fn schema_aware_queries_are_safe() {
        use ca_relational::generate::random_schema;
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            let schema = random_schema(&mut rng, 3, 3);
            let p = QueryParams {
                n_disjuncts: 2,
                n_atoms: 3,
                n_vars: 4,
                arity: 0, // ignored: arities come from the schema
                n_constants: 3,
                const_pct: 30,
            };
            let head_arity = rng.below(3) as usize;
            let q = random_ucq_over(&mut rng, &schema, head_arity, p);
            assert_eq!(q.head_arity(), head_arity);
            for d in &q.disjuncts {
                assert_eq!(d.head.len(), head_arity);
                let body: Vec<u32> = d.atoms.iter().flat_map(|a| a.vars()).collect();
                for h in &d.head {
                    assert!(body.contains(h), "unsafe head var in {d:?}");
                }
                for a in &d.atoms {
                    let rel = schema.relation(&a.rel).expect("atom over schema relation");
                    assert_eq!(a.args.len(), schema.arity(rel));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = QueryParams {
            n_disjuncts: 2,
            n_atoms: 2,
            n_vars: 3,
            arity: 2,
            n_constants: 3,
            const_pct: 30,
        };
        let a = random_bool_ucq(&mut Rng::new(1), p);
        let b = random_bool_ucq(&mut Rng::new(1), p);
        assert_eq!(a, b);
    }
}
