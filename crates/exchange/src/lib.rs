//! # ca-exchange — data exchange as least upper bounds (Section 5.3)
//!
//! The paper recasts data exchange in the ordered framework: a schema
//! mapping `M` is a set of rules `I → I′` (generalized databases over the
//! source and target schemas, sharing nulls as rule variables); a target
//! instance `D′` is a *solution* for a source `D` when every match of a
//! rule body in `D` extends to a match of the rule head in `D′`; and
//! **Theorem 5**: the universal solutions are exactly the least upper
//! bounds `∨_K M(D)` of the single-rule applications. For unrestricted
//! targets lubs are disjoint unions, giving the canonical universal
//! solution `⊔M(D)`, whose core is the core solution. For trees, lubs may
//! not exist at all (**Proposition 10**), which is the order-theoretic
//! explanation of the ad-hoc solution choices in XML data exchange.
//!
//! * [`mapping`] — mappings, rule application `M(D)`, solution checking.
//! * [`chase`] — the chase with target tgds/egds (the paper's future-work
//!   pointer for when constrained targets still admit universal
//!   solutions), run by a semi-naive, delta-driven engine on the compiled
//!   join machinery of `ca_query::engine`.
//! * [`certain`] — certain answers on constrained targets: chase the
//!   canonical solution, evaluate naively, keep null-free rows.
//! * [`solution`] — canonical universal solutions, cores of generalized
//!   databases (via the incremental retraction engine of
//!   `ca_hom::retract`), core solutions, universality checking.
//! * [`reference`] — the seed-era core loop and chase loop, kept verbatim
//!   as the differential oracles and benchmark baselines for [`solution`]
//!   and [`chase`].
//! * [`tgd`] — the relational st-tgd convenience layer.
//! * [`trees`] — Proposition 10: the two trees with no least upper bound.

pub mod certain;
pub mod chase;
pub mod mapping;
pub mod reference;
pub mod solution;
pub mod tgd;
pub mod trees;

pub use certain::{certain_answers_via_chase, CertainAnswers};
pub use chase::{chase, chase_with, ChaseConfig, ChaseOutcome, Egd, DEFAULT_MATCH_LIMIT};
pub use mapping::{Mapping, Rule};
pub use solution::{
    canonical_solution, core_of_gendb, core_of_gendb_with, core_solution, is_universal_solution,
};
