//! Schema mappings and rule application.
//!
//! A rule is a pair `I → I′` of generalized databases — `I` over the
//! source schema, `I′` over the target schema — whose shared nulls are the
//! frontier variables. Given a complete source `D`, a target `D′` is a
//! *solution* if for every rule and every homomorphism `(h₁, h₂) : I → D`
//! there is a homomorphism `(g₁, g₂) : I′ → D′` with `g₂` agreeing with
//! `h₂` on the shared nulls.
//!
//! `M(D)` — the set of single-rule applications `h₂(I′)` — is the raw
//! material of Theorem 5: its least upper bounds are the universal
//! solutions.

use std::collections::BTreeSet;

use ca_core::value::{Null, NullGen, Value};
use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_hom_csp;

/// A single exchange rule `I → I′`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The body, over the source schema.
    pub body: GenDb,
    /// The head, over the target schema. Nulls shared with the body are
    /// frontier variables; head-only nulls are existential.
    pub head: GenDb,
}

impl Rule {
    /// The frontier: nulls occurring in both body and head.
    pub fn frontier(&self) -> BTreeSet<Null> {
        self.body
            .nulls()
            .intersection(&self.head.nulls())
            .copied()
            .collect()
    }
}

/// The compiled-engine body matcher: `None` when either side has
/// structural tuples or the body does not compile against `d`'s labels
/// (the CSP path owns those cases).
fn compiled_body_matches(rule: &Rule, d: &GenDb, limit: usize) -> Option<Vec<Vec<(Null, Value)>>> {
    if !rule.body.tuples.is_empty() || !d.tuples.is_empty() {
        return None;
    }
    let db = ca_gdm::encode::relational_view(d)?;
    let nulls: Vec<Null> = rule.body.nulls().into_iter().collect();
    let q = ca_query::ast::ConjunctiveQuery::with_head(
        nulls.iter().map(|nl| nl.0).collect(),
        crate::chase::engine::pattern_atoms(&rule.body),
    );
    let plan = ca_query::engine::CompiledCq::compile(&q, &db.schema).ok()?;
    let mut idx = ca_query::engine::DbIndex::new(&db);
    let mut out: Vec<Vec<(Null, Value)>> = Vec::new();
    ca_query::engine::eval_cq_into(&plan, &mut idx, &mut |row| {
        // Truncate at `limit` exactly as `Csp::solve_all(limit)` does.
        if out.len() >= limit {
            return false;
        }
        out.push(nulls.iter().copied().zip(row.iter().copied()).collect());
        true
    });
    Some(out)
}

/// A schema mapping: a finite set of rules.
#[derive(Clone, Debug, Default)]
pub struct Mapping {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Mapping {
    /// A mapping from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Mapping { rules }
    }

    /// All homomorphisms from `body` into the source `d` (as null
    /// valuations), up to `limit`.
    ///
    /// Purely relational bodies match through the compiled join engine
    /// (one join plan, indexed lookups); anything with structural tuples
    /// falls back to the CSP matcher. Both paths enumerate the same
    /// multiset of valuations — one per assignment of body nodes to
    /// instance nodes.
    fn body_matches(&self, rule: &Rule, d: &GenDb, limit: usize) -> Vec<Vec<(Null, Value)>> {
        if let Some(fast) = compiled_body_matches(rule, d, limit) {
            return fast;
        }
        let (csp, nulls, universe) = gdm_hom_csp(&rule.body, d);
        csp.solve_all(limit)
            .solutions
            .into_iter()
            .map(|sol| {
                let n = rule.body.n_nodes();
                nulls
                    .iter()
                    .enumerate()
                    .map(|(i, &nl)| (nl, universe[sol[n + i] as usize]))
                    .collect()
            })
            .collect()
    }

    /// `M(D)`: all single-rule applications `h₂(I′)`, with head-only
    /// nulls renamed fresh per application (so the disjoint union is
    /// well-formed), as the paper's canonical-solution construction
    /// requires.
    pub fn applications(&self, d: &GenDb) -> Vec<GenDb> {
        let mut gen = NullGen::avoiding(
            d.nulls().into_iter().chain(
                self.rules
                    .iter()
                    .flat_map(|r| r.body.nulls().into_iter().chain(r.head.nulls())),
            ),
        );
        let mut out = Vec::new();
        for rule in &self.rules {
            let frontier = rule.frontier();
            for h2 in self.body_matches(rule, d, 100_000) {
                // Build the substitution: frontier nulls from h2,
                // head-only nulls fresh.
                let mut subst: Vec<(Null, Value)> = Vec::new();
                for nl in rule.head.nulls() {
                    if frontier.contains(&nl) {
                        // A frontier null is a body null, so every body
                        // match binds it; the identity fallback keeps
                        // the unreachable branch total.
                        let v = h2
                            .iter()
                            .find(|(m, _)| *m == nl)
                            .map(|&(_, v)| v)
                            .unwrap_or(Value::Null(nl));
                        subst.push((nl, v));
                    } else {
                        subst.push((nl, Value::Null(gen.fresh())));
                    }
                }
                let image = rule.head.map_values(|v| match v {
                    Value::Null(nl) => subst
                        .iter()
                        .find(|(m, _)| *m == nl)
                        .map(|&(_, v)| v)
                        .unwrap_or(v),
                    c => c,
                });
                out.push(image);
            }
        }
        out
    }

    /// Is `d2` a solution for source `d`? Every body match must extend to
    /// a head match agreeing on the frontier.
    pub fn is_solution(&self, d: &GenDb, d2: &GenDb) -> bool {
        for rule in &self.rules {
            let frontier = rule.frontier();
            for h2 in self.body_matches(rule, d, 100_000) {
                // Head hom with frontier nulls pinned.
                let (mut csp, nulls, universe) = gdm_hom_csp(&rule.head, d2);
                let n = rule.head.n_nodes();
                let mut impossible = false;
                for (i, nl) in nulls.iter().enumerate() {
                    if frontier.contains(nl) {
                        // Every body match binds the frontier (see
                        // `applications`); identity fallback for totality.
                        let target = h2
                            .iter()
                            .find(|(m, _)| m == nl)
                            .map(|&(_, v)| v)
                            .unwrap_or(Value::Null(*nl));
                        match universe.binary_search(&target) {
                            Ok(pos) => csp.restrict_domain((n + i) as u32, vec![pos as u32]),
                            Err(_) => {
                                impossible = true;
                                break;
                            }
                        }
                    }
                }
                if impossible || !csp.satisfiable() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_gdm::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// The paper's st-tgd `S(x, y, u) → T(x, z), T(z, y)` as a rule over
    /// generalized databases.
    pub(crate) fn paper_rule() -> (Rule, GenSchema, GenSchema) {
        let src = GenSchema::from_parts(&[("S", 3)], &[]);
        let tgt = GenSchema::from_parts(&[("T", 2)], &[]);
        let mut body = GenDb::new(src.clone());
        body.add_node("S", vec![n(1), n(2), n(3)]); // x, y, u
        let mut head = GenDb::new(tgt.clone());
        head.add_node("T", vec![n(1), n(4)]); // x, z
        head.add_node("T", vec![n(4), n(2)]); // z, y
        (Rule { body, head }, src, tgt)
    }

    #[test]
    fn frontier_is_shared_nulls() {
        let (rule, _, _) = paper_rule();
        let f: Vec<u32> = rule.frontier().into_iter().map(|x| x.0).collect();
        assert_eq!(f, vec![1, 2]); // x and y; u and z are not shared
    }

    #[test]
    fn applications_instantiate_the_head() {
        let (rule, src, _) = paper_rule();
        let mapping = Mapping::new(vec![rule]);
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        let apps = mapping.applications(&d);
        assert_eq!(apps.len(), 1);
        let app = &apps[0];
        assert_eq!(app.n_nodes(), 2);
        // T(1, ⊥z), T(⊥z, 2) with a fresh shared z.
        assert_eq!(app.data[0][0], c(1));
        assert_eq!(app.data[1][1], c(2));
        assert_eq!(app.data[0][1], app.data[1][0]);
        assert!(app.data[0][1].is_null());
    }

    #[test]
    fn two_facts_two_applications_with_distinct_existentials() {
        let (rule, src, _) = paper_rule();
        let mapping = Mapping::new(vec![rule]);
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        d.add_node("S", vec![c(3), c(4), c(9)]);
        let apps = mapping.applications(&d);
        assert_eq!(apps.len(), 2);
        let z0 = apps[0].data[0][1];
        let z1 = apps[1].data[0][1];
        assert_ne!(z0, z1, "existential nulls must be fresh per application");
    }

    #[test]
    fn solution_checking() {
        let (rule, src, tgt) = paper_rule();
        let mapping = Mapping::new(vec![rule]);
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        // T(1, 5), T(5, 2) is a solution.
        let mut good = GenDb::new(tgt.clone());
        good.add_node("T", vec![c(1), c(5)]);
        good.add_node("T", vec![c(5), c(2)]);
        assert!(mapping.is_solution(&d, &good));
        // T(1, 5), T(6, 2): the middle value doesn't chain — not a
        // solution.
        let mut bad = GenDb::new(tgt.clone());
        bad.add_node("T", vec![c(1), c(5)]);
        bad.add_node("T", vec![c(6), c(2)]);
        assert!(!mapping.is_solution(&d, &bad));
        // The empty target is not a solution.
        let empty = GenDb::new(tgt);
        assert!(!mapping.is_solution(&d, &empty));
    }

    #[test]
    fn empty_source_makes_everything_a_solution() {
        let (rule, src, tgt) = paper_rule();
        let mapping = Mapping::new(vec![rule]);
        let d = GenDb::new(src);
        let empty = GenDb::new(tgt);
        assert!(mapping.is_solution(&d, &empty));
        assert!(mapping.applications(&d).is_empty());
    }
}
