//! Certain answers over constrained targets, via the chase.
//!
//! For unconstrained targets the canonical solution is universal and
//! naive evaluation + null-dropping computes UCQ certain answers (the
//! paper's Theorem 2 route, implemented in `ca_gdm::certain` /
//! `ca_query::certain`). With target tgds/egds the canonical solution
//! need not satisfy the constraints; this module chases it first:
//!
//! * a **successful** chase yields a universal solution for the
//!   constrained target class, so the null-free rows of a naive UCQ
//!   evaluation over it are exactly the certain answers;
//! * a **failed** chase (egd constant clash) proves no solution exists —
//!   every answer is vacuously certain, reported as
//!   [`CertainAnswers::NoSolution`];
//! * an aborted or overflowed chase yields no verdict, and says so in
//!   its type rather than returning a wrong table.

use std::collections::BTreeSet;

use ca_core::value::Value;
use ca_gdm::database::GenDb;
use ca_gdm::schema::GenSchema;
use ca_query::ast::UnionQuery;

use crate::chase::{chase_with, ChaseConfig, ChaseOutcome, Egd};
use crate::mapping::{Mapping, Rule};
use crate::solution::canonical_solution;

/// The verdict of a chase-based certain-answer computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertainAnswers {
    /// The certain answers, as a sorted table.
    Table(BTreeSet<Vec<Value>>),
    /// The chase failed: no solution satisfies the target constraints,
    /// so every answer is vacuously certain.
    NoSolution,
    /// The chase ran out of its step budget; no verdict.
    Aborted,
    /// The chase ran out of its match budget; no verdict.
    Overflow,
    /// The chased solution is not purely relational (structural tuples
    /// remain), so naive UCQ evaluation does not apply.
    Unsupported,
}

/// Certain answers of `q` for source `d` under `mapping` with target
/// constraints `tgds`/`egds`: chase the canonical solution, evaluate
/// naively, keep the null-free rows.
pub fn certain_answers_via_chase(
    mapping: &Mapping,
    d: &GenDb,
    target_schema: &GenSchema,
    tgds: &[Rule],
    egds: &[Egd],
    q: &UnionQuery,
    cfg: &ChaseConfig,
) -> CertainAnswers {
    let canonical = canonical_solution(mapping, d, target_schema);
    let universal = match chase_with(&canonical, tgds, egds, cfg) {
        ChaseOutcome::Done(db) => db,
        ChaseOutcome::Failed => return CertainAnswers::NoSolution,
        ChaseOutcome::Aborted => return CertainAnswers::Aborted,
        ChaseOutcome::Overflow(_) => return CertainAnswers::Overflow,
    };
    let Some(rel) = ca_gdm::encode::relational_view(&universal) else {
        return CertainAnswers::Unsupported;
    };
    let naive = ca_query::eval::eval_ucq(q, &rel);
    CertainAnswers::Table(
        naive
            .into_iter()
            .filter(|row| row.iter().all(|v| !v.is_null()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::value::Null;
    use ca_query::ast::{Atom, Term};

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn schema() -> GenSchema {
        GenSchema::from_parts(&[("S", 2), ("T", 2)], &[])
    }

    /// The copy mapping S(x,y) → T(x,y).
    fn copy_mapping() -> Mapping {
        let mut body = GenDb::new(schema());
        body.add_node("S", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(1), n(2)]);
        Mapping {
            rules: vec![Rule { body, head }],
        }
    }

    fn source(rows: &[[Value; 2]]) -> GenDb {
        let mut d = GenDb::new(schema());
        for r in rows {
            d.add_node("S", r.to_vec());
        }
        d
    }

    fn q_t() -> UnionQuery {
        UnionQuery {
            disjuncts: vec![ca_query::ast::ConjunctiveQuery::with_head(
                vec![0, 1],
                vec![Atom::new("T", vec![Term::Var(0), Term::Var(1)])],
            )],
        }
    }

    /// Transitivity on T as a target constraint: the chase closes the
    /// copied relation, and the certain answers include derived edges.
    #[test]
    fn target_tgds_enlarge_certain_answers() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(2), n(3)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(1), n(3)]);
        let trans = Rule { body, head };
        let out = certain_answers_via_chase(
            &copy_mapping(),
            &source(&[[c(1), c(2)], [c(2), c(3)]]),
            &schema(),
            &[trans],
            &[],
            &q_t(),
            &ChaseConfig::new(100),
        );
        let CertainAnswers::Table(t) = out else {
            panic!("expected a table: {out:?}");
        };
        assert!(t.contains(&vec![c(1), c(3)]));
        assert_eq!(t.len(), 3);
    }

    /// A functionality egd clashing on constants: no solution exists.
    #[test]
    fn egd_clash_reports_no_solution() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(1), n(3)]);
        let func = Egd {
            body,
            equal: (Null(2), Null(3)),
        };
        let out = certain_answers_via_chase(
            &copy_mapping(),
            &source(&[[c(1), c(5)], [c(1), c(6)]]),
            &schema(),
            &[],
            &[func],
            &q_t(),
            &ChaseConfig::new(100),
        );
        assert_eq!(out, CertainAnswers::NoSolution);
    }

    /// Nulls introduced by the chase are dropped from the answer table.
    #[test]
    fn null_rows_are_not_certain() {
        // T(x,y) → ∃z T(y,z): every endpoint grows a null successor.
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(3)]);
        let succ = Rule { body, head };
        let out = certain_answers_via_chase(
            &copy_mapping(),
            &source(&[[c(1), c(1)]]),
            &schema(),
            &[succ],
            &[],
            &q_t(),
            &ChaseConfig::new(100),
        );
        let CertainAnswers::Table(t) = out else {
            panic!("expected a table: {out:?}");
        };
        // The loop (1,1) satisfies the successor tgd by itself.
        assert_eq!(t, BTreeSet::from([vec![c(1), c(1)]]));
    }

    /// An exhausted step budget is a typed verdictless outcome.
    #[test]
    fn aborted_chase_is_typed() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(3)]);
        let succ = Rule { body, head };
        let out = certain_answers_via_chase(
            &copy_mapping(),
            &source(&[[c(1), c(2)]]),
            &schema(),
            &[succ],
            &[],
            &q_t(),
            &ChaseConfig::new(10),
        );
        assert_eq!(out, CertainAnswers::Aborted);
    }
}
