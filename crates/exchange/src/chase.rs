//! The chase with target constraints.
//!
//! The paper's future-work section points at target constraints as the
//! obstacle to canonical solutions: "one can attempt to extract such
//! structural conditions from cases when the chase procedure is known to
//! work (e.g. [19, 17])". This module implements the standard chase over
//! generalized databases:
//!
//! * **tgds** `I → I′` fire when a body match has no head extension,
//!   adding the head with fresh existential nulls;
//! * **egds** `I → n₁ = n₂` fire when a body match sends the two frontier
//!   nulls to different values: two distinct constants make the chase
//!   **fail**, otherwise the null is merged into the other value.
//!
//! The chase may diverge in general; a step budget makes that observable
//! (`ChaseOutcome::Aborted`), and weakly-acyclic inputs terminate within
//! it. A successful chase of the canonical pre-solution yields a
//! universal solution *for the constrained target class* — exactly where
//! the paper says lubs survive.

use ca_core::value::{Null, NullGen, Value};
use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_hom_csp;

use crate::mapping::Rule;

/// An equality-generating dependency: when `body` matches, the images of
/// the two nulls must be equal.
#[derive(Clone, Debug)]
pub struct Egd {
    /// The body pattern (over the target schema).
    pub body: GenDb,
    /// The two body nulls forced equal.
    pub equal: (Null, Null),
}

/// The result of a chase run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// All constraints satisfied; the chased instance is returned.
    Done(Box<GenDb>),
    /// An egd tried to equate two distinct constants: no solution exists.
    Failed,
    /// The step budget ran out (possibly non-terminating chase).
    Aborted,
}

/// All body matches of `pattern` in `instance`, as null valuations.
fn matches_of(pattern: &GenDb, instance: &GenDb, limit: usize) -> Vec<Vec<(Null, Value)>> {
    let (csp, nulls, universe) = gdm_hom_csp(pattern, instance);
    csp.solve_all(limit)
        .solutions
        .into_iter()
        .map(|sol| {
            let n = pattern.n_nodes();
            nulls
                .iter()
                .enumerate()
                .map(|(i, &nl)| (nl, universe[sol[n + i] as usize]))
                .collect()
        })
        .collect()
}

/// Does the head of `rule` have a match in `instance` extending the body
/// valuation on the frontier?
fn head_extends(rule: &Rule, instance: &GenDb, body_val: &[(Null, Value)]) -> bool {
    let frontier = rule.frontier();
    let (mut csp, nulls, universe) = gdm_hom_csp(&rule.head, instance);
    let n = rule.head.n_nodes();
    for (i, nl) in nulls.iter().enumerate() {
        if frontier.contains(nl) {
            let target = body_val
                .iter()
                .find(|(m, _)| m == nl)
                .map(|&(_, v)| v)
                .expect("frontier null bound by body");
            match universe.binary_search(&target) {
                Ok(pos) => csp.restrict_domain((n + i) as u32, vec![pos as u32]),
                Err(_) => return false,
            }
        }
    }
    csp.satisfiable()
}

/// Run the standard chase: apply violated tgds (adding head facts with
/// fresh existentials) and egds (merging values) until a fixpoint, a
/// failure, or the step budget runs out.
pub fn chase(instance: &GenDb, tgds: &[Rule], egds: &[Egd], max_steps: usize) -> ChaseOutcome {
    let mut current = instance.clone();
    let mut gen = NullGen::avoiding(
        current.nulls().into_iter().chain(
            tgds.iter()
                .flat_map(|r| r.body.nulls().into_iter().chain(r.head.nulls())),
        ),
    );
    for _ in 0..max_steps {
        // Egds first (they only shrink the instance).
        let mut fired = false;
        'egds: for egd in egds {
            for m in matches_of(&egd.body, &current, 10_000) {
                let get = |nl: Null| {
                    m.iter()
                        .find(|(x, _)| *x == nl)
                        .map(|&(_, v)| v)
                        .expect("egd nulls occur in its body")
                };
                let (a, b) = (get(egd.equal.0), get(egd.equal.1));
                if a == b {
                    continue;
                }
                match (a, b) {
                    (Value::Const(_), Value::Const(_)) => return ChaseOutcome::Failed,
                    (Value::Null(nl), other) | (other, Value::Null(nl)) => {
                        current =
                            current.map_values(|v| if v == Value::Null(nl) { other } else { v });
                        fired = true;
                        break 'egds;
                    }
                }
            }
        }
        if fired {
            continue;
        }
        // Tgds.
        'tgds: for rule in tgds {
            for m in matches_of(&rule.body, &current, 10_000) {
                if head_extends(rule, &current, &m) {
                    continue;
                }
                // Fire: add the head under the body valuation, fresh
                // existentials.
                let frontier = rule.frontier();
                let mut subst: Vec<(Null, Value)> = Vec::new();
                for nl in rule.head.nulls() {
                    let v = if frontier.contains(&nl) {
                        m.iter()
                            .find(|(x, _)| *x == nl)
                            .map(|&(_, v)| v)
                            .expect("frontier bound")
                    } else {
                        Value::Null(gen.fresh())
                    };
                    subst.push((nl, v));
                }
                let head_inst = rule.head.map_values(|v| match v {
                    Value::Null(nl) => subst
                        .iter()
                        .find(|(x, _)| *x == nl)
                        .map(|&(_, v)| v)
                        .unwrap_or(v),
                    c => c,
                });
                current = current.disjoint_union(&head_inst);
                fired = true;
                break 'tgds;
            }
        }
        if !fired {
            return ChaseOutcome::Done(Box::new(current));
        }
    }
    ChaseOutcome::Aborted
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_gdm::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn schema() -> GenSchema {
        GenSchema::from_parts(&[("T", 2)], &[])
    }

    fn tdb(rows: &[[Value; 2]]) -> GenDb {
        let mut d = GenDb::new(schema());
        for r in rows {
            d.add_node("T", r.to_vec());
        }
        d
    }

    /// Transitivity tgd: T(x,y) ∧ T(y,z) → T(x,z). Weakly acyclic (no
    /// existentials): the chase computes the transitive closure.
    #[test]
    fn chase_computes_transitive_closure() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(2), n(3)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(1), n(3)]);
        let tgd = Rule { body, head };
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)]]);
        match chase(&start, &[tgd], &[], 100) {
            ChaseOutcome::Done(result) => {
                // Closure adds (1,3), (2,4), (1,4).
                assert_eq!(result.n_nodes(), 6);
            }
            other => panic!("chase should finish: {other:?}"),
        }
    }

    /// An egd merging nulls: T(x,y) ∧ T(x,z) → y = z (functionality).
    #[test]
    fn egd_merges_nulls() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(1), n(3)]);
        let egd = Egd {
            body,
            equal: (Null(2), Null(3)),
        };
        // T(1, ⊥9), T(1, 5): the null must become 5.
        let start = tdb(&[[c(1), n(9)], [c(1), c(5)]]);
        match chase(&start, &[], &[egd], 50) {
            ChaseOutcome::Done(result) => {
                assert!(result.is_complete());
                // Facts merge into a single T(1,5) pair of nodes… the
                // instance keeps both nodes (set semantics is at the
                // fact-node level), but all values are 5-grounded.
                assert!(result.data.iter().all(|t| t == &vec![c(1), c(5)]));
            }
            other => panic!("chase should finish: {other:?}"),
        }
    }

    /// An egd clash on constants fails the chase.
    #[test]
    fn egd_constant_clash_fails() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(1), n(3)]);
        let egd = Egd {
            body,
            equal: (Null(2), Null(3)),
        };
        let start = tdb(&[[c(1), c(5)], [c(1), c(6)]]);
        assert_eq!(chase(&start, &[], &[egd], 50), ChaseOutcome::Failed);
    }

    /// A non-terminating chase is aborted: T(x,y) → ∃z T(y,z) on a cycle-
    /// free start grows forever.
    #[test]
    fn divergent_chase_is_aborted() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(3)]); // fresh z each firing
        let tgd = Rule { body, head };
        let start = tdb(&[[c(1), c(2)]]);
        assert_eq!(chase(&start, &[tgd], &[], 30), ChaseOutcome::Aborted);
    }

    /// Satisfied constraints fire nothing.
    #[test]
    fn fixpoint_is_immediate_when_satisfied() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(1)]);
        let symmetry = Rule { body, head };
        let start = tdb(&[[c(1), c(2)], [c(2), c(1)]]);
        match chase(&start, &[symmetry], &[], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
