//! Relational source-to-target tgds, as a convenience layer.
//!
//! An st-tgd `∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ))` with conjunctive `φ, ψ` is the
//! rule `I_φ → I_ψ` whose generalized databases have one node per atom and
//! rule variables as nulls — exactly the paper's reading of
//! `S(x, y, u) → T(x, z), T(z, y)`.

use ca_core::value::Value;
use ca_gdm::database::GenDb;
use ca_gdm::schema::GenSchema;

use crate::mapping::{Mapping, Rule};

/// An atom of a tgd: relation name and arguments, where a [`Value::Null`]
/// is a rule variable and a [`Value::Const`] a constant.
#[derive(Clone, Debug)]
pub struct TgdAtom {
    /// Relation name.
    pub rel: String,
    /// Arguments (nulls = variables).
    pub args: Vec<Value>,
}

/// Build a source-to-target tgd rule from body and head atom lists.
pub fn st_tgd(source: &GenSchema, target: &GenSchema, body: &[TgdAtom], head: &[TgdAtom]) -> Rule {
    let mut b = GenDb::new(source.clone());
    for atom in body {
        b.add_node(&atom.rel, atom.args.clone());
    }
    let mut h = GenDb::new(target.clone());
    for atom in head {
        h.add_node(&atom.rel, atom.args.clone());
    }
    Rule { body: b, head: h }
}

/// Convenience constructor for a mapping from several tgds.
pub fn st_mapping(
    source: &GenSchema,
    target: &GenSchema,
    tgds: &[(&[TgdAtom], &[TgdAtom])],
) -> Mapping {
    Mapping::new(
        tgds.iter()
            .map(|(b, h)| st_tgd(source, target, b, h))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::{canonical_solution, core_solution};
    use ca_gdm::hom::gdm_leq;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn atom(rel: &str, args: Vec<Value>) -> TgdAtom {
        TgdAtom {
            rel: rel.into(),
            args,
        }
    }

    /// A classic copy-and-project exchange: `E(x,y) → F(x,y)` plus
    /// `E(x,y) → G(y)`.
    #[test]
    fn copy_and_project() {
        let src = GenSchema::from_parts(&[("E", 2)], &[]);
        let tgt = GenSchema::from_parts(&[("F", 2), ("G", 1)], &[]);
        let mapping = st_mapping(
            &src,
            &tgt,
            &[
                (
                    &[atom("E", vec![n(1), n(2)])],
                    &[atom("F", vec![n(1), n(2)])],
                ),
                (&[atom("E", vec![n(1), n(2)])], &[atom("G", vec![n(2)])]),
            ],
        );
        let mut d = GenDb::new(src);
        d.add_node("E", vec![c(1), c(2)]);
        d.add_node("E", vec![c(2), c(3)]);
        let canon = canonical_solution(&mapping, &d, &tgt);
        assert!(mapping.is_solution(&d, &canon));
        assert_eq!(canon.n_nodes(), 4); // 2 F-facts + 2 G-facts
                                        // Everything is complete (no existentials), so the core equals the
                                        // canonical solution up to duplicate removal.
        let core = core_solution(&mapping, &d, &tgt);
        assert!(gdm_leq(&core, &canon) && gdm_leq(&canon, &core));
    }

    /// Join-inventing exchange: two body atoms, an existential bridging
    /// value, as in `E(x,y) ∧ E(y,z) → P(x, w), P(w, z)`.
    #[test]
    fn join_with_existential() {
        let src = GenSchema::from_parts(&[("E", 2)], &[]);
        let tgt = GenSchema::from_parts(&[("P", 2)], &[]);
        let mapping = st_mapping(
            &src,
            &tgt,
            &[(
                &[atom("E", vec![n(1), n(2)]), atom("E", vec![n(2), n(3)])],
                &[atom("P", vec![n(1), n(9)]), atom("P", vec![n(9), n(3)])],
            )],
        );
        let mut d = GenDb::new(src);
        d.add_node("E", vec![c(1), c(2)]);
        d.add_node("E", vec![c(2), c(3)]);
        let canon = canonical_solution(&mapping, &d, &tgt);
        // One body match (x=1, y=2, z=3) ⇒ two P-facts sharing a null.
        assert!(mapping.is_solution(&d, &canon));
        assert_eq!(canon.n_nodes(), 2);
        assert_eq!(canon.data[0][1], canon.data[1][0]);
        assert!(canon.data[0][1].is_null());
    }

    /// Constants in tgds are matched literally.
    #[test]
    fn constants_in_rules() {
        let src = GenSchema::from_parts(&[("E", 2)], &[]);
        let tgt = GenSchema::from_parts(&[("F", 1)], &[]);
        // E(7, y) → F(y): only facts with first component 7 fire.
        let mapping = st_mapping(
            &src,
            &tgt,
            &[(&[atom("E", vec![c(7), n(1)])], &[atom("F", vec![n(1)])])],
        );
        let mut d = GenDb::new(src);
        d.add_node("E", vec![c(7), c(1)]);
        d.add_node("E", vec![c(8), c(2)]);
        let canon = canonical_solution(&mapping, &d, &tgt);
        assert_eq!(canon.n_nodes(), 1);
        assert_eq!(canon.data[0], vec![c(1)]);
    }
}
