//! Proposition 10: least upper bounds do not always exist for trees.
//!
//! The paper's counterexample: `T₁ = a[b]` and `T₂ = a[c]` both map into
//!
//! * `T′  = a[b c]` (identify the `a` nodes), and
//! * `T″ = d[a[b] a[c]]` (keep them apart under a new root),
//!
//! but any common upper bound `T` must either contain an `a`-node with
//! both a `b`- and a `c`-child (then `T ⋢ T″`) or two disjoint copies with
//! a common ancestor (then `T ⋢ T′`, since all `a`-nodes of `T′`… are the
//! root, and images of distinct nodes under a common ancestor would need
//! `a`-nodes at positive depth). So `{T₁, T₂}` has no lub — the
//! order-theoretic reason XML data exchange lacks canonical solutions.

use ca_xml::hom::tree_leq;
use ca_xml::ordered::enumerate_ordered_trees;
use ca_xml::tree::{Alphabet, XmlTree};

/// The four trees of the Proposition 10 proof:
/// `(T₁, T₂, T′, T″)`.
pub fn proposition10_trees() -> (XmlTree, XmlTree, XmlTree, XmlTree) {
    let alpha = Alphabet::from_labels(&[("a", 0), ("b", 0), ("c", 0), ("d", 0)]);
    let mut t1 = XmlTree::new(alpha.clone(), "a", vec![]);
    t1.add_child(0, "b", vec![]);
    let mut t2 = XmlTree::new(alpha.clone(), "a", vec![]);
    t2.add_child(0, "c", vec![]);
    let mut tp = XmlTree::new(alpha.clone(), "a", vec![]);
    tp.add_child(0, "b", vec![]);
    tp.add_child(0, "c", vec![]);
    let mut tpp = XmlTree::new(alpha, "d", vec![]);
    let a1 = tpp.add_child(0, "a", vec![]);
    tpp.add_child(a1, "b", vec![]);
    let a2 = tpp.add_child(0, "a", vec![]);
    tpp.add_child(a2, "c", vec![]);
    (t1, t2, tp, tpp)
}

/// Exhaustively verify Proposition 10 over all (unordered, data-free)
/// trees with at most `max_nodes` nodes: `T′` and `T″` are upper bounds of
/// `{T₁, T₂}`, yet no candidate `T` satisfies
/// `T₁, T₂ ⊑ T ⊑ T′` *and* `T ⊑ T″`. Returns the number of candidates
/// examined.
pub fn verify_proposition10(max_nodes: usize) -> usize {
    let (t1, t2, tp, tpp) = proposition10_trees();
    // Both witnesses are upper bounds.
    assert!(tree_leq(&t1, &tp) && tree_leq(&t2, &tp));
    assert!(tree_leq(&t1, &tpp) && tree_leq(&t2, &tpp));
    // Ordered enumeration covers all unordered trees too (possibly with
    // duplicates) since homomorphism checks here ignore sibling order.
    let alpha = t1.alphabet.clone();
    let candidates = enumerate_ordered_trees(&alpha, &["a", "b", "c", "d"], max_nodes);
    for t in &candidates {
        let is_upper = tree_leq(&t1, t) && tree_leq(&t2, t);
        let below_both = tree_leq(t, &tp) && tree_leq(t, &tpp);
        assert!(
            !(is_upper && below_both),
            "Proposition 10 falsified by candidate {t}"
        );
    }
    candidates.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witnesses_are_incomparable_upper_bounds() {
        let (t1, t2, tp, tpp) = proposition10_trees();
        assert!(tree_leq(&t1, &tp) && tree_leq(&t2, &tp));
        assert!(tree_leq(&t1, &tpp) && tree_leq(&t2, &tpp));
        // T′ ⋢ T″: the a-node with two differently-labeled children has
        // no image.
        assert!(!tree_leq(&tp, &tpp));
        // T″ ⋢ T′: the d-root has no image at all.
        assert!(!tree_leq(&tpp, &tp));
    }

    #[test]
    fn proposition10_holds_up_to_size_4() {
        let examined = verify_proposition10(4);
        assert!(examined > 300, "examined only {examined} candidates");
    }

    #[test]
    fn glb_direction_still_works() {
        // Contrast with lubs: the *glb* of the pair exists (the single
        // a-node).
        let (t1, t2, _, _) = proposition10_trees();
        let meet = ca_xml::glb::glb_trees(&t1, &t2).expect("glb exists");
        assert_eq!(meet.len(), 1);
    }
}
