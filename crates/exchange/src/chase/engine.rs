//! The semi-naive, delta-driven chase engine.
//!
//! Purely relational inputs (`σ = ∅` — every data-exchange target in
//! this crate) chase on the compiled join machinery of
//! [`ca_query::engine`] instead of re-running the reference loop's CSP
//! matcher over the whole instance after every single firing:
//!
//! * each rule body is validated once up front and then planned through
//!   a revision-keyed [`PlanCache`]: a round evaluates one *pinned*
//!   cost-based join plan per body atom
//!   ([`CompiledCq::compile_costed_pinned`] under the store's live
//!   statistics), with the pinned atom ranging over the **delta** — the
//!   facts added or rewritten since the previous round — so any match
//!   using at least one new fact is found exactly through the plan
//!   pinned at that fact's position, and quiet regions are never
//!   re-derived (semi-naive evaluation). Plans are re-costed only when
//!   the store's revision counter moves; quiet fixpoint passes and the
//!   per-round provenance/satisfaction evaluations hit the cache;
//! * a *trigger* is a valuation of the rule's frontier (sorted body∩head
//!   nulls). Fired triggers are remembered per rule in a hash set over
//!   the **workspace columnar fact store** ([`ca_core::store::FactStore`]
//!   — interned values, column-major tuples, a live bitmap, and a
//!   store-level null-occurrence index), so no trigger ever fires twice;
//!   head
//!   satisfaction is decided set-at-a-time by evaluating the head
//!   pattern as a query whose answers are precisely the satisfied
//!   frontier valuations, instead of one satisfiability probe per match;
//! * egd equalities accumulate in a **union-find** over values (constant
//!   roots win; two distinct constant roots fail the chase) and rewrite
//!   only the facts that mention a merged null, via a null-occurrence
//!   index — never the whole instance;
//! * the match phase runs in parallel over the round's (rule, pinned
//!   plan) tasks ([`sweep::parallel_map`], under `CA_EVAL_THREADS`, with
//!   an explicit `CA_PART_THREADS` width winning; the default width is
//!   clamped to the physical cores, and the phase stays sequential
//!   unless the cost model prices the round's seeded joins above the
//!   spawn/merge overhead); large seed lists are hash-partitioned on the
//!   pinned atom's leading bound column (`ca_core::store::partition`) so
//!   rows sharing a join key stay on one worker, and
//!   firing applies the collected triggers in (rule index, frontier
//!   valuation) order — lowest trigger wins — with fresh existential
//!   nulls drawn in that same order, so the chased instance is
//!   byte-identical at every thread count.
//!
//! Differences from the reference loop, all benign up to
//! hom-equivalence (the differential suite compares with `gdm_equiv`):
//! facts are interned, so duplicate nodes collapse; triggers fire per
//! distinct frontier valuation rather than per body match (the extra
//! matches the reference enumerates are satisfied the moment the first
//! one fires); and rounds fire every round-start-active trigger where
//! the reference restarts after each firing, so step budgets are spent
//! in a different order — outcome agreement on terminating inputs is
//! unaffected, since chase failure and success are order-independent.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ca_cert::{
    CertAtom, CertEgd, CertFact, CertRule, CertTerm, ChaseCert, ChaseCertOutcome, ChaseStep,
};
use ca_core::fxhash::{FxHashMap, FxHashSet};
use ca_core::store::{partition, FactId, FactStore};
use ca_core::symbol::Symbol;
use ca_core::value::{Null, NullGen, Value};
use ca_gdm::database::GenDb;
use ca_query::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use ca_query::engine::{
    eval_prepared_into, eval_seeded_into, prepare_cq, sweep, CompiledCq, CompiledUcq, DbIndex,
    PlanCache, PreparedCq, PART_MIN_WORK,
};
use ca_relational::schema::Schema;

use super::{ChaseConfig, ChaseOutcome, Egd};
use crate::mapping::Rule;

/// The atoms of a purely relational pattern: one atom per node, the
/// node's label as the relation, nulls as variables (by null id),
/// constants as constants. Shared with the mapping layer's compiled
/// body-match fast path.
pub(crate) fn pattern_atoms(d: &GenDb) -> Vec<Atom> {
    d.labels
        .iter()
        .zip(&d.data)
        .map(|(&label, row)| {
            let args = row
                .iter()
                .map(|v| match v {
                    Value::Null(nl) => Term::Var(nl.0),
                    Value::Const(c) => Term::Const(*c),
                })
                .collect();
            Atom::new(d.schema.label_name(label), args)
        })
        .collect()
}

/// One position of a head-fact template, resolved at firing time.
enum HeadTerm {
    /// A constant from the rule head.
    Const(Value),
    /// The value of the trigger row at this frontier index.
    Frontier(usize),
    /// An existential null: fresh per firing, shared across the head
    /// instantiation by its rule-local null id.
    Existential(Null),
}

/// A head fact to instantiate when a trigger fires.
struct HeadFact {
    rel: Symbol,
    template: Vec<HeadTerm>,
}

/// Full-assignment provenance plans for one pattern body, compiled only
/// under [`ChaseConfig::certify`]: the same pinned body plans, but with
/// **every** sorted body variable in the head, so each answer row *is* a
/// complete body assignment (the witness a [`ChaseStep`] records).
struct CertPlans {
    /// `(pinned relation, pinned plan)` per body atom; head = `body_vars`.
    plans: Vec<(Symbol, CompiledCq)>,
    /// All body variables, sorted (the provenance rows' column order).
    body_vars: Vec<u32>,
    /// Positions in `body_vars` of the normal plan's head projection
    /// (a rule's frontier, or an egd's equated pair).
    proj: Vec<usize>,
}

impl CertPlans {
    fn compile(atoms: &[Atom], proj_vars: &[u32], schema: &Schema) -> Option<CertPlans> {
        let q = ConjunctiveQuery::with_head(
            {
                let mut vars: Vec<u32> = atoms.iter().flat_map(Atom::vars).collect();
                vars.sort_unstable();
                vars.dedup();
                vars
            },
            atoms.to_vec(),
        );
        let mut plans = Vec::with_capacity(q.atoms.len());
        for pin in 0..q.atoms.len() {
            let plan = CompiledCq::compile_pinned(&q, schema, pin).ok()?;
            let rel = schema.relation(&q.atoms[pin].rel)?;
            plans.push((rel, plan));
        }
        let proj = proj_vars
            .iter()
            .map(|v| q.head.binary_search(v).ok())
            .collect::<Option<Vec<usize>>>()?;
        Some(CertPlans {
            plans,
            body_vars: q.head,
            proj,
        })
    }
}

/// One tgd compiled against the instance schema. The body and head are
/// kept as queries (validated once up front): the round loop resolves
/// them into cost-based plans through the run's [`PlanCache`], so the
/// join orders track the store's live statistics while compile errors
/// stay impossible after construction (plan errors are independent of
/// join order and pin — they depend only on the query and the schema).
struct CompiledRule {
    /// The body with the sorted frontier as head, as a single-disjunct
    /// union (the plan cache's key type).
    body_u: UnionQuery,
    /// The pinned relation of each body atom, in atom order.
    rels: Vec<Symbol>,
    /// The head pattern as a query over the same frontier head: its
    /// answer set is exactly the set of satisfied frontier valuations.
    head_u: UnionQuery,
    /// The head facts to instantiate on firing.
    head_facts: Vec<HeadFact>,
    /// Provenance plans (certify mode only).
    cert: Option<CertPlans>,
}

/// One egd compiled against the instance schema: the body projecting
/// onto the two equated nulls, plus its atoms' relations.
struct CompiledEgd {
    body_u: UnionQuery,
    rels: Vec<Symbol>,
    /// Provenance plans (certify mode only).
    cert: Option<CertPlans>,
}

fn compile_rule(rule: &Rule, schema: &Schema, certify: bool) -> Option<CompiledRule> {
    let frontier: Vec<Null> = rule.frontier().into_iter().collect();
    let head_vars: Vec<u32> = frontier.iter().map(|nl| nl.0).collect();
    let body_q = ConjunctiveQuery::with_head(head_vars.clone(), pattern_atoms(&rule.body));
    // Validate once: a body that compiles unpinned compiles under every
    // pin and every join order.
    CompiledCq::compile(&body_q, schema).ok()?;
    let rels = body_q
        .atoms
        .iter()
        .map(|a| schema.relation(&a.rel))
        .collect::<Option<Vec<_>>>()?;
    let cert = if certify {
        Some(CertPlans::compile(&body_q.atoms, &head_vars, schema)?)
    } else {
        None
    };
    let head_q = ConjunctiveQuery::with_head(head_vars, pattern_atoms(&rule.head));
    CompiledCq::compile(&head_q, schema).ok()?;
    let mut head_facts = Vec::with_capacity(rule.head.n_nodes());
    for (label, row) in rule.head.labels.iter().zip(&rule.head.data) {
        let rel = schema.relation(rule.head.schema.label_name(*label))?;
        let template = row
            .iter()
            .map(|v| match v {
                Value::Const(_) => HeadTerm::Const(*v),
                // `frontier` is sorted (built from a BTreeSet).
                Value::Null(nl) => match frontier.binary_search(nl) {
                    Ok(i) => HeadTerm::Frontier(i),
                    Err(_) => HeadTerm::Existential(*nl),
                },
            })
            .collect();
        head_facts.push(HeadFact { rel, template });
    }
    Some(CompiledRule {
        body_u: UnionQuery::single(body_q),
        rels,
        head_u: UnionQuery::single(head_q),
        head_facts,
        cert,
    })
}

fn compile_egd(egd: &Egd, schema: &Schema, certify: bool) -> Option<CompiledEgd> {
    let pair = [egd.equal.0 .0, egd.equal.1 .0];
    let q = ConjunctiveQuery::with_head(pair.to_vec(), pattern_atoms(&egd.body));
    // Validate once unpinned: an equated null not bound by the body (or
    // an empty body) is an UnboundHeadVar — fall back to the reference,
    // which owns the semantics of such malformed egds.
    CompiledCq::compile(&q, schema).ok()?;
    let rels = q
        .atoms
        .iter()
        .map(|a| schema.relation(&a.rel))
        .collect::<Option<Vec<_>>>()?;
    let cert = if certify {
        Some(CertPlans::compile(&q.atoms, &pair, schema)?)
    } else {
        None
    };
    Some(CompiledEgd {
        body_u: UnionQuery::single(q),
        rels,
        cert,
    })
}

/// Union-find over values. Constants are always roots; between two null
/// roots the smaller null id wins, so the representative choice is
/// deterministic.
#[derive(Default)]
struct UnionFind {
    parent: FxHashMap<Null, Value>,
}

impl UnionFind {
    fn find(&self, v: Value) -> Value {
        let mut cur = v;
        while let Value::Null(nl) = cur {
            match self.parent.get(&nl) {
                Some(&p) => cur = p,
                None => break,
            }
        }
        cur
    }

    /// Union the classes of `a` and `b`. `Err(())` on a constant clash,
    /// `Ok(Some(n))` when null `n` was merged away, `Ok(None)` when the
    /// classes already coincided.
    fn union(&mut self, a: Value, b: Value) -> Result<Option<Null>, ()> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(None);
        }
        match (ra, rb) {
            (Value::Const(_), Value::Const(_)) => Err(()),
            (Value::Null(nl), root @ Value::Const(_))
            | (root @ Value::Const(_), Value::Null(nl)) => {
                self.parent.insert(nl, root);
                Ok(Some(nl))
            }
            (Value::Null(x), Value::Null(y)) => {
                let (loser, root) = if x.0 < y.0 { (y, x) } else { (x, y) };
                self.parent.insert(loser, Value::Null(root));
                Ok(Some(loser))
            }
        }
    }
}

/// A pattern body/head in checker vocabulary: the exact mirror of
/// [`pattern_atoms`] (nulls as variables by id, constants literal).
fn cert_atoms(d: &GenDb) -> Vec<CertAtom> {
    d.labels
        .iter()
        .zip(&d.data)
        .map(|(&label, row)| CertAtom {
            rel: d.schema.label_name(label).to_owned(),
            args: row
                .iter()
                .map(|v| match v {
                    Value::Null(nl) => CertTerm::Var(nl.0),
                    Value::Const(c) => CertTerm::Const(*c),
                })
                .collect(),
        })
        .collect()
}

/// The constraint-set and initial-instance half of a chase certificate,
/// built up front; [`run`] appends the derivation and outcome.
struct CertSkeleton {
    rules: Vec<CertRule>,
    egds: Vec<CertEgd>,
    initial: Vec<CertFact>,
}

fn cert_skeleton(instance: &GenDb, tgds: &[Rule], egds: &[Egd]) -> CertSkeleton {
    CertSkeleton {
        rules: tgds
            .iter()
            .map(|r| CertRule {
                body: cert_atoms(&r.body),
                head: cert_atoms(&r.head),
            })
            .collect(),
        egds: egds
            .iter()
            .map(|e| CertEgd {
                body: cert_atoms(&e.body),
                equal: (e.equal.0 .0, e.equal.1 .0),
            })
            .collect(),
        // Canonicalized (sorted, deduplicated): the certificate's bytes
        // must not depend on the caller's node insertion order.
        initial: {
            let mut facts: Vec<CertFact> = instance
                .labels
                .iter()
                .zip(&instance.data)
                .map(|(&label, row)| (instance.schema.label_name(label).to_owned(), row.clone()))
                .collect();
            facts.sort();
            facts.dedup();
            facts
        },
    }
}

/// Try to run the engine. `None` (caller falls back to the reference
/// chase) when any structural tuples are present or a pattern does not
/// compile against the instance schema. The second component is the
/// derivation log, present exactly when [`ChaseConfig::certify`] is set.
pub(super) fn try_chase(
    instance: &GenDb,
    tgds: &[Rule],
    egds: &[Egd],
    cfg: &ChaseConfig,
) -> Option<(ChaseOutcome, Option<ChaseCert>)> {
    if !instance.tuples.is_empty()
        || tgds
            .iter()
            .any(|r| !r.body.tuples.is_empty() || !r.head.tuples.is_empty())
        || egds.iter().any(|e| !e.body.tuples.is_empty())
    {
        return None;
    }
    // The instance schema's labels as a relational schema. Pattern labels
    // resolve against it by *name*, since each pattern carries its own
    // interner.
    let mut schema = Schema::new();
    let mut rel_of_label: Vec<Symbol> = Vec::new();
    for sym in instance.schema.label_symbols() {
        let rel = schema.add_relation(
            instance.schema.label_name(sym),
            instance.schema.label_arity(sym),
        );
        rel_of_label.push(rel);
    }
    let rules: Vec<CompiledRule> = tgds
        .iter()
        .map(|r| compile_rule(r, &schema, cfg.certify))
        .collect::<Option<_>>()?;
    let cegds: Vec<CompiledEgd> = egds
        .iter()
        .map(|e| compile_egd(e, &schema, cfg.certify))
        .collect::<Option<_>>()?;
    // Fresh existentials avoid every null in sight, as in the reference.
    let gen = NullGen::avoiding(
        instance.nulls().into_iter().chain(
            tgds.iter()
                .flat_map(|r| r.body.nulls().into_iter().chain(r.head.nulls())),
        ),
    );
    let skeleton = cfg.certify.then(|| cert_skeleton(instance, tgds, egds));
    Some(run(
        &schema,
        &rules,
        &cegds,
        instance,
        &rel_of_label,
        gen,
        cfg,
        skeleton,
    ))
}

/// A round's trigger (or satisfied) set for one rule: frontier
/// valuations, kept sorted so firing order is deterministic.
type TriggerSet = BTreeSet<Vec<Value>>;

/// A body assignment in step vocabulary: sorted `(variable, value)` pairs.
type Assignment = Vec<(u32, Value)>;

/// The in-flight derivation log of a certified run.
struct Recorder {
    skeleton: CertSkeleton,
    steps: Vec<ChaseStep>,
    /// Set when a step found no provenance witness. This is unreachable
    /// by construction (the provenance plans enumerate a superset of the
    /// budgeted match sets over the same seeds); if it ever trips, the
    /// run stays correct and the certificate is withheld rather than
    /// emitted broken.
    poisoned: bool,
}

impl Recorder {
    fn finish(self, outcome: ChaseCertOutcome) -> Option<ChaseCert> {
        if self.poisoned {
            return None;
        }
        Some(ChaseCert {
            rules: self.skeleton.rules,
            egds: self.skeleton.egds,
            initial: self.skeleton.initial,
            steps: self.steps,
            outcome,
        })
    }
}

/// The facts of a rebuilt instance in checker vocabulary.
fn gendb_facts(d: &GenDb) -> Vec<CertFact> {
    let mut facts: Vec<CertFact> = d
        .labels
        .iter()
        .zip(&d.data)
        .map(|(&label, row)| (d.schema.label_name(label).to_owned(), row.clone()))
        .collect();
    // Canonicalized: store fact ids follow insertion order, which must
    // not leak into certificate bytes.
    facts.sort();
    facts.dedup();
    facts
}

/// The live store facts, union-find-resolved, in checker vocabulary.
/// (`rewrite` lags the union-find mid-merge-batch, so resolution is
/// applied here rather than trusting the store to be current.)
fn resolved_facts(schema: &Schema, store: &FactStore, uf: &UnionFind) -> Vec<CertFact> {
    let mut facts: Vec<CertFact> = store
        .iter_live()
        .map(|id| {
            (
                schema.name(store.fact_rel(id)).to_owned(),
                store.fact_values(id).iter().map(|&v| uf.find(v)).collect(),
            )
        })
        .collect();
    facts.sort();
    facts.dedup();
    facts
}

#[allow(clippy::too_many_arguments)]
fn run(
    schema: &Schema,
    rules: &[CompiledRule],
    egds: &[CompiledEgd],
    instance: &GenDb,
    rel_of_label: &[Symbol],
    mut gen: NullGen,
    cfg: &ChaseConfig,
    skeleton: Option<CertSkeleton>,
) -> (ChaseOutcome, Option<ChaseCert>) {
    // The chase state lives in the workspace columnar store; relations
    // are registered in schema order, so store symbols coincide with the
    // schema symbols the plans were compiled against.
    let mut store = FactStore::new();
    for sym in schema.symbols() {
        let reg = store.add_relation(schema.name(sym), schema.arity(sym));
        debug_assert_eq!(reg, sym, "store symbols mirror schema symbols");
    }
    let mut uf = UnionFind::default();
    // Cost-based plans keyed by (query, pin, store revision): quiet
    // fixpoint passes and the certify-mode re-evaluations reuse plans;
    // any store mutation re-costs them against fresh statistics.
    let mut cache = PlanCache::new();
    let mut rec: Option<Recorder> = skeleton.map(|skeleton| Recorder {
        skeleton,
        steps: Vec::new(),
        poisoned: false,
    });
    let mut fired: Vec<FxHashSet<Vec<Value>>> =
        rules.iter().map(|_| FxHashSet::default()).collect();
    let mut steps = 0usize;
    // Load the instance; duplicate nodes intern to one fact.
    let mut delta: Vec<FactId> = Vec::new();
    for (label, row) in instance.labels.iter().zip(&instance.data) {
        let rel = rel_of_label.get(label.index()).copied().unwrap_or(*label); // unreachable: every instance label is in its schema
        if let Some(id) = store.insert(rel, row) {
            delta.push(id);
        }
    }
    let mut first_round = true;
    loop {
        // Budget semantics mirror the reference's `for _ in 0..max_steps`
        // loop: the pass that *observes* the fixpoint needs a step too,
        // so a round may only begin while budget remains (in particular,
        // `max_steps == 0` aborts immediately).
        if steps >= cfg.max_steps {
            let cert = rec.take().and_then(|r| {
                let partial = resolved_facts(schema, &store, &uf);
                r.finish(ChaseCertOutcome::Aborted { partial })
            });
            return (ChaseOutcome::Aborted, cert);
        }
        let round_start_steps = steps;

        // ---- egd phase: fixpoint over this round's delta ----
        let mut rewritten_all: Vec<u32> = Vec::new();
        if !egds.is_empty() {
            let mut egd_delta: Vec<u32> = delta.clone();
            while !egd_delta.is_empty() {
                // One index (and one seed partition) per pass, shared by
                // the match and provenance evaluations: both read the
                // same store state, so certify mode no longer rebuilds
                // the posting tables twice per batch.
                let matched = {
                    let mut idx = DbIndex::over(&store);
                    let seeds = seeds_by_rel(schema, &store, &egd_delta);
                    match egd_matches(schema, &store, egds, &seeds, cfg, &mut cache, &mut idx) {
                        Ok(pairs) => {
                            // Full-assignment witnesses for this batch,
                            // from the same seeds and store state the
                            // pairs came from (certify only).
                            let prov = rec
                                .as_ref()
                                .filter(|_| !pairs.is_empty())
                                .map(|_| egd_provenance(egds, &seeds, &mut idx));
                            Ok((pairs, prov))
                        }
                        Err(()) => Err(()),
                    }
                };
                let (pairs, prov) = match matched {
                    Ok(x) => x,
                    Err(()) => {
                        let partial = Box::new(rebuild(schema, &store, instance, &uf));
                        let cert = rec.take().and_then(|r| {
                            let partial = gendb_facts(&partial);
                            r.finish(ChaseCertOutcome::Overflow { partial })
                        });
                        return (ChaseOutcome::Overflow(partial), cert);
                    }
                };
                let mut merged: Vec<Null> = Vec::new();
                for (a, b) in pairs {
                    if uf.find(a) == uf.find(b) {
                        continue;
                    }
                    if steps >= cfg.max_steps {
                        let cert = rec.take().and_then(|r| {
                            let partial = resolved_facts(schema, &store, &uf);
                            r.finish(ChaseCertOutcome::Aborted { partial })
                        });
                        return (ChaseOutcome::Aborted, cert);
                    }
                    let union = uf.union(a, b);
                    if let Some(recd) = rec.as_mut() {
                        // Distinct roots make `Ok(None)` unreachable here,
                        // so every taken branch is a recordable step.
                        let merged_entry = match union {
                            Err(()) => Some(None),
                            Ok(Some(loser)) => Some(Some((loser, uf.find(Value::Null(loser))))),
                            Ok(None) => None,
                        };
                        if let Some(merged_entry) = merged_entry {
                            match prov.as_ref().and_then(|p| p.get(&(a, b))) {
                                Some((e, assignment)) => recd.steps.push(ChaseStep::Merge {
                                    egd: *e,
                                    assignment: assignment.clone(),
                                    merged: merged_entry,
                                }),
                                None => recd.poisoned = true,
                            }
                        }
                    }
                    match union {
                        Err(()) => {
                            let cert = rec.take().and_then(|r| r.finish(ChaseCertOutcome::Failed));
                            return (ChaseOutcome::Failed, cert);
                        }
                        Ok(Some(loser)) => {
                            steps += 1;
                            merged.push(loser);
                        }
                        Ok(None) => {}
                    }
                }
                if merged.is_empty() {
                    break;
                }
                let changed = store.rewrite(&merged, |v| uf.find(v));
                // Keep the dedup keys aligned with the rewritten
                // instance: fired valuations go through the same merge
                // substitution as the facts (order-independent — the set
                // is rebuilt, not iterated into anything ordered).
                for set in fired.iter_mut() {
                    *set = set
                        .drain()
                        .map(|row| row.iter().map(|&v| uf.find(v)).collect())
                        .collect();
                }
                egd_delta = changed.clone();
                rewritten_all.extend(changed);
            }
        }

        // ---- tgd phase: collect round-start triggers, then fire ----
        let mut tgd_seed: Vec<u32> = delta
            .iter()
            .chain(rewritten_all.iter())
            .copied()
            .filter(|&id| store.is_live(id))
            .collect();
        tgd_seed.sort_unstable();
        tgd_seed.dedup();
        // As in the egd phase: one index and one seed partition for the
        // trigger match, the satisfaction check, and the provenance pass.
        let matched = {
            let mut idx = DbIndex::over(&store);
            let seeds = seeds_by_rel(schema, &store, &tgd_seed);
            match tgd_matches(
                schema,
                &store,
                rules,
                &fired,
                &seeds,
                first_round,
                cfg,
                &mut cache,
                &mut idx,
            ) {
                Ok(x) => {
                    // Full-assignment witnesses for this round's firings
                    // (certify only; same seeds and store state as the
                    // trigger match above).
                    let prov = rec
                        .as_ref()
                        .map(|_| tgd_provenance(rules, &seeds, first_round, &mut idx));
                    Ok((x, prov))
                }
                Err(()) => Err(()),
            }
        };
        let ((triggers, satisfied), prov) = match matched {
            Ok(x) => x,
            Err(()) => {
                let partial = Box::new(rebuild(schema, &store, instance, &uf));
                let cert = rec.take().and_then(|r| {
                    let partial = gendb_facts(&partial);
                    r.finish(ChaseCertOutcome::Overflow { partial })
                });
                return (ChaseOutcome::Overflow(partial), cert);
            }
        };
        let mut inserted: Vec<u32> = Vec::new();
        for (r, rule) in rules.iter().enumerate() {
            for row in &triggers[r] {
                if fired[r].contains(row) {
                    continue;
                }
                // Mark fired even when already satisfied: satisfaction is
                // monotone under fact addition, and egd merges rewrite
                // the fired rows together with the facts, so a satisfied
                // trigger can never need firing later.
                fired[r].insert(row.clone());
                if satisfied[r].contains(row) {
                    continue;
                }
                if steps >= cfg.max_steps {
                    let cert = rec.take().and_then(|rr| {
                        let partial = resolved_facts(schema, &store, &uf);
                        rr.finish(ChaseCertOutcome::Aborted { partial })
                    });
                    return (ChaseOutcome::Aborted, cert);
                }
                steps += 1;
                let mut fresh: FxHashMap<Null, Value> = FxHashMap::default();
                for hf in &rule.head_facts {
                    let tuple: Vec<Value> = hf
                        .template
                        .iter()
                        .map(|t| match t {
                            HeadTerm::Const(v) => *v,
                            HeadTerm::Frontier(i) => row[*i],
                            HeadTerm::Existential(nl) => {
                                *fresh.entry(*nl).or_insert_with(|| Value::Null(gen.fresh()))
                            }
                        })
                        .collect();
                    if let Some(id) = store.insert(hf.rel, &tuple) {
                        inserted.push(id);
                    }
                }
                if let Some(recd) = rec.as_mut() {
                    match prov
                        .as_ref()
                        .and_then(|p| p.get(r))
                        .and_then(|m| m.get(row))
                    {
                        Some(assignment) => {
                            let mut ledger: Vec<(u32, Null)> = fresh
                                .iter()
                                .filter_map(|(k, v)| v.as_null().map(|n| (k.0, n)))
                                .collect();
                            ledger.sort_unstable();
                            recd.steps.push(ChaseStep::Fire {
                                rule: r,
                                assignment: assignment.clone(),
                                fresh: ledger,
                            });
                        }
                        None => recd.poisoned = true,
                    }
                }
            }
        }

        delta = inserted;
        first_round = false;
        if steps == round_start_steps {
            // No merge and no firing: every trigger is satisfied or
            // fired, the instance is a fixpoint.
            let done = Box::new(rebuild(schema, &store, instance, &uf));
            let cert = rec.take().and_then(|r| {
                let final_facts = gendb_facts(&done);
                r.finish(ChaseCertOutcome::Done { final_facts })
            });
            return (ChaseOutcome::Done(done), cert);
        }
    }
}

/// Evaluate the egds' full-assignment provenance plans over the same
/// seeds as the match phase (sequential, unbudgeted): for every equality
/// pair, the lexicographically least `(egd index, body assignment)`
/// witnessing it. Certify mode only — the hot path never calls this.
fn egd_provenance(
    egds: &[CompiledEgd],
    seeds: &[Vec<u32>],
    idx: &mut DbIndex,
) -> BTreeMap<(Value, Value), (usize, Assignment)> {
    let mut out: BTreeMap<(Value, Value), (usize, Assignment)> = BTreeMap::new();
    for (e, egd) in egds.iter().enumerate() {
        let Some(cert) = &egd.cert else { continue };
        let (Some(&pa), Some(&pb)) = (cert.proj.first(), cert.proj.get(1)) else {
            continue;
        };
        for (rel, plan) in &cert.plans {
            let prepared = prepare_cq(plan, idx);
            let rows = &seeds[rel.index()];
            eval_seeded_into(plan, &prepared, idx, rows, &mut |row| {
                if let (Some(&a), Some(&b)) = (row.get(pa), row.get(pb)) {
                    let assignment: Assignment = cert
                        .body_vars
                        .iter()
                        .copied()
                        .zip(row.iter().copied())
                        .collect();
                    let candidate = (e, assignment);
                    match out.get_mut(&(a, b)) {
                        Some(best) => {
                            if candidate < *best {
                                *best = candidate;
                            }
                        }
                        None => {
                            out.insert((a, b), candidate);
                        }
                    }
                }
                true
            });
        }
    }
    out
}

/// Evaluate the rules' full-assignment provenance plans over the same
/// seeds as the match phase (sequential, unbudgeted): per rule, for every
/// frontier valuation, the least full body assignment projecting to it.
/// Certify mode only.
fn tgd_provenance(
    rules: &[CompiledRule],
    seeds: &[Vec<u32>],
    first_round: bool,
    idx: &mut DbIndex,
) -> Vec<BTreeMap<Vec<Value>, Assignment>> {
    let mut out: Vec<BTreeMap<Vec<Value>, Assignment>> = vec![BTreeMap::new(); rules.len()];
    for (rule, map) in rules.iter().zip(out.iter_mut()) {
        let Some(cert) = &rule.cert else { continue };
        // An empty-body rule has the empty trigger from round one.
        if cert.plans.is_empty() && first_round {
            map.insert(Vec::new(), Vec::new());
        }
        for (rel, plan) in &cert.plans {
            let prepared = prepare_cq(plan, idx);
            let rows = &seeds[rel.index()];
            eval_seeded_into(plan, &prepared, idx, rows, &mut |row| {
                let frontier_row: Option<Vec<Value>> =
                    cert.proj.iter().map(|&p| row.get(p).copied()).collect();
                let Some(frontier_row) = frontier_row else {
                    return true;
                };
                let assignment: Assignment = cert
                    .body_vars
                    .iter()
                    .copied()
                    .zip(row.iter().copied())
                    .collect();
                match map.get_mut(&frontier_row) {
                    Some(best) => {
                        if assignment < *best {
                            *best = assignment;
                        }
                    }
                    None => {
                        map.insert(frontier_row, assignment);
                    }
                }
                true
            });
        }
    }
    out
}

/// Partition delta fact ids into per-relation row-id seed lists (the
/// seeded evaluator pins plans on rows of the pinned relation's column
/// pages). Dead facts are skipped — a fact can die between the delta
/// being recorded and the match phase that consumes it.
fn seeds_by_rel(schema: &Schema, store: &FactStore, seed: &[FactId]) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); schema.len()];
    for &id in seed {
        if store.is_live(id) {
            out[store.fact_rel(id).index()].push(store.fact_row(id));
        }
    }
    out
}

/// The sole disjunct of a rule-body/head plan. Compiled rule queries
/// are built with `UnionQuery::single` (see `compile_rule`), so the
/// compiled plan has exactly one disjunct by construction.
fn sole(plan: &CompiledUcq) -> &CompiledCq {
    // ca-lint: allow(L002, reason = "single-disjunct by construction: every chase rule query is wrapped via UnionQuery::single at compile_rule time")
    plan.disjuncts().first().expect("UnionQuery::single")
}

/// Parallelism pays only when the match phase has real work: below this
/// many seed facts summed over the round's tasks, the thread-scope spawn
/// dominates the joins and the phase stays sequential (mirrors
/// `PAR_MIN_COMPLETIONS` in `ca_query::engine::sweep`).
const PAR_MIN_SEED: usize = 512;

fn effective_threads(threads: usize, total_seed: usize, est_work: f64) -> usize {
    // An explicit `CA_PART_THREADS` width overrides the config width and
    // is honored **verbatim**, exactly like the partitioned join in
    // `ca_query::engine::par` — the partition determinism suite pins
    // byte-identical results at widths wider than the host, so an
    // explicit width beyond the physical cores costs only wall time,
    // never correctness. The *default* width, by contrast, is clamped to
    // the cores actually present: a four-wide default on a one-core host
    // is pure coordination overhead.
    let threads = match ca_core::config::part_threads_set() {
        Some(w) => w,
        None => threads.min(ca_core::config::available_parallelism_or(1)),
    };
    // Two gates, both advisory (results are width-independent): enough
    // seed facts to split, and enough *estimated join work* — a round
    // seeding thousands of single-atom bodies has nothing to probe, and
    // the thread-scope spawn would dominate it.
    if threads <= 1 || total_seed < PAR_MIN_SEED || est_work < PART_MIN_WORK {
        1
    } else {
        threads
    }
}

/// A unit of match work: one `(rule-or-egd index, pinned-plan index)`
/// pair restricted to an owned list of the pinned relation's seed rows.
/// Large seed lists are **hash-partitioned** on the pinned atom's first
/// bound column (`ca_core::store::partition`) so delta rows sharing a
/// join key stay on one worker and each worker's probe working set is a
/// fraction of the posting tables; each task dedups its own output so
/// workers share the set-building cost too.
struct MatchTask {
    rule: usize,
    pin: usize,
    rows: Vec<u32>,
}

/// Build the round's match tasks: every nonempty (rule, pin) seed list
/// becomes one task when small (or `threads <= 1`), else `threads`
/// hash partitions — keyed by the pinned plan's leading bound column via
/// `key_col`, falling back to row-id partitioning for plans that bind
/// nothing. Partitions are deterministic in the store contents
/// (seed-independent of the worker count only in *which rows group
/// together*, and the per-rule merges are order-insensitive sets), so
/// results stay byte-identical at every width.
fn partition_tasks(
    store: &FactStore,
    seeds: &[Vec<u32>],
    plan_seeds: &[(usize, usize, Symbol)],
    key_col: impl Fn(usize, usize) -> Option<usize>,
    threads: usize,
) -> Vec<MatchTask> {
    let mut tasks = Vec::new();
    for &(rule, pin, rel) in plan_seeds {
        let rows = &seeds[rel.index()];
        if threads <= 1 || rows.len() < PAR_MIN_SEED {
            tasks.push(MatchTask {
                rule,
                pin,
                rows: rows.clone(),
            });
            continue;
        }
        let parts = match key_col(rule, pin).and_then(|pos| store.table(rel).cols().get(pos)) {
            Some(col) => partition::partition_rows(col, rows, threads),
            None => partition::partition_ids(rows, threads),
        };
        for rows in parts {
            if !rows.is_empty() {
                tasks.push(MatchTask { rule, pin, rows });
            }
        }
    }
    tasks
}

/// Resolve the cost-based pinned plan of every `(rule, pin)` pair in
/// `plan_seeds` through the cache, prepare it against the shared index,
/// and sum the model's estimate of the seeded join work. The `BTreeMap`
/// keeps worker lookups deterministic and ca-lint-clean.
type PlanTable = BTreeMap<(usize, usize), (Arc<CompiledUcq>, PreparedCq)>;

/// Evaluate every egd's pinned plans over the per-relation seeds,
/// returning the sorted set of equality pairs. `Err(())` = match budget
/// exceeded.
fn egd_matches(
    schema: &Schema,
    store: &FactStore,
    egds: &[CompiledEgd],
    seeds: &[Vec<u32>],
    cfg: &ChaseConfig,
    cache: &mut PlanCache,
    idx: &mut DbIndex,
) -> Result<BTreeSet<(Value, Value)>, ()> {
    let mut plan_seeds: Vec<(usize, usize, Symbol)> = Vec::new();
    let mut total_seed = 0usize;
    for (e, egd) in egds.iter().enumerate() {
        for (p, &rel) in egd.rels.iter().enumerate() {
            let n = seeds[rel.index()].len();
            if n > 0 {
                plan_seeds.push((e, p, rel));
                total_seed += n;
            }
        }
    }
    let mut plans: PlanTable = BTreeMap::new();
    let mut est_work = 0.0f64;
    for &(e, p, rel) in &plan_seeds {
        let plan = cache
            .get_or_compile_pinned(&egds[e].body_u, p, schema, store)
            // ca-lint: allow(L002, reason = "compile_egd validated this body against the schema; plan errors are independent of pin and statistics")
            .expect("egd bodies are validated at compile time");
        let cq = sole(&plan);
        let prepared = prepare_cq(cq, idx);
        est_work += idx.model().seeded_work(cq, seeds[rel.index()].len());
        plans.insert((e, p), (plan, prepared));
    }
    let threads = effective_threads(cfg.threads, total_seed, est_work);
    let tasks = partition_tasks(
        store,
        seeds,
        &plan_seeds,
        |e, p| sole(&plans[&(e, p)].0).lead_bind_pos(),
        threads,
    );
    let limit = cfg.match_limit;
    let idx = &*idx;
    let results: Vec<(BTreeSet<(Value, Value)>, bool)> =
        sweep::parallel_map(tasks.len(), threads, |t| {
            let MatchTask {
                rule: e,
                pin: p,
                rows,
            } = &tasks[t];
            let (plan, prepared) = &plans[&(*e, *p)];
            let plan = sole(plan);
            let mut set: BTreeSet<(Value, Value)> = BTreeSet::new();
            let mut over = false;
            eval_seeded_into(plan, prepared, idx, rows, &mut |row| {
                if let [a, b] = row {
                    // Insert straight away (dedup is free for Copy
                    // pairs); only a full set needs the existence
                    // check to tell "duplicate" from "over budget".
                    if set.len() == limit {
                        if set.contains(&(*a, *b)) {
                            return true;
                        }
                        over = true;
                        return false;
                    }
                    set.insert((*a, *b));
                }
                true
            });
            (set, over)
        });
    let mut pairs = BTreeSet::new();
    for (set, over) in results {
        if over {
            return Err(());
        }
        pairs.extend(set);
        if pairs.len() > limit {
            return Err(());
        }
    }
    Ok(pairs)
}

/// Evaluate every rule's pinned plans over the per-relation seeds, and
/// the head plans of rules with unfired candidates. Returns per-rule
/// `(triggers, satisfied)` frontier-valuation sets. `Err(())` = match
/// budget exceeded.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn tgd_matches(
    schema: &Schema,
    store: &FactStore,
    rules: &[CompiledRule],
    fired: &[FxHashSet<Vec<Value>>],
    seeds: &[Vec<u32>],
    first_round: bool,
    cfg: &ChaseConfig,
    cache: &mut PlanCache,
    idx: &mut DbIndex,
) -> Result<(Vec<TriggerSet>, Vec<TriggerSet>), ()> {
    let n_rules = rules.len();
    let mut triggers: Vec<TriggerSet> = vec![BTreeSet::new(); n_rules];
    let mut satisfied: Vec<TriggerSet> = vec![BTreeSet::new(); n_rules];
    if n_rules == 0 {
        return Ok((triggers, satisfied));
    }
    let mut plan_seeds: Vec<(usize, usize, Symbol)> = Vec::new();
    let mut total_seed = 0usize;
    for (r, rule) in rules.iter().enumerate() {
        for (p, &rel) in rule.rels.iter().enumerate() {
            let n = seeds[rel.index()].len();
            if n > 0 {
                plan_seeds.push((r, p, rel));
                total_seed += n;
            }
        }
    }
    // Resolve and prepare the seeded plans up front (mutably), so the
    // parallel phase below can share the index immutably.
    let mut plans: PlanTable = BTreeMap::new();
    let mut est_work = 0.0f64;
    for &(r, p, rel) in &plan_seeds {
        let plan = cache
            .get_or_compile_pinned(&rules[r].body_u, p, schema, store)
            // ca-lint: allow(L002, reason = "compile_rule validated this body against the schema; plan errors are independent of pin and statistics")
            .expect("rule bodies are validated at compile time");
        let cq = sole(&plan);
        let prepared = prepare_cq(cq, idx);
        est_work += idx.model().seeded_work(cq, seeds[rel.index()].len());
        plans.insert((r, p), (plan, prepared));
    }
    let threads = effective_threads(cfg.threads, total_seed, est_work);
    let tasks = partition_tasks(
        store,
        seeds,
        &plan_seeds,
        |r, p| sole(&plans[&(r, p)].0).lead_bind_pos(),
        threads,
    );
    let limit = cfg.match_limit;
    let shared = &*idx;
    let results: Vec<(TriggerSet, bool)> = sweep::parallel_map(tasks.len(), threads, |t| {
        let MatchTask {
            rule: r,
            pin: p,
            rows,
        } = &tasks[t];
        let (plan, prepared) = &plans[&(*r, *p)];
        let plan = sole(plan);
        let mut set: TriggerSet = BTreeSet::new();
        let mut over = false;
        eval_seeded_into(plan, prepared, shared, rows, &mut |row| {
            if set.contains(row) {
                return true;
            }
            if set.len() == limit {
                over = true;
                return false;
            }
            set.insert(row.to_vec());
            true
        });
        (set, over)
    });
    for (t, (set, over)) in results.into_iter().enumerate() {
        if over {
            return Err(());
        }
        triggers[tasks[t].rule].extend(set);
        if triggers[tasks[t].rule].len() > limit {
            return Err(());
        }
    }
    // A rule with an empty body has no atom to seed: its single trigger
    // (the empty valuation) exists from round one.
    if first_round {
        for (r, rule) in rules.iter().enumerate() {
            if rule.rels.is_empty() {
                triggers[r].insert(Vec::new());
            }
        }
    }
    // Head satisfaction, set-at-a-time, for rules with unfired
    // candidates. Head plans go through the cache too: a quiet store
    // serves them for free, a mutated one re-costs them.
    let needy: Vec<usize> = (0..n_rules)
        .filter(|&r| triggers[r].iter().any(|row| !fired[r].contains(row)))
        .collect();
    let head_plans: Vec<(Arc<CompiledUcq>, PreparedCq)> = needy
        .iter()
        .map(|&r| {
            let plan = cache
                .get_or_compile(&rules[r].head_u, schema, store)
                // ca-lint: allow(L002, reason = "compile_rule validated this head against the schema; plan errors are independent of statistics")
                .expect("rule heads are validated at compile time");
            let prepared = prepare_cq(sole(&plan), idx);
            (plan, prepared)
        })
        .collect();
    let shared = &*idx;
    let head_results: Vec<(TriggerSet, bool)> = sweep::parallel_map(needy.len(), threads, |i| {
        let (plan, prepared) = &head_plans[i];
        let mut set = BTreeSet::new();
        let mut over = false;
        eval_prepared_into(sole(plan), prepared, shared, &mut |row| {
            if set.len() == limit {
                over = true;
                return false;
            }
            set.insert(row.to_vec());
            true
        });
        (set, over)
    });
    for (i, (set, over)) in head_results.into_iter().enumerate() {
        if over {
            return Err(());
        }
        satisfied[needy[i]] = set;
    }
    Ok((triggers, satisfied))
}

/// The chased (or partially chased) instance: one node per live fact, in
/// store-id (= creation) order, over the original generalized schema.
/// Values go through the union-find — a no-op after a completed rewrite,
/// load-bearing on the partial-progress paths where `rewrite` may lag the
/// merges already recorded.
fn rebuild(schema: &Schema, store: &FactStore, instance: &GenDb, uf: &UnionFind) -> GenDb {
    let mut out = GenDb::new(instance.schema.clone());
    for id in store.iter_live() {
        let row: Vec<Value> = store.fact_values(id).iter().map(|&v| uf.find(v)).collect();
        out.add_node(schema.name(store.fact_rel(id)), row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn nl(id: u32) -> Null {
        Null(id)
    }

    #[test]
    fn union_find_merges_deterministically() {
        let mut uf = UnionFind::default();
        // Null-null: the smaller id becomes the root.
        assert_eq!(uf.union(Value::null(7), Value::null(3)), Ok(Some(nl(7))));
        assert_eq!(uf.find(Value::null(7)), Value::null(3));
        // Null-const: the constant wins.
        assert_eq!(uf.union(Value::null(3), c(5)), Ok(Some(nl(3))));
        assert_eq!(uf.find(Value::null(7)), c(5));
        // Same class: no-op.
        assert_eq!(uf.union(Value::null(7), c(5)), Ok(None));
        // Const-const through the classes: clash.
        assert_eq!(uf.union(c(6), Value::null(7)), Err(()));
    }

    /// The engine's usage contract with the workspace columnar store:
    /// union-find substitutions applied via `rewrite` collapse duplicates
    /// silently and leave unrelated facts untouched.
    #[test]
    fn store_rewrite_touches_only_affected_facts_and_collapses_duplicates() {
        let mut store = FactStore::new();
        let rel = store.add_relation("R", 2);
        let a = store.insert(rel, &[c(1), Value::null(9)]).unwrap();
        let b = store.insert(rel, &[c(1), c(5)]).unwrap();
        let other = store.insert(rel, &[c(2), c(2)]).unwrap();
        // Duplicate insert interns to the existing fact.
        assert_eq!(store.insert(rel, &[c(1), c(5)]), None);
        let mut uf = UnionFind::default();
        assert_eq!(uf.union(Value::null(9), c(5)), Ok(Some(nl(9))));
        let changed = store.rewrite(&[nl(9)], |v| uf.find(v));
        // Fact `a` rewrote into `b`'s tuple: it collapses (goes dead)
        // rather than duplicating, and nothing is reported as changed.
        assert!(changed.is_empty());
        assert!(!store.is_live(a));
        assert!(store.is_live(b) && store.is_live(other));
        assert_eq!(store.fact_values(other), vec![c(2), c(2)]);
    }
}
