//! The chase with target constraints.
//!
//! The paper's future-work section points at target constraints as the
//! obstacle to canonical solutions: "one can attempt to extract such
//! structural conditions from cases when the chase procedure is known to
//! work (e.g. [19, 17])". This module implements the standard chase over
//! generalized databases:
//!
//! * **tgds** `I → I′` fire when a body match has no head extension,
//!   adding the head with fresh existential nulls;
//! * **egds** `I → n₁ = n₂` fire when a body match sends the two frontier
//!   nulls to different values: two distinct constants make the chase
//!   **fail**, otherwise the null is merged into the other value.
//!
//! The chase may diverge in general; a step budget makes that observable
//! ([`ChaseOutcome::Aborted`]), and weakly-acyclic inputs terminate
//! within it. A successful chase of the canonical pre-solution yields a
//! universal solution *for the constrained target class* — exactly where
//! the paper says lubs survive.
//!
//! Two implementations share this interface:
//!
//! * [`engine`] — the semi-naive, delta-driven engine: rule bodies
//!   compile once into pinned join plans (`ca_query::engine`), rounds
//!   only evaluate against delta-seeded join orders, fired triggers are
//!   deduped over an interned fact store, and egd equalities go through
//!   a union-find over nulls with incremental rewrite. Handles every
//!   purely relational input (`σ = ∅` instance and patterns — all
//!   data-exchange targets in this crate).
//! * [`crate::reference::chase`] — the seed-era loop, kept verbatim as
//!   the differential oracle; also the fallback for inputs with
//!   structural tuples, which the compiled planner does not cover.
//!
//! Both report a match-budget overrun as the typed
//! [`ChaseOutcome::Overflow`] instead of silently truncating the match
//! set the way the seed's hard-coded `matches_of(…, 10_000)` cap did, so
//! a capped run can never be mistaken for saturation.

pub(crate) mod engine;

use ca_core::value::Null;
use ca_gdm::database::GenDb;

use crate::mapping::Rule;

/// An equality-generating dependency: when `body` matches, the images of
/// the two nulls must be equal.
#[derive(Clone, Debug)]
pub struct Egd {
    /// The body pattern (over the target schema).
    pub body: GenDb,
    /// The two body nulls forced equal.
    pub equal: (Null, Null),
}

/// The result of a chase run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// All constraints satisfied; the chased instance is returned.
    Done(Box<GenDb>),
    /// An egd tried to equate two distinct constants: no solution exists.
    Failed,
    /// The step budget ran out (possibly non-terminating chase).
    Aborted,
    /// A rule exceeded the per-round match budget
    /// ([`ChaseConfig::match_limit`]): the trigger set is too large to
    /// enumerate, so no sound fixpoint claim can be made.
    Overflow,
}

/// The default per-rule-per-round match budget (matches the mapping
/// layer's body-match cap).
pub const DEFAULT_MATCH_LIMIT: usize = 100_000;

/// Knobs for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// The step budget: each tgd firing and each egd merge consumes one
    /// step; running out yields [`ChaseOutcome::Aborted`].
    pub max_steps: usize,
    /// Per-rule-per-round match budget: a rule whose round trigger set
    /// exceeds this yields [`ChaseOutcome::Overflow`].
    pub match_limit: usize,
    /// Worker threads for the engine's match phase (the reference
    /// fallback ignores this).
    pub threads: usize,
}

impl ChaseConfig {
    /// Defaults: the given step budget, [`DEFAULT_MATCH_LIMIT`], and the
    /// `CA_EVAL_THREADS` thread count.
    pub fn new(max_steps: usize) -> Self {
        ChaseConfig {
            max_steps,
            match_limit: DEFAULT_MATCH_LIMIT,
            threads: ca_query::engine::eval_threads(),
        }
    }

    /// Defaults with an explicit thread count.
    pub fn with_threads(max_steps: usize, threads: usize) -> Self {
        ChaseConfig {
            threads,
            ..Self::new(max_steps)
        }
    }
}

/// Run the standard chase: apply violated tgds (adding head facts with
/// fresh existentials) and egds (merging values) until a fixpoint, a
/// failure, or the step budget runs out. Default configuration; see
/// [`chase_with`].
pub fn chase(instance: &GenDb, tgds: &[Rule], egds: &[Egd], max_steps: usize) -> ChaseOutcome {
    chase_with(instance, tgds, egds, &ChaseConfig::new(max_steps))
}

/// [`chase`] with explicit configuration. Purely relational inputs (no
/// structural tuples in the instance or any rule pattern, every pattern
/// label resolving in the instance schema) run on the semi-naive
/// [`engine`]; anything else falls back to the reference chase, which
/// handles the full generalized-database semantics.
pub fn chase_with(
    instance: &GenDb,
    tgds: &[Rule],
    egds: &[Egd],
    cfg: &ChaseConfig,
) -> ChaseOutcome {
    match engine::try_chase(instance, tgds, egds, cfg) {
        Some(outcome) => outcome,
        None => crate::reference::chase_with(instance, tgds, egds, cfg.max_steps, cfg.match_limit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::value::Value;
    use ca_gdm::hom::gdm_equiv;
    use ca_gdm::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn schema() -> GenSchema {
        GenSchema::from_parts(&[("T", 2)], &[])
    }

    fn tdb(rows: &[[Value; 2]]) -> GenDb {
        let mut d = GenDb::new(schema());
        for r in rows {
            d.add_node("T", r.to_vec());
        }
        d
    }

    fn transitivity() -> Rule {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(2), n(3)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(1), n(3)]);
        Rule { body, head }
    }

    fn functionality() -> Egd {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(1), n(3)]);
        Egd {
            body,
            equal: (Null(2), Null(3)),
        }
    }

    /// Transitivity tgd: T(x,y) ∧ T(y,z) → T(x,z). Weakly acyclic (no
    /// existentials): the chase computes the transitive closure.
    #[test]
    fn chase_computes_transitive_closure() {
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)]]);
        match chase(&start, &[transitivity()], &[], 100) {
            ChaseOutcome::Done(result) => {
                // Closure adds (1,3), (2,4), (1,4).
                assert_eq!(result.n_nodes(), 6);
            }
            other => panic!("chase should finish: {other:?}"),
        }
    }

    /// An egd merging nulls: T(x,y) ∧ T(x,z) → y = z (functionality).
    #[test]
    fn egd_merges_nulls() {
        // T(1, ⊥9), T(1, 5): the null must become 5.
        let start = tdb(&[[c(1), n(9)], [c(1), c(5)]]);
        match chase(&start, &[], &[functionality()], 50) {
            ChaseOutcome::Done(result) => {
                assert!(result.is_complete());
                // All values are 5-grounded.
                assert!(result.data.iter().all(|t| t == &vec![c(1), c(5)]));
            }
            other => panic!("chase should finish: {other:?}"),
        }
    }

    /// An egd clash on constants fails the chase.
    #[test]
    fn egd_constant_clash_fails() {
        let start = tdb(&[[c(1), c(5)], [c(1), c(6)]]);
        assert_eq!(
            chase(&start, &[], &[functionality()], 50),
            ChaseOutcome::Failed
        );
        // Also with a tgd in the mix: the clash still surfaces.
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(1), c(9)]]);
        assert_eq!(
            chase(&start, &[transitivity()], &[functionality()], 50),
            ChaseOutcome::Failed
        );
    }

    /// A non-terminating chase is aborted: T(x,y) → ∃z T(y,z) on a cycle-
    /// free start grows forever.
    #[test]
    fn divergent_chase_is_aborted() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(3)]); // fresh z each firing
        let tgd = Rule { body, head };
        let start = tdb(&[[c(1), c(2)]]);
        assert_eq!(chase(&start, &[tgd], &[], 30), ChaseOutcome::Aborted);
    }

    /// Satisfied constraints fire nothing.
    #[test]
    fn fixpoint_is_immediate_when_satisfied() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(1)]);
        let symmetry = Rule { body, head };
        let start = tdb(&[[c(1), c(2)], [c(2), c(1)]]);
        match chase(&start, &[symmetry], &[], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    // ----- satellite: edge cases -----

    /// Empty instance and/or empty rule set: an immediate fixpoint.
    #[test]
    fn empty_instance_and_empty_rules_are_immediate_fixpoints() {
        let empty = GenDb::new(schema());
        match chase(&empty, &[], &[], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 0),
            other => panic!("unexpected: {other:?}"),
        }
        match chase(&empty, &[transitivity()], &[functionality()], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 0),
            other => panic!("unexpected: {other:?}"),
        }
        let start = tdb(&[[c(1), c(2)]]);
        match chase(&start, &[], &[], 10) {
            ChaseOutcome::Done(result) => assert!(gdm_equiv(&result, &start)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// A zero step budget aborts before any work, mirroring the seed
    /// loop (`for _ in 0..max_steps`), even on an already-satisfied
    /// instance.
    #[test]
    fn zero_budget_aborts() {
        let start = tdb(&[[c(1), c(2)]]);
        assert_eq!(chase(&start, &[], &[], 0), ChaseOutcome::Aborted);
    }

    /// satellite: the match budget surfaces as the typed `Overflow`
    /// outcome — in the engine and in the reference wrapper — instead of
    /// the seed's silent truncation.
    #[test]
    fn match_budget_overrun_is_typed_overflow() {
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)]]);
        let cfg = ChaseConfig {
            max_steps: 100,
            match_limit: 1,
            threads: 1,
        };
        // The transitivity body has 2 matches in round one: over budget.
        assert_eq!(
            chase_with(&start, &[transitivity()], &[], &cfg),
            ChaseOutcome::Overflow
        );
        assert_eq!(
            crate::reference::chase_with(&start, &[transitivity()], &[], 100, 1),
            ChaseOutcome::Overflow
        );
    }

    /// In-module differential sanity: engine and reference agree (up to
    /// hom-equivalence) on a mixed tgd+egd chase.
    #[test]
    fn engine_agrees_with_reference_on_mixed_chase() {
        // Symmetry keeps functionality satisfiable: ⊥7 merges into 2,
        // then the reversed edge T(2,1) closes the instance.
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(1)]);
        let symmetry = Rule { body, head };
        let start = tdb(&[[c(1), c(2)], [c(1), n(7)]]);
        let cfg = ChaseConfig::with_threads(1000, 1);
        let fast = chase_with(
            &start,
            std::slice::from_ref(&symmetry),
            &[functionality()],
            &cfg,
        );
        let slow =
            crate::reference::chase_with(&start, &[symmetry], &[functionality()], 1000, 100_000);
        match (fast, slow) {
            (ChaseOutcome::Done(a), ChaseOutcome::Done(b)) => {
                assert!(a.is_complete());
                assert!(gdm_equiv(&a, &b));
            }
            other => panic!("both should finish: {other:?}"),
        }
        // Transitive closure of a chain clashes with functionality (the
        // closure makes 1 point at both 2 and 3): both sides must agree
        // on the failure, too.
        let chain = tdb(&[[c(1), c(2)], [c(2), c(3)]]);
        assert_eq!(
            chase_with(&chain, &[transitivity()], &[functionality()], &cfg),
            ChaseOutcome::Failed
        );
        assert_eq!(
            crate::reference::chase_with(
                &chain,
                &[transitivity()],
                &[functionality()],
                1000,
                100_000
            ),
            ChaseOutcome::Failed
        );
    }
}
