//! The chase with target constraints.
//!
//! The paper's future-work section points at target constraints as the
//! obstacle to canonical solutions: "one can attempt to extract such
//! structural conditions from cases when the chase procedure is known to
//! work (e.g. [19, 17])". This module implements the standard chase over
//! generalized databases:
//!
//! * **tgds** `I → I′` fire when a body match has no head extension,
//!   adding the head with fresh existential nulls;
//! * **egds** `I → n₁ = n₂` fire when a body match sends the two frontier
//!   nulls to different values: two distinct constants make the chase
//!   **fail**, otherwise the null is merged into the other value.
//!
//! The chase may diverge in general; a step budget makes that observable
//! ([`ChaseOutcome::Aborted`]), and weakly-acyclic inputs terminate
//! within it. A successful chase of the canonical pre-solution yields a
//! universal solution *for the constrained target class* — exactly where
//! the paper says lubs survive.
//!
//! Two implementations share this interface:
//!
//! * [`engine`] — the semi-naive, delta-driven engine: rule bodies
//!   compile once into pinned join plans (`ca_query::engine`), rounds
//!   only evaluate against delta-seeded join orders, fired triggers are
//!   deduped over an interned fact store, and egd equalities go through
//!   a union-find over nulls with incremental rewrite. Handles every
//!   purely relational input (`σ = ∅` instance and patterns — all
//!   data-exchange targets in this crate).
//! * [`crate::reference::chase`] — the seed-era loop, kept verbatim as
//!   the differential oracle; also the fallback for inputs with
//!   structural tuples, which the compiled planner does not cover.
//!
//! Both report a match-budget overrun as the typed
//! [`ChaseOutcome::Overflow`] instead of silently truncating the match
//! set the way the seed's hard-coded `matches_of(…, 10_000)` cap did, so
//! a capped run can never be mistaken for saturation.

pub(crate) mod engine;

use ca_cert::ChaseCert;
use ca_core::value::Null;
use ca_gdm::database::GenDb;

use crate::mapping::Rule;

/// An equality-generating dependency: when `body` matches, the images of
/// the two nulls must be equal.
#[derive(Clone, Debug)]
pub struct Egd {
    /// The body pattern (over the target schema).
    pub body: GenDb,
    /// The two body nulls forced equal.
    pub equal: (Null, Null),
}

/// The result of a chase run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// All constraints satisfied; the chased instance is returned.
    Done(Box<GenDb>),
    /// An egd tried to equate two distinct constants: no solution exists.
    Failed,
    /// The step budget ran out (possibly non-terminating chase).
    Aborted,
    /// A rule exceeded the per-round match budget
    /// ([`ChaseConfig::match_limit`]): the trigger set is too large to
    /// enumerate, so no sound fixpoint claim can be made. Carries the
    /// facts derived before giving up — partial progress is reported, not
    /// silently dropped (the instance is *not* a fixpoint).
    Overflow(Box<GenDb>),
}

/// The default per-rule-per-round match budget (matches the mapping
/// layer's body-match cap).
pub const DEFAULT_MATCH_LIMIT: usize = 100_000;

/// Knobs for a chase run.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// The step budget: each tgd firing and each egd merge consumes one
    /// step; running out yields [`ChaseOutcome::Aborted`].
    pub max_steps: usize,
    /// Per-rule-per-round match budget: a rule whose round trigger set
    /// exceeds this yields [`ChaseOutcome::Overflow`].
    pub match_limit: usize,
    /// Worker threads for the engine's match phase (the reference
    /// fallback ignores this).
    pub threads: usize,
    /// Record a replayable derivation log ([`ca_cert::ChaseCert`]) while
    /// chasing. Off by default: the hot path then allocates nothing for
    /// provenance. Certified runs evaluate one extra (sequential)
    /// full-assignment plan per rule per round to attach body witnesses
    /// to every firing and merge.
    pub certify: bool,
}

impl ChaseConfig {
    /// Defaults: the given step budget, [`DEFAULT_MATCH_LIMIT`], the
    /// `CA_EVAL_THREADS` thread count, and no certification.
    pub fn new(max_steps: usize) -> Self {
        ChaseConfig {
            max_steps,
            match_limit: DEFAULT_MATCH_LIMIT,
            threads: ca_query::engine::eval_threads(),
            certify: false,
        }
    }

    /// Defaults with an explicit thread count.
    pub fn with_threads(max_steps: usize, threads: usize) -> Self {
        ChaseConfig {
            threads,
            ..Self::new(max_steps)
        }
    }
}

/// Run the standard chase: apply violated tgds (adding head facts with
/// fresh existentials) and egds (merging values) until a fixpoint, a
/// failure, or the step budget runs out. Default configuration; see
/// [`chase_with`].
pub fn chase(instance: &GenDb, tgds: &[Rule], egds: &[Egd], max_steps: usize) -> ChaseOutcome {
    chase_with(instance, tgds, egds, &ChaseConfig::new(max_steps))
}

/// [`chase`] with explicit configuration. Purely relational inputs (no
/// structural tuples in the instance or any rule pattern, every pattern
/// label resolving in the instance schema) run on the semi-naive
/// [`engine`]; anything else falls back to the reference chase, which
/// handles the full generalized-database semantics.
pub fn chase_with(
    instance: &GenDb,
    tgds: &[Rule],
    egds: &[Egd],
    cfg: &ChaseConfig,
) -> ChaseOutcome {
    match engine::try_chase(instance, tgds, egds, cfg) {
        Some((outcome, _)) => outcome,
        None => crate::reference::chase_with(instance, tgds, egds, cfg.max_steps, cfg.match_limit),
    }
}

/// [`chase_with`] with certification forced on: returns the outcome plus
/// a replayable derivation log ([`ca_cert::check_chase`] verifies it with
/// no search). The certificate is `None` only on the reference fallback
/// (structural tuples / non-compiling patterns), which predates the
/// derivation log.
pub fn chase_certified(
    instance: &GenDb,
    tgds: &[Rule],
    egds: &[Egd],
    cfg: &ChaseConfig,
) -> (ChaseOutcome, Option<ChaseCert>) {
    let cfg = ChaseConfig {
        certify: true,
        ..cfg.clone()
    };
    match engine::try_chase(instance, tgds, egds, &cfg) {
        Some(x) => x,
        None => (
            crate::reference::chase_with(instance, tgds, egds, cfg.max_steps, cfg.match_limit),
            None,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::value::Value;
    use ca_gdm::hom::gdm_equiv;
    use ca_gdm::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn schema() -> GenSchema {
        GenSchema::from_parts(&[("T", 2)], &[])
    }

    fn tdb(rows: &[[Value; 2]]) -> GenDb {
        let mut d = GenDb::new(schema());
        for r in rows {
            d.add_node("T", r.to_vec());
        }
        d
    }

    fn transitivity() -> Rule {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(2), n(3)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(1), n(3)]);
        Rule { body, head }
    }

    fn functionality() -> Egd {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        body.add_node("T", vec![n(1), n(3)]);
        Egd {
            body,
            equal: (Null(2), Null(3)),
        }
    }

    /// Transitivity tgd: T(x,y) ∧ T(y,z) → T(x,z). Weakly acyclic (no
    /// existentials): the chase computes the transitive closure.
    #[test]
    fn chase_computes_transitive_closure() {
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)]]);
        match chase(&start, &[transitivity()], &[], 100) {
            ChaseOutcome::Done(result) => {
                // Closure adds (1,3), (2,4), (1,4).
                assert_eq!(result.n_nodes(), 6);
            }
            other => panic!("chase should finish: {other:?}"),
        }
    }

    /// An egd merging nulls: T(x,y) ∧ T(x,z) → y = z (functionality).
    #[test]
    fn egd_merges_nulls() {
        // T(1, ⊥9), T(1, 5): the null must become 5.
        let start = tdb(&[[c(1), n(9)], [c(1), c(5)]]);
        match chase(&start, &[], &[functionality()], 50) {
            ChaseOutcome::Done(result) => {
                assert!(result.is_complete());
                // All values are 5-grounded.
                assert!(result.data.iter().all(|t| t == &vec![c(1), c(5)]));
            }
            other => panic!("chase should finish: {other:?}"),
        }
    }

    /// An egd clash on constants fails the chase.
    #[test]
    fn egd_constant_clash_fails() {
        let start = tdb(&[[c(1), c(5)], [c(1), c(6)]]);
        assert_eq!(
            chase(&start, &[], &[functionality()], 50),
            ChaseOutcome::Failed
        );
        // Also with a tgd in the mix: the clash still surfaces.
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(1), c(9)]]);
        assert_eq!(
            chase(&start, &[transitivity()], &[functionality()], 50),
            ChaseOutcome::Failed
        );
    }

    /// A non-terminating chase is aborted: T(x,y) → ∃z T(y,z) on a cycle-
    /// free start grows forever.
    #[test]
    fn divergent_chase_is_aborted() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(3)]); // fresh z each firing
        let tgd = Rule { body, head };
        let start = tdb(&[[c(1), c(2)]]);
        assert_eq!(chase(&start, &[tgd], &[], 30), ChaseOutcome::Aborted);
    }

    /// Satisfied constraints fire nothing.
    #[test]
    fn fixpoint_is_immediate_when_satisfied() {
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(1)]);
        let symmetry = Rule { body, head };
        let start = tdb(&[[c(1), c(2)], [c(2), c(1)]]);
        match chase(&start, &[symmetry], &[], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    // ----- satellite: edge cases -----

    /// Empty instance and/or empty rule set: an immediate fixpoint.
    #[test]
    fn empty_instance_and_empty_rules_are_immediate_fixpoints() {
        let empty = GenDb::new(schema());
        match chase(&empty, &[], &[], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 0),
            other => panic!("unexpected: {other:?}"),
        }
        match chase(&empty, &[transitivity()], &[functionality()], 10) {
            ChaseOutcome::Done(result) => assert_eq!(result.n_nodes(), 0),
            other => panic!("unexpected: {other:?}"),
        }
        let start = tdb(&[[c(1), c(2)]]);
        match chase(&start, &[], &[], 10) {
            ChaseOutcome::Done(result) => assert!(gdm_equiv(&result, &start)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    /// A zero step budget aborts before any work, mirroring the seed
    /// loop (`for _ in 0..max_steps`), even on an already-satisfied
    /// instance.
    #[test]
    fn zero_budget_aborts() {
        let start = tdb(&[[c(1), c(2)]]);
        assert_eq!(chase(&start, &[], &[], 0), ChaseOutcome::Aborted);
    }

    /// satellite: the match budget surfaces as the typed `Overflow`
    /// outcome — in the engine and in the reference wrapper — instead of
    /// the seed's silent truncation, and it carries the partial progress
    /// (at least the seed facts) instead of dropping it.
    #[test]
    fn match_budget_overrun_is_typed_overflow() {
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)]]);
        let cfg = ChaseConfig {
            match_limit: 1,
            threads: 1,
            ..ChaseConfig::new(100)
        };
        // The transitivity body has 2 matches in round one: over budget.
        let engine_partial = match chase_with(&start, &[transitivity()], &[], &cfg) {
            ChaseOutcome::Overflow(partial) => partial,
            other => panic!("expected overflow, got {other:?}"),
        };
        let reference_partial =
            match crate::reference::chase_with(&start, &[transitivity()], &[], 100, 1) {
                ChaseOutcome::Overflow(partial) => partial,
                other => panic!("expected overflow, got {other:?}"),
            };
        // Both partial instances contain every starting fact.
        for partial in [&engine_partial, &reference_partial] {
            for row in &start.data {
                assert!(
                    partial.data.contains(row),
                    "partial progress lost seed fact {row:?}"
                );
            }
        }
    }

    /// An overflow after real progress keeps the derived facts: the first
    /// round of transitivity fires within budget, the second overflows.
    #[test]
    fn overflow_partial_progress_keeps_derived_facts() {
        // Chain of 5: round one derives 3 new edges (closure needs 6 new
        // edges), round two's trigger set exceeds the budget of 4.
        let start = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)], [c(4), c(5)]]);
        let cfg = ChaseConfig {
            match_limit: 4,
            threads: 1,
            ..ChaseConfig::new(100)
        };
        match chase_with(&start, &[transitivity()], &[], &cfg) {
            ChaseOutcome::Overflow(partial) => {
                assert!(
                    partial.n_nodes() > start.n_nodes(),
                    "first-round derivations must survive the overflow"
                );
                assert!(partial.data.contains(&vec![c(1), c(3)]));
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    /// Certified runs replay through the engine-blind checker for every
    /// outcome kind, and certification does not change the outcome.
    #[test]
    fn certified_chase_roundtrips_through_checker() {
        let cfg = ChaseConfig::with_threads(1000, 1);
        // Done: mixed tgd+egd chase with merges and firings. Symmetry
        // keeps functionality satisfiable: ⊥7 merges into 2, then the
        // reversed edge closes the instance.
        let start = tdb(&[[c(1), c(2)], [c(1), n(7)]]);
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(1)]);
        let symmetry = Rule { body, head };
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(3)]);
        let grow = Rule { body, head }; // T(x,y) → ∃z T(y,z): draws fresh nulls
        let bounded = ChaseConfig::with_threads(6, 1);
        let (outcome, cert) = chase_certified(
            &start,
            std::slice::from_ref(&symmetry),
            &[functionality()],
            &cfg,
        );
        let cert = cert.expect("engine path certifies");
        assert_eq!(ca_cert::check_chase(&cert), Ok(()));
        match (&outcome, &cert.outcome) {
            (ChaseOutcome::Done(d), ca_cert::ChaseCertOutcome::Done { final_facts }) => {
                assert_eq!(final_facts.len(), d.n_nodes());
            }
            other => panic!("expected certified Done, got {other:?}"),
        }
        assert_eq!(
            outcome,
            chase_with(&start, &[symmetry], &[functionality()], &cfg),
            "certification must not change the outcome"
        );
        // Failed: constant clash, recorded as a final clash merge.
        let clash = tdb(&[[c(1), c(5)], [c(1), c(6)]]);
        let (outcome, cert) = chase_certified(&clash, &[], &[functionality()], &cfg);
        assert_eq!(outcome, ChaseOutcome::Failed);
        let cert = cert.expect("engine path certifies");
        assert_eq!(cert.outcome, ca_cert::ChaseCertOutcome::Failed);
        assert_eq!(ca_cert::check_chase(&cert), Ok(()));
        // Aborted: divergent chase, partial progress certified.
        let (outcome, cert) = chase_certified(&tdb(&[[c(1), c(2)]]), &[grow], &[], &bounded);
        assert_eq!(outcome, ChaseOutcome::Aborted);
        let cert = cert.expect("engine path certifies");
        assert!(matches!(
            &cert.outcome,
            ca_cert::ChaseCertOutcome::Aborted { partial } if partial.len() > 1
        ));
        assert_eq!(ca_cert::check_chase(&cert), Ok(()));
        // Overflow: match budget overrun, partial progress certified and
        // equal to the outcome's payload.
        let chain = tdb(&[[c(1), c(2)], [c(2), c(3)], [c(3), c(4)]]);
        let tight = ChaseConfig {
            match_limit: 1,
            threads: 1,
            ..ChaseConfig::new(100)
        };
        let (outcome, cert) = chase_certified(&chain, &[transitivity()], &[], &tight);
        let partial = match outcome {
            ChaseOutcome::Overflow(p) => p,
            other => panic!("expected overflow, got {other:?}"),
        };
        let cert = cert.expect("engine path certifies");
        match &cert.outcome {
            ca_cert::ChaseCertOutcome::Overflow { partial: facts } => {
                assert_eq!(facts.len(), partial.n_nodes());
            }
            other => panic!("expected certified overflow, got {other:?}"),
        }
        assert_eq!(ca_cert::check_chase(&cert), Ok(()));
    }

    /// In-module differential sanity: engine and reference agree (up to
    /// hom-equivalence) on a mixed tgd+egd chase.
    #[test]
    fn engine_agrees_with_reference_on_mixed_chase() {
        // Symmetry keeps functionality satisfiable: ⊥7 merges into 2,
        // then the reversed edge T(2,1) closes the instance.
        let mut body = GenDb::new(schema());
        body.add_node("T", vec![n(1), n(2)]);
        let mut head = GenDb::new(schema());
        head.add_node("T", vec![n(2), n(1)]);
        let symmetry = Rule { body, head };
        let start = tdb(&[[c(1), c(2)], [c(1), n(7)]]);
        let cfg = ChaseConfig::with_threads(1000, 1);
        let fast = chase_with(
            &start,
            std::slice::from_ref(&symmetry),
            &[functionality()],
            &cfg,
        );
        let slow =
            crate::reference::chase_with(&start, &[symmetry], &[functionality()], 1000, 100_000);
        match (fast, slow) {
            (ChaseOutcome::Done(a), ChaseOutcome::Done(b)) => {
                assert!(a.is_complete());
                assert!(gdm_equiv(&a, &b));
            }
            other => panic!("both should finish: {other:?}"),
        }
        // Transitive closure of a chain clashes with functionality (the
        // closure makes 1 point at both 2 and 3): both sides must agree
        // on the failure, too.
        let chain = tdb(&[[c(1), c(2)], [c(2), c(3)]]);
        assert_eq!(
            chase_with(&chain, &[transitivity()], &[functionality()], &cfg),
            ChaseOutcome::Failed
        );
        assert_eq!(
            crate::reference::chase_with(
                &chain,
                &[transitivity()],
                &[functionality()],
                1000,
                100_000
            ),
            ChaseOutcome::Failed
        );
    }
}
