//! Reference implementations, kept ~verbatim as differential-testing
//! oracles and benchmark baselines:
//!
//! * [`core_of_gendb`] — the seed-era retract loop behind
//!   [`crate::solution::core_of_gendb`]: every avoid-candidate in every
//!   shrink round rebuilds and re-propagates a fresh `gdm_hom_csp`.
//! * [`chase`] / [`chase_with`] — the seed-era chase loop behind
//!   [`crate::chase::chase`]: one firing per pass, every pass re-matching
//!   every rule body against the whole instance through the CSP matcher.
//!   The only departures from the seed are that the hard-coded 10 000
//!   match cap is a parameter, and overrunning it is a typed
//!   [`ChaseOutcome::Overflow`] instead of a silent truncation.
//!
//! Deliberately naive. Do not optimize this module; its value is being
//! obviously correct.

use ca_core::value::{Null, NullGen, Value};
use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_hom_csp;

use crate::chase::{ChaseOutcome, Egd, DEFAULT_MATCH_LIMIT};
use crate::mapping::Rule;

/// The core of a generalized database: iteratively find a proper
/// endomorphism (one avoiding some node) and restrict to its node image.
/// Exponential in the worst case (as for graphs); the result is the
/// unique-up-to-isomorphism smallest hom-equivalent sub-instance.
pub fn core_of_gendb(d: &GenDb) -> GenDb {
    let mut current = d.clone();
    loop {
        let n = current.n_nodes();
        let mut shrunk = false;
        for avoid in 0..n as u32 {
            let (mut csp, _, _) = gdm_hom_csp(&current, &current);
            // Remove `avoid` from every *node* variable's domain (node
            // variables come first).
            for v in 0..n {
                let dom: Vec<u32> = csp.domains[v]
                    .iter()
                    .copied()
                    .filter(|&x| x != avoid)
                    .collect();
                csp.restrict_domain(v as u32, dom);
            }
            if let Some(sol) = csp.solve() {
                // Restrict to the image nodes.
                let mut keep: Vec<u32> = sol[..n].to_vec();
                keep.sort_unstable();
                keep.dedup();
                current = induced(&current, &keep);
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// The induced sub-database on `keep` (node ids renumbered in order).
fn induced(d: &GenDb, keep: &[u32]) -> GenDb {
    let mut renumber = vec![u32::MAX; d.n_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        renumber[old as usize] = new as u32;
    }
    let mut out = GenDb::new(d.schema.clone());
    for &old in keep {
        out.add_node(
            d.schema.label_name(d.labels[old as usize]),
            d.data[old as usize].clone(),
        );
    }
    for (rel, t) in &d.tuples {
        if let Some(mapped) = t
            .iter()
            .map(|&x| {
                let r = renumber[x as usize];
                (r != u32::MAX).then_some(r)
            })
            .collect::<Option<Vec<u32>>>()
        {
            out.add_tuple(d.schema.relation_name(*rel), mapped);
        }
    }
    out
}

/// All body matches of `pattern` in `instance`, as null valuations.
/// `None` when the matcher hit `limit` (the enumeration may be
/// incomplete, so the chase must not act on it).
fn matches_of(pattern: &GenDb, instance: &GenDb, limit: usize) -> Option<Vec<Vec<(Null, Value)>>> {
    let (csp, nulls, universe) = gdm_hom_csp(pattern, instance);
    let sols = csp.solve_all(limit).solutions;
    // Conservative at exactly `limit`: the solver stops there, so a full
    // batch cannot be distinguished from a truncated one.
    if sols.len() >= limit {
        return None;
    }
    Some(
        sols.into_iter()
            .map(|sol| {
                let n = pattern.n_nodes();
                nulls
                    .iter()
                    .enumerate()
                    .map(|(i, &nl)| (nl, universe[sol[n + i] as usize]))
                    .collect()
            })
            .collect(),
    )
}

/// Does the head of `rule` have a match in `instance` extending the body
/// valuation on the frontier?
fn head_extends(rule: &Rule, instance: &GenDb, body_val: &[(Null, Value)]) -> bool {
    let frontier = rule.frontier();
    let (mut csp, nulls, universe) = gdm_hom_csp(&rule.head, instance);
    let n = rule.head.n_nodes();
    for (i, nl) in nulls.iter().enumerate() {
        if frontier.contains(nl) {
            let target = body_val
                .iter()
                .find(|(m, _)| m == nl)
                .map(|&(_, v)| v)
                // ca-lint: allow(L002, reason = "frozen oracle, kept as the seed wrote it; a frontier null is by definition a body null")
                .expect("frontier null bound by body");
            match universe.binary_search(&target) {
                Ok(pos) => csp.restrict_domain((n + i) as u32, vec![pos as u32]),
                Err(_) => return false,
            }
        }
    }
    csp.satisfiable()
}

/// The seed-era chase with the seed's hard-coded 10 000-match cap.
pub fn chase(instance: &GenDb, tgds: &[Rule], egds: &[Egd], max_steps: usize) -> ChaseOutcome {
    chase_with(instance, tgds, egds, max_steps, DEFAULT_MATCH_LIMIT)
}

/// Run the standard chase: apply violated tgds (adding head facts with
/// fresh existentials) and egds (merging values) until a fixpoint, a
/// failure, or the step budget runs out. One firing per pass over the
/// rules, exactly as the seed did it.
pub fn chase_with(
    instance: &GenDb,
    tgds: &[Rule],
    egds: &[Egd],
    max_steps: usize,
    match_limit: usize,
) -> ChaseOutcome {
    let mut current = instance.clone();
    let mut gen = NullGen::avoiding(
        current.nulls().into_iter().chain(
            tgds.iter()
                .flat_map(|r| r.body.nulls().into_iter().chain(r.head.nulls())),
        ),
    );
    for _ in 0..max_steps {
        // Egds first (they only shrink the instance).
        let mut fired = false;
        'egds: for egd in egds {
            let Some(ms) = matches_of(&egd.body, &current, match_limit) else {
                return ChaseOutcome::Overflow(Box::new(current.clone()));
            };
            for m in ms {
                let get = |nl: Null| {
                    m.iter()
                        .find(|(x, _)| *x == nl)
                        .map(|&(_, v)| v)
                        // ca-lint: allow(L002, reason = "frozen oracle, kept as the seed wrote it; well-formed egds equate body nulls")
                        .expect("egd nulls occur in its body")
                };
                let (a, b) = (get(egd.equal.0), get(egd.equal.1));
                if a == b {
                    continue;
                }
                match (a, b) {
                    (Value::Const(_), Value::Const(_)) => return ChaseOutcome::Failed,
                    (Value::Null(nl), other) | (other, Value::Null(nl)) => {
                        current =
                            current.map_values(|v| if v == Value::Null(nl) { other } else { v });
                        fired = true;
                        break 'egds;
                    }
                }
            }
        }
        if fired {
            continue;
        }
        // Tgds.
        'tgds: for rule in tgds {
            let Some(ms) = matches_of(&rule.body, &current, match_limit) else {
                return ChaseOutcome::Overflow(Box::new(current.clone()));
            };
            for m in ms {
                if head_extends(rule, &current, &m) {
                    continue;
                }
                // Fire: add the head under the body valuation, fresh
                // existentials.
                let frontier = rule.frontier();
                let mut subst: Vec<(Null, Value)> = Vec::new();
                for nl in rule.head.nulls() {
                    let v = if frontier.contains(&nl) {
                        m.iter()
                            .find(|(x, _)| *x == nl)
                            .map(|&(_, v)| v)
                            // ca-lint: allow(L002, reason = "frozen oracle, kept as the seed wrote it; the frontier is body∩head")
                            .expect("frontier bound")
                    } else {
                        Value::Null(gen.fresh())
                    };
                    subst.push((nl, v));
                }
                let head_inst = rule.head.map_values(|v| match v {
                    Value::Null(nl) => subst
                        .iter()
                        .find(|(x, _)| *x == nl)
                        .map(|&(_, v)| v)
                        .unwrap_or(v),
                    c => c,
                });
                current = current.disjoint_union(&head_inst);
                fired = true;
                break 'tgds;
            }
        }
        if !fired {
            return ChaseOutcome::Done(Box::new(current));
        }
    }
    ChaseOutcome::Aborted
}
