//! Reference generalized-database core: the seed-era retract loop, kept
//! verbatim as a differential-testing oracle and benchmark baseline for
//! the incremental engine behind [`crate::solution::core_of_gendb`]
//! (`ca_hom::retract` over the `ca_gdm::encode::self_hom_structure`
//! encoding).
//!
//! Deliberately naive: every avoid-candidate in every shrink round
//! rebuilds and re-propagates a fresh `gdm_hom_csp`. Do not optimize it;
//! its value is being obviously correct.

use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_hom_csp;

/// The core of a generalized database: iteratively find a proper
/// endomorphism (one avoiding some node) and restrict to its node image.
/// Exponential in the worst case (as for graphs); the result is the
/// unique-up-to-isomorphism smallest hom-equivalent sub-instance.
pub fn core_of_gendb(d: &GenDb) -> GenDb {
    let mut current = d.clone();
    loop {
        let n = current.n_nodes();
        let mut shrunk = false;
        for avoid in 0..n as u32 {
            let (mut csp, _, _) = gdm_hom_csp(&current, &current);
            // Remove `avoid` from every *node* variable's domain (node
            // variables come first).
            for v in 0..n {
                let dom: Vec<u32> = csp.domains[v]
                    .iter()
                    .copied()
                    .filter(|&x| x != avoid)
                    .collect();
                csp.restrict_domain(v as u32, dom);
            }
            if let Some(sol) = csp.solve() {
                // Restrict to the image nodes.
                let mut keep: Vec<u32> = sol[..n].to_vec();
                keep.sort_unstable();
                keep.dedup();
                current = induced(&current, &keep);
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// The induced sub-database on `keep` (node ids renumbered in order).
fn induced(d: &GenDb, keep: &[u32]) -> GenDb {
    let mut renumber = vec![u32::MAX; d.n_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        renumber[old as usize] = new as u32;
    }
    let mut out = GenDb::new(d.schema.clone());
    for &old in keep {
        out.add_node(
            d.schema.label_name(d.labels[old as usize]),
            d.data[old as usize].clone(),
        );
    }
    for (rel, t) in &d.tuples {
        if let Some(mapped) = t
            .iter()
            .map(|&x| {
                let r = renumber[x as usize];
                (r != u32::MAX).then_some(r)
            })
            .collect::<Option<Vec<u32>>>()
        {
            out.add_tuple(d.schema.relation_name(*rel), mapped);
        }
    }
    out
}
