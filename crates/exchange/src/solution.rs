//! Canonical and core universal solutions (Theorem 5).
//!
//! With no restriction on targets, least upper bounds in the information
//! ordering are disjoint unions (after null renaming), so `⊔M(D)` — the
//! *canonical universal solution* of data-exchange practice — is a
//! representative of `∨ M(D)`, and the most compact representative of the
//! equivalence class is its core, the *core solution*.

use ca_gdm::database::GenDb;
use ca_gdm::encode::{self_hom_structure, value_self_hom_structure};
use ca_gdm::hom::{gdm_hom_csp, gdm_leq};
use ca_hom::csp::{default_threads, IncrementalSelfHom};
use ca_hom::retract::retract_core_with;

use crate::mapping::Mapping;

/// The canonical universal solution `⊔ M(D)`: the disjoint union of all
/// single-rule applications. Returns an empty target when no rule fires
/// (`target_schema` supplies the schema in that case).
pub fn canonical_solution(
    mapping: &Mapping,
    d: &GenDb,
    target_schema: &ca_gdm::schema::GenSchema,
) -> GenDb {
    let apps = mapping.applications(d);
    let mut out = GenDb::new(target_schema.clone());
    for app in apps {
        out = out.disjoint_union(&app);
    }
    out
}

/// The core of a generalized database: the unique-up-to-isomorphism
/// smallest hom-equivalent sub-instance. Exponential in the worst case
/// (as for graphs).
///
/// Routed through the incremental retraction engine
/// ([`ca_hom::retract`]) over the faithful self-homomorphism encoding
/// ([`ca_gdm::encode::self_hom_structure`]): one CSP compile per core,
/// in-place bitset domain restriction across the whole shrink loop,
/// PTIME folding of dominated nodes. The seed-era per-candidate rebuild
/// loop survives verbatim in [`crate::reference`] as the differential
/// oracle.
pub fn core_of_gendb(d: &GenDb) -> GenDb {
    core_of_gendb_with(d, default_threads())
}

/// [`core_of_gendb`] with an explicit probe-thread count. The kept node
/// set (and hence the returned database) is identical at every width.
///
/// Purely relational databases (`σ = ∅`, which covers every
/// data-exchange target in this crate) retract over the value-only
/// encoding ([`value_self_hom_structure`]): the CSP has one variable
/// per distinct value instead of nodes + values, and redundant facts
/// become *foldable* (a pendant null moves without dragging a welded
/// node element along), so most shrinkage needs no search at all.
/// Databases with structural tuples use the general node encoding.
pub fn core_of_gendb_with(d: &GenDb, threads: usize) -> GenDb {
    if d.tuples.is_empty() {
        if d.n_nodes() <= SMALL_CORE_MAX_NODES && !has_foldable_null(d) {
            return small_core(d);
        }
        return value_core(d, threads);
    }
    let (s, _universe) = self_hom_structure(d);
    let probe: Vec<u32> = (0..d.n_nodes() as u32).collect();
    let r = retract_core_with(&s, &probe, threads);
    induced(d, &r.kept)
}

/// Below this many nodes the retraction engine's setup (encoding, fold
/// prepass, support tables) costs more than the search it saves, and the
/// direct loop in [`small_core`] wins — unless the instance has
/// single-occurrence nulls, which the engine folds away without any
/// search at all (see [`has_foldable_null`]).
const SMALL_CORE_MAX_NODES: usize = 64;

/// Does any null occur in exactly one fact position? Such "pendant"
/// nulls are where the engine's PTIME fold prepass shines (it removes
/// them with no search), so instances with them stay on the engine path
/// at every size.
fn has_foldable_null(d: &GenDb) -> bool {
    let mut counts: std::collections::BTreeMap<ca_core::value::Null, usize> =
        std::collections::BTreeMap::new();
    for row in &d.data {
        for v in row {
            if let ca_core::value::Value::Null(nl) = v {
                *counts.entry(*nl).or_insert(0) += 1;
            }
        }
    }
    counts.values().any(|&c| c == 1)
}

/// Direct core loop for tiny purely relational instances: per shrink
/// round, compile the self-homomorphism CSP **once** into an
/// [`IncrementalSelfHom`] (support tables and all) and run one cheap
/// GAC-prefixed probe per avoid-candidate. The seed-era reference
/// rebuilds and recompiles the whole CSP per candidate; hoisting the
/// compile out of the candidate loop is the entire speedup.
fn small_core(d: &GenDb) -> GenDb {
    let mut current = d.clone();
    loop {
        let n = current.n_nodes();
        let (base, _, _) = gdm_hom_csp(&current, &current);
        // Restrict node variables only (they come first in the encoding);
        // value variables follow and keep their full domains.
        let probe: Vec<u32> = (0..n as u32).collect();
        let inc = IncrementalSelfHom::new(&base, &probe);
        let mut shrunk = false;
        for avoid in 0..n as u32 {
            if let Some(sol) = inc.probe_avoiding(avoid, None) {
                let mut keep: Vec<u32> = sol[..n].to_vec();
                keep.sort_unstable();
                keep.dedup();
                current = induced(&current, &keep);
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Core via the value-only encoding (`σ = ∅`). The engine retracts the
/// value universe; the surviving database is the *image* of the facts
/// under the found valuation: map every fact tuple, dedup, and keep the
/// lowest node carrying each image tuple (image tuples are existing
/// facts — that is the homomorphism condition — so this is an induced
/// sub-database and a core).
fn value_core(d: &GenDb, threads: usize) -> GenDb {
    let (s, universe) = value_self_hom_structure(d);
    let probe: Vec<u32> = (0..s.n_elements as u32).collect();
    let r = retract_core_with(&s, &probe, threads);
    // Image of each fact under the valuation, as (label, mapped tuple).
    let image: Vec<(u32, Vec<u32>)> = (0..d.n_nodes())
        .map(|node| {
            let mapped: Vec<u32> = d.data[node]
                .iter()
                .filter_map(|v| universe.binary_search(v).ok())
                .map(|vi| r.map.get(vi).copied().unwrap_or(vi as u32))
                .collect();
            (d.labels[node].0, mapped)
        })
        .collect();
    // Keep the lowest node whose own tuple equals its image (every image
    // tuple is some fact's tuple; ties collapse duplicates), one per
    // distinct image.
    let mut seen: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut keep: Vec<u32> = Vec::new();
    for img in &image {
        if seen.contains(img) {
            continue;
        }
        // Find the lowest node carrying exactly this image tuple.
        if let Some(carrier) = (0..d.n_nodes()).find(|&m| {
            d.labels[m].0 == img.0
                && d.data[m]
                    .iter()
                    .map(|v| universe.binary_search(v).ok())
                    .eq(img.1.iter().map(|&x| Some(x as usize)))
        }) {
            seen.push(img.clone());
            keep.push(carrier as u32);
        }
    }
    keep.sort_unstable();
    keep.dedup();
    induced(d, &keep)
}

/// The induced sub-database on `keep` (node ids renumbered in order).
fn induced(d: &GenDb, keep: &[u32]) -> GenDb {
    let mut renumber = vec![u32::MAX; d.n_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        renumber[old as usize] = new as u32;
    }
    let mut out = GenDb::new(d.schema.clone());
    for &old in keep {
        out.add_node(
            d.schema.label_name(d.labels[old as usize]),
            d.data[old as usize].clone(),
        );
    }
    for (rel, t) in &d.tuples {
        if let Some(mapped) = t
            .iter()
            .map(|&x| {
                let r = renumber[x as usize];
                (r != u32::MAX).then_some(r)
            })
            .collect::<Option<Vec<u32>>>()
        {
            out.add_tuple(d.schema.relation_name(*rel), mapped);
        }
    }
    out
}

/// The core solution: `core(⊔ M(D))`.
pub fn core_solution(
    mapping: &Mapping,
    d: &GenDb,
    target_schema: &ca_gdm::schema::GenSchema,
) -> GenDb {
    core_of_gendb(&canonical_solution(mapping, d, target_schema))
}

/// Universality test against a finite family of candidate solutions: `d2`
/// is a solution, and it maps homomorphically into every provided
/// solution. (Theorem 5 characterizes the universal solutions as the
/// lub-class of `M(D)`; against *all* solutions this is only testable on
/// sampled families, which is what experiments do.)
pub fn is_universal_solution(
    mapping: &Mapping,
    d: &GenDb,
    d2: &GenDb,
    other_solutions: &[GenDb],
) -> bool {
    if !mapping.is_solution(d, d2) {
        return false;
    }
    other_solutions.iter().all(|s| {
        debug_assert!(mapping.is_solution(d, s), "candidates must be solutions");
        gdm_leq(d2, s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Mapping, Rule};
    use ca_core::value::Value;
    use ca_gdm::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn paper_setting() -> (Mapping, GenSchema, GenSchema) {
        let src = GenSchema::from_parts(&[("S", 3)], &[]);
        let tgt = GenSchema::from_parts(&[("T", 2)], &[]);
        let mut body = GenDb::new(src.clone());
        body.add_node("S", vec![n(1), n(2), n(3)]);
        let mut head = GenDb::new(tgt.clone());
        head.add_node("T", vec![n(1), n(4)]);
        head.add_node("T", vec![n(4), n(2)]);
        (Mapping::new(vec![Rule { body, head }]), src, tgt)
    }

    #[test]
    fn canonical_solution_is_a_solution() {
        let (mapping, src, tgt) = paper_setting();
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        d.add_node("S", vec![c(2), c(3), c(9)]);
        let canon = canonical_solution(&mapping, &d, &tgt);
        assert_eq!(canon.n_nodes(), 4); // two applications × two facts
        assert!(mapping.is_solution(&d, &canon));
    }

    /// Theorem 5 in action: the canonical solution maps into every
    /// solution (universality) and every application maps into it (upper
    /// bound).
    #[test]
    fn canonical_solution_is_universal() {
        let (mapping, src, tgt) = paper_setting();
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        let canon = canonical_solution(&mapping, &d, &tgt);
        // Upper bound of M(D).
        for app in mapping.applications(&d) {
            assert!(gdm_leq(&app, &canon));
        }
        // Universality against sampled solutions.
        let mut s1 = GenDb::new(tgt.clone());
        s1.add_node("T", vec![c(1), c(5)]);
        s1.add_node("T", vec![c(5), c(2)]);
        let mut s2 = GenDb::new(tgt.clone());
        s2.add_node("T", vec![c(1), c(5)]);
        s2.add_node("T", vec![c(5), c(2)]);
        s2.add_node("T", vec![c(7), c(7)]);
        let mut s3 = canon.clone();
        s3.add_node("T", vec![c(42), c(43)]);
        assert!(is_universal_solution(&mapping, &d, &canon, &[s1, s2, s3]));
    }

    /// A complete solution that is *not* universal: it over-specifies the
    /// existential value.
    #[test]
    fn overspecified_solution_is_not_universal() {
        let (mapping, src, tgt) = paper_setting();
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        // Solution using the constant 5 as the middle value.
        let mut s = GenDb::new(tgt.clone());
        s.add_node("T", vec![c(1), c(5)]);
        s.add_node("T", vec![c(5), c(2)]);
        assert!(mapping.is_solution(&d, &s));
        // Another solution with middle value 6: s does not map into it.
        let mut other = GenDb::new(tgt);
        other.add_node("T", vec![c(1), c(6)]);
        other.add_node("T", vec![c(6), c(2)]);
        assert!(!is_universal_solution(&mapping, &d, &s, &[other]));
    }

    #[test]
    fn core_solution_folds_redundancy() {
        let (mapping, src, tgt) = paper_setting();
        // Two S-facts with the same x, y (different u): the canonical
        // solution has two parallel T-chains; the core keeps one.
        let mut d = GenDb::new(src);
        d.add_node("S", vec![c(1), c(2), c(8)]);
        d.add_node("S", vec![c(1), c(2), c(9)]);
        let canon = canonical_solution(&mapping, &d, &tgt);
        assert_eq!(canon.n_nodes(), 4);
        let core = core_solution(&mapping, &d, &tgt);
        assert_eq!(core.n_nodes(), 2);
        // Core is hom-equivalent to the canonical solution and still a
        // solution.
        assert!(gdm_leq(&core, &canon) && gdm_leq(&canon, &core));
        assert!(mapping.is_solution(&d, &core));
    }

    #[test]
    fn core_of_complete_db_is_itself_modulo_duplicates() {
        let tgt = GenSchema::from_parts(&[("T", 2)], &[]);
        let mut d = GenDb::new(tgt);
        d.add_node("T", vec![c(1), c(2)]);
        d.add_node("T", vec![c(2), c(3)]);
        let core = core_of_gendb(&d);
        assert_eq!(core.n_nodes(), 2);
    }
}
