//! Differential tests: the incremental retraction engine behind
//! `ca_exchange::solution::core_of_gendb` (via the
//! `ca_gdm::encode::self_hom_structure` encoding) against the retained
//! seed-era loop in `ca_exchange::reference` on random generalized
//! databases.
//!
//! Cores are unique only up to isomorphism, so the engines need not keep
//! the same nodes; what must agree exactly is the core size and
//! hom-equivalence (with each other and with the original). Any
//! disagreement is a regression in the new engine.

use proptest::prelude::*;

use ca_exchange::reference;
use ca_exchange::solution::{core_of_gendb, core_of_gendb_with};
use ca_gdm::encode::encode_relational;
use ca_gdm::generate::{random_tree_gendb, TreeGenParams};
use ca_gdm::hom::gdm_equiv;
use ca_relational::generate::{random_naive_db, DbParams, Rng};

fn gen_db(seed: u64, n_nodes: usize, codd: bool) -> ca_gdm::database::GenDb {
    let mut rng = Rng::new(seed);
    random_tree_gendb(
        &mut rng,
        TreeGenParams {
            n_nodes,
            n_labels: 2,
            max_data_arity: 2,
            n_constants: 2,
            null_pct: 50,
            codd,
        },
    )
}

/// A purely relational gendb (`σ = ∅`): exercises the value-only
/// encoding path of `core_of_gendb` (tree gendbs above carry `child`
/// tuples and exercise the node encoding).
fn gen_relational_db(seed: u64, n_facts: usize) -> ca_gdm::database::GenDb {
    let mut rng = Rng::new(seed);
    encode_relational(&random_naive_db(
        &mut rng,
        DbParams {
            n_facts,
            arity: 2,
            n_constants: 2,
            n_nulls: 3,
            null_pct: 60,
        },
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline invariant: same core size, mutually hom-equivalent,
    /// both hom-equivalent to the original.
    #[test]
    fn gendb_core_agrees_with_reference(seed in 0u64..10_000, n in 1usize..6, codd_bit in 0u8..2) {
        let d = gen_db(seed, n, codd_bit == 1);
        let new_core = core_of_gendb(&d);
        let old_core = reference::core_of_gendb(&d);
        prop_assert_eq!(new_core.n_nodes(), old_core.n_nodes(), "core sizes diverged on {:?}", &d);
        prop_assert!(gdm_equiv(&new_core, &old_core));
        prop_assert!(gdm_equiv(&new_core, &d));
    }

    /// The computed core is a fixpoint: the reference loop cannot shrink
    /// it further.
    #[test]
    fn gendb_core_is_a_core(seed in 0u64..10_000, n in 1usize..6) {
        let d = gen_db(seed, n, false);
        let core = core_of_gendb(&d);
        prop_assert_eq!(
            reference::core_of_gendb(&core).n_nodes(),
            core.n_nodes(),
            "engine returned a non-core on {:?}", &d
        );
    }

    /// Thread width is invisible: identical databases, node for node.
    #[test]
    fn gendb_core_is_thread_width_independent(seed in 0u64..10_000, n in 1usize..6) {
        let d = gen_db(seed, n, false);
        let base = core_of_gendb_with(&d, 1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&base, &core_of_gendb_with(&d, threads), "diverged at {} threads", threads);
        }
    }

    /// The value-encoding path (`σ = ∅`): same invariants against the
    /// reference, which always runs the node-level loop.
    #[test]
    fn relational_gendb_core_agrees_with_reference(seed in 0u64..10_000, n in 1usize..7) {
        let d = gen_relational_db(seed, n);
        let new_core = core_of_gendb(&d);
        let old_core = reference::core_of_gendb(&d);
        prop_assert_eq!(new_core.n_nodes(), old_core.n_nodes(), "core sizes diverged on {:?}", &d);
        prop_assert!(gdm_equiv(&new_core, &old_core));
        prop_assert!(gdm_equiv(&new_core, &d));
        prop_assert_eq!(
            reference::core_of_gendb(&new_core).n_nodes(),
            new_core.n_nodes(),
            "value path returned a non-core on {:?}", &d
        );
    }

    /// Thread-width determinism on the value path too.
    #[test]
    fn relational_gendb_core_is_thread_width_independent(seed in 0u64..10_000, n in 1usize..7) {
        let d = gen_relational_db(seed, n);
        let base = core_of_gendb_with(&d, 1);
        for threads in [2usize, 4] {
            prop_assert_eq!(&base, &core_of_gendb_with(&d, threads), "diverged at {} threads", threads);
        }
    }
}
