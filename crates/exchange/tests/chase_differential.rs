//! Differential tests: the semi-naive chase engine behind
//! `ca_exchange::chase::chase` against the retained seed-era loop in
//! `ca_exchange::reference` on random relational instances.
//!
//! Rule pools are chosen terminating (full tgds — no existentials — plus
//! a functionality egd), so with a generous budget neither side may
//! abort and both must agree on the *outcome variant*: `Done` results
//! are compared up to hom-equivalence (the engine interns facts and
//! fires per frontier valuation, so node counts may differ), `Failed`
//! must match exactly. A separate pin requires the engine to be
//! byte-identical across thread widths.

use proptest::prelude::*;

use ca_core::value::{Null, Value};
use ca_exchange::chase::{chase_with, ChaseConfig, ChaseOutcome, Egd};
use ca_exchange::mapping::Rule;
use ca_exchange::reference;
use ca_gdm::database::GenDb;
use ca_gdm::hom::gdm_equiv;
use ca_gdm::schema::GenSchema;
use ca_relational::generate::{random_naive_db, DbParams, Rng};

fn n(id: u32) -> Value {
    Value::null(id)
}

fn schema() -> GenSchema {
    GenSchema::from_parts(&[("R", 2)], &[])
}

fn gen_instance(seed: u64, n_facts: usize) -> GenDb {
    let mut rng = Rng::new(seed);
    let db = random_naive_db(
        &mut rng,
        DbParams {
            n_facts,
            arity: 2,
            n_constants: 3,
            n_nulls: 3,
            null_pct: 40,
        },
    );
    // Re-encode over the shared two-column schema so rule patterns (over
    // `schema()`) resolve by label name.
    let mut out = GenDb::new(schema());
    for fact in db.facts() {
        out.add_node("R", fact.args.clone());
    }
    out
}

/// Transitivity: R(x,y) ∧ R(y,z) → R(x,z). Full tgd — terminating.
fn transitivity() -> Rule {
    let mut body = GenDb::new(schema());
    body.add_node("R", vec![n(1), n(2)]);
    body.add_node("R", vec![n(2), n(3)]);
    let mut head = GenDb::new(schema());
    head.add_node("R", vec![n(1), n(3)]);
    Rule { body, head }
}

/// Symmetry: R(x,y) → R(y,x). Full tgd — terminating.
fn symmetry() -> Rule {
    let mut body = GenDb::new(schema());
    body.add_node("R", vec![n(1), n(2)]);
    let mut head = GenDb::new(schema());
    head.add_node("R", vec![n(2), n(1)]);
    Rule { body, head }
}

/// Functionality: R(x,y) ∧ R(x,z) → y = z.
fn functionality() -> Egd {
    let mut body = GenDb::new(schema());
    body.add_node("R", vec![n(1), n(2)]);
    body.add_node("R", vec![n(1), n(3)]);
    Egd {
        body,
        equal: (Null(2), Null(3)),
    }
}

fn rule_pool(bits: u8) -> (Vec<Rule>, Vec<Egd>) {
    let mut tgds = Vec::new();
    if bits & 1 != 0 {
        tgds.push(transitivity());
    }
    if bits & 2 != 0 {
        tgds.push(symmetry());
    }
    let egds = if bits & 4 != 0 {
        vec![functionality()]
    } else {
        Vec::new()
    };
    (tgds, egds)
}

const BUDGET: usize = 100_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline invariant: on terminating rule pools, engine and
    /// reference agree on the outcome; `Done` results are
    /// hom-equivalent.
    #[test]
    fn chase_agrees_with_reference(seed in 0u64..10_000, facts in 0usize..7, bits in 1u8..8) {
        let d = gen_instance(seed, facts);
        let (tgds, egds) = rule_pool(bits);
        let fast = chase_with(&d, &tgds, &egds, &ChaseConfig::with_threads(BUDGET, 1));
        let slow = reference::chase_with(&d, &tgds, &egds, BUDGET, BUDGET);
        match (fast, slow) {
            (ChaseOutcome::Done(a), ChaseOutcome::Done(b)) => {
                prop_assert!(gdm_equiv(&a, &b), "chased instances diverged on {:?}", &d);
            }
            (ChaseOutcome::Failed, ChaseOutcome::Failed) => {}
            other => prop_assert!(false, "outcomes diverged on {:?}: {:?}", &d, other),
        }
    }

    /// A successful chase result is a fixpoint of the reference loop.
    #[test]
    fn chased_instance_is_a_fixpoint(seed in 0u64..10_000, facts in 0usize..7, bits in 1u8..8) {
        let d = gen_instance(seed, facts);
        let (tgds, egds) = rule_pool(bits);
        if let ChaseOutcome::Done(a) = chase_with(&d, &tgds, &egds, &ChaseConfig::with_threads(BUDGET, 1)) {
            match reference::chase_with(&a, &tgds, &egds, BUDGET, BUDGET) {
                ChaseOutcome::Done(again) => {
                    prop_assert!(gdm_equiv(&a, &again), "reference still derives on {:?}", &d);
                }
                other => prop_assert!(false, "re-chase did not finish on {:?}: {:?}", &d, other),
            }
        }
    }

    /// Thread width is invisible: byte-identical outcomes (including the
    /// exact chased database, node for node) at 1 vs 4 threads.
    #[test]
    fn chase_is_thread_width_independent(seed in 0u64..10_000, facts in 0usize..7, bits in 1u8..8) {
        let d = gen_instance(seed, facts);
        let (tgds, egds) = rule_pool(bits);
        let one = chase_with(&d, &tgds, &egds, &ChaseConfig::with_threads(BUDGET, 1));
        let four = chase_with(&d, &tgds, &egds, &ChaseConfig::with_threads(BUDGET, 4));
        prop_assert_eq!(one, four, "thread width changed the chase on {:?}", &d);
    }

    /// Certificate round-trip: the certified chase reaches the same
    /// outcome as the plain entry point, and its derivation log replays
    /// through the engine-blind checker — engine, reference (via
    /// `chase_agrees_with_reference`), and certificate all agree.
    #[test]
    fn certified_chase_agrees_and_replays(seed in 0u64..10_000, facts in 0usize..7, bits in 1u8..8) {
        use ca_cert::ChaseCertOutcome;
        use ca_exchange::chase::chase_certified;

        let d = gen_instance(seed, facts);
        let (tgds, egds) = rule_pool(bits);
        let cfg = ChaseConfig::with_threads(BUDGET, 1);
        let plain = chase_with(&d, &tgds, &egds, &cfg);
        let (certified, cert) = chase_certified(&d, &tgds, &egds, &cfg);
        prop_assert_eq!(&plain, &certified, "certify flag changed the outcome on {:?}", &d);
        let cert = cert.expect("the compiled engine must certify terminating pools");
        prop_assert_eq!(
            ca_cert::check_chase(&cert),
            Ok(()),
            "checker rejected a live derivation log on {:?}",
            &d
        );
        // The certified outcome variant matches the engine's.
        match (&certified, &cert.outcome) {
            (ChaseOutcome::Done(db), ChaseCertOutcome::Done { final_facts }) => {
                prop_assert_eq!(db.n_nodes(), final_facts.len());
            }
            (ChaseOutcome::Failed, ChaseCertOutcome::Failed) => {}
            other => prop_assert!(false, "cert outcome diverged on {:?}: {:?}", &d, other),
        }
    }
}
