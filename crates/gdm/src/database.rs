//! Generalized databases `D = ⟨M, λ, ρ⟩`.

use std::collections::BTreeSet;

use ca_core::symbol::Symbol;
use ca_core::value::{Null, Value};
use ca_hom::structure::RelStructure;

use crate::schema::GenSchema;

/// A generalized database: nodes with labels and data tuples, plus
/// structural relation tuples over the nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenDb {
    /// The schema.
    pub schema: GenSchema,
    /// Per-node label.
    pub labels: Vec<Symbol>,
    /// Per-node data tuple (length = `ar(label)`).
    pub data: Vec<Vec<Value>>,
    /// Structural tuples `(relation, nodes)`.
    pub tuples: Vec<(Symbol, Vec<u32>)>,
}

impl GenDb {
    /// An empty database over a schema.
    pub fn new(schema: GenSchema) -> Self {
        GenDb {
            schema,
            labels: Vec::new(),
            data: Vec::new(),
            tuples: Vec::new(),
        }
    }

    /// Add a node with the given label and data tuple; returns its id.
    pub fn add_node(&mut self, label: &str, data: Vec<Value>) -> u32 {
        let sym = self
            .schema
            .label(label)
            .unwrap_or_else(|| panic!("unknown label {label}"));
        assert_eq!(
            data.len(),
            self.schema.label_arity(sym),
            "data arity for label {label}"
        );
        self.labels.push(sym);
        self.data.push(data);
        (self.labels.len() - 1) as u32
    }

    /// Add a structural tuple.
    pub fn add_tuple(&mut self, rel: &str, nodes: Vec<u32>) {
        let sym = self
            .schema
            .relation(rel)
            .unwrap_or_else(|| panic!("unknown relation {rel}"));
        assert_eq!(
            nodes.len(),
            self.schema.relation_arity(sym),
            "tuple arity for relation {rel}"
        );
        assert!(nodes.iter().all(|&n| (n as usize) < self.labels.len()));
        let t = (sym, nodes);
        if !self.tuples.contains(&t) {
            self.tuples.push(t);
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.labels.len()
    }

    /// `N(D)`: nulls occurring in data tuples.
    pub fn nulls(&self) -> BTreeSet<Null> {
        self.data
            .iter()
            .flat_map(|t| t.iter())
            .filter_map(|v| v.as_null())
            .collect()
    }

    /// `C(D)`: constants occurring in data tuples.
    pub fn constants(&self) -> BTreeSet<i64> {
        self.data
            .iter()
            .flat_map(|t| t.iter())
            .filter_map(|v| v.as_const())
            .collect()
    }

    /// Is the database complete (null-free)?
    pub fn is_complete(&self) -> bool {
        self.data.iter().all(|t| t.iter().all(|v| v.is_const()))
    }

    /// Does `ρ` have the Codd interpretation: each null occurs at most
    /// once across all data tuples?
    pub fn is_codd(&self) -> bool {
        let mut seen = BTreeSet::new();
        for t in &self.data {
            for v in t {
                if let Some(n) = v.as_null() {
                    if !seen.insert(n) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Apply a null valuation to all data tuples.
    pub fn map_values<F: Fn(Value) -> Value>(&self, f: F) -> GenDb {
        let mut out = self.clone();
        for t in &mut out.data {
            for v in t.iter_mut() {
                *v = f(*v);
            }
        }
        out
    }

    /// The colored structural part `M_λ` as a [`RelStructure`]: the σ
    /// relations (symbol ids offset by the number of labels) plus one
    /// unary relation per label `a` (symbol id = the label's index),
    /// exactly the paper's `P_a` encoding.
    pub fn colored_structure(&self) -> RelStructure {
        let n_labels = self.schema.n_labels() as u32;
        let mut s = RelStructure::new(self.n_nodes());
        for (node, label) in self.labels.iter().enumerate() {
            s.add_tuple(label.0, vec![node as u32]);
        }
        for (rel, nodes) in &self.tuples {
            s.add_tuple(n_labels + rel.0, nodes.clone());
        }
        s
    }

    /// The structural part *without* labels (σ relations only; relation
    /// symbol ids are the raw σ indices). Used by the Theorem 6 algorithm,
    /// where labels are folded into the compatibility relation instead.
    pub fn bare_structure(&self) -> RelStructure {
        let mut s = RelStructure::new(self.n_nodes());
        for (rel, nodes) in &self.tuples {
            s.add_tuple(rel.0, nodes.clone());
        }
        s
    }

    /// The disjoint union `D ⊔ D′` (same schema; nulls are *not* renamed).
    pub fn disjoint_union(&self, other: &GenDb) -> GenDb {
        assert_eq!(self.schema, other.schema, "same schema required");
        let shift = self.n_nodes() as u32;
        let mut out = self.clone();
        out.labels.extend(other.labels.iter().copied());
        out.data.extend(other.data.iter().cloned());
        for (rel, nodes) in &other.tuples {
            out.tuples
                .push((*rel, nodes.iter().map(|&n| n + shift).collect()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    /// The paper's Section 5.1 example:
    /// `{R(1,⊥1), S(⊥1,⊥2,2)}` as a generalized database.
    pub(crate) fn paper_example() -> GenDb {
        let schema = GenSchema::from_parts(&[("R", 2), ("S", 3)], &[]);
        let mut d = GenDb::new(schema);
        d.add_node("R", vec![c(1), n(1)]);
        d.add_node("S", vec![n(1), n(2), c(2)]);
        d
    }

    #[test]
    fn paper_example_shape() {
        let d = paper_example();
        assert_eq!(d.n_nodes(), 2);
        assert_eq!(d.nulls().len(), 2);
        assert_eq!(d.constants(), BTreeSet::from([1, 2]));
        assert!(!d.is_complete());
        assert!(!d.is_codd()); // ⊥1 occurs twice (across nodes)
        assert!(d.tuples.is_empty()); // σ = ∅
    }

    #[test]
    fn xml_like_database() {
        let schema = GenSchema::from_parts(&[("r", 0), ("a", 2)], &[("child", 2)]);
        let mut d = GenDb::new(schema);
        let root = d.add_node("r", vec![]);
        let a = d.add_node("a", vec![c(1), n(1)]);
        d.add_tuple("child", vec![root, a]);
        assert_eq!(d.n_nodes(), 2);
        assert_eq!(d.tuples.len(), 1);
        assert!(d.is_codd());
    }

    #[test]
    fn colored_structure_encoding() {
        let schema = GenSchema::from_parts(&[("r", 0), ("a", 1)], &[("child", 2)]);
        let mut d = GenDb::new(schema);
        let root = d.add_node("r", vec![]);
        let a = d.add_node("a", vec![n(1)]);
        d.add_tuple("child", vec![root, a]);
        let s = d.colored_structure();
        // Two unary label tuples + one binary child tuple.
        assert_eq!(s.tuples.len(), 3);
        assert_eq!(s.relation(0).count(), 1); // P_r
        assert_eq!(s.relation(1).count(), 1); // P_a
        assert_eq!(s.relation(2).count(), 1); // child (offset by 2 labels)
    }

    #[test]
    fn disjoint_union_shifts_tuples() {
        let schema = GenSchema::from_parts(&[("a", 0)], &[("e", 2)]);
        let mut d1 = GenDb::new(schema.clone());
        let x = d1.add_node("a", vec![]);
        let y = d1.add_node("a", vec![]);
        d1.add_tuple("e", vec![x, y]);
        let u = d1.disjoint_union(&d1.clone());
        assert_eq!(u.n_nodes(), 4);
        assert_eq!(u.tuples.len(), 2);
        assert_eq!(u.tuples[1].1, vec![2, 3]);
    }

    #[test]
    fn codd_within_one_tuple() {
        let schema = GenSchema::from_parts(&[("R", 2)], &[]);
        let mut d = GenDb::new(schema);
        d.add_node("R", vec![n(1), n(1)]);
        assert!(!d.is_codd());
    }
}
