//! The query logic FO(S, ∼) of Section 6.
//!
//! Generalized databases are two-sorted; the paper avoids multi-sorted
//! logic by working over the vocabulary `τ_S`: the σ relations, a unary
//! label predicate `P_a` per `a ∈ Σ`, and binary predicates `=_{ij}(x, y)`
//! ("the i-th attribute of `x` equals the j-th attribute of `y`"),
//! interpreted through the `D_EQ` encoding. We evaluate directly on the
//! generalized database with exactly the `D_EQ` semantics: `=_{ij}(x, y)`
//! holds iff both attributes exist and their values are equal — nulls
//! compared *as values*, which is what makes evaluation on an incomplete
//! database the naïve evaluation of Theorem 7(a).
//!
//! Attribute indices are 0-based in code (the paper's `=_{11}` is
//! `attr_eq(0, 0)`).

use crate::database::GenDb;

/// A formula of FO(S, ∼). Variables range over nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GFo {
    /// A σ-relation atom over node variables.
    Rel(String, Vec<u32>),
    /// The label predicate `P_a(x)`.
    Label(String, u32),
    /// `=_{ij}(x, y)`: attribute `i` of `x` equals attribute `j` of `y`.
    AttrEq {
        /// 0-based attribute index on `x`.
        i: usize,
        /// 0-based attribute index on `y`.
        j: usize,
        /// First node variable.
        x: u32,
        /// Second node variable.
        y: u32,
    },
    /// First-order equality of node variables.
    NodeEq(u32, u32),
    /// Negation.
    Not(Box<GFo>),
    /// Conjunction (empty = true).
    And(Vec<GFo>),
    /// Disjunction (empty = false).
    Or(Vec<GFo>),
    /// Existential node quantification.
    Exists(u32, Box<GFo>),
    /// Universal node quantification.
    Forall(u32, Box<GFo>),
}

impl GFo {
    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> GFo {
        GFo::Not(Box::new(self))
    }

    /// `∃v φ`.
    pub fn exists(v: u32, body: GFo) -> GFo {
        GFo::Exists(v, Box::new(body))
    }

    /// `∀v φ`.
    pub fn forall(v: u32, body: GFo) -> GFo {
        GFo::Forall(v, Box::new(body))
    }

    /// `φ → ψ`.
    pub fn implies(self, then: GFo) -> GFo {
        GFo::Or(vec![self.not(), then])
    }

    /// Existential-positive fragment: atoms, ∧, ∨, ∃ only (Theorem 7(a)).
    pub fn is_existential_positive(&self) -> bool {
        match self {
            GFo::Rel(..) | GFo::Label(..) | GFo::AttrEq { .. } | GFo::NodeEq(..) => true,
            GFo::Not(_) | GFo::Forall(..) => false,
            GFo::And(fs) | GFo::Or(fs) => fs.iter().all(GFo::is_existential_positive),
            GFo::Exists(_, f) => f.is_existential_positive(),
        }
    }

    /// Existential fragment: no ∀, and no quantifier inside a negation
    /// (equivalently, ∃\* over a quantifier-free matrix; Theorem 7(b)).
    pub fn is_existential(&self) -> bool {
        fn quantifier_free(f: &GFo) -> bool {
            match f {
                GFo::Rel(..) | GFo::Label(..) | GFo::AttrEq { .. } | GFo::NodeEq(..) => true,
                GFo::Not(g) => quantifier_free(g),
                GFo::And(fs) | GFo::Or(fs) => fs.iter().all(quantifier_free),
                GFo::Exists(..) | GFo::Forall(..) => false,
            }
        }
        match self {
            GFo::Exists(_, f) => f.is_existential(),
            GFo::And(fs) | GFo::Or(fs) => fs.iter().all(GFo::is_existential),
            other => quantifier_free(other),
        }
    }
}

/// Evaluate a sentence on a generalized database under the `D_EQ`
/// semantics (active domain = the nodes; nulls compared as values).
pub fn eval_gfo(phi: &GFo, db: &GenDb) -> bool {
    let mut env: Vec<(u32, u32)> = Vec::new();
    eval_rec(phi, db, &mut env)
}

fn get(env: &[(u32, u32)], v: u32) -> u32 {
    env.iter()
        .rev()
        .find(|(u, _)| *u == v)
        .map(|&(_, n)| n)
        .expect("unbound node variable (formula is not a sentence?)")
}

fn eval_rec(phi: &GFo, db: &GenDb, env: &mut Vec<(u32, u32)>) -> bool {
    match phi {
        GFo::Rel(name, vars) => {
            let Some(rel) = db.schema.relation(name) else {
                return false;
            };
            let nodes: Vec<u32> = vars.iter().map(|&v| get(env, v)).collect();
            db.tuples.iter().any(|(r, t)| *r == rel && *t == nodes)
        }
        GFo::Label(name, v) => {
            let Some(sym) = db.schema.label(name) else {
                return false;
            };
            db.labels[get(env, *v) as usize] == sym
        }
        GFo::AttrEq { i, j, x, y } => {
            let nx = get(env, *x) as usize;
            let ny = get(env, *y) as usize;
            db.data[nx].len() > *i && db.data[ny].len() > *j && db.data[nx][*i] == db.data[ny][*j]
        }
        GFo::NodeEq(x, y) => get(env, *x) == get(env, *y),
        GFo::Not(f) => !eval_rec(f, db, env),
        GFo::And(fs) => fs.iter().all(|f| eval_rec(f, db, env)),
        GFo::Or(fs) => fs.iter().any(|f| eval_rec(f, db, env)),
        GFo::Exists(v, f) => (0..db.n_nodes() as u32).any(|n| {
            env.push((*v, n));
            let r = eval_rec(f, db, env);
            env.pop();
            r
        }),
        GFo::Forall(v, f) => (0..db.n_nodes() as u32).all(|n| {
            env.push((*v, n));
            let r = eval_rec(f, db, env);
            env.pop();
            r
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::GenDb;
    use crate::schema::GenSchema;
    use ca_core::value::Value;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn schema() -> GenSchema {
        GenSchema::from_parts(&[("a", 1), ("b", 3)], &[("E", 2)])
    }

    #[test]
    fn label_and_relation_atoms() {
        let mut d = GenDb::new(schema());
        let x = d.add_node("a", vec![c(1)]);
        let y = d.add_node("a", vec![c(2)]);
        d.add_tuple("E", vec![x, y]);
        let phi = GFo::exists(
            0,
            GFo::exists(
                1,
                GFo::And(vec![
                    GFo::Label("a".into(), 0),
                    GFo::Label("a".into(), 1),
                    GFo::Rel("E".into(), vec![0, 1]),
                ]),
            ),
        );
        assert!(eval_gfo(&phi, &d));
        // No edge back.
        let rev = GFo::exists(
            0,
            GFo::exists(
                1,
                GFo::And(vec![
                    GFo::Rel("E".into(), vec![0, 1]),
                    GFo::Rel("E".into(), vec![1, 0]),
                ]),
            ),
        );
        assert!(!eval_gfo(&rev, &d));
    }

    #[test]
    fn attr_eq_nulls_as_values() {
        let mut d = GenDb::new(schema());
        d.add_node("a", vec![n(1)]);
        d.add_node("a", vec![n(1)]);
        d.add_node("a", vec![n(2)]);
        // ∃x∃y (x ≠ y ∧ =00(x,y)): nodes 0,1 share ⊥1.
        let phi = GFo::exists(
            0,
            GFo::exists(
                1,
                GFo::And(vec![
                    GFo::NodeEq(0, 1).not(),
                    GFo::AttrEq {
                        i: 0,
                        j: 0,
                        x: 0,
                        y: 1,
                    },
                ]),
            ),
        );
        assert!(eval_gfo(&phi, &d));
        // ⊥1 = ⊥2 is false as values.
        let mut d2 = GenDb::new(schema());
        d2.add_node("a", vec![n(1)]);
        d2.add_node("a", vec![n(2)]);
        assert!(!eval_gfo(&phi, &d2));
    }

    #[test]
    fn attr_eq_across_arities() {
        // =02 between an a-node (1 attribute) and b-node (3 attributes).
        let mut d = GenDb::new(schema());
        d.add_node("a", vec![c(5)]);
        d.add_node("b", vec![c(1), c(2), c(5)]);
        let phi = GFo::exists(
            0,
            GFo::exists(
                1,
                GFo::And(vec![
                    GFo::Label("a".into(), 0),
                    GFo::Label("b".into(), 1),
                    GFo::AttrEq {
                        i: 0,
                        j: 2,
                        x: 0,
                        y: 1,
                    },
                ]),
            ),
        );
        assert!(eval_gfo(&phi, &d));
        // Out-of-range attribute is simply false.
        let oob = GFo::exists(
            0,
            GFo::AttrEq {
                i: 1,
                j: 1,
                x: 0,
                y: 0,
            },
        );
        assert!(!eval_gfo(&oob, &d) || d.data.iter().any(|t| t.len() > 1));
    }

    #[test]
    fn fragments() {
        let ep = GFo::exists(0, GFo::Label("a".into(), 0));
        assert!(ep.is_existential_positive());
        assert!(ep.is_existential());
        let e = GFo::exists(0, GFo::Label("a".into(), 0).not());
        assert!(!e.is_existential_positive());
        assert!(e.is_existential());
        let fa = GFo::forall(0, GFo::Label("a".into(), 0));
        assert!(!fa.is_existential());
        // ¬∃ is not existential (quantifier under negation).
        let ne = GFo::exists(0, GFo::Label("a".into(), 0)).not();
        assert!(!ne.is_existential());
    }

    #[test]
    fn forall_over_nodes() {
        let mut d = GenDb::new(schema());
        d.add_node("a", vec![c(1)]);
        d.add_node("a", vec![c(1)]);
        let phi = GFo::forall(0, GFo::Label("a".into(), 0));
        assert!(eval_gfo(&phi, &d));
        d.add_node("b", vec![c(1), c(2), c(3)]);
        assert!(!eval_gfo(&phi, &d));
    }
}
