//! # ca-gdm — the generalized data model (Sections 5 & 6)
//!
//! The paper's unifying model: a *generalized database* over a schema
//! `S = ⟨Σ, σ, ar⟩` is `D = ⟨M, λ, ρ⟩` — a finite σ-structure `M` (the
//! structural part), a labeling `λ` of its elements in `Σ`, and a data
//! function `ρ` attaching an `ar(λ(ν))`-tuple over `C ∪ N` to each node
//! `ν`. Relational databases are the case `σ = ∅` (the structure is a bare
//! set of fact-nodes); XML documents are the case where `M` is an unranked
//! tree.
//!
//! * [`schema`] / [`database`] — the model itself.
//! * [`hom`] — homomorphisms `(h₁, h₂)` and the information ordering
//!   (Proposition 9).
//! * [`encode`] — faithful encodings of naïve databases and XML trees into
//!   the model.
//! * [`glb`] — the Theorem 4 glb construction `D ∧_K D′`, parameterized by
//!   a structural glb for the class `K`, instantiated for `K` = all
//!   Σ-colored structures (subsuming relations) and `K` = trees.
//! * [`logic`] — the query language FO(S, ∼): first-order over σ, label
//!   predicates `P_a`, and attribute equalities `=_{ij}`, evaluated
//!   through the `D_EQ` encoding.
//! * [`lub`] — least upper bounds (disjoint unions after null renaming),
//!   the other half of the Theorem 5 story.
//! * [`deq`] — the materialized `D_EQ` encoding and its FO translation,
//!   cross-checking the direct evaluator.
//! * [`certain`] — query answering (Theorem 7): naïve evaluation for
//!   existential-positive sentences, the coNP image-enumeration procedure
//!   for existential sentences, and the `ϕ₀` 3-colorability encoding
//!   behind coNP-hardness.
//! * [`consistency`] — the consistency problem (Proposition 11): PTIME
//!   for ∃\* sentences, NP for ∃\*∀\* via bounded-model search, with the
//!   hom-to-`K₃` NP-hardness family.
//! * [`membership`] — the membership problem: NP in general, and the
//!   Theorem 6 polynomial algorithm for Codd data + bounded treewidth.
//! * [`generate`] — random generalized databases for experiments.

pub mod certain;
pub mod consistency;
pub mod database;
pub mod deq;
pub mod encode;
pub mod generate;
pub mod glb;
pub mod hom;
pub mod logic;
pub mod lub;
pub mod membership;
pub mod schema;

pub use database::GenDb;
pub use hom::{find_gdm_hom, gdm_leq, GdmHom};
pub use logic::GFo;
pub use schema::GenSchema;
