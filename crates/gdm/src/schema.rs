//! Generalized schemas `S = ⟨Σ, σ, ar⟩`.

use ca_core::symbol::{Interner, Symbol};

/// A generalized schema: a label alphabet `Σ` with arities (data-tuple
/// lengths), and a relational vocabulary `σ` for the structural part.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenSchema {
    labels: Interner,
    label_arities: Vec<usize>,
    relations: Interner,
    relation_arities: Vec<usize>,
}

impl GenSchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from label and relation declarations.
    pub fn from_parts(labels: &[(&str, usize)], relations: &[(&str, usize)]) -> Self {
        let mut s = GenSchema::new();
        for &(name, ar) in labels {
            s.add_label(name, ar);
        }
        for &(name, ar) in relations {
            s.add_relation(name, ar);
        }
        s
    }

    /// Add a label `a ∈ Σ` with `ar(a)` data attributes.
    pub fn add_label(&mut self, name: &str, arity: usize) -> Symbol {
        if let Some(sym) = self.labels.get(name) {
            assert_eq!(self.label_arities[sym.index()], arity, "label arity clash");
            return sym;
        }
        let sym = self.labels.intern(name);
        self.label_arities.push(arity);
        sym
    }

    /// Add a structural relation to σ.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Symbol {
        if let Some(sym) = self.relations.get(name) {
            assert_eq!(
                self.relation_arities[sym.index()],
                arity,
                "relation arity clash"
            );
            return sym;
        }
        let sym = self.relations.intern(name);
        self.relation_arities.push(arity);
        sym
    }

    /// Look up a label.
    pub fn label(&self, name: &str) -> Option<Symbol> {
        self.labels.get(name)
    }

    /// Look up a structural relation.
    pub fn relation(&self, name: &str) -> Option<Symbol> {
        self.relations.get(name)
    }

    /// Data arity of a label.
    pub fn label_arity(&self, sym: Symbol) -> usize {
        self.label_arities[sym.index()]
    }

    /// Arity of a structural relation.
    pub fn relation_arity(&self, sym: Symbol) -> usize {
        self.relation_arities[sym.index()]
    }

    /// Name of a label.
    pub fn label_name(&self, sym: Symbol) -> &str {
        self.labels.resolve(sym).expect("label of this schema")
    }

    /// Name of a structural relation.
    pub fn relation_name(&self, sym: Symbol) -> &str {
        self.relations
            .resolve(sym)
            .expect("relation of this schema")
    }

    /// Number of labels.
    pub fn n_labels(&self) -> usize {
        self.label_arities.len()
    }

    /// Number of structural relations (σ may be empty — the relational
    /// case).
    pub fn n_relations(&self) -> usize {
        self.relation_arities.len()
    }

    /// All label symbols.
    pub fn label_symbols(&self) -> impl Iterator<Item = Symbol> {
        (0..self.label_arities.len() as u32).map(Symbol)
    }

    /// All relation symbols.
    pub fn relation_symbols(&self) -> impl Iterator<Item = Symbol> {
        (0..self.relation_arities.len() as u32).map(Symbol)
    }

    /// The maximum data arity over all labels.
    pub fn max_label_arity(&self) -> usize {
        self.label_arities.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relational_schemas_have_empty_sigma() {
        let s = GenSchema::from_parts(&[("R", 2), ("S", 3)], &[]);
        assert_eq!(s.n_relations(), 0);
        assert_eq!(s.n_labels(), 2);
        assert_eq!(s.label_arity(s.label("S").unwrap()), 3);
    }

    #[test]
    fn xml_schemas_have_child_relation() {
        let s = GenSchema::from_parts(&[("r", 0), ("a", 2)], &[("child", 2)]);
        assert_eq!(s.n_relations(), 1);
        assert_eq!(s.relation_arity(s.relation("child").unwrap()), 2);
        assert_eq!(s.max_label_arity(), 2);
    }

    #[test]
    #[should_panic(expected = "arity clash")]
    fn label_arity_clash_panics() {
        let mut s = GenSchema::new();
        s.add_label("a", 1);
        s.add_label("a", 2);
    }
}
