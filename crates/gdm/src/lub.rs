//! Least upper bounds of generalized databases.
//!
//! With no restriction on the structural class, lubs in the information
//! ordering exist and are disjoint unions after null renaming —
//! "technically, disjoint unions after renaming of nulls" (Section 5.3).
//! This is the order-theoretic content of Theorem 5: `∨ M(D)` is the
//! canonical universal solution. (For restricted classes such as trees,
//! lubs may not exist — Proposition 10; see
//! [`ca_exchange`](https://docs.rs) for the counterexample.)

use ca_core::value::NullGen;

use crate::database::GenDb;
use crate::hom::gdm_leq;

/// Rename every null of `d` to a fresh one drawn from `gen`.
pub fn rename_nulls(d: &GenDb, gen: &mut NullGen) -> GenDb {
    let mapping: std::collections::BTreeMap<_, _> =
        d.nulls().into_iter().map(|nl| (nl, gen.fresh())).collect();
    d.map_values(|v| match v {
        ca_core::value::Value::Null(nl) => ca_core::value::Value::Null(mapping[&nl]),
        c => c,
    })
}

/// The lub `D ∨ D′` in the class of all generalized databases over the
/// schema: the disjoint union with `D′`'s nulls renamed apart.
pub fn lub_sigma(a: &GenDb, b: &GenDb) -> GenDb {
    let mut gen = NullGen::avoiding(a.nulls().into_iter().chain(b.nulls()));
    a.disjoint_union(&rename_nulls(b, &mut gen))
}

/// The lub of finitely many databases (`None` for an empty family —
/// except that the empty instance is a legitimate bottom, callers wanting
/// it should pass it explicitly).
pub fn lub_many(xs: &[GenDb]) -> Option<GenDb> {
    let (first, rest) = xs.split_first()?;
    Some(rest.iter().fold(first.clone(), |acc, x| lub_sigma(&acc, x)))
}

/// Verify the lub laws against sampled upper bounds: `l` is above both
/// inputs, and below every provided common upper bound.
pub fn verify_lub_laws(a: &GenDb, b: &GenDb, l: &GenDb, uppers: &[GenDb]) -> bool {
    if !(gdm_leq(a, l) && gdm_leq(b, l)) {
        return false;
    }
    uppers
        .iter()
        .all(|u| !(gdm_leq(a, u) && gdm_leq(b, u)) || gdm_leq(l, u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_relational;
    use crate::hom::gdm_equiv;
    use ca_relational::database::build::{c, n, table};
    use ca_relational::generate::{random_naive_db, DbParams, Rng};

    #[test]
    fn lub_is_an_upper_bound() {
        let a = encode_relational(&table("R", 1, &[&[c(1)]]));
        let b = encode_relational(&table("R", 1, &[&[c(2)]]));
        let join = lub_sigma(&a, &b);
        assert!(gdm_leq(&a, &join) && gdm_leq(&b, &join));
        assert_eq!(join.n_nodes(), 2);
    }

    #[test]
    fn null_renaming_prevents_capture() {
        // Both use ⊥1; without renaming the union would wrongly equate
        // them.
        let a = encode_relational(&table("R", 2, &[&[n(1), c(1)]]));
        let b = encode_relational(&table("R", 2, &[&[n(1), c(2)]]));
        let join = lub_sigma(&a, &b);
        assert_eq!(join.nulls().len(), 2, "nulls must stay distinct");
        // A world where the two nulls differ is still a model of the join.
        let world = encode_relational(&table("R", 2, &[&[c(8), c(1)], &[c(9), c(2)]]));
        assert!(gdm_leq(&join, &world));
    }

    #[test]
    fn lub_laws_against_sampled_uppers() {
        let mut rng = Rng::new(2222);
        let p = DbParams {
            n_facts: 2,
            arity: 2,
            n_constants: 2,
            n_nulls: 1,
            null_pct: 30,
        };
        for _ in 0..10 {
            let a = encode_relational(&random_naive_db(&mut rng, p));
            let b = encode_relational(&random_naive_db(&mut rng, p));
            let join = lub_sigma(&a, &b);
            // The join itself and its supersets are upper bounds; also the
            // union with any extra facts.
            let mut bigger = join.clone();
            bigger.add_node("R", vec![c(7), c(7)]);
            assert!(verify_lub_laws(&a, &b, &join, &[join.clone(), bigger]));
        }
    }

    #[test]
    fn lub_of_comparable_collapses_up_to_equivalence() {
        let small = encode_relational(&table("R", 1, &[&[n(1)]]));
        let big = encode_relational(&table("R", 1, &[&[c(1)]]));
        let join = lub_many(&[small.clone(), big.clone()]).unwrap();
        // small ⊑ big, so the lub class is big's class.
        assert!(gdm_equiv(&join, &big));
    }

    /// Theorem 5 restated through lubs: the canonical universal solution
    /// is `∨ M(D)`.
    #[test]
    fn theorem5_lub_is_canonical_solution() {
        use ca_core::value::Value;
        let nn = Value::null;
        let src = crate::schema::GenSchema::from_parts(&[("S", 2)], &[]);
        let tgt = crate::schema::GenSchema::from_parts(&[("T", 2)], &[]);
        // Rule S(x, y) → T(x, z), T(z, y) — built inline to avoid a
        // dependency on ca-exchange (which depends on us).
        let mut d = GenDb::new(src);
        d.add_node("S", vec![Value::Const(1), Value::Const(2)]);
        d.add_node("S", vec![Value::Const(3), Value::Const(4)]);
        // M(D) by hand: one application per S-fact.
        let app = |x: i64, y: i64, z: u32| {
            let mut t = GenDb::new(tgt.clone());
            t.add_node("T", vec![Value::Const(x), nn(z)]);
            t.add_node("T", vec![nn(z), Value::Const(y)]);
            t
        };
        let m_d = vec![app(1, 2, 10), app(3, 4, 11)];
        let join = lub_many(&m_d).unwrap();
        // The canonical solution is the 4-fact union with distinct
        // middles; the lub construction yields exactly that (up to ∼).
        assert_eq!(join.n_nodes(), 4);
        for a in &m_d {
            assert!(gdm_leq(a, &join));
        }
    }
}
