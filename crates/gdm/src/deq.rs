//! The explicit `D_EQ` encoding of Section 6.
//!
//! The paper defines `D |= ϕ` for `ϕ ∈ FO(S, ∼)` by turning the
//! generalized database into an ordinary relational structure `D_EQ` over
//! the vocabulary `τ_S`: the σ relations, a unary `P_a` per label, and
//! binary relations `EQ_ij` holding of `(ν, ν′)` when attribute `i` of
//! `ν` equals attribute `j` of `ν′`. The direct evaluator in
//! [`crate::logic`] computes the same thing on the fly; this module
//! *materializes* `D_EQ` as a naïve database and translates FO(S, ∼)
//! formulas into the [`ca_query`] FO syntax, so the two evaluation paths
//! can be cross-checked — and so downstream code can hand `D_EQ` to any
//! relational tooling.

use ca_core::value::Value;
use ca_query::ast::{Atom, Fo, Term};
use ca_relational::database::NaiveDatabase;
use ca_relational::schema::Schema;

use crate::database::GenDb;
use crate::logic::GFo;

/// Relation names used in the materialized `D_EQ`.
fn sigma_rel(name: &str) -> String {
    format!("sigma_{name}")
}
fn label_rel(name: &str) -> String {
    format!("label_{name}")
}
fn eq_rel(i: usize, j: usize) -> String {
    format!("eq_{i}_{j}")
}

/// Materialize `D_EQ`: universe = node ids (as constants), σ tuples, label
/// predicates, and all attribute-equality pairs. Also includes a unary
/// `node` relation holding the whole universe (for clean active-domain
/// quantification).
pub fn build_deq(d: &GenDb) -> NaiveDatabase {
    let max_ar = d.schema.max_label_arity();
    let mut rels: Vec<(String, usize)> = vec![("node".into(), 1)];
    for r in d.schema.relation_symbols() {
        rels.push((
            sigma_rel(d.schema.relation_name(r)),
            d.schema.relation_arity(r),
        ));
    }
    for l in d.schema.label_symbols() {
        rels.push((label_rel(d.schema.label_name(l)), 1));
    }
    for i in 0..max_ar {
        for j in 0..max_ar {
            rels.push((eq_rel(i, j), 2));
        }
    }
    let rel_refs: Vec<(&str, usize)> = rels.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    let schema = Schema::from_relations(&rel_refs);
    let mut db = NaiveDatabase::new(schema);
    let node = |v: u32| Value::Const(v as i64);
    for v in 0..d.n_nodes() as u32 {
        db.add("node", vec![node(v)]);
        db.add(
            &label_rel(d.schema.label_name(d.labels[v as usize])),
            vec![node(v)],
        );
    }
    for (rel, t) in &d.tuples {
        db.add(
            &sigma_rel(d.schema.relation_name(*rel)),
            t.iter().map(|&v| node(v)).collect(),
        );
    }
    for x in 0..d.n_nodes() as u32 {
        for y in 0..d.n_nodes() as u32 {
            for i in 0..d.data[x as usize].len() {
                for j in 0..d.data[y as usize].len() {
                    if d.data[x as usize][i] == d.data[y as usize][j] {
                        db.add(&eq_rel(i, j), vec![node(x), node(y)]);
                    }
                }
            }
        }
    }
    db
}

/// Translate an FO(S, ∼) sentence into ordinary FO over the `D_EQ`
/// vocabulary. Quantifiers are relativized to the `node` relation so that
/// active-domain evaluation over the materialized database coincides with
/// node quantification.
pub fn translate_to_fo(phi: &GFo) -> Fo {
    match phi {
        GFo::Rel(name, vars) => Fo::Atom(Atom::new(
            &sigma_rel(name),
            vars.iter().map(|&v| Term::Var(v)).collect(),
        )),
        GFo::Label(name, v) => Fo::Atom(Atom::new(&label_rel(name), vec![Term::Var(*v)])),
        GFo::AttrEq { i, j, x, y } => Fo::Atom(Atom::new(
            &eq_rel(*i, *j),
            vec![Term::Var(*x), Term::Var(*y)],
        )),
        GFo::NodeEq(x, y) => Fo::Eq(Term::Var(*x), Term::Var(*y)),
        GFo::Not(f) => translate_to_fo(f).not(),
        GFo::And(fs) => Fo::And(fs.iter().map(translate_to_fo).collect()),
        GFo::Or(fs) => Fo::Or(fs.iter().map(translate_to_fo).collect()),
        GFo::Exists(v, f) => Fo::exists(
            *v,
            Fo::And(vec![
                Fo::Atom(Atom::new("node", vec![Term::Var(*v)])),
                translate_to_fo(f),
            ]),
        ),
        GFo::Forall(v, f) => Fo::forall(
            *v,
            Fo::Atom(Atom::new("node", vec![Term::Var(*v)])).implies(translate_to_fo(f)),
        ),
    }
}

/// Evaluate via the materialized `D_EQ` (the paper's official definition
/// of `D |= ϕ`). Must agree with [`crate::logic::eval_gfo`].
pub fn eval_via_deq(phi: &GFo, d: &GenDb) -> bool {
    let deq = build_deq(d);
    ca_query::eval::eval_fo(&translate_to_fo(phi), &deq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::eval_gfo;
    use crate::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn sample_db() -> GenDb {
        let schema = GenSchema::from_parts(&[("a", 1), ("b", 2)], &[("E", 2)]);
        let mut d = GenDb::new(schema);
        let x = d.add_node("a", vec![n(1)]);
        let y = d.add_node("a", vec![n(1)]);
        let z = d.add_node("b", vec![c(1), c(2)]);
        d.add_tuple("E", vec![x, y]);
        d.add_tuple("E", vec![y, z]);
        d
    }

    #[test]
    fn deq_shape() {
        let d = sample_db();
        let deq = build_deq(&d);
        // node facts: 3; labels: 3; sigma E: 2; eq pairs: reflexive pairs
        // at least.
        assert_eq!(deq.relation_by_name("node").count(), 3);
        assert_eq!(deq.relation_by_name("sigma_E").count(), 2);
        assert_eq!(deq.relation_by_name("label_a").count(), 2);
        // Attribute 0 of nodes 0 and 1 share ⊥1: eq_0_0 contains (0,1).
        let eq00: Vec<_> = deq.relation_by_name("eq_0_0").collect();
        assert!(eq00.iter().any(|f| f.args == vec![c(0), c(1)]));
    }

    /// The two evaluation paths agree on a formula battery.
    #[test]
    fn direct_and_deq_evaluation_agree() {
        let d = sample_db();
        let formulas = vec![
            GFo::exists(0, GFo::Rel("E".into(), vec![0, 0])),
            GFo::exists(0, GFo::exists(1, GFo::Rel("E".into(), vec![0, 1]))),
            GFo::forall(0, GFo::Label("a".into(), 0)),
            GFo::exists(
                0,
                GFo::exists(
                    1,
                    GFo::And(vec![
                        GFo::NodeEq(0, 1).not(),
                        GFo::AttrEq {
                            i: 0,
                            j: 0,
                            x: 0,
                            y: 1,
                        },
                    ]),
                ),
            ),
            GFo::exists(
                0,
                GFo::And(vec![
                    GFo::Label("b".into(), 0),
                    GFo::AttrEq {
                        i: 0,
                        j: 1,
                        x: 0,
                        y: 0,
                    },
                ]),
            ),
            GFo::forall(
                0,
                GFo::forall(
                    1,
                    GFo::Rel("E".into(), vec![0, 1]).implies(GFo::NodeEq(0, 1)),
                ),
            ),
        ];
        for phi in &formulas {
            assert_eq!(
                eval_gfo(phi, &d),
                eval_via_deq(phi, &d),
                "evaluation paths disagree on {phi:?}"
            );
        }
    }

    /// Homomorphisms of generalized databases are homomorphisms of the
    /// `D_EQ` structures (the observation opening the Theorem 7 proof):
    /// positive sentences true in `D_EQ` stay true in images.
    #[test]
    fn deq_preserves_positive_sentences_along_homs() {
        let d = sample_db();
        // Ground ⊥1 to 9 — a homomorphic image.
        let image = d.map_values(|v| if v == n(1) { c(9) } else { v });
        let positive = GFo::exists(
            0,
            GFo::exists(
                1,
                GFo::And(vec![
                    GFo::Rel("E".into(), vec![0, 1]),
                    GFo::AttrEq {
                        i: 0,
                        j: 0,
                        x: 0,
                        y: 1,
                    },
                ]),
            ),
        );
        if eval_via_deq(&positive, &d) {
            assert!(eval_via_deq(&positive, &image));
        }
    }
}
