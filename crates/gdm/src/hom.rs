//! Homomorphisms of generalized databases and the information ordering
//! (Proposition 9).
//!
//! `h = (h₁, h₂) : D → D′` where `h₁` is a homomorphism of the colored
//! structures `M_λ → M′_λ′` and `ρ′(h₁(ν)) = h₂(ρ(ν))` for every node.
//! As always `h₂` is the identity on constants. `[[D]]` is the set of
//! complete generalized databases with a homomorphism from `D`, and
//! `D ⊑ D′ ⇔ [[D′]] ⊆ [[D]] ⇔` a homomorphism `D → D′` exists.

use std::collections::BTreeMap;

use ca_core::value::{Null, Value};
use ca_hom::csp::Csp;

use crate::database::GenDb;

/// A generalized-database homomorphism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GdmHom {
    /// `h₁`: image of each node.
    pub node_map: Vec<u32>,
    /// `h₂`: image of each null.
    pub null_map: BTreeMap<Null, Value>,
}

impl GdmHom {
    /// Apply `h₂` to a value.
    pub fn apply_value(&self, v: Value) -> Value {
        match v {
            Value::Const(_) => v,
            Value::Null(n) => self.null_map.get(&n).copied().unwrap_or(v),
        }
    }
}

fn value_universe(d: &GenDb) -> Vec<Value> {
    let mut vals: Vec<Value> = d.data.iter().flat_map(|t| t.iter().copied()).collect();
    vals.sort_unstable();
    vals.dedup();
    vals
}

/// Build the homomorphism CSP `src → dst`: node variables `0..n`, null
/// variables after them. Exposed for callers needing extra constraints.
pub fn gdm_hom_csp(src: &GenDb, dst: &GenDb) -> (Csp, Vec<Null>, Vec<Value>) {
    assert_eq!(src.schema, dst.schema, "same generalized schema required");
    let n = src.n_nodes();
    let nulls: Vec<Null> = src.nulls().into_iter().collect();
    let null_var = |nl: Null| -> u32 {
        match nulls.binary_search(&nl) {
            Ok(i) => (n + i) as u32,
            // `nulls` enumerates every null of `src`, so any null met
            // while compiling src's tuples is present.
            Err(_) => unreachable!("null not in src's null set"),
        }
    };
    let universe = value_universe(dst);
    let val_id = |v: Value| -> Option<u32> { universe.binary_search(&v).ok().map(|i| i as u32) };

    let mut csp = Csp {
        domains: Vec::with_capacity(n + nulls.len()),
        constraints: Vec::new(),
    };
    // Node domains: same label; constants in data must match position-wise.
    for node in 0..n {
        let candidates: Vec<u32> = (0..dst.n_nodes() as u32)
            .filter(|&d| {
                dst.labels[d as usize] == src.labels[node]
                    && src.data[node].iter().zip(dst.data[d as usize].iter()).all(
                        |(a, b)| match a {
                            Value::Const(_) => a == b,
                            Value::Null(_) => true,
                        },
                    )
            })
            .collect();
        csp.domains.push(candidates);
    }
    for _ in &nulls {
        csp.domains.push((0..universe.len() as u32).collect());
    }
    // Structural tuples: map into same-relation tuples of dst.
    for (rel, nodes) in &src.tuples {
        let allowed: Vec<Vec<u32>> = dst
            .tuples
            .iter()
            .filter(|(r, _)| r == rel)
            .map(|(_, t)| t.clone())
            .collect();
        csp.add_constraint(nodes.clone(), allowed);
    }
    // Data constraints binding node and null variables.
    for node in 0..n {
        for (i, v) in src.data[node].iter().enumerate() {
            if let Value::Null(nl) = v {
                let allowed: Vec<Vec<u32>> = (0..dst.n_nodes() as u32)
                    .filter(|&d| dst.labels[d as usize] == src.labels[node])
                    .filter_map(|d| val_id(dst.data[d as usize][i]).map(|vid| vec![d, vid]))
                    .collect();
                csp.add_constraint(vec![node as u32, null_var(*nl)], allowed);
            }
        }
    }
    (csp, nulls, universe)
}

/// Find a homomorphism `src → dst`, if any.
pub fn find_gdm_hom(src: &GenDb, dst: &GenDb) -> Option<GdmHom> {
    let (csp, nulls, universe) = gdm_hom_csp(src, dst);
    let sol = csp.solve()?;
    let n = src.n_nodes();
    Some(GdmHom {
        node_map: sol[..n].to_vec(),
        null_map: nulls
            .iter()
            .enumerate()
            .map(|(i, &nl)| (nl, universe[sol[n + i] as usize]))
            .collect(),
    })
}

/// Is `h` a valid homomorphism `src → dst`?
pub fn is_gdm_hom(src: &GenDb, dst: &GenDb, h: &GdmHom) -> bool {
    if h.node_map.len() != src.n_nodes() {
        return false;
    }
    for (node, &img) in h.node_map.iter().enumerate() {
        if dst.labels[img as usize] != src.labels[node] {
            return false;
        }
        let mapped: Vec<Value> = src.data[node].iter().map(|&v| h.apply_value(v)).collect();
        if mapped != dst.data[img as usize] {
            return false;
        }
    }
    for (rel, nodes) in &src.tuples {
        let image: Vec<u32> = nodes.iter().map(|&v| h.node_map[v as usize]).collect();
        if !dst.tuples.iter().any(|(r, t)| r == rel && *t == image) {
            return false;
        }
    }
    true
}

/// The information ordering `D ⊑ D′` (Proposition 9: homomorphism
/// existence). Decision-only, so it skips witness reconstruction and asks
/// the solver for bare satisfiability.
pub fn gdm_leq(a: &GenDb, b: &GenDb) -> bool {
    let (csp, _, _) = gdm_hom_csp(a, b);
    csp.satisfiable()
}

/// Hom-equivalence.
pub fn gdm_equiv(a: &GenDb, b: &GenDb) -> bool {
    gdm_leq(a, b) && gdm_leq(b, a)
}

/// Membership: is the complete database `d2` in `[[d]]`?
pub fn in_gdm_semantics(d2: &GenDb, d: &GenDb) -> bool {
    d2.is_complete() && gdm_leq(d, d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::GenSchema;
    use ca_core::value::Value;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn rel_schema() -> GenSchema {
        GenSchema::from_parts(&[("R", 2)], &[])
    }

    fn xml_schema() -> GenSchema {
        GenSchema::from_parts(&[("r", 0), ("a", 1), ("b", 1)], &[("child", 2)])
    }

    #[test]
    fn relational_case_homs() {
        // {R(1,⊥1)} ⊑ {R(1,2)}.
        let mut d = GenDb::new(rel_schema());
        d.add_node("R", vec![c(1), n(1)]);
        let mut d2 = GenDb::new(rel_schema());
        d2.add_node("R", vec![c(1), c(2)]);
        let h = find_gdm_hom(&d, &d2).unwrap();
        assert!(is_gdm_hom(&d, &d2, &h));
        assert_eq!(h.null_map[&Null(1)], c(2));
        assert!(!gdm_leq(&d2, &d));
    }

    #[test]
    fn null_reuse_across_nodes() {
        // {R(⊥1,1), R(2,⊥1)}: ⊥1 must resolve consistently.
        let mut d = GenDb::new(rel_schema());
        d.add_node("R", vec![n(1), c(1)]);
        d.add_node("R", vec![c(2), n(1)]);
        let mut good = GenDb::new(rel_schema());
        good.add_node("R", vec![c(5), c(1)]);
        good.add_node("R", vec![c(2), c(5)]);
        assert!(gdm_leq(&d, &good));
        let mut bad = GenDb::new(rel_schema());
        bad.add_node("R", vec![c(5), c(1)]);
        bad.add_node("R", vec![c(2), c(6)]);
        assert!(!gdm_leq(&d, &bad));
    }

    #[test]
    fn structural_tuples_constrain() {
        // r → a(⊥) must map preserving the child edge.
        let mut d = GenDb::new(xml_schema());
        let root = d.add_node("r", vec![]);
        let a = d.add_node("a", vec![n(1)]);
        d.add_tuple("child", vec![root, a]);
        // Target 1: r → a(7): works.
        let mut t1 = GenDb::new(xml_schema());
        let r1 = t1.add_node("r", vec![]);
        let a1 = t1.add_node("a", vec![c(7)]);
        t1.add_tuple("child", vec![r1, a1]);
        assert!(gdm_leq(&d, &t1));
        // Target 2: r and a(7) disconnected: no hom.
        let mut t2 = GenDb::new(xml_schema());
        t2.add_node("r", vec![]);
        t2.add_node("a", vec![c(7)]);
        assert!(!gdm_leq(&d, &t2));
    }

    #[test]
    fn labels_must_be_preserved() {
        let mut d = GenDb::new(xml_schema());
        d.add_node("a", vec![n(1)]);
        let mut t = GenDb::new(xml_schema());
        t.add_node("b", vec![c(1)]);
        assert!(!gdm_leq(&d, &t));
    }

    #[test]
    fn equiv_via_null_renaming() {
        let mut a = GenDb::new(rel_schema());
        a.add_node("R", vec![n(1), n(2)]);
        let mut b = GenDb::new(rel_schema());
        b.add_node("R", vec![n(8), n(9)]);
        assert!(gdm_equiv(&a, &b));
    }

    #[test]
    fn membership_requires_completeness() {
        let mut d = GenDb::new(rel_schema());
        d.add_node("R", vec![n(1), n(2)]);
        let mut incomplete = GenDb::new(rel_schema());
        incomplete.add_node("R", vec![n(5), c(1)]);
        assert!(gdm_leq(&d, &incomplete));
        assert!(!in_gdm_semantics(&incomplete, &d));
        let mut complete = GenDb::new(rel_schema());
        complete.add_node("R", vec![c(0), c(1)]);
        assert!(in_gdm_semantics(&complete, &d));
    }
}

#[cfg(test)]
mod proposition9 {
    use super::*;
    use crate::generate::{random_tree_gendb, TreeGenParams};
    use ca_relational::generate::Rng;

    /// Proposition 9's proof mechanism, checked on random instances:
    /// `D ⊑ D′` iff there is a homomorphism into the *fresh grounding* of
    /// `D′` (the complete instance where every null of `D′` becomes a
    /// distinct fresh constant). The forward direction is composition;
    /// the backward direction is the proof's `f⁻¹ ∘ g` argument.
    #[test]
    fn leq_iff_hom_to_fresh_grounding() {
        let mut rng = Rng::new(314);
        for trial in 0..30 {
            let p = TreeGenParams {
                n_nodes: 4,
                n_labels: 2,
                max_data_arity: 1,
                n_constants: 2,
                null_pct: 50,
                codd: false,
            };
            let a = random_tree_gendb(&mut rng, p);
            let b = random_tree_gendb(&mut rng, p);
            // Fresh grounding of b: nulls to distinct constants far above
            // every constant in sight.
            let grounded = b.map_values(|v| match v {
                ca_core::value::Value::Null(n) => ca_core::value::Value::Const(10_000 + n.0 as i64),
                c => c,
            });
            assert_eq!(
                gdm_leq(&a, &b),
                gdm_leq(&a, &grounded),
                "Proposition 9 grounding argument failed on trial {trial}"
            );
        }
    }
}
