//! The consistency problem (Proposition 11).
//!
//! `Cons(ϕ)`: given a generalized database `D`, is there a completion
//! `D′ ∈ [[D]]` whose *structural part* satisfies the (fixed) sentence
//! `ϕ`? Proposition 11 classifies the complexity by the quantifier prefix
//! of `ϕ` in the Bernays–Schönfinkel class:
//!
//! * ∃\* — **PTIME** (in fact constant for fixed `ϕ`): consistency is just
//!   satisfiability of `ϕ`, because a model can be disjointly unioned onto
//!   any completion of `D` and existential sentences survive extensions
//!   ([`cons_existential`]);
//! * ∃\*∀\* — **NP**: a model of size `|D| + #∃-quantifiers` exists iff any
//!   does; we search homomorphic images of `D`'s structure extended by
//!   that many fresh nodes ([`cons_exists_forall`], exhaustive and
//!   exponential — it is an NP problem — intended for small instances);
//! * already ∃\*∀ is **NP-complete**: "is there a homomorphism into the
//!   fixed structure `M′`" is expressible (e.g. `M′ = K₃` gives
//!   3-colorability); [`cons_hom_to_fixed`] implements that family
//!   directly.

use ca_core::value::Value;
use ca_hom::structure::RelStructure;

use crate::database::GenDb;
use crate::logic::{eval_gfo, GFo};

/// Check that a formula speaks only about the structural part (σ
/// relations, labels, node equality — no attribute comparisons).
pub fn is_structural(phi: &GFo) -> bool {
    match phi {
        GFo::Rel(..) | GFo::Label(..) | GFo::NodeEq(..) => true,
        GFo::AttrEq { .. } => false,
        GFo::Not(f) | GFo::Exists(_, f) | GFo::Forall(_, f) => is_structural(f),
        GFo::And(fs) | GFo::Or(fs) => fs.iter().all(is_structural),
    }
}

/// Count the leading existential quantifiers (the `k` of the size bound).
pub fn count_existentials(phi: &GFo) -> usize {
    match phi {
        GFo::Exists(_, f) => 1 + count_existentials(f),
        _ => 0,
    }
}

/// Enumerate all colored structures (as data-free [`GenDb`]s over `d`'s
/// schema) with exactly `size` nodes, bounded enumeration of labelings
/// and relation tuples. Exponential: `size` must stay tiny.
fn for_each_structure<F: FnMut(&GenDb) -> bool>(
    template: &GenDb,
    size: usize,
    visit: &mut F,
) -> bool {
    let schema = &template.schema;
    let n_labels = schema.n_labels();
    assert!(size <= 4, "structure enumeration limited to 4 nodes");
    // Enumerate labelings.
    let mut labeling = vec![0usize; size];
    loop {
        // For this labeling, enumerate relation tuple sets.
        let mut all_tuples: Vec<(String, Vec<u32>)> = Vec::new();
        for rel in schema.relation_symbols() {
            let ar = schema.relation_arity(rel);
            let mut tuple = vec![0u32; ar];
            loop {
                all_tuples.push((schema.relation_name(rel).to_owned(), tuple.clone()));
                let mut pos = 0;
                loop {
                    if pos == ar {
                        break;
                    }
                    tuple[pos] += 1;
                    if (tuple[pos] as usize) < size {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if pos == ar {
                    break;
                }
            }
        }
        assert!(
            all_tuples.len() <= 20,
            "tuple-set enumeration limited to 2^20 subsets"
        );
        for mask in 0u64..(1 << all_tuples.len()) {
            let mut db = GenDb::new(schema.clone());
            for &l in &labeling {
                let sym = ca_core::symbol::Symbol(l as u32);
                let arity = schema.label_arity(sym);
                db.add_node(schema.label_name(sym), vec![Value::Const(0); arity]);
            }
            for (i, (rel, t)) in all_tuples.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    db.add_tuple(rel, t.clone());
                }
            }
            if !visit(&db) {
                return false;
            }
        }
        // Next labeling.
        let mut pos = 0;
        loop {
            if pos == size {
                return true;
            }
            labeling[pos] += 1;
            if labeling[pos] < n_labels {
                break;
            }
            labeling[pos] = 0;
            pos += 1;
        }
    }
}

/// `Cons(ϕ)` for existential structural `ϕ`: equals satisfiability of
/// `ϕ`, checked by small-model enumeration (models of size ≤ #∃-vars
/// suffice for ∃\* sentences).
///
/// # Panics
///
/// Panics if `ϕ` is not structural or not existential.
pub fn cons_existential(d: &GenDb, phi: &GFo) -> bool {
    assert!(is_structural(phi), "consistency conditions are structural");
    assert!(phi.is_existential(), "∃* fragment required");
    let k = count_existentials(phi).max(1);
    let mut sat = false;
    for size in 1..=k {
        for_each_structure(d, size, &mut |m: &GenDb| {
            if eval_gfo(phi, m) {
                sat = true;
                false
            } else {
                true
            }
        });
        if sat {
            break;
        }
    }
    sat
}

/// `Cons(ϕ)` for ∃\*∀\* structural `ϕ`, decided exactly by bounded model
/// search: enumerate candidate complete structures `M′` of size up to
/// `|D| + #∃(ϕ)`, require `M′ ⊨ ϕ` together with a label-preserving
/// structural homomorphism `M → M′` whose induced node merges are
/// *data-consistent* (mergeable nodes must have unifiable data tuples —
/// checked by union-find over the values). Exponential; small instances
/// only (this is the NP algorithm of Proposition 11, run exhaustively).
pub fn cons_exists_forall(d: &GenDb, phi: &GFo) -> bool {
    assert!(is_structural(phi), "consistency conditions are structural");
    let bound = d.n_nodes() + count_existentials(phi);
    let mut found = false;
    for size in 1..=bound.min(4) {
        for_each_structure(d, size, &mut |m: &GenDb| {
            if eval_gfo(phi, m) && hom_with_data_consistency(d, m) {
                found = true;
                false
            } else {
                true
            }
        });
        if found {
            return true;
        }
    }
    found
}

/// Is there a label-preserving structural homomorphism `d → m` whose node
/// merges admit a consistent grounding of the data (no two distinct
/// constants forced equal)?
fn hom_with_data_consistency(d: &GenDb, m: &GenDb) -> bool {
    let src = d.colored_structure();
    let dst = m.colored_structure();
    let csp = src.hom_csp(&dst);
    // Enumerate structural homomorphisms, checking data unification for
    // each: union ρ(ν)[i] with ρ(ν′)[i] whenever h merges ν and ν′, and
    // reject if two distinct constants land in one class. (Bounded
    // enumeration: small instances only.)
    let homs = csp.solve_all(10_000);
    homs.solutions.iter().any(|h| {
        let mut uf = UnionFind::new();
        for v in 0..d.n_nodes() {
            for w in (v + 1)..d.n_nodes() {
                if h[v] == h[w] {
                    for (a, b) in d.data[v].iter().zip(d.data[w].iter()) {
                        uf.union(*a, *b);
                    }
                }
            }
        }
        uf.consistent()
    })
}

/// A tiny union-find over [`Value`]s tracking constant clashes.
struct UnionFind {
    parent: std::collections::BTreeMap<Value, Value>,
    clash: bool,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: std::collections::BTreeMap::new(),
            clash: false,
        }
    }

    fn find(&mut self, v: Value) -> Value {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: Value, b: Value) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        match (ra, rb) {
            (Value::Const(x), Value::Const(y)) if x != y => {
                self.clash = true;
            }
            // Point nulls at constants so constants stay roots.
            (Value::Const(_), _) => {
                self.parent.insert(rb, ra);
            }
            _ => {
                self.parent.insert(ra, rb);
            }
        }
    }

    fn consistent(&self) -> bool {
        !self.clash
    }
}

/// The NP-hard ∃\*∀ family from the Proposition 11 proof: consistency
/// with "the structure maps homomorphically into the fixed structure
/// `target`". With `target = K₃` this is 3-colorability. All labels must
/// be data-free (`ar = 0`), as in the proof.
pub fn cons_hom_to_fixed(d: &GenDb, target: &RelStructure) -> bool {
    assert!(
        d.schema
            .label_symbols()
            .all(|s| d.schema.label_arity(s) == 0),
        "the hardness family uses data-free labels"
    );
    d.colored_structure().hom_to(target).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::GenSchema;

    fn graph_schema() -> GenSchema {
        GenSchema::from_parts(&[("v", 0)], &[("E", 2)])
    }

    fn graph_db(n: usize, edges: &[(u32, u32)]) -> GenDb {
        let mut d = GenDb::new(graph_schema());
        for _ in 0..n {
            d.add_node("v", vec![]);
        }
        for &(u, v) in edges {
            d.add_tuple("E", vec![u, v]);
        }
        d
    }

    #[test]
    fn existential_consistency_is_satisfiability() {
        let d = graph_db(2, &[(0, 1)]);
        // ∃x E(x,x): satisfiable (a loop exists somewhere) ⇒ consistent.
        let loop_exists = GFo::exists(0, GFo::Rel("E".into(), vec![0, 0]));
        assert!(cons_existential(&d, &loop_exists));
        // ∃x (E(x,x) ∧ ¬E(x,x)): unsatisfiable.
        let contradiction = GFo::exists(
            0,
            GFo::And(vec![
                GFo::Rel("E".into(), vec![0, 0]),
                GFo::Rel("E".into(), vec![0, 0]).not(),
            ]),
        );
        assert!(!cons_existential(&d, &contradiction));
    }

    #[test]
    fn exists_forall_consistency() {
        // ϕ = ∀x∀y ¬E(x,y) ("no edges"). D with an edge: inconsistent —
        // every completion contains the edge's image.
        let no_edges = GFo::forall(0, GFo::forall(1, GFo::Rel("E".into(), vec![0, 1]).not()));
        let with_edge = graph_db(2, &[(0, 1)]);
        assert!(!cons_exists_forall(&with_edge, &no_edges));
        let without_edge = graph_db(2, &[]);
        assert!(cons_exists_forall(&without_edge, &no_edges));
    }

    #[test]
    fn exists_forall_with_merging() {
        // ϕ = ∀x∀y (x = y) ("one node"). D with two v-nodes and no data:
        // they can merge ⇒ consistent.
        let singleton = GFo::forall(0, GFo::forall(1, GFo::NodeEq(0, 1)));
        let two = graph_db(2, &[]);
        assert!(cons_exists_forall(&two, &singleton));
        // With distinct constant data merging is impossible.
        let schema = GenSchema::from_parts(&[("v", 1)], &[("E", 2)]);
        let mut d = GenDb::new(schema);
        d.add_node("v", vec![Value::Const(1)]);
        d.add_node("v", vec![Value::Const(2)]);
        assert!(!cons_exists_forall(&d, &singleton));
    }

    #[test]
    fn hardness_family_is_three_colorability() {
        let k3 = {
            let mut s = RelStructure::new(3);
            // Labels: P_v = symbol 0 (unary); edges at symbol offset 1.
            for v in 0..3u32 {
                s.add_tuple(0, vec![v]);
            }
            for u in 0..3u32 {
                for v in 0..3u32 {
                    if u != v {
                        s.add_tuple(1, vec![u, v]);
                    }
                }
            }
            s
        };
        // Triangle is 3-colorable.
        let tri = graph_db(3, &[(0, 1), (1, 2), (0, 2), (1, 0), (2, 1), (2, 0)]);
        assert!(cons_hom_to_fixed(&tri, &k3));
        // K4 (symmetric) is not.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let k4 = graph_db(4, &edges);
        assert!(!cons_hom_to_fixed(&k4, &k3));
    }

    #[test]
    fn structural_check() {
        assert!(is_structural(&GFo::Rel("E".into(), vec![0, 1])));
        assert!(!is_structural(&GFo::AttrEq {
            i: 0,
            j: 0,
            x: 0,
            y: 1
        }));
    }
}
