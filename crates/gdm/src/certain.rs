//! Query answering: Theorem 7.
//!
//! * **(a)** For existential-positive sentences of FO(S, ∼), certain
//!   answers are computed by naïve evaluation — just evaluate on the
//!   incomplete database with nulls as values ([`certain_expos`]).
//! * **(b)** For existential sentences, `certain(φ, D) = false` iff some
//!   *homomorphic image* of `D` (nulls grounded to constants, nodes
//!   possibly merged) satisfies `¬φ` — a coNP procedure implemented by
//!   exhaustive image enumeration ([`certain_existential`]). The matching
//!   coNP-hardness construction (the sentence `ϕ₀` whose certain answer
//!   over an encoded graph `G` is "G is not 3-colorable") is provided as
//!   [`phi0`] / [`encode_graph_for_phi0`].
//! * **(c)** For full FO(S, ∼) the problem is undecidable (by
//!   Trakhtenbrot, as in the paper) — there is nothing to implement, only
//!   to avoid: the public API restricts to the decidable fragments.

use std::collections::BTreeSet;

use ca_core::value::{Null, Value};
use ca_query::engine::sweep;

use crate::database::GenDb;
use crate::logic::{eval_gfo, GFo};

/// Theorem 7(a): certain answers for existential-positive sentences by
/// naïve evaluation.
///
/// # Panics
///
/// Panics if `phi` is not existential-positive.
pub fn certain_expos(phi: &GFo, db: &GenDb) -> bool {
    assert!(
        phi.is_existential_positive(),
        "certain_expos requires an existential-positive sentence"
    );
    eval_gfo(phi, db)
}

/// The adequate grounding pool: constants of `D` plus one fresh constant
/// per null (FO(S, ∼) has no constant symbols, so no query constants).
fn grounding_pool(db: &GenDb) -> Vec<i64> {
    let mut pool: BTreeSet<i64> = db.constants();
    let start = pool.iter().max().map_or(0, |m| m + 1);
    for offset in 0..db.nulls().len() as i64 {
        pool.insert(start + offset);
    }
    pool.into_iter().collect()
}

/// The grid of null groundings of `db` into its adequate pool,
/// addressable by linear index (the same base-`|pool|` addressing as
/// `ca_query`'s completion sweeps), so workers can split it into
/// contiguous chunks.
struct GroundingSpace<'a> {
    db: &'a GenDb,
    nulls: Vec<Null>,
    pool: Vec<i64>,
}

impl<'a> GroundingSpace<'a> {
    fn new(db: &'a GenDb) -> Self {
        GroundingSpace {
            nulls: db.nulls().into_iter().collect(),
            pool: grounding_pool(db),
            db,
        }
    }

    /// `|pool|^#nulls` (1 when the database has no nulls).
    fn len(&self) -> u128 {
        (self.pool.len().max(usize::from(self.nulls.is_empty())) as u128)
            .checked_pow(self.nulls.len() as u32)
            // ca-lint: allow(L002, reason = "deliberate documented panic: an image sweep past u128 groundings can never terminate, so failing fast beats a wrong answer")
            .expect("grounding space exceeds u128")
    }

    /// Ground every null according to the base-`|pool|` digits of `i`.
    fn grounding(&self, i: u128) -> GenDb {
        let base = self.pool.len().max(1) as u128;
        self.db.map_values(|v| match v {
            Value::Null(n) => {
                // ca-lint: allow(L002, reason = "invariant: nulls is the sorted contents of db.nulls(), so every null the closure sees is present")
                let pos = self.nulls.binary_search(&n).expect("null of db");
                let digit = (i / base.pow(pos as u32)) % base;
                Value::Const(self.pool[digit as usize])
            }
            c => c,
        })
    }
}

/// Enumerate the homomorphic images of `db` with all nulls grounded:
/// every grounding of the nulls into the adequate pool, combined with
/// every node partition compatible with labels and grounded data. Calls
/// `visit` on each image; stops early when `visit` returns `false`.
///
/// Exponential (`pool^#nulls · Bell(#nodes)`); intended for the small
/// instances where the coNP procedure is run exactly.
pub fn for_each_grounded_image<F: FnMut(&GenDb) -> bool>(db: &GenDb, mut visit: F) {
    let space = GroundingSpace::new(db);
    for i in 0..space.len() {
        if !for_each_quotient(&space.grounding(i), &mut visit) {
            return;
        }
    }
}

/// Enumerate all quotients of a complete database by node partitions whose
/// classes share label and data. Returns `false` if `visit` stopped.
fn for_each_quotient<F: FnMut(&GenDb) -> bool>(db: &GenDb, visit: &mut F) -> bool {
    let n = db.n_nodes();
    // Restricted growth strings: assign[i] ∈ 0..=max(assign[..i])+1.
    let mut assign = vec![0u32; n];
    fn rec<F: FnMut(&GenDb) -> bool>(
        i: usize,
        n_classes: u32,
        assign: &mut Vec<u32>,
        db: &GenDb,
        visit: &mut F,
    ) -> bool {
        let n = db.n_nodes();
        if i == n {
            // Build the quotient.
            let mut q = GenDb::new(db.schema.clone());
            for cls in 0..n_classes {
                // ca-lint: allow(L002, reason = "invariant: restricted-growth strings never skip a class id, so class cls has a member")
                let rep = (0..n).find(|&x| assign[x] == cls).expect("class nonempty");
                q.add_node(db.schema.label_name(db.labels[rep]), db.data[rep].clone());
            }
            for (rel, t) in &db.tuples {
                q.add_tuple(
                    db.schema.relation_name(*rel),
                    t.iter().map(|&x| assign[x as usize]).collect(),
                );
            }
            return visit(&q);
        }
        for cls in 0..=n_classes {
            // Compatibility: same label and same (grounded) data as the
            // existing members of the class.
            let compatible = (0..i).all(|x| {
                assign[x] != cls || (db.labels[x] == db.labels[i] && db.data[x] == db.data[i])
            });
            if !compatible {
                continue;
            }
            assign[i] = cls;
            let next_classes = n_classes.max(cls + 1);
            if !rec(i + 1, next_classes, assign, db, visit) {
                return false;
            }
        }
        true
    }
    rec(0, 0, &mut assign, db, visit)
}

/// Theorem 7(b): certain answers for existential sentences, decided
/// exactly by image enumeration. `certain(φ, D) = true` iff *every*
/// grounded homomorphic image of `D` satisfies `φ`.
///
/// The grounding grid is swept in parallel through `ca_query`'s sweep
/// driver (`CA_EVAL_THREADS` workers, early exit on the first
/// counterexample image); each worker enumerates the node quotients of
/// its groundings sequentially. The result is independent of the thread
/// count.
///
/// # Panics
///
/// Panics if `phi` is not existential.
pub fn certain_existential(phi: &GFo, db: &GenDb) -> bool {
    assert!(
        phi.is_existential(),
        "certain_existential requires an existential sentence"
    );
    let space = GroundingSpace::new(db);
    sweep::parallel_all(space.len(), sweep::eval_threads(), |i| {
        let grounded = space.grounding(i);
        let mut holds_everywhere = true;
        for_each_quotient(&grounded, &mut |image: &GenDb| {
            if eval_gfo(phi, image) {
                true
            } else {
                holds_everywhere = false;
                false
            }
        });
        holds_everywhere
    })
}

/// The generalized schema of the coNP-hardness construction: one binary
/// structural relation `E`, labels `a` (one attribute — a vertex's color
/// slot) and `b` (three attributes — the palette).
pub fn phi0_schema() -> crate::schema::GenSchema {
    crate::schema::GenSchema::from_parts(&[("a", 1), ("b", 3)], &[("E", 2)])
}

/// Encode an undirected graph (given as vertex count + edges) as the
/// generalized database `D_G` of Theorem 7(b): one `a`-node per vertex
/// with a fresh null, edges in both directions, plus an isolated `b`-node
/// with palette `(1, 2, 3)`.
pub fn encode_graph_for_phi0(n_vertices: usize, edges: &[(u32, u32)]) -> GenDb {
    let mut d = GenDb::new(phi0_schema());
    for v in 0..n_vertices as u32 {
        d.add_node("a", vec![Value::null(v)]);
    }
    let b = d.add_node("b", vec![Value::Const(1), Value::Const(2), Value::Const(3)]);
    let _ = b;
    for &(u, v) in edges {
        d.add_tuple("E", vec![u, v]);
        d.add_tuple("E", vec![v, u]);
    }
    d
}

/// The sentence `ϕ₀ = ψ → ∃x∃y (P_a(x) ∧ P_a(y) ∧ E(x,y) ∧ =₁₁(x,y))`
/// where `ψ` says every `a`-attribute appears among the attributes of
/// every `b`-node. `certain(ϕ₀, D_G) = true` iff `G` is **not**
/// 3-colorable. Note `ϕ₀` is existential: `¬ψ` is an ∃∃ sentence.
pub fn phi0() -> GFo {
    let psi_body = GFo::And(vec![GFo::Label("a".into(), 0), GFo::Label("b".into(), 1)]).implies(
        GFo::Or(vec![
            GFo::AttrEq {
                i: 0,
                j: 0,
                x: 0,
                y: 1,
            },
            GFo::AttrEq {
                i: 0,
                j: 1,
                x: 0,
                y: 1,
            },
            GFo::AttrEq {
                i: 0,
                j: 2,
                x: 0,
                y: 1,
            },
        ]),
    );
    // ¬ψ = ∃x∃y ¬body; ϕ0 = ¬ψ ∨ χ.
    let not_psi = GFo::exists(0, GFo::exists(1, psi_body.not()));
    let chi = GFo::exists(
        0,
        GFo::exists(
            1,
            GFo::And(vec![
                GFo::Label("a".into(), 0),
                GFo::Label("a".into(), 1),
                GFo::Rel("E".into(), vec![0, 1]),
                GFo::AttrEq {
                    i: 0,
                    j: 0,
                    x: 0,
                    y: 1,
                },
            ]),
        ),
    );
    GFo::Or(vec![not_psi, chi])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::GenSchema;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn rel_schema() -> GenSchema {
        GenSchema::from_parts(&[("R", 2)], &[])
    }

    #[test]
    fn expos_naive_evaluation() {
        // ∃x (P_R(x) ∧ =01(x,x)): some fact with equal attributes.
        let phi = GFo::exists(
            0,
            GFo::And(vec![
                GFo::Label("R".into(), 0),
                GFo::AttrEq {
                    i: 0,
                    j: 1,
                    x: 0,
                    y: 0,
                },
            ]),
        );
        let mut yes = GenDb::new(rel_schema());
        yes.add_node("R", vec![n(1), n(1)]);
        assert!(certain_expos(&phi, &yes));
        let mut no = GenDb::new(rel_schema());
        no.add_node("R", vec![n(1), n(2)]);
        assert!(!certain_expos(&phi, &no));
    }

    /// Cross-check Theorem 7(a) against the exact image-based procedure on
    /// existential-positive sentences (which are in particular
    /// existential).
    #[test]
    fn expos_agrees_with_image_enumeration() {
        let phis = [
            GFo::exists(
                0,
                GFo::And(vec![
                    GFo::Label("R".into(), 0),
                    GFo::AttrEq {
                        i: 0,
                        j: 1,
                        x: 0,
                        y: 0,
                    },
                ]),
            ),
            GFo::exists(
                0,
                GFo::exists(
                    1,
                    GFo::AttrEq {
                        i: 0,
                        j: 0,
                        x: 0,
                        y: 1,
                    },
                ),
            ),
        ];
        let mut dbs = Vec::new();
        let mut d1 = GenDb::new(rel_schema());
        d1.add_node("R", vec![n(1), n(1)]);
        dbs.push(d1);
        let mut d2 = GenDb::new(rel_schema());
        d2.add_node("R", vec![n(1), n(2)]);
        dbs.push(d2);
        let mut d3 = GenDb::new(rel_schema());
        d3.add_node("R", vec![c(1), n(1)]);
        d3.add_node("R", vec![n(1), c(1)]);
        dbs.push(d3);
        for phi in &phis {
            for db in &dbs {
                assert_eq!(
                    certain_expos(phi, db),
                    certain_existential(phi, db),
                    "7(a) vs 7(b) disagree on {phi:?} over {db:?}"
                );
            }
        }
    }

    /// Negation changes the picture: node merging matters. `∃x∃y x≠y` is
    /// naïvely true on two equal-label nodes but certainly false (they may
    /// denote the same completed node).
    #[test]
    fn merging_defeats_naive_evaluation_for_existential() {
        let phi = GFo::exists(0, GFo::exists(1, GFo::NodeEq(0, 1).not()));
        let mut d = GenDb::new(rel_schema());
        d.add_node("R", vec![n(1), n(2)]);
        d.add_node("R", vec![n(3), n(4)]);
        assert!(eval_gfo(&phi, &d)); // naïve evaluation says true
        assert!(!certain_existential(&phi, &d)); // but it is not certain
                                                 // With distinct constants pinning the nodes apart, it is certain.
        let mut d2 = GenDb::new(rel_schema());
        d2.add_node("R", vec![c(1), c(1)]);
        d2.add_node("R", vec![c(2), c(2)]);
        assert!(certain_existential(&phi, &d2));
    }

    /// Theorem 7(b) hardness construction, validated exhaustively on small
    /// graphs: `certain(ϕ₀, D_G) = true` iff `G` is not 3-colorable.
    #[test]
    fn phi0_is_non_three_colorability() {
        let phi = phi0();
        assert!(phi.is_existential());
        // K3: 3-colorable ⇒ certain answer false.
        let k3 = encode_graph_for_phi0(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(!certain_existential(&phi, &k3));
        // K4: not 3-colorable ⇒ certain answer true.
        let k4 = encode_graph_for_phi0(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(certain_existential(&phi, &k4));
        // A 4-cycle: 2-colorable ⇒ false.
        let c4 = encode_graph_for_phi0(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!certain_existential(&phi, &c4));
    }

    #[test]
    fn image_enumeration_counts() {
        // One node, one null: pool = {fresh}, partitions = 1 ⇒ 1 image.
        let mut d = GenDb::new(rel_schema());
        d.add_node("R", vec![n(1), c(5)]);
        let mut count = 0;
        for_each_grounded_image(&d, |_| {
            count += 1;
            true
        });
        // Pool = {5, fresh}: two groundings × 1 partition.
        assert_eq!(count, 2);
    }

    #[test]
    fn quotients_merge_only_identical_nodes() {
        let mut d = GenDb::new(rel_schema());
        d.add_node("R", vec![c(1), c(1)]);
        d.add_node("R", vec![c(1), c(1)]);
        d.add_node("R", vec![c(2), c(2)]);
        let mut sizes = Vec::new();
        for_each_quotient(&d, &mut |q: &GenDb| {
            sizes.push(q.n_nodes());
            true
        });
        sizes.sort_unstable();
        // Nodes 0,1 may merge; node 2 never merges with them.
        assert_eq!(sizes, vec![2, 3]);
    }
}
