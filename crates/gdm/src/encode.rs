//! Encoding relational databases and XML trees as generalized databases.
//!
//! Exactly the paper's Section 5.1 codings:
//!
//! * relational: `σ = ∅`, one node per fact labeled by its relation name,
//!   carrying the fact's tuple as data;
//! * XML: `σ = {child}`, one node per tree node with its label and data.
//!
//! Both encodings are faithful for homomorphisms (and hence for the
//! information ordering), which is what lets Section 5 derive the
//! relational and XML results as corollaries.

use ca_core::value::Value;
use ca_hom::structure::RelStructure;
use ca_relational::database::NaiveDatabase;
use ca_xml::tree::XmlTree;

use crate::database::GenDb;
use crate::schema::GenSchema;

/// Encode a naïve relational database (`σ = ∅`).
pub fn encode_relational(db: &NaiveDatabase) -> GenDb {
    let mut schema = GenSchema::new();
    for sym in db.schema.symbols() {
        schema.add_label(db.schema.name(sym), db.schema.arity(sym));
    }
    let mut out = GenDb::new(schema);
    for fact in db.facts() {
        out.add_node(db.schema.name(fact.rel), fact.args.clone());
    }
    out
}

/// Decode a purely relational generalized database (`σ = ∅`) back into a
/// naïve relational database: one fact per node, the node's label read
/// as the relation name. The inverse of [`encode_relational`] up to
/// duplicate nodes (a [`NaiveDatabase`] is a fact *set*, so nodes with
/// equal label and data collapse into one fact). Returns `None` when the
/// database carries structural tuples — those have no relational
/// reading. This is the bridge that lets the data-exchange chase and
/// certain-answer paths run on the compiled join engine of `ca_query`.
pub fn relational_view(d: &GenDb) -> Option<NaiveDatabase> {
    if !d.tuples.is_empty() {
        return None;
    }
    let mut schema = ca_relational::schema::Schema::new();
    for sym in d.schema.label_symbols() {
        schema.add_relation(d.schema.label_name(sym), d.schema.label_arity(sym));
    }
    let mut out = NaiveDatabase::new(schema);
    for (label, data) in d.labels.iter().zip(&d.data) {
        let rel = out.schema.relation(d.schema.label_name(*label))?;
        out.add_fact(rel, data.clone());
    }
    Some(out)
}

/// The name of the child relation used by XML encodings.
pub const CHILD: &str = "child";

/// Encode an XML tree (`σ = {child}`).
pub fn encode_xml(t: &XmlTree) -> GenDb {
    let mut schema = GenSchema::new();
    for (_, name, arity) in t.alphabet.labels() {
        schema.add_label(name, arity);
    }
    schema.add_relation(CHILD, 2);
    let mut out = GenDb::new(schema);
    for id in t.node_ids() {
        let node = t.node(id);
        let added = out.add_node(t.alphabet.name(node.label), node.data.clone());
        debug_assert_eq!(added as usize, id);
    }
    for (p, c) in t.edges() {
        out.add_tuple(CHILD, vec![p as u32, c as u32]);
    }
    out
}

/// Encode a generalized database as a single relational structure whose
/// self-homomorphisms are exactly the [`GdmHom`](crate::hom::GdmHom)
/// endomorphisms of `d`. This is what lets the incremental retraction
/// engine (`ca_hom::retract`) serve generalized-database cores with the
/// same one-compile shrink loop it uses for digraphs.
///
/// Elements: the `n` nodes (ids `0..n`), then one element per distinct
/// data value, in sorted `Value` order (ids `n..n + universe.len()`;
/// the returned vector maps offsets back to values). Relations:
///
/// * one unary per label `a` (id = the label symbol) — forces node
///   elements onto node elements with the same label;
/// * the structural σ relations (id = `n_labels + rel`);
/// * one binary `Dᵢ` per data position `i` (id = `n_labels + n_rels +
///   i`) holding `(ν, ρ(ν)[i])` for every node — since each node has
///   exactly one `Dᵢ` tuple, preserving them forces `ρ(h₁(ν)) =
///   h₂(ρ(ν))` position-wise, with `h₂` read off the value elements;
/// * one singleton unary per *constant* value element (id past the
///   `Dᵢ` block, offset by the value's universe index) — pins `h₂` to
///   the identity on constants. Null elements stay free, so `h₂` may
///   send a null to any value of the universe, exactly the
///   [`gdm_hom_csp`](crate::hom::gdm_hom_csp) semantics.
///
/// Faithfulness in both directions is checked on random instances by
/// the `self_hom_structure_is_faithful` test below.
pub fn self_hom_structure(d: &GenDb) -> (RelStructure, Vec<Value>) {
    let n = d.n_nodes();
    let mut universe: Vec<Value> = d.data.iter().flat_map(|t| t.iter().copied()).collect();
    universe.sort_unstable();
    universe.dedup();
    let n_labels = d.schema.n_labels() as u32;
    let n_rels = d.schema.n_relations() as u32;
    let max_arity = d.data.iter().map(Vec::len).max().unwrap_or(0) as u32;

    let mut s = RelStructure::new(n + universe.len());
    for (node, label) in d.labels.iter().enumerate() {
        s.add_tuple(label.0, vec![node as u32]);
    }
    for (rel, nodes) in &d.tuples {
        s.add_tuple(n_labels + rel.0, nodes.clone());
    }
    for (node, data) in d.data.iter().enumerate() {
        for (i, v) in data.iter().enumerate() {
            // The universe contains every data value by construction, so
            // the search cannot fail; skip defensively rather than panic.
            let Ok(vi) = universe.binary_search(v) else {
                continue;
            };
            s.add_tuple(
                n_labels + n_rels + i as u32,
                vec![node as u32, (n + vi) as u32],
            );
        }
    }
    for (vi, v) in universe.iter().enumerate() {
        if v.is_const() {
            s.add_tuple(
                n_labels + n_rels + max_arity + vi as u32,
                vec![(n + vi) as u32],
            );
        }
    }
    (s, universe)
}

/// Encode a *purely relational* generalized database (`σ = ∅`, the
/// Section 5.1 relational coding) as a structure over its **values
/// only**: self-homomorphisms are exactly the valuations `h₂` of GdmHom
/// endomorphisms, with the node map read off fact tuples.
///
/// Elements: one per distinct data value in sorted `Value` order (the
/// returned vector maps element ids back to values). Relations:
///
/// * one per label `a` (id = the label symbol) holding `ρ(ν)` — as
///   value elements — for every `a`-labeled node `ν`: a valuation is a
///   self-homomorphism iff it maps every fact tuple onto an existing
///   fact tuple of the same label, which is precisely the GdmHom
///   condition when `σ = ∅` (the node map `h₁` is then "any node
///   carrying the image tuple");
/// * one singleton unary per constant element (id = `n_labels` +
///   universe index) — pins `h₂` to the identity on constants.
///
/// Why a second encoding next to [`self_hom_structure`]: dropping the
/// node elements halves the CSP **and** un-welds nodes from their data,
/// so the retraction engine's PTIME fold prepass fires on redundant
/// facts (a pendant null `⊥` in `T(⊥, y)` folds onto any `x` with
/// `T(x, y)` present — impossible in the node encoding, where the
/// node–value pair would have to move in one step). The node encoding
/// remains the faithful general coding for `σ ≠ ∅` (XML trees).
///
/// # Panics
///
/// Panics if `d` has structural tuples — callers dispatch on
/// `d.tuples.is_empty()`.
pub fn value_self_hom_structure(d: &GenDb) -> (RelStructure, Vec<Value>) {
    assert!(
        d.tuples.is_empty(),
        "value encoding requires σ = ∅ (use self_hom_structure)"
    );
    let mut universe: Vec<Value> = d.data.iter().flat_map(|t| t.iter().copied()).collect();
    universe.sort_unstable();
    universe.dedup();
    let n_labels = d.schema.n_labels() as u32;

    let mut s = RelStructure::new(universe.len());
    for (node, label) in d.labels.iter().enumerate() {
        if d.data[node].is_empty() {
            // Nullary facts constrain no values; their nodes are kept by
            // the extraction in `core_of_gendb_with` unconditionally.
            continue;
        }
        let tuple: Vec<u32> = d.data[node]
            .iter()
            .filter_map(|v| universe.binary_search(v).ok().map(|i| i as u32))
            .collect();
        if tuple.len() == d.data[node].len() {
            s.add_tuple(label.0, tuple);
        }
    }
    for (vi, v) in universe.iter().enumerate() {
        if v.is_const() {
            s.add_tuple(n_labels + vi as u32, vec![vi as u32]);
        }
    }
    (s, universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::gdm_leq;
    use ca_core::preorder::Preorder;
    use ca_relational::database::build::{c, n, table};
    use ca_relational::generate::{random_naive_db, DbParams, Rng};
    use ca_relational::ordering::InfoOrder;
    use ca_xml::hom::tree_leq;
    use ca_xml::tree::example_tree;

    #[test]
    fn paper_relational_coding() {
        // {R(1,⊥1), S(⊥1,⊥2,2)}: two nodes ν1, ν2 with labels R, S.
        let mut schema = ca_relational::schema::Schema::new();
        schema.add_relation("R", 2);
        schema.add_relation("S", 3);
        let mut db = ca_relational::database::NaiveDatabase::new(schema);
        db.add("R", vec![c(1), n(1)]);
        db.add("S", vec![n(1), n(2), c(2)]);
        let g = encode_relational(&db);
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.schema.n_relations(), 0);
        assert_eq!(g.data[0], vec![c(1), n(1)]);
        assert_eq!(g.data[1], vec![n(1), n(2), c(2)]);
    }

    #[test]
    fn relational_view_inverts_encoding() {
        let mut schema = ca_relational::schema::Schema::new();
        schema.add_relation("R", 2);
        schema.add_relation("S", 3);
        let mut db = ca_relational::database::NaiveDatabase::new(schema);
        db.add("R", vec![c(1), n(1)]);
        db.add("S", vec![n(1), n(2), c(2)]);
        let g = encode_relational(&db);
        assert_eq!(relational_view(&g), Some(db));
        // Structural tuples have no relational reading.
        let xml = encode_xml(&example_tree());
        assert_eq!(relational_view(&xml), None);
    }

    /// Faithfulness of the relational encoding: `D ⊑ D′ ⇔ enc(D) ⊑
    /// enc(D′)` on random instances.
    #[test]
    fn relational_encoding_is_faithful() {
        let mut rng = Rng::new(616);
        for trial in 0..40 {
            let p = DbParams {
                n_facts: 3,
                arity: 2,
                n_constants: 2,
                n_nulls: 2,
                null_pct: 50,
            };
            let a = random_naive_db(&mut rng, p);
            let b = random_naive_db(&mut rng, p);
            assert_eq!(
                InfoOrder.leq(&a, &b),
                gdm_leq(&encode_relational(&a), &encode_relational(&b)),
                "trial {trial}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn xml_encoding_preserves_shape() {
        let t = example_tree();
        let g = encode_xml(&t);
        assert_eq!(g.n_nodes(), t.len());
        assert_eq!(g.tuples.len(), t.len() - 1); // child edges
        assert_eq!(g.nulls(), t.nulls());
    }

    /// Faithfulness of the XML encoding on hand-picked pairs.
    #[test]
    fn xml_encoding_is_faithful() {
        use ca_core::value::Value;
        let alpha = ca_xml::tree::example_alphabet();
        let cv = |x: i64| Value::Const(x);
        let nv = |id: u32| Value::null(id);
        let mut pat = XmlTree::new(alpha.clone(), "r", vec![]);
        pat.add_child(0, "a", vec![cv(1), nv(1)]);
        let mut doc = XmlTree::new(alpha.clone(), "r", vec![]);
        let a = doc.add_child(0, "a", vec![cv(1), cv(5)]);
        doc.add_child(a, "b", vec![cv(2)]);
        let mut other = XmlTree::new(alpha, "r", vec![]);
        other.add_child(0, "a", vec![cv(2), cv(5)]);
        let cases = [(&pat, &doc), (&doc, &pat), (&pat, &other), (&doc, &doc)];
        for (x, y) in cases {
            assert_eq!(
                tree_leq(x, y),
                gdm_leq(&encode_xml(x), &encode_xml(y)),
                "faithfulness failed for {x} vs {y}"
            );
        }
    }

    #[test]
    fn encodings_detect_codd() {
        let codd = table("R", 2, &[&[c(1), n(1)], &[n(2), c(2)]]);
        assert!(encode_relational(&codd).is_codd());
        let naive = table("R", 2, &[&[c(1), n(1)], &[n(1), c(2)]]);
        assert!(!encode_relational(&naive).is_codd());
    }

    /// Faithfulness of the self-homomorphism encoding: for every node
    /// `v`, the encoded structure has a self-homomorphism whose node
    /// elements avoid `v` **iff** the generalized database has a GdmHom
    /// endomorphism whose node map avoids `v` — the property the
    /// retraction engine relies on.
    #[test]
    fn self_hom_structure_is_faithful() {
        use crate::generate::{random_tree_gendb, TreeGenParams};
        use crate::hom::gdm_hom_csp;
        let mut rng = Rng::new(2718);
        for trial in 0..25 {
            let p = TreeGenParams {
                n_nodes: 5,
                n_labels: 2,
                max_data_arity: 2,
                n_constants: 2,
                null_pct: 50,
                codd: false,
            };
            let d = random_tree_gendb(&mut rng, p);
            let nn = d.n_nodes();
            let (s, universe) = self_hom_structure(&d);
            assert_eq!(s.n_elements, nn + universe.len());
            let (gdm_csp, _, _) = gdm_hom_csp(&d, &d);
            let struct_csp = s.hom_csp(&s);
            for v in 0..nn as u32 {
                let mut a = gdm_csp.clone();
                for dom in a.domains.iter_mut().take(nn) {
                    dom.retain(|&x| x != v);
                }
                let mut b = struct_csp.clone();
                for dom in b.domains.iter_mut().take(nn) {
                    dom.retain(|&x| x != v);
                }
                assert_eq!(
                    a.satisfiable(),
                    b.satisfiable(),
                    "trial {trial}: avoidance of node {v} disagrees on {d:?}"
                );
            }
        }
    }

    /// Faithfulness of the value-only encoding on purely relational
    /// gendbs: for every null `⊥`, the encoded structure has a
    /// self-homomorphism moving `⊥` off itself **iff** the generalized
    /// database has a GdmHom endomorphism with `h₂(⊥) ≠ ⊥` — the
    /// valuations coincide, which is what lets the retraction engine
    /// work on values alone when `σ = ∅`.
    #[test]
    fn value_self_hom_structure_is_faithful() {
        use crate::hom::gdm_hom_csp;
        let mut rng = Rng::new(31_415);
        for trial in 0..30 {
            let p = DbParams {
                n_facts: 5,
                arity: 2,
                n_constants: 2,
                n_nulls: 3,
                null_pct: 60,
            };
            let d = encode_relational(&random_naive_db(&mut rng, p));
            let (s, universe) = value_self_hom_structure(&d);
            assert_eq!(s.n_elements, universe.len());
            let (gdm_csp, nulls, gdm_universe) = gdm_hom_csp(&d, &d);
            assert_eq!(universe, gdm_universe, "both sort the same universe");
            let nn = d.n_nodes();
            let struct_csp = s.hom_csp(&s);
            for &nl in &nulls {
                let Ok(vi) = universe.binary_search(&ca_core::value::Value::Null(nl)) else {
                    continue;
                };
                let Ok(ni) = nulls.binary_search(&nl) else {
                    continue;
                };
                let mut a = gdm_csp.clone();
                a.domains[nn + ni].retain(|&x| x != vi as u32);
                let mut b = struct_csp.clone();
                b.domains[vi].retain(|&x| x != vi as u32);
                assert_eq!(
                    a.satisfiable(),
                    b.satisfiable(),
                    "trial {trial}: moving null {nl:?} disagrees on {d:?}"
                );
            }
        }
    }
}
