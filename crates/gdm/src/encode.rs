//! Encoding relational databases and XML trees as generalized databases.
//!
//! Exactly the paper's Section 5.1 codings:
//!
//! * relational: `σ = ∅`, one node per fact labeled by its relation name,
//!   carrying the fact's tuple as data;
//! * XML: `σ = {child}`, one node per tree node with its label and data.
//!
//! Both encodings are faithful for homomorphisms (and hence for the
//! information ordering), which is what lets Section 5 derive the
//! relational and XML results as corollaries.

use ca_relational::database::NaiveDatabase;
use ca_xml::tree::XmlTree;

use crate::database::GenDb;
use crate::schema::GenSchema;

/// Encode a naïve relational database (`σ = ∅`).
pub fn encode_relational(db: &NaiveDatabase) -> GenDb {
    let mut schema = GenSchema::new();
    for sym in db.schema.symbols() {
        schema.add_label(db.schema.name(sym), db.schema.arity(sym));
    }
    let mut out = GenDb::new(schema);
    for fact in db.facts() {
        out.add_node(db.schema.name(fact.rel), fact.args.clone());
    }
    out
}

/// The name of the child relation used by XML encodings.
pub const CHILD: &str = "child";

/// Encode an XML tree (`σ = {child}`).
pub fn encode_xml(t: &XmlTree) -> GenDb {
    let mut schema = GenSchema::new();
    for (_, name, arity) in t.alphabet.labels() {
        schema.add_label(name, arity);
    }
    schema.add_relation(CHILD, 2);
    let mut out = GenDb::new(schema);
    for id in t.node_ids() {
        let node = t.node(id);
        let added = out.add_node(t.alphabet.name(node.label), node.data.clone());
        debug_assert_eq!(added as usize, id);
    }
    for (p, c) in t.edges() {
        out.add_tuple(CHILD, vec![p as u32, c as u32]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::gdm_leq;
    use ca_core::preorder::Preorder;
    use ca_relational::database::build::{c, n, table};
    use ca_relational::generate::{random_naive_db, DbParams, Rng};
    use ca_relational::ordering::InfoOrder;
    use ca_xml::hom::tree_leq;
    use ca_xml::tree::example_tree;

    #[test]
    fn paper_relational_coding() {
        // {R(1,⊥1), S(⊥1,⊥2,2)}: two nodes ν1, ν2 with labels R, S.
        let mut schema = ca_relational::schema::Schema::new();
        schema.add_relation("R", 2);
        schema.add_relation("S", 3);
        let mut db = ca_relational::database::NaiveDatabase::new(schema);
        db.add("R", vec![c(1), n(1)]);
        db.add("S", vec![n(1), n(2), c(2)]);
        let g = encode_relational(&db);
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.schema.n_relations(), 0);
        assert_eq!(g.data[0], vec![c(1), n(1)]);
        assert_eq!(g.data[1], vec![n(1), n(2), c(2)]);
    }

    /// Faithfulness of the relational encoding: `D ⊑ D′ ⇔ enc(D) ⊑
    /// enc(D′)` on random instances.
    #[test]
    fn relational_encoding_is_faithful() {
        let mut rng = Rng::new(616);
        for trial in 0..40 {
            let p = DbParams {
                n_facts: 3,
                arity: 2,
                n_constants: 2,
                n_nulls: 2,
                null_pct: 50,
            };
            let a = random_naive_db(&mut rng, p);
            let b = random_naive_db(&mut rng, p);
            assert_eq!(
                InfoOrder.leq(&a, &b),
                gdm_leq(&encode_relational(&a), &encode_relational(&b)),
                "trial {trial}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn xml_encoding_preserves_shape() {
        let t = example_tree();
        let g = encode_xml(&t);
        assert_eq!(g.n_nodes(), t.len());
        assert_eq!(g.tuples.len(), t.len() - 1); // child edges
        assert_eq!(g.nulls(), t.nulls());
    }

    /// Faithfulness of the XML encoding on hand-picked pairs.
    #[test]
    fn xml_encoding_is_faithful() {
        use ca_core::value::Value;
        let alpha = ca_xml::tree::example_alphabet();
        let cv = |x: i64| Value::Const(x);
        let nv = |id: u32| Value::null(id);
        let mut pat = XmlTree::new(alpha.clone(), "r", vec![]);
        pat.add_child(0, "a", vec![cv(1), nv(1)]);
        let mut doc = XmlTree::new(alpha.clone(), "r", vec![]);
        let a = doc.add_child(0, "a", vec![cv(1), cv(5)]);
        doc.add_child(a, "b", vec![cv(2)]);
        let mut other = XmlTree::new(alpha, "r", vec![]);
        other.add_child(0, "a", vec![cv(2), cv(5)]);
        let cases = [(&pat, &doc), (&doc, &pat), (&pat, &other), (&doc, &doc)];
        for (x, y) in cases {
            assert_eq!(
                tree_leq(x, y),
                gdm_leq(&encode_xml(x), &encode_xml(y)),
                "faithfulness failed for {x} vs {y}"
            );
        }
    }

    #[test]
    fn encodings_detect_codd() {
        let codd = table("R", 2, &[&[c(1), n(1)], &[n(2), c(2)]]);
        assert!(encode_relational(&codd).is_codd());
        let naive = table("R", 2, &[&[c(1), n(1)], &[n(1), c(2)]]);
        assert!(!encode_relational(&naive).is_codd());
    }
}
