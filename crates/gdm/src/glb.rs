//! Greatest lower bounds of generalized databases (Theorem 4).
//!
//! The construction is the one the paper calls "the only one that
//! typechecks": first compute a glb of the *structural* parts in the class
//! `K` at hand — coming with homomorphisms `ι, ι′` into the two factors —
//! then attach data by the `⊗` merge: `ρ⊗ρ′(ν) = ρ(ι(ν)) ⊗ ρ′(ι′(ν))`
//! (equation (2) of the paper). Theorem 4: the result is a glb of the
//! `K`-generalized databases.
//!
//! Two instantiations are provided:
//!
//! * `K` = all Σ-colored structures ([`glb_sigma`]): the structural glb is
//!   the label-respecting direct product `M_λ ⊓_Σ M′_λ′`. With `σ = ∅`
//!   this specializes to Proposition 5 for relations.
//! * `K` = unranked trees ([`glb_trees_gdm`]): the structural glb is the
//!   dominant component of the label-respecting product forest — [16]'s
//!   max-description construction, matching [`ca_xml::glb`].

use ca_core::symbol::Symbol;
use ca_relational::glb::{merge_tuples, PairNulls};

use crate::database::GenDb;
use crate::hom::gdm_leq;

/// A structural glb `M_λ ⊓_K M′_λ′` together with the homomorphisms
/// `ι, ι′` into the factors: node `i` of the glb projects to
/// `iota[i].0` in the left factor and `iota[i].1` in the right.
#[derive(Clone, Debug)]
pub struct StructGlb {
    /// Projections of each glb node into the two factors.
    pub iota: Vec<(u32, u32)>,
    /// Structural tuples over glb nodes.
    pub tuples: Vec<(Symbol, Vec<u32>)>,
}

/// The Σ-colored structural glb: all label-respecting node pairs, with a
/// relation tuple whenever both factors have one component-wise.
pub fn sigma_structural_glb(a: &GenDb, b: &GenDb) -> StructGlb {
    assert_eq!(a.schema, b.schema, "same generalized schema required");
    let mut iota = Vec::new();
    let mut index = std::collections::BTreeMap::new();
    for u in 0..a.n_nodes() as u32 {
        for v in 0..b.n_nodes() as u32 {
            if a.labels[u as usize] == b.labels[v as usize] {
                index.insert((u, v), iota.len() as u32);
                iota.push((u, v));
            }
        }
    }
    let mut tuples = Vec::new();
    for (rel, ta) in &a.tuples {
        for (rel_b, tb) in &b.tuples {
            if rel != rel_b {
                continue;
            }
            let combined: Option<Vec<u32>> = ta
                .iter()
                .zip(tb.iter())
                .map(|(&u, &v)| index.get(&(u, v)).copied())
                .collect();
            if let Some(t) = combined {
                if !tuples.contains(&(*rel, t.clone())) {
                    tuples.push((*rel, t));
                }
            }
        }
    }
    StructGlb { iota, tuples }
}

/// Equation (2): attach `⊗`-merged data to a structural glb, yielding
/// `D ∧_K D′`.
pub fn glb_with_structure(a: &GenDb, b: &GenDb, s: &StructGlb) -> GenDb {
    let mut nulls = PairNulls::avoiding(a.nulls().into_iter().chain(b.nulls()));
    let mut out = GenDb::new(a.schema.clone());
    for &(u, v) in &s.iota {
        let label = a.schema.label_name(a.labels[u as usize]);
        let data = merge_tuples(&a.data[u as usize], &b.data[v as usize], &mut nulls);
        out.add_node(label, data);
    }
    for (rel, t) in &s.tuples {
        out.add_tuple(a.schema.relation_name(*rel), t.clone());
    }
    out
}

/// `D ∧_Σ D′`: the glb in the class of *all* generalized databases of the
/// schema (no structural restriction). For `σ = ∅` this is exactly
/// Proposition 5's relational glb.
pub fn glb_sigma(a: &GenDb, b: &GenDb) -> GenDb {
    glb_with_structure(a, b, &sigma_structural_glb(a, b))
}

/// `D ∧_K D′` for `K` = unranked trees: both inputs must have tree-shaped
/// structural parts over a single binary relation. The product forest's
/// components are computed with data attached; the glb exists iff one
/// component dominates all others.
pub fn glb_trees_gdm(a: &GenDb, b: &GenDb) -> Option<GenDb> {
    assert_eq!(a.schema, b.schema);
    assert_eq!(
        a.schema.n_relations(),
        1,
        "tree glb expects a single (child) relation"
    );
    let full = sigma_structural_glb(a, b);
    // Split the product into weakly-connected components; with tree
    // factors each component is a tree.
    let n = full.iota.len();
    let mut comp = vec![usize::MAX; n];
    let mut n_comp = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = n_comp;
        n_comp += 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(x) = stack.pop() {
            for (_, t) in &full.tuples {
                for w in t.windows(2) {
                    let (p, c) = (w[0] as usize, w[1] as usize);
                    for (from, to) in [(p, c), (c, p)] {
                        if from == x && comp[to] == usize::MAX {
                            comp[to] = id;
                            stack.push(to);
                        }
                    }
                }
            }
        }
    }
    // Build one GenDb per component (sharing pair nulls is unnecessary
    // across components since only one is returned; but sharing keeps the
    // construction uniform).
    let mut nulls = PairNulls::avoiding(a.nulls().into_iter().chain(b.nulls()));
    let mut components: Vec<GenDb> = Vec::with_capacity(n_comp);
    let mut node_of: Vec<u32> = vec![0; n];
    for cid in 0..n_comp {
        let mut db = GenDb::new(a.schema.clone());
        for (i, &(u, v)) in full.iota.iter().enumerate() {
            if comp[i] == cid {
                let label = a.schema.label_name(a.labels[u as usize]);
                let data = merge_tuples(&a.data[u as usize], &b.data[v as usize], &mut nulls);
                node_of[i] = db.add_node(label, data);
            }
        }
        for (rel, t) in &full.tuples {
            if comp[t[0] as usize] == cid {
                db.add_tuple(
                    a.schema.relation_name(*rel),
                    t.iter().map(|&x| node_of[x as usize]).collect(),
                );
            }
        }
        components.push(db);
    }
    let dominant = components
        .iter()
        .position(|c| components.iter().all(|other| gdm_leq(other, c)))?;
    Some(components.swap_remove(dominant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_relational, encode_xml};
    use crate::hom::{gdm_equiv, gdm_leq};
    use ca_relational::database::build::{c, n, table};

    #[test]
    fn sigma_glb_matches_relational_glb() {
        let a = table("R", 2, &[&[c(1), c(2)], &[c(3), n(1)]]);
        let b = table("R", 2, &[&[c(1), c(5)], &[n(2), c(2)]]);
        let rel = ca_relational::glb::glb_databases(&a, &b);
        let gdm = glb_sigma(&encode_relational(&a), &encode_relational(&b));
        assert!(gdm_equiv(&gdm, &encode_relational(&rel)));
    }

    #[test]
    fn sigma_glb_is_a_lower_bound() {
        let a = encode_relational(&table("R", 1, &[&[c(1)], &[c(2)]]));
        let b = encode_relational(&table("R", 1, &[&[c(2)], &[c(3)]]));
        let meet = glb_sigma(&a, &b);
        assert!(gdm_leq(&meet, &a));
        assert!(gdm_leq(&meet, &b));
        // R(2) is in both, so it embeds in the glb.
        let two = encode_relational(&table("R", 1, &[&[c(2)]]));
        assert!(gdm_leq(&two, &meet));
    }

    #[test]
    fn tree_glb_matches_xml_construction() {
        use ca_core::value::Value;
        let alpha = ca_xml::tree::example_alphabet();
        let cv = |x: i64| Value::Const(x);
        let mut t1 = ca_xml::tree::XmlTree::new(alpha.clone(), "r", vec![]);
        t1.add_child(0, "a", vec![cv(1), cv(2)]);
        let mut t2 = ca_xml::tree::XmlTree::new(alpha, "r", vec![]);
        t2.add_child(0, "a", vec![cv(1), cv(3)]);
        let xml_meet = ca_xml::glb::glb_trees(&t1, &t2).unwrap();
        let gdm_meet = glb_trees_gdm(&encode_xml(&t1), &encode_xml(&t2)).unwrap();
        assert!(gdm_equiv(&gdm_meet, &encode_xml(&xml_meet)));
    }

    #[test]
    fn tree_glb_can_fail() {
        // p[q] vs q[p]: no dominant component (cf. ca-xml).
        use ca_xml::tree::{Alphabet, XmlTree};
        let alpha = Alphabet::from_labels(&[("p", 0), ("q", 0)]);
        let mut t1 = XmlTree::new(alpha.clone(), "p", vec![]);
        t1.add_child(0, "q", vec![]);
        let mut t2 = XmlTree::new(alpha, "q", vec![]);
        t2.add_child(0, "p", vec![]);
        assert!(glb_trees_gdm(&encode_xml(&t1), &encode_xml(&t2)).is_none());
    }

    #[test]
    fn glb_laws_on_random_relational_instances() {
        use ca_relational::generate::{random_naive_db, DbParams, Rng};
        let mut rng = Rng::new(13);
        let p = DbParams {
            n_facts: 3,
            arity: 2,
            n_constants: 3,
            n_nulls: 2,
            null_pct: 30,
        };
        for _ in 0..10 {
            let a = random_naive_db(&mut rng, p);
            let b = random_naive_db(&mut rng, p);
            let (ga, gb) = (encode_relational(&a), encode_relational(&b));
            let meet = glb_sigma(&ga, &gb);
            assert!(gdm_leq(&meet, &ga) && gdm_leq(&meet, &gb));
            // A couple of candidate lower bounds.
            let lows = [
                encode_relational(&table("R", 2, &[&[n(50), n(51)]])),
                encode_relational(&table("R", 2, &[])),
            ];
            for l in &lows {
                if gdm_leq(l, &ga) && gdm_leq(l, &gb) {
                    assert!(gdm_leq(l, &meet));
                }
            }
        }
    }

    #[test]
    fn sigma_glb_respects_structural_tuples() {
        // Two one-edge trees with different data: glb keeps the edge.
        use ca_core::value::Value;
        let schema = crate::schema::GenSchema::from_parts(&[("r", 0), ("a", 1)], &[("child", 2)]);
        let mk = |x: i64| {
            let mut d = GenDb::new(schema.clone());
            let root = d.add_node("r", vec![]);
            let a = d.add_node("a", vec![Value::Const(x)]);
            d.add_tuple("child", vec![root, a]);
            d
        };
        let meet = glb_sigma(&mk(1), &mk(2));
        // The (r,r) → (a,a) edge survives with merged (null) data.
        assert_eq!(meet.tuples.len(), 1);
        assert!(gdm_leq(&meet, &mk(1)));
    }
}
