//! The membership problem and Theorem 6.
//!
//! Membership asks whether a complete database `D′` is a possible world of
//! an incomplete one (`D′ ∈ [[D]]`), and more generally whether `D ⊑ D′`.
//! In general this is the constraint-satisfaction problem — NP-complete —
//! but **Theorem 6** gives a polynomial algorithm when `ρ` has the Codd
//! interpretation and the structural part has treewidth ≤ k:
//!
//! 1. *Lemma 3*: under Codd, `D ⊑ D′` iff there is a homomorphism of the
//!    structural parts whose graph lies inside the compatibility relation
//!    `R(D, D′) = {(ν, ν′) | λ(ν) = λ′(ν′) and ρ(ν) ⊴ ρ′(ν′)}`;
//! 2. *Lemmas 4–5*: `R`-compatible homomorphisms are decidable in PTIME
//!    for bounded-treewidth sources — our DP over a tree decomposition
//!    ([`ca_hom::dp`]).
//!
//! Both the relational (k = 1, trivially) and XML (k = 1, trees) PTIME
//! algorithms recalled in Section 6 are special cases.

use ca_core::value::Value;
use ca_hom::dp::r_compatible_hom_dp;
use ca_hom::treewidth::{decompose_exact_low_width, decompose_min_fill};

use crate::database::GenDb;
use crate::hom::gdm_leq;

/// General membership `d2 ∈ [[d]]`: NP search via the CSP engine.
pub fn membership_general(d2: &GenDb, d: &GenDb) -> bool {
    d2.is_complete() && gdm_leq(d, d2)
}

/// The tuple-dominance `ρ(ν) ⊴ ρ′(ν′)` of Lemma 3: constants must match,
/// nulls are free (soundness of the per-node check relies on Codd).
fn tuple_dominates(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(&x, &y)| x.tuplewise_leq(y))
}

/// The compatibility relation `R(D, D′)` as per-node candidate lists.
pub fn compatibility(d: &GenDb, d2: &GenDb) -> Vec<Vec<u32>> {
    (0..d.n_nodes())
        .map(|v| {
            (0..d2.n_nodes() as u32)
                .filter(|&w| {
                    d2.labels[w as usize] == d.labels[v]
                        && tuple_dominates(&d.data[v], &d2.data[w as usize])
                })
                .collect()
        })
        .collect()
}

/// Theorem 6: decide `d ⊑ d2` in polynomial time for Codd `d` of bounded
/// treewidth. Returns `None` if `d` is not Codd (the algorithm would be
/// unsound); otherwise `Some((answer, width))` where `width` is the width
/// of the tree decomposition used (exact for ≤ 2, min-fill bound beyond).
pub fn leq_codd_treewidth(d: &GenDb, d2: &GenDb) -> Option<(bool, usize)> {
    if !d.is_codd() {
        return None;
    }
    let src = d.bare_structure();
    let dst = d2.bare_structure();
    let adj = src.primal_graph();
    let td = decompose_exact_low_width(&adj, 1)
        .or_else(|| decompose_exact_low_width(&adj, 2))
        .unwrap_or_else(|| decompose_min_fill(&adj));
    let width = td.width();
    let allowed = compatibility(d, d2);
    let result = r_compatible_hom_dp(&src, &dst, &allowed, &td).is_some();
    Some((result, width))
}

/// The membership decision of Theorem 6 (complete `d2`).
pub fn membership_codd_treewidth(d2: &GenDb, d: &GenDb) -> Option<(bool, usize)> {
    if !d2.is_complete() {
        return Some((false, 0));
    }
    leq_codd_treewidth(d, d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_tree_gendb, TreeGenParams};
    use crate::schema::GenSchema;
    use ca_relational::generate::Rng;

    fn c(x: i64) -> Value {
        Value::Const(x)
    }
    fn n(id: u32) -> Value {
        Value::null(id)
    }

    fn xml_schema() -> GenSchema {
        GenSchema::from_parts(&[("r", 0), ("a", 1), ("b", 1)], &[("child", 2)])
    }

    #[test]
    fn codd_tree_membership_positive() {
        // Pattern r → a(⊥1) against document r → a(7).
        let mut d = GenDb::new(xml_schema());
        let root = d.add_node("r", vec![]);
        let a = d.add_node("a", vec![n(1)]);
        d.add_tuple("child", vec![root, a]);
        let mut doc = GenDb::new(xml_schema());
        let r2 = doc.add_node("r", vec![]);
        let a2 = doc.add_node("a", vec![c(7)]);
        doc.add_tuple("child", vec![r2, a2]);
        let (ans, width) = membership_codd_treewidth(&doc, &d).unwrap();
        assert!(ans);
        assert!(width <= 1);
        assert!(membership_general(&doc, &d));
    }

    #[test]
    fn codd_tree_membership_negative() {
        let mut d = GenDb::new(xml_schema());
        let root = d.add_node("r", vec![]);
        let a = d.add_node("a", vec![c(5)]);
        d.add_tuple("child", vec![root, a]);
        let mut doc = GenDb::new(xml_schema());
        let r2 = doc.add_node("r", vec![]);
        let a2 = doc.add_node("a", vec![c(7)]);
        doc.add_tuple("child", vec![r2, a2]);
        let (ans, _) = membership_codd_treewidth(&doc, &d).unwrap();
        assert!(!ans);
        assert!(!membership_general(&doc, &d));
    }

    #[test]
    fn non_codd_is_rejected() {
        // The per-node compatibility check is unsound with repeated nulls:
        // D = two a-nodes sharing ⊥1; target gives them different values.
        let mut d = GenDb::new(xml_schema());
        let root = d.add_node("r", vec![]);
        let a1 = d.add_node("a", vec![n(1)]);
        let b1 = d.add_node("b", vec![n(1)]);
        d.add_tuple("child", vec![root, a1]);
        d.add_tuple("child", vec![root, b1]);
        assert!(!d.is_codd());
        assert!(leq_codd_treewidth(&d, &d).is_none());
        // And indeed the naive per-node check would wrongly accept:
        let mut doc = GenDb::new(xml_schema());
        let r2 = doc.add_node("r", vec![]);
        let a2 = doc.add_node("a", vec![c(1)]);
        let b2 = doc.add_node("b", vec![c(2)]);
        doc.add_tuple("child", vec![r2, a2]);
        doc.add_tuple("child", vec![r2, b2]);
        // Per-node compatibility holds everywhere…
        let compat = compatibility(&d, &doc);
        assert!(compat.iter().all(|cands| !cands.is_empty()));
        // …but the true answer is no (⊥1 cannot be both 1 and 2).
        assert!(!membership_general(&doc, &d));
    }

    /// Theorem 6 agrees with the general NP algorithm on random Codd
    /// tree-shaped instances.
    #[test]
    fn theorem6_agrees_with_general_on_random_trees() {
        let mut rng = Rng::new(909);
        let mut positives = 0;
        for trial in 0..30 {
            let d = random_tree_gendb(
                &mut rng,
                TreeGenParams {
                    n_nodes: 5,
                    n_labels: 2,
                    max_data_arity: 1,
                    n_constants: 2,
                    null_pct: 60,
                    codd: true,
                },
            );
            let doc = random_tree_gendb(
                &mut rng,
                TreeGenParams {
                    n_nodes: 6,
                    n_labels: 2,
                    max_data_arity: 1,
                    n_constants: 2,
                    null_pct: 0,
                    codd: true,
                },
            );
            let (fast, width) = leq_codd_treewidth(&d, &doc).expect("Codd instance");
            let slow = gdm_leq(&d, &doc);
            assert_eq!(fast, slow, "Theorem 6 disagrees on trial {trial}");
            assert!(width <= 1, "trees have treewidth 1");
            positives += usize::from(fast);
        }
        assert!(positives > 0, "no positive instances exercised");
    }

    #[test]
    fn incomplete_targets_are_not_members() {
        let mut d = GenDb::new(xml_schema());
        d.add_node("a", vec![n(1)]);
        let mut t = GenDb::new(xml_schema());
        t.add_node("a", vec![n(2)]);
        assert_eq!(membership_codd_treewidth(&t, &d), Some((false, 0)));
        assert!(!membership_general(&t, &d));
    }
}

#[cfg(test)]
mod timing_probe {
    use super::*;
    use crate::generate::{random_tree_gendb, TreeGenParams};
    use ca_relational::generate::Rng;

    /// Timing probe (ignored by default): how do the DP and the CSP scale?
    #[test]
    #[ignore]
    fn probe_scaling() {
        let mut rng = Rng::new(909);
        for &(p, d) in &[(8usize, 16usize), (16, 32), (24, 48), (32, 64)] {
            let pat = random_tree_gendb(
                &mut rng,
                TreeGenParams {
                    n_nodes: p,
                    n_labels: 2,
                    max_data_arity: 1,
                    n_constants: 2,
                    null_pct: 70,
                    codd: true,
                },
            );
            let doc = random_tree_gendb(
                &mut rng,
                TreeGenParams {
                    n_nodes: d,
                    n_labels: 2,
                    max_data_arity: 1,
                    n_constants: 2,
                    null_pct: 0,
                    codd: true,
                },
            );
            let t0 = std::time::Instant::now();
            let (fast, _) = leq_codd_treewidth(&pat, &doc).unwrap();
            let dp_t = t0.elapsed();
            let t1 = std::time::Instant::now();
            let slow = gdm_leq(&pat, &doc);
            let csp_t = t1.elapsed();
            eprintln!(
                "p={p} d={d} dp={dp_t:?} csp={csp_t:?} agree={}",
                fast == slow
            );
        }
    }
}
