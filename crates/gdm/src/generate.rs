//! Random generalized databases for tests and experiments.

use ca_core::value::{NullGen, Value};
use ca_relational::generate::Rng;

use crate::database::GenDb;
use crate::schema::GenSchema;

/// Parameters for random tree-shaped generalized databases (the XML-like
/// case: one `child` relation, labels `l0…`, each with a data tuple).
#[derive(Clone, Copy, Debug)]
pub struct TreeGenParams {
    /// Number of nodes (≥ 1; node 0 is the root, labeled `l0`).
    pub n_nodes: usize,
    /// Number of labels (`l0 … l{n-1}`).
    pub n_labels: usize,
    /// Every label carries this many attributes (0 or more).
    pub max_data_arity: usize,
    /// Constants drawn from `0..n_constants`.
    pub n_constants: i64,
    /// Probability (out of 100) of a null in a data position.
    pub null_pct: u64,
    /// Codd interpretation: all nulls globally fresh.
    pub codd: bool,
}

/// The schema used by [`random_tree_gendb`] for the given parameters.
pub fn tree_schema(p: &TreeGenParams) -> GenSchema {
    let mut s = GenSchema::new();
    for i in 0..p.n_labels {
        s.add_label(&format!("l{i}"), p.max_data_arity);
    }
    s.add_relation("child", 2);
    s
}

/// A random tree-shaped generalized database: node `i > 0` gets a uniform
/// random parent among `0..i`.
pub fn random_tree_gendb(rng: &mut Rng, p: TreeGenParams) -> GenDb {
    assert!(p.n_nodes >= 1 && p.n_labels >= 1);
    let schema = tree_schema(&p);
    let mut d = GenDb::new(schema);
    let mut nullgen = NullGen::new();
    let mut shared_pool: Vec<Value> = Vec::new();
    for i in 0..p.n_nodes {
        let label = format!(
            "l{}",
            if i == 0 {
                0
            } else {
                rng.below(p.n_labels as u64)
            }
        );
        let data: Vec<Value> = (0..p.max_data_arity)
            .map(|_| {
                if rng.chance(p.null_pct, 100) {
                    if p.codd {
                        nullgen.fresh_value()
                    } else {
                        // Reuse from a small shared pool to exercise
                        // repeated nulls.
                        if shared_pool.is_empty() || rng.chance(50, 100) {
                            let v = nullgen.fresh_value();
                            shared_pool.push(v);
                            v
                        } else {
                            shared_pool[rng.below(shared_pool.len() as u64) as usize]
                        }
                    }
                } else {
                    Value::Const(rng.below(p.n_constants as u64) as i64)
                }
            })
            .collect();
        let id = d.add_node(&label, data);
        if i > 0 {
            let parent = rng.below(i as u64) as u32;
            d.add_tuple("child", vec![parent, id]);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        let mut rng = Rng::new(7);
        let p = TreeGenParams {
            n_nodes: 10,
            n_labels: 3,
            max_data_arity: 2,
            n_constants: 4,
            null_pct: 50,
            codd: true,
        };
        let d = random_tree_gendb(&mut rng, p);
        assert_eq!(d.n_nodes(), 10);
        assert_eq!(d.tuples.len(), 9); // tree: n−1 edges
        assert!(d.is_codd());
        // Structural part is a tree: primal graph has treewidth 1.
        let adj = d.bare_structure().primal_graph();
        assert!(ca_hom::treewidth::decompose_exact_low_width(&adj, 1).is_some());
    }

    #[test]
    fn non_codd_generation_reuses_nulls() {
        let mut rng = Rng::new(11);
        let p = TreeGenParams {
            n_nodes: 20,
            n_labels: 2,
            max_data_arity: 2,
            n_constants: 2,
            null_pct: 90,
            codd: false,
        };
        // With 40 null draws from a shared pool, reuse is essentially
        // certain.
        let d = random_tree_gendb(&mut rng, p);
        assert!(!d.is_codd());
    }

    #[test]
    fn determinism() {
        let p = TreeGenParams {
            n_nodes: 6,
            n_labels: 2,
            max_data_arity: 1,
            n_constants: 3,
            null_pct: 30,
            codd: true,
        };
        let a = random_tree_gendb(&mut Rng::new(5), p);
        let b = random_tree_gendb(&mut Rng::new(5), p);
        assert_eq!(a, b);
    }
}
