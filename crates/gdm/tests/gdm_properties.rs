//! Property-based tests for the generalized data model: ordering laws,
//! glb laws, Theorem 6 agreement, and evaluation-path agreement.

use proptest::prelude::*;

use ca_gdm::database::GenDb;
use ca_gdm::deq::eval_via_deq;
use ca_gdm::generate::{random_tree_gendb, tree_schema, TreeGenParams};
use ca_gdm::glb::glb_sigma;
use ca_gdm::hom::{find_gdm_hom, gdm_leq, is_gdm_hom};
use ca_gdm::logic::{eval_gfo, GFo};
use ca_gdm::membership::leq_codd_treewidth;
use ca_relational::generate::Rng;

fn tree_params(codd: bool) -> TreeGenParams {
    TreeGenParams {
        n_nodes: 5,
        n_labels: 2,
        max_data_arity: 1,
        n_constants: 2,
        null_pct: 50,
        codd,
    }
}

fn arb_tree_db(codd: bool) -> impl Strategy<Value = GenDb> {
    any::<u64>().prop_map(move |seed| random_tree_gendb(&mut Rng::new(seed), tree_params(codd)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ordering_reflexive(d in arb_tree_db(false)) {
        prop_assert!(gdm_leq(&d, &d));
    }

    #[test]
    fn found_homs_verify(a in arb_tree_db(false), b in arb_tree_db(false)) {
        if let Some(h) = find_gdm_hom(&a, &b) {
            prop_assert!(is_gdm_hom(&a, &b, &h));
        }
    }

    #[test]
    fn glb_sigma_is_lower_bound(a in arb_tree_db(false), b in arb_tree_db(false)) {
        let meet = glb_sigma(&a, &b);
        prop_assert!(gdm_leq(&meet, &a));
        prop_assert!(gdm_leq(&meet, &b));
    }

    /// Theorem 6 (the DP) and the general CSP agree on Codd trees.
    #[test]
    fn theorem6_agreement(a in arb_tree_db(true), seed in any::<u64>()) {
        let doc = random_tree_gendb(&mut Rng::new(seed), TreeGenParams {
            n_nodes: 7,
            null_pct: 0,
            ..tree_params(true)
        });
        let (fast, width) = leq_codd_treewidth(&a, &doc).expect("Codd instance");
        prop_assert!(width <= 1);
        prop_assert_eq!(fast, gdm_leq(&a, &doc));
    }

    /// The direct FO(S,∼) evaluator and the materialized D_EQ path agree
    /// on a fixed battery of sentences over random instances.
    #[test]
    fn evaluation_paths_agree(d in arb_tree_db(false)) {
        let phis = [
            GFo::exists(0, GFo::exists(1, GFo::Rel("child".into(), vec![0, 1]))),
            GFo::forall(0, GFo::Label("l0".into(), 0)),
            GFo::exists(0, GFo::exists(1, GFo::And(vec![
                GFo::NodeEq(0, 1).not(),
                GFo::AttrEq { i: 0, j: 0, x: 0, y: 1 },
            ]))),
            GFo::exists(0, GFo::Rel("child".into(), vec![0, 0])),
        ];
        for phi in &phis {
            prop_assert_eq!(eval_gfo(phi, &d), eval_via_deq(phi, &d));
        }
    }

    /// Grounding nulls moves a generalized database up the ordering.
    #[test]
    fn grounding_increases_information(d in arb_tree_db(false)) {
        let grounded = d.map_values(|v| match v {
            ca_core::value::Value::Null(n) => ca_core::value::Value::Const(500 + n.0 as i64),
            c => c,
        });
        prop_assert!(gdm_leq(&d, &grounded));
        prop_assert!(grounded.is_complete());
    }

    /// The single-root instance is a lower bound of every tree instance.
    #[test]
    fn bare_root_is_bottom(d in arb_tree_db(false)) {
        let schema = tree_schema(&tree_params(false));
        let mut bottom = GenDb::new(schema);
        bottom.add_node("l0", vec![ca_core::value::Value::null(999)]);
        prop_assert!(gdm_leq(&bottom, &d));
    }
}
