//! Fixture self-tests: one positive and one negative snippet per rule.
//!
//! Every positive fixture is asserted twice — the rule fires when
//! enabled, and the finding *disappears when the rule is disabled* — so
//! each rule is provably load-bearing (a rule that never fires, or a
//! harness that ignores `enabled`, fails here).

use ca_lint::rules::CATALOG;
use ca_lint::{lint_source, lint_sources, LintConfig};

/// A path inside a result-producing module for L004 fixtures.
const RESULT_PATH: &str = "crates/query/src/engine/fixture.rs";
/// An ordinary library path for L002/L003/L005/L010 fixtures.
const LIB_PATH: &str = "crates/gdm/src/fixture.rs";
/// The L007 determinism-taint seed location (certificate bytes).
const CERT_BYTES_PATH: &str = "crates/cert/src/bytes.rs";
/// The L008 untrusted-input seed location (snapshot parsing).
const SNAPSHOT_PATH: &str = "crates/core/src/store/snapshot.rs";

fn codes(path: &str, src: &str, cfg: &LintConfig) -> Vec<&'static str> {
    lint_source(path, src, cfg)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

/// Assert `src` at `path` trips `rule` — and stops tripping it when the
/// rule is disabled.
fn assert_fires(rule: &'static str, path: &str, src: &str) {
    let design = "documented: CA_EVAL_THREADS CA_HOM_THREADS".to_string();
    let with = codes(path, src, &LintConfig::all(design.clone()));
    assert!(
        with.contains(&rule),
        "{rule} should fire on the positive fixture at {path}; got {with:?}"
    );
    let without = codes(path, src, &LintConfig::all_except(rule, design));
    assert!(
        !without.contains(&rule),
        "{rule} must vanish when disabled; got {without:?}"
    );
}

/// Assert `src` at `path` is clean for `rule` with every rule enabled.
fn assert_clean(rule: &'static str, path: &str, src: &str) {
    let design = "documented: CA_EVAL_THREADS CA_HOM_THREADS".to_string();
    let got = codes(path, src, &LintConfig::all(design));
    assert!(
        !got.contains(&rule),
        "{rule} must not fire on the negative fixture at {path}; got {got:?}"
    );
}

// ------------------------------------------------------------------ L002

#[test]
fn l002_fires_on_unwrap_expect_panic_and_literal_index() {
    assert_fires(
        "L002",
        LIB_PATH,
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    );
    assert_fires(
        "L002",
        LIB_PATH,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"always\") }",
    );
    assert_fires("L002", LIB_PATH, "fn f() { panic!(\"boom\") }");
    assert_fires("L002", LIB_PATH, "fn f(v: &[u32]) -> u32 { v[0] }");
}

#[test]
fn l002_ignores_tests_benches_and_array_literals() {
    // In a #[cfg(test)] module: fine.
    assert_clean(
        "L002",
        LIB_PATH,
        "#[cfg(test)]\nmod tests {\n fn t(x: Option<u32>) { x.unwrap(); }\n}",
    );
    // In the bench crate: fine.
    assert_clean(
        "L002",
        "crates/bench/src/report.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    );
    // Array literals and unwrap_or are not flagged.
    assert_clean(
        "L002",
        LIB_PATH,
        "fn f(x: Option<u32>) -> u32 { let _a = [0]; let _b = [0; 4]; x.unwrap_or(1) }",
    );
    // A commented-out unwrap is not code.
    assert_clean("L002", LIB_PATH, "fn f() {} // x.unwrap() would panic");
}

// ------------------------------------------------------------------ L003

#[test]
fn l003_fires_on_stray_threads_and_env_reads() {
    assert_fires("L003", LIB_PATH, "fn f() { std::thread::spawn(|| {}); }");
    assert_fires(
        "L003",
        LIB_PATH,
        "fn f() -> usize { std::env::var(\"CA_SECRET_KNOB\").map_or(1, |v| v.len()) }",
    );
}

#[test]
fn l003_sanctions_the_kernels_and_config() {
    assert_clean(
        "L003",
        "crates/query/src/engine/sweep.rs",
        "fn f() { std::thread::scope(|_| {}); }",
    );
    assert_clean(
        "L003",
        "crates/hom/src/csp.rs",
        "fn f() { std::thread::scope(|_| {}); }",
    );
    assert_clean(
        "L003",
        "crates/core/src/config.rs",
        "fn f() -> bool { std::env::var(\"CA_EVAL_THREADS\").is_ok() }",
    );
    // Non-CA_ env reads are out of scope for L003.
    assert_clean(
        "L003",
        LIB_PATH,
        "fn f() -> bool { std::env::var(\"PROPTEST_CASES\").is_ok() }",
    );
}

// ------------------------------------------------------------------ L004

#[test]
fn l004_fires_on_wall_clock_in_result_modules() {
    assert_fires(
        "L004",
        RESULT_PATH,
        "fn f() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert_fires(
        "L004",
        RESULT_PATH,
        "fn f() { let _ = std::time::SystemTime::now(); }",
    );
}

#[test]
fn l004_allows_timing_in_benches_and_tests() {
    // Outside result modules: fine.
    assert_clean(
        "L004",
        "crates/bench/src/report.rs",
        "fn f() -> std::time::Instant { std::time::Instant::now() }",
    );
    // In a test module of a result module: fine.
    assert_clean(
        "L004",
        RESULT_PATH,
        "#[cfg(test)]\nmod tests {\n fn t() { let _ = std::time::Instant::now(); }\n}",
    );
}

// ------------------------------------------------------------------ L005

#[test]
fn l005_fires_on_undocumented_env_var() {
    assert_fires(
        "L005",
        LIB_PATH,
        "const KNOB: &str = \"CA_UNDOCUMENTED_KNOB\";",
    );
}

#[test]
fn l005_accepts_documented_vars_and_non_var_strings() {
    // CA_EVAL_THREADS is in the fixture design doc.
    assert_clean("L005", LIB_PATH, "const KNOB: &str = \"CA_EVAL_THREADS\";");
    // Lowercase / prefix-only strings are not env-var names.
    assert_clean(
        "L005",
        LIB_PATH,
        "const A: &str = \"CA_\"; const B: &str = \"ca_lower\"; const C: &str = \"CApital\";",
    );
}

// ------------------------------------------------------------------ L006

#[test]
fn l006_fires_on_a_use_of_a_higher_layer() {
    // ca-core sits at the bottom of the layering table: it may depend on
    // nothing, so naming ca_query is a violation.
    assert_fires(
        "L006",
        "crates/core/src/fixture.rs",
        "use ca_query::engine::Plan;\nfn f() {}",
    );
}

#[test]
fn l006_fires_on_an_inline_qualified_path() {
    assert_fires(
        "L006",
        "crates/core/src/fixture.rs",
        "fn f() -> u32 { ca_xml::tree::root_count() }",
    );
}

#[test]
fn l006_fires_on_an_undeclared_manifest_dependency() {
    let files = [(
        "crates/core/src/fixture.rs".to_string(),
        "fn f() {}".to_string(),
    )];
    let manifests = [(
        "crates/core/Cargo.toml".to_string(),
        "[package]\nname = \"ca-core\"\n\n[dependencies]\nca-query = { path = \"../query\" }\n"
            .to_string(),
    )];
    let design = "documented: CA_EVAL_THREADS CA_HOM_THREADS".to_string();
    let got = lint_sources(&files, &manifests, &LintConfig::all(design.clone()));
    assert!(
        got.iter()
            .any(|v| v.rule == "L006" && v.path == "crates/core/Cargo.toml"),
        "manifest dep above ca-core's layer must fire at the manifest; got {got:?}"
    );
    let without = lint_sources(&files, &manifests, &LintConfig::all_except("L006", design));
    assert!(
        !without.iter().any(|v| v.rule == "L006"),
        "L006 must vanish when disabled; got {without:?}"
    );
}

#[test]
fn l006_accepts_declared_layers_std_and_tests() {
    // ca-query may use ca-core (declared), and std/core are never crates
    // in the layering sense.
    assert_clean(
        "L006",
        "crates/query/src/fixture.rs",
        "use ca_core::store::FactStore;\nuse std::collections::BTreeMap;\nfn f() {}",
    );
    // Test code may reach across layers (differential oracles do).
    assert_clean(
        "L006",
        "crates/core/src/fixture.rs",
        "#[cfg(test)]\nmod tests {\n    use ca_query::engine::Plan;\n    fn t() {}\n}",
    );
}

// ------------------------------------------------------------------ L007

#[test]
fn l007_fires_on_hash_iteration_reachable_from_a_seed() {
    // to_bytes at the certificate-bytes path is a seed; helper() is in
    // its call cone and iterates a HashMap.
    let src = r#"
use std::collections::HashMap;
pub fn to_bytes() -> Vec<u8> { helper() }
fn helper() -> Vec<u8> {
    let m: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    for k in m.iter() { out.push(0u8); let _ = k; }
    out
}
"#;
    assert_fires("L007", CERT_BYTES_PATH, src);
}

#[test]
fn l007_fires_on_a_borrowed_hash_parameter() {
    // The hash collection arrives as `&HashMap` / `&'a mut HashMap`
    // parameters — the binding walk must see through the reference
    // prefix, not just `let`-bound locals.
    let src = r#"
use std::collections::HashMap;
pub fn to_bytes(m: &HashMap<u32, u32>) -> Vec<u8> { emit(m) }
fn emit(m: &HashMap<u32, u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for k in m.iter() { out.push(0u8); let _ = k; }
    out
}
"#;
    assert_fires("L007", CERT_BYTES_PATH, src);
}

#[test]
fn l007_fires_on_randomstate_in_a_seed_itself() {
    let src = "pub fn to_bytes() -> Vec<u8> { let _s = std::collections::hash_map::RandomState::new(); Vec::new() }";
    assert_fires("L007", CERT_BYTES_PATH, src);
}

#[test]
fn l007_ignores_unreachable_and_btree_iteration() {
    // Same tainted body, but nothing connects it to a seed.
    let src = r#"
use std::collections::HashMap;
fn helper() -> Vec<u8> {
    let m: HashMap<u32, u32> = HashMap::new();
    let mut out = Vec::new();
    for k in m.iter() { out.push(0u8); let _ = k; }
    out
}
"#;
    assert_clean("L007", CERT_BYTES_PATH, src);
    // BTreeMap iteration in a seed's cone is deterministic and fine.
    let src = r#"
use std::collections::BTreeMap;
pub fn to_bytes() -> Vec<u8> {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.keys().map(|_| 0u8).collect()
}
"#;
    assert_clean("L007", CERT_BYTES_PATH, src);
}

// ------------------------------------------------------------------ L008

#[test]
fn l008_fires_on_panicky_ops_reachable_from_byte_parsing() {
    // `parse` at the snapshot path seeds the untrusted cone.
    assert_fires(
        "L008",
        SNAPSHOT_PATH,
        "pub fn parse(buf: &[u8]) -> u8 { helper(buf) }\nfn helper(buf: &[u8]) -> u8 { buf.first().copied().unwrap() }",
    );
    assert_fires(
        "L008",
        SNAPSHOT_PATH,
        "pub fn from_bytes(buf: &[u8]) -> u8 { buf[3] }",
    );
    assert_fires(
        "L008",
        SNAPSHOT_PATH,
        "pub fn parse(off: usize, len: usize) -> usize { off + len }",
    );
}

#[test]
fn l008_ignores_unreachable_code_and_compound_assignment() {
    // The same panicky body with no seed calling it is out of the cone.
    assert_clean(
        "L008",
        SNAPSHOT_PATH,
        "fn helper(buf: &[u8]) -> u8 { buf.first().copied().unwrap() }",
    );
    // `+=` on a counter is not offset arithmetic into the buffer.
    assert_clean(
        "L008",
        SNAPSHOT_PATH,
        "pub fn parse(buf: &[u8]) -> usize { let mut n_total = 0usize; n_total += buf.len(); n_total }",
    );
}

// ------------------------------------------------------------------ L009

#[test]
fn l009_fires_on_truncating_casts_in_store_code() {
    assert_fires(
        "L009",
        "crates/core/src/store/fixture.rs",
        "pub fn count(n: usize) -> u32 { n as u32 }",
    );
    // Outside crates/core, mentioning ValueId opts the file in.
    assert_fires(
        "L009",
        "crates/query/src/fixture.rs",
        "use ca_core::store::ValueId;\npub fn shrink(id: ValueId) -> u16 { id as u16 }",
    );
}

#[test]
fn l009_ignores_tests_widening_casts_and_unscoped_files() {
    assert_clean(
        "L009",
        "crates/core/src/store/fixture.rs",
        "#[cfg(test)]\nmod tests {\n    fn t(n: usize) -> u32 { n as u32 }\n}",
    );
    assert_clean(
        "L009",
        "crates/core/src/store/fixture.rs",
        "pub fn widen(n: u32) -> u64 { n as u64 }",
    );
    // No ValueId/FactId mention and not under crates/core: out of scope.
    assert_clean(
        "L009",
        "crates/gdm/src/fixture.rs",
        "pub fn count(n: usize) -> u32 { n as u32 }",
    );
}

// ------------------------------------------------------------------ L010

#[test]
fn l010_fires_on_threads_without_a_deterministic_merge() {
    assert_fires(
        "L010",
        LIB_PATH,
        "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }",
    );
}

#[test]
fn l010_accepts_merged_results_and_sanctioned_files() {
    // A sort after the scope is a deterministic merge.
    assert_clean(
        "L010",
        LIB_PATH,
        "fn f() { let mut out: Vec<u32> = Vec::new(); std::thread::scope(|s| { s.spawn(|| {}); }); out.sort_unstable(); }",
    );
    // The sanctioned kernels own their merge discipline already.
    assert_clean(
        "L010",
        "crates/query/src/engine/sweep.rs",
        "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }",
    );
}

// ------------------------------------------- suppression, end to end

#[test]
fn inline_allow_suppresses_with_reason() {
    let design = String::new();
    let src = "fn f(x: Option<u32>) -> u32 {\n    // ca-lint: allow(L002, reason = \"fixture invariant\")\n    x.unwrap()\n}";
    let got = codes(LIB_PATH, src, &LintConfig::all(design));
    assert!(
        got.is_empty(),
        "allowed violation must be suppressed; got {got:?}"
    );
}

#[test]
fn inline_allow_without_reason_is_itself_a_violation() {
    let design = String::new();
    let src = "fn f(x: Option<u32>) -> u32 {\n    // ca-lint: allow(L002)\n    x.unwrap()\n}";
    let got = codes(LIB_PATH, src, &LintConfig::all(design));
    assert!(got.contains(&"L002"), "reason-less allow must not suppress");
    assert!(got.contains(&"L000"), "reason-less allow is reported");
}

#[test]
fn inline_allow_only_covers_its_own_lines() {
    let design = String::new();
    let src = "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // ca-lint: allow(L002, reason = \"first only\")\n    let a = x.unwrap();\n    let b = y.unwrap();\n    a + b\n}";
    let got = codes(LIB_PATH, src, &LintConfig::all(design));
    assert_eq!(
        got,
        vec!["L002"],
        "second unwrap (two lines below) still fires"
    );
}

// ------------------------------------------------- catalog sanity

#[test]
fn every_catalog_rule_has_a_fixture() {
    // Guards against adding a rule without extending this corpus: the
    // list here must mention every catalog code.
    let covered = [
        "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
    ];
    for (code, _, _) in CATALOG {
        assert!(covered.contains(&code), "no fixture coverage for {code}");
    }
}
