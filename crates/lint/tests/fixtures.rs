//! Fixture self-tests: one positive and one negative snippet per rule.
//!
//! Every positive fixture is asserted twice — the rule fires when
//! enabled, and the finding *disappears when the rule is disabled* — so
//! each rule is provably load-bearing (a rule that never fires, or a
//! harness that ignores `enabled`, fails here).

use ca_lint::rules::CATALOG;
use ca_lint::{lint_source, LintConfig};

/// A path inside a result-producing module for L001/L004 fixtures.
const RESULT_PATH: &str = "crates/query/src/engine/fixture.rs";
/// An ordinary library path for L002/L003/L005 fixtures.
const LIB_PATH: &str = "crates/gdm/src/fixture.rs";

fn codes(path: &str, src: &str, cfg: &LintConfig) -> Vec<&'static str> {
    lint_source(path, src, cfg)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

/// Assert `src` at `path` trips `rule` — and stops tripping it when the
/// rule is disabled.
fn assert_fires(rule: &'static str, path: &str, src: &str) {
    let design = "documented: CA_EVAL_THREADS CA_HOM_THREADS".to_string();
    let with = codes(path, src, &LintConfig::all(design.clone()));
    assert!(
        with.contains(&rule),
        "{rule} should fire on the positive fixture at {path}; got {with:?}"
    );
    let without = codes(path, src, &LintConfig::all_except(rule, design));
    assert!(
        !without.contains(&rule),
        "{rule} must vanish when disabled; got {without:?}"
    );
}

/// Assert `src` at `path` is clean for `rule` with every rule enabled.
fn assert_clean(rule: &'static str, path: &str, src: &str) {
    let design = "documented: CA_EVAL_THREADS CA_HOM_THREADS".to_string();
    let got = codes(path, src, &LintConfig::all(design));
    assert!(
        !got.contains(&rule),
        "{rule} must not fire on the negative fixture at {path}; got {got:?}"
    );
}

// ------------------------------------------------------------------ L001

#[test]
fn l001_fires_on_hashmap_iteration_in_result_module() {
    let src = r#"
use std::collections::HashMap;
pub fn answers() -> Vec<u32> {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    seen.insert(1, 2);
    let mut out = Vec::new();
    for (k, _) in &seen {
        out.push(*k);
    }
    out
}
"#;
    assert_fires("L001", RESULT_PATH, src);
}

#[test]
fn l001_fires_on_keys_method() {
    let src = "fn f() { let m: std::collections::HashSet<u32> = Default::default(); let v: Vec<_> = m.iter().collect(); }";
    assert_fires("L001", RESULT_PATH, src);
}

#[test]
fn l001_ignores_btreemap_and_lookup_only_hashmaps() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
pub fn answers() -> Vec<u32> {
    let mut sorted: BTreeMap<u32, u32> = BTreeMap::new();
    let cache: HashMap<u32, u32> = HashMap::new();
    let _ = cache.get(&3);
    sorted.insert(1, 2);
    sorted.keys().copied().collect()
}
"#;
    assert_clean("L001", RESULT_PATH, src);
}

#[test]
fn l001_is_scoped_to_result_modules() {
    let src = "fn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); for x in &m {} }";
    assert_clean("L001", "crates/gdm/src/generate.rs", src);
}

// ------------------------------------------------------------------ L002

#[test]
fn l002_fires_on_unwrap_expect_panic_and_literal_index() {
    assert_fires(
        "L002",
        LIB_PATH,
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    );
    assert_fires(
        "L002",
        LIB_PATH,
        "fn f(x: Option<u32>) -> u32 { x.expect(\"always\") }",
    );
    assert_fires("L002", LIB_PATH, "fn f() { panic!(\"boom\") }");
    assert_fires("L002", LIB_PATH, "fn f(v: &[u32]) -> u32 { v[0] }");
}

#[test]
fn l002_ignores_tests_benches_and_array_literals() {
    // In a #[cfg(test)] module: fine.
    assert_clean(
        "L002",
        LIB_PATH,
        "#[cfg(test)]\nmod tests {\n fn t(x: Option<u32>) { x.unwrap(); }\n}",
    );
    // In the bench crate: fine.
    assert_clean(
        "L002",
        "crates/bench/src/report.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
    );
    // Array literals and unwrap_or are not flagged.
    assert_clean(
        "L002",
        LIB_PATH,
        "fn f(x: Option<u32>) -> u32 { let _a = [0]; let _b = [0; 4]; x.unwrap_or(1) }",
    );
    // A commented-out unwrap is not code.
    assert_clean("L002", LIB_PATH, "fn f() {} // x.unwrap() would panic");
}

// ------------------------------------------------------------------ L003

#[test]
fn l003_fires_on_stray_threads_and_env_reads() {
    assert_fires("L003", LIB_PATH, "fn f() { std::thread::spawn(|| {}); }");
    assert_fires(
        "L003",
        LIB_PATH,
        "fn f() -> usize { std::env::var(\"CA_SECRET_KNOB\").map_or(1, |v| v.len()) }",
    );
}

#[test]
fn l003_sanctions_the_kernels_and_config() {
    assert_clean(
        "L003",
        "crates/query/src/engine/sweep.rs",
        "fn f() { std::thread::scope(|_| {}); }",
    );
    assert_clean(
        "L003",
        "crates/hom/src/csp.rs",
        "fn f() { std::thread::scope(|_| {}); }",
    );
    assert_clean(
        "L003",
        "crates/core/src/config.rs",
        "fn f() -> bool { std::env::var(\"CA_EVAL_THREADS\").is_ok() }",
    );
    // Non-CA_ env reads are out of scope for L003.
    assert_clean(
        "L003",
        LIB_PATH,
        "fn f() -> bool { std::env::var(\"PROPTEST_CASES\").is_ok() }",
    );
}

// ------------------------------------------------------------------ L004

#[test]
fn l004_fires_on_wall_clock_in_result_modules() {
    assert_fires(
        "L004",
        RESULT_PATH,
        "fn f() -> std::time::Instant { std::time::Instant::now() }",
    );
    assert_fires(
        "L004",
        RESULT_PATH,
        "fn f() { let _ = std::time::SystemTime::now(); }",
    );
}

#[test]
fn l004_allows_timing_in_benches_and_tests() {
    // Outside result modules: fine.
    assert_clean(
        "L004",
        "crates/bench/src/report.rs",
        "fn f() -> std::time::Instant { std::time::Instant::now() }",
    );
    // In a test module of a result module: fine.
    assert_clean(
        "L004",
        RESULT_PATH,
        "#[cfg(test)]\nmod tests {\n fn t() { let _ = std::time::Instant::now(); }\n}",
    );
}

// ------------------------------------------------------------------ L005

#[test]
fn l005_fires_on_undocumented_env_var() {
    assert_fires(
        "L005",
        LIB_PATH,
        "const KNOB: &str = \"CA_UNDOCUMENTED_KNOB\";",
    );
}

#[test]
fn l005_accepts_documented_vars_and_non_var_strings() {
    // CA_EVAL_THREADS is in the fixture design doc.
    assert_clean("L005", LIB_PATH, "const KNOB: &str = \"CA_EVAL_THREADS\";");
    // Lowercase / prefix-only strings are not env-var names.
    assert_clean(
        "L005",
        LIB_PATH,
        "const A: &str = \"CA_\"; const B: &str = \"ca_lower\"; const C: &str = \"CApital\";",
    );
}

// ------------------------------------------- suppression, end to end

#[test]
fn inline_allow_suppresses_with_reason() {
    let design = String::new();
    let src = "fn f(x: Option<u32>) -> u32 {\n    // ca-lint: allow(L002, reason = \"fixture invariant\")\n    x.unwrap()\n}";
    let got = codes(LIB_PATH, src, &LintConfig::all(design));
    assert!(
        got.is_empty(),
        "allowed violation must be suppressed; got {got:?}"
    );
}

#[test]
fn inline_allow_without_reason_is_itself_a_violation() {
    let design = String::new();
    let src = "fn f(x: Option<u32>) -> u32 {\n    // ca-lint: allow(L002)\n    x.unwrap()\n}";
    let got = codes(LIB_PATH, src, &LintConfig::all(design));
    assert!(got.contains(&"L002"), "reason-less allow must not suppress");
    assert!(got.contains(&"L000"), "reason-less allow is reported");
}

#[test]
fn inline_allow_only_covers_its_own_lines() {
    let design = String::new();
    let src = "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    // ca-lint: allow(L002, reason = \"first only\")\n    let a = x.unwrap();\n    let b = y.unwrap();\n    a + b\n}";
    let got = codes(LIB_PATH, src, &LintConfig::all(design));
    assert_eq!(
        got,
        vec!["L002"],
        "second unwrap (two lines below) still fires"
    );
}

// ------------------------------------------------- catalog sanity

#[test]
fn every_catalog_rule_has_a_fixture() {
    // Guards against adding a rule without extending this corpus: the
    // list here must mention every catalog code.
    let covered = ["L001", "L002", "L003", "L004", "L005"];
    for (code, _, _) in CATALOG {
        assert!(covered.contains(&code), "no fixture coverage for {code}");
    }
}
