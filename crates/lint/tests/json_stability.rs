//! The `--json` report is pinned to schema `ca-lint/2`: one object,
//! `violations` sorted by `(path, rule, line, message)`, two-space
//! indent. CI diffs these reports across runs and archives them as
//! artifacts, so the bytes must not depend on run count, file-discovery
//! order, or anything else ambient.

use ca_lint::{
    lint_sources, rel_path, render_json, workspace_files, workspace_manifests, LintConfig,
};

type NamedTexts = Vec<(String, String)>;

fn workspace_sources() -> (NamedTexts, NamedTexts) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    let manifests = workspace_manifests(&root).expect("read manifests");
    let sources = files
        .iter()
        .map(|f| {
            (
                rel_path(&root, f),
                std::fs::read_to_string(f).expect("read source"),
            )
        })
        .collect();
    (sources, manifests)
}

#[test]
fn json_report_is_byte_identical_across_runs_and_discovery_order() {
    let (sources, manifests) = workspace_sources();
    let cfg = LintConfig::all(String::new());

    let first = render_json(&lint_sources(&sources, &manifests, &cfg));
    let second = render_json(&lint_sources(&sources, &manifests, &cfg));
    assert_eq!(
        first, second,
        "two identical runs must emit identical bytes"
    );

    // Reverse the file-discovery order: the report must not change.
    let mut reversed = sources.clone();
    reversed.reverse();
    let mut rev_manifests = manifests.clone();
    rev_manifests.reverse();
    let third = render_json(&lint_sources(&reversed, &rev_manifests, &cfg));
    assert_eq!(
        first, third,
        "file-discovery order must not leak into the report"
    );

    assert!(first.starts_with("{\n  \"schema\": \"ca-lint/2\",\n"));
    assert!(first.ends_with("  ]\n}\n"));
}

#[test]
fn json_schema_shape_is_pinned() {
    // A tiny synthetic workspace with known violations, so the exact
    // bytes (ordering, indentation, escaping) are pinned — not just
    // stability of whatever the real tree happens to contain.
    let files = [
        (
            "crates/gdm/src/b.rs".to_string(),
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        ),
        (
            "crates/gdm/src/a.rs".to_string(),
            "fn g(x: Option<u32>) -> u32 { x.unwrap() }\n".to_string(),
        ),
    ];
    let cfg = LintConfig::all(String::new());
    let got = render_json(&lint_sources(&files, &[], &cfg));
    let want = concat!(
        "{\n",
        "  \"schema\": \"ca-lint/2\",\n",
        "  \"violations\": [\n",
        "    {\"path\": \"crates/gdm/src/a.rs\", \"rule\": \"L002\", \"line\": 1, ",
        "\"message\": \"`.unwrap()` in library code can panic; return a typed error ",
        "or use a documented-invariant match\"},\n",
        "    {\"path\": \"crates/gdm/src/b.rs\", \"rule\": \"L002\", \"line\": 1, ",
        "\"message\": \"`.unwrap()` in library code can panic; return a typed error ",
        "or use a documented-invariant match\"}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(got, want, "pinned ca-lint/2 bytes drifted");
}
