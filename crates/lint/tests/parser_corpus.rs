//! Parser robustness: the item parser must survive every source file in
//! the workspace and every pathological fragment we can compose, and its
//! output must stay structurally consistent with the lexer's token
//! stream (one owner entry per token, well-formed body spans, `fn` items
//! agreeing with `fn`-keyword token pairs).

use proptest::prelude::*;

use ca_lint::lexer::{lex, Lexed, TokKind};
use ca_lint::parser::{parse_items, FileItems, NO_OWNER};
use ca_lint::rules::test_mask;
use ca_lint::{rel_path, workspace_files};

fn parse(src: &str) -> (Lexed, FileItems) {
    let lexed = lex(src);
    let mask = test_mask(&lexed.toks);
    let items = parse_items(&lexed, &mask);
    (lexed, items)
}

/// The structural invariants every parse must satisfy, regardless of how
/// broken the input is.
fn check_invariants(path: &str, lexed: &Lexed, items: &FileItems) {
    assert_eq!(
        items.owner.len(),
        lexed.toks.len(),
        "{path}: one owner entry per token"
    );
    // `fn` items agree with the lexer: exactly one item per `fn` keyword
    // followed by an identifier.
    let fn_kws = lexed
        .toks
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            t.kind == TokKind::Ident
                && t.text == "fn"
                && lexed
                    .toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
        })
        .count();
    assert_eq!(items.fns.len(), fn_kws, "{path}: one FnItem per `fn` pair");
    for f in &items.fns {
        assert!(!f.name.is_empty(), "{path}: named fn");
        if f.has_body {
            assert!(f.body.0 <= f.body.1, "{path}: ordered body span");
            assert_eq!(
                lexed.toks[f.body.0].text, "{",
                "{path}: body starts at a brace"
            );
            assert!(f.body.1 < lexed.toks.len(), "{path}: body end in range");
        }
    }
    for (i, &o) in items.owner.iter().enumerate() {
        if o != NO_OWNER {
            let f = &items.fns[o as usize];
            assert!(f.has_body, "{path}: owner {o} has a body");
            assert!(
                f.body.0 <= i && i <= f.body.1,
                "{path}: token {i} inside its owner's span"
            );
        }
    }
}

/// Every `.rs` file in this workspace parses without panicking and
/// satisfies the structural invariants.
#[test]
fn workspace_corpus_parses_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let files = workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "corpus unexpectedly small: {}",
        files.len()
    );
    for file in files {
        let rel = rel_path(&root, &file);
        let src = std::fs::read_to_string(&file).expect("read source");
        let (lexed, items) = parse(&src);
        check_invariants(&rel, &lexed, &items);
    }
}

/// Hand-picked pathological inputs: brace-looking content inside string
/// and raw-string literals, `#[cfg(test)]` regions, unterminated items.
/// Each is pinned against lexer/parser agreement, not against a panic
/// backtrace.
#[test]
fn pathological_inputs_parse_clean() {
    let cases: &[&str] = &[
        // Braces inside ordinary strings must not open/close bodies.
        r#"fn a() { let s = "}} {{ } {"; inner(); }"#,
        // Nested raw strings with hashes and brace soup.
        r##"fn b() { let s = r#"fn fake() { }"#; }"##,
        r###"fn c() { let s = r##"r#"{ nested "# }"##; }"###,
        // A cfg(test) module wrapping a fn, then live code after it.
        "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live() {}",
        // Unterminated body, stray close braces, empty input.
        "fn d() { let x = 1;",
        "}}} fn e() {}",
        "",
        // char-vs-lifetime ambiguity around braces.
        "fn f<'a>(x: &'a u32) -> &'a u32 { let c = '}'; x }",
        // fn-pointer types and bodyless trait methods between items.
        "trait T { fn sig(&self); }\nfn g(h: fn(u32) -> u32) -> u32 { h('{' as u8 as u32) }",
        // Block comments hiding braces.
        "fn h() { /* } */ inner(); /* { */ }",
    ];
    for (i, src) in cases.iter().enumerate() {
        let (lexed, items) = parse(src);
        check_invariants(&format!("case #{i}"), &lexed, &items);
    }
    // The string-brace case must keep `inner` owned by `a`, proving the
    // lexer's string handling feeds the parser correct depths.
    let (lexed, items) = parse(r#"fn a() { let s = "}} {{ } {"; inner(); }"#);
    let inner = lexed
        .toks
        .iter()
        .position(|t| t.text == "inner")
        .expect("inner");
    assert_eq!(items.owner[inner], 0, "string braces must not close `a`");
}

/// Fragment pool for the randomized composer. Each fragment is valid or
/// deliberately broken Rust; random concatenations stress brace
/// tracking, test-mask propagation, and owner attribution.
const FRAGMENTS: &[&str] = &[
    "fn f() { g(); }\n",
    "fn g(x: u32) -> u32 { x }\n",
    "#[cfg(test)]\nmod tests { fn t() {} }\n",
    "mod m;\n",
    "use ca_core::store::FactStore;\n",
    "let s = \"{ } fn fake() {\";\n",
    "let r = r#\"} } {\"#;\n",
    "{\n",
    "}\n",
    "trait T { fn sig(&self); }\n",
    "// fn commented() { }\n",
    "struct S { field: u32 }\n",
    "impl S { fn m(&self) -> u32 { self.field } }\n",
    "'a' ; '\\'' ; '}'\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any composition of fragments — including ones that unbalance the
    /// brace depth mid-file — parses without panicking and satisfies the
    /// structural invariants.
    #[test]
    fn random_fragment_compositions_parse_clean(seed in any::<u64>()) {
        let mut state = seed;
        let mut next = move |bound: u64| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % bound
        };
        let n = 1 + next(24) as usize;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(FRAGMENTS[next(FRAGMENTS.len() as u64) as usize]);
        }
        let (lexed, items) = parse(&src);
        check_invariants("composed", &lexed, &items);
    }
}
