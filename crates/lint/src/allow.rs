//! Suppression: inline `// ca-lint: allow(...)` comments and the expiring
//! `lint-allow.toml` backlog file.
//!
//! Two layers, both requiring a *reason*:
//!
//! * **Inline** — `// ca-lint: allow(L002, reason = "documented # Panics")`
//!   suppresses matching violations on the comment's own line and on the
//!   line directly below it (so both trailing and line-above placement
//!   work). Several codes may be listed: `allow(L001, L004, reason = "…")`.
//!   A comment bearing the `ca-lint:` marker that does not parse, or whose
//!   reason is empty, is reported as an `L000` violation — it would
//!   otherwise silently suppress nothing (or worse, something).
//! * **File-level** — `lint-allow.toml` at the repo root carries the legacy
//!   backlog as `[[allow]]` entries with `path`, `rule`, `reason`, and a
//!   mandatory `expires = "YYYY-MM-DD"` date. Expired entries stop
//!   suppressing (the violations resurface in CI) and are reported, so the
//!   backlog can only shrink. The file is parsed by a tiny hand-rolled
//!   TOML-subset reader — the build is offline, so no `toml` crate.

use std::collections::BTreeSet;

use crate::lexer::Comment;
use crate::rules::{Violation, BAD_SUPPRESSION};

// ------------------------------------------------------- inline comments

/// A parsed inline suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineAllow {
    /// Line the comment starts on.
    pub line: u32,
    /// Rule codes it suppresses (`L001`…).
    pub codes: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
}

/// Does `code` look like a rule code (`L` + 3 digits)?
fn is_rule_code(code: &str) -> bool {
    code.len() == 4 && code.starts_with('L') && code[1..].bytes().all(|b| b.is_ascii_digit())
}

/// Extract inline suppressions from a file's comments. Returns the valid
/// suppressions plus an `L000` violation per malformed one.
pub fn inline_allows(path: &str, comments: &[Comment]) -> (Vec<InlineAllow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // A directive comment *starts* with the marker (`// ca-lint: …`);
        // prose that merely mentions the syntax mid-sentence is not one.
        let Some(directive) = c.text.trim_start().strip_prefix("ca-lint:") else {
            continue;
        };
        let directive = directive.trim();
        match parse_allow_directive(directive) {
            Ok((codes, reason)) => allows.push(InlineAllow {
                line: c.line,
                codes,
                reason,
            }),
            Err(why) => bad.push(Violation {
                rule: BAD_SUPPRESSION,
                path: path.to_string(),
                line: c.line,
                msg: format!("malformed ca-lint suppression: {why}"),
            }),
        }
    }
    (allows, bad)
}

/// Parse `allow(L001, L002, reason = "…")`.
fn parse_allow_directive(s: &str) -> Result<(Vec<String>, String), String> {
    let s = s.trim();
    let body = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|rest| rest.strip_prefix('('))
        .ok_or("expected `allow(…)`")?;
    let body = body
        .rfind(')')
        .map(|end| &body[..end])
        .ok_or("missing closing `)`")?;
    let mut codes = Vec::new();
    let mut reason = None;
    for part in split_top_level_commas(body) {
        let part = part.trim();
        if let Some(rest) = part.strip_prefix("reason") {
            let rest = rest.trim_start();
            let val = rest
                .strip_prefix('=')
                .map(str::trim)
                .ok_or("expected `reason = \"…\"`")?;
            let val = val
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or("reason must be a double-quoted string")?;
            if val.trim().is_empty() {
                return Err("reason must not be empty".into());
            }
            reason = Some(val.to_string());
        } else if is_rule_code(part) {
            codes.push(part.to_string());
        } else {
            return Err(format!("`{part}` is neither a rule code nor a reason"));
        }
    }
    if codes.is_empty() {
        return Err("no rule codes listed".into());
    }
    let reason = reason.ok_or("missing `reason = \"…\"` (suppressions must say why)")?;
    Ok((codes, reason))
}

/// Split on commas that are not inside a double-quoted string.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Apply inline suppressions: a violation on line `N` is suppressed by an
/// allow on line `N` (trailing comment) or line `N − 1` (line above).
/// Returns the surviving violations and the number suppressed.
pub fn apply_inline(violations: Vec<Violation>, allows: &[InlineAllow]) -> (Vec<Violation>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for v in violations {
        let hit = allows.iter().any(|a| {
            (a.line == v.line || a.line + 1 == v.line) && a.codes.iter().any(|c| c == v.rule)
        });
        if hit {
            suppressed += 1;
        } else {
            kept.push(v);
        }
    }
    (kept, suppressed)
}

// --------------------------------------------------- lint-allow.toml file

/// One `[[allow]]` entry of the backlog file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Repo-relative path (forward slashes) the entry covers.
    pub path: String,
    /// The single rule code it suppresses in that file.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Expiry as days since the Unix epoch; after this day the entry is
    /// inert and reported.
    pub expires_day: i64,
    /// The literal `YYYY-MM-DD` string, for reporting.
    pub expires: String,
}

/// The parsed backlog file.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// Days since the Unix epoch of a `YYYY-MM-DD` date (proleptic Gregorian;
/// Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Parse `YYYY-MM-DD` into days since the epoch.
fn parse_date(s: &str) -> Result<i64, String> {
    let parts: Vec<&str> = s.split('-').collect();
    let [y, m, d] = parts.as_slice() else {
        return Err(format!("`{s}` is not a YYYY-MM-DD date"));
    };
    let parse = |t: &str, lo: i64, hi: i64, what: &str| -> Result<i64, String> {
        let v: i64 = t
            .parse()
            .map_err(|_| format!("`{t}` is not a valid {what} in `{s}`"))?;
        if v < lo || v > hi {
            return Err(format!("{what} `{t}` out of range in `{s}`"));
        }
        Ok(v)
    };
    let y = parse(y, 1970, 9999, "year")?;
    let m = parse(m, 1, 12, "month")?;
    let d = parse(d, 1, 31, "day")?;
    Ok(days_from_civil(y, m as u32, d as u32))
}

/// Today as days since the Unix epoch (UTC). Used only to expire
/// allowlist entries — never to influence analysis results.
pub fn today_utc_day() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| (d.as_secs() / 86_400) as i64)
}

/// Strip a `#` comment that is outside any double-quoted string.
fn strip_line_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse the backlog file. Strict: unknown keys, missing fields, bad
/// rule codes, and bad dates are hard errors — a typo in a suppression
/// file must never silently widen what is suppressed.
pub fn parse_allowlist(text: &str) -> Result<Allowlist, String> {
    struct Partial {
        start_line: usize,
        path: Option<String>,
        rule: Option<String>,
        reason: Option<String>,
        expires: Option<String>,
    }
    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;
    let finish = |p: Partial| -> Result<AllowEntry, String> {
        let need = |f: Option<String>, what: &str| {
            f.ok_or(format!(
                "entry starting at line {}: missing `{what}`",
                p.start_line
            ))
        };
        let path = need(p.path.clone(), "path")?;
        let rule = need(p.rule.clone(), "rule")?;
        let reason = need(p.reason.clone(), "reason")?;
        let expires = need(p.expires.clone(), "expires")?;
        if !is_rule_code(&rule) {
            return Err(format!("`{rule}` is not a rule code (L001…)"));
        }
        if reason.trim().is_empty() {
            return Err(format!("entry for `{path}`: reason must not be empty"));
        }
        let expires_day = parse_date(&expires)?;
        Ok(AllowEntry {
            path,
            rule,
            reason,
            expires_day,
            expires,
        })
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_line_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(finish(p)?);
            }
            current = Some(Partial {
                start_line: lineno + 1,
                path: None,
                rule: None,
                reason: None,
                expires: None,
            });
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = \"value\"`", lineno + 1));
        };
        let Some(p) = current.as_mut() else {
            return Err(format!(
                "line {}: `{}` outside any [[allow]] entry",
                lineno + 1,
                key.trim()
            ));
        };
        let val = val
            .trim()
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or(format!("line {}: value must be double-quoted", lineno + 1))?
            .to_string();
        let slot = match key.trim() {
            "path" => &mut p.path,
            "rule" => &mut p.rule,
            "reason" => &mut p.reason,
            "expires" => &mut p.expires,
            other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
        };
        if slot.replace(val).is_some() {
            return Err(format!("line {}: duplicate `{}`", lineno + 1, key.trim()));
        }
    }
    if let Some(p) = current.take() {
        entries.push(finish(p)?);
    }
    Ok(Allowlist { entries })
}

/// The outcome of filtering violations through the allowlist.
pub struct AllowlistOutcome {
    /// Violations that survive.
    pub kept: Vec<Violation>,
    /// Count suppressed by live entries.
    pub suppressed: usize,
    /// Entries past their expiry date (reported; no longer suppressing).
    pub expired: Vec<AllowEntry>,
    /// Live entries that matched nothing (the backlog shrank — prune them).
    pub unused: Vec<AllowEntry>,
}

/// Filter `violations` through the allowlist as of `today` (days since
/// the epoch).
pub fn apply_allowlist(
    violations: Vec<Violation>,
    list: &Allowlist,
    today: i64,
) -> AllowlistOutcome {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for v in violations {
        let hit = list
            .entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.expires_day >= today && e.path == v.path && e.rule == v.rule);
        match hit {
            Some((i, _)) => {
                used.insert(i);
                suppressed += 1;
            }
            None => kept.push(v),
        }
    }
    let expired = list
        .entries
        .iter()
        .filter(|e| e.expires_day < today)
        .cloned()
        .collect();
    let unused = list
        .entries
        .iter()
        .enumerate()
        .filter(|(i, e)| e.expires_day >= today && !used.contains(i))
        .map(|(_, e)| e.clone())
        .collect();
    AllowlistOutcome {
        kept,
        suppressed,
        expired,
        unused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, line: u32) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line,
            msg: String::new(),
        }
    }

    #[test]
    fn directive_parses_codes_and_reason() {
        let (codes, reason) =
            parse_allow_directive("allow(L001, L004, reason = \"benchmarks, not results\")")
                .expect("valid directive");
        assert_eq!(codes, vec!["L001", "L004"]);
        assert_eq!(reason, "benchmarks, not results");
    }

    #[test]
    fn directive_requires_reason_and_codes() {
        assert!(parse_allow_directive("allow(L001)").is_err());
        assert!(parse_allow_directive("allow(reason = \"why\")").is_err());
        assert!(parse_allow_directive("allow(L001, reason = \"\")").is_err());
        assert!(parse_allow_directive("allow(L9999, reason = \"x\")").is_err());
        assert!(parse_allow_directive("disallow(L001)").is_err());
    }

    #[test]
    fn reason_may_contain_commas_and_parens() {
        let (codes, reason) =
            parse_allow_directive("allow(L002, reason = \"see len(), docs (Panics)\")")
                .expect("commas inside the reason string are fine");
        assert_eq!(codes, vec!["L002"]);
        assert_eq!(reason, "see len(), docs (Panics)");
    }

    #[test]
    fn inline_applies_same_line_and_line_above() {
        let allows = [InlineAllow {
            line: 10,
            codes: vec!["L002".into()],
            reason: "why".into(),
        }];
        let vs = vec![
            v("L002", "f.rs", 10),
            v("L002", "f.rs", 11),
            v("L002", "f.rs", 12),
        ];
        let (kept, n) = apply_inline(vs, &allows);
        assert_eq!(n, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.first().map(|k| k.line), Some(12));
    }

    #[test]
    fn inline_does_not_cross_rules() {
        let allows = [InlineAllow {
            line: 5,
            codes: vec!["L001".into()],
            reason: "why".into(),
        }];
        let (kept, n) = apply_inline(vec![v("L002", "f.rs", 5)], &allows);
        assert_eq!((kept.len(), n), (1, 0));
    }

    #[test]
    fn allowlist_roundtrip_and_expiry() {
        let text = r#"
# the legacy backlog
[[allow]]
path = "crates/hom/src/dp.rs"   # treewidth DP
rule = "L002"
reason = "legacy unwrap backlog"
expires = "2027-06-30"

[[allow]]
path = "crates/old/src/gone.rs"
rule = "L002"
reason = "already expired"
expires = "2020-01-01"
"#;
        let list = parse_allowlist(text).expect("parses");
        assert_eq!(list.entries.len(), 2);
        let today = parse_date("2026-08-06").expect("valid date");
        let vs = vec![
            v("L002", "crates/hom/src/dp.rs", 3),
            v("L002", "crates/old/src/gone.rs", 9),
            v("L001", "crates/hom/src/dp.rs", 4),
        ];
        let out = apply_allowlist(vs, &list, today);
        assert_eq!(out.suppressed, 1, "only the live entry suppresses");
        assert_eq!(out.kept.len(), 2);
        assert_eq!(out.expired.len(), 1);
        assert!(out.unused.is_empty());
    }

    #[test]
    fn allowlist_reports_unused_entries() {
        let text = "[[allow]]\npath = \"a.rs\"\nrule = \"L002\"\nreason = \"x\"\nexpires = \"2027-01-01\"\n";
        let list = parse_allowlist(text).expect("parses");
        let out = apply_allowlist(Vec::new(), &list, 0);
        assert_eq!(out.unused.len(), 1);
    }

    #[test]
    fn allowlist_rejects_typos() {
        assert!(
            parse_allowlist("[[allow]]\npath = \"a\"\nrule = \"L002\"\nreason = \"r\"\n").is_err(),
            "missing expires"
        );
        assert!(
            parse_allowlist("[[allow]]\npth = \"a\"\n").is_err(),
            "unknown key"
        );
        assert!(parse_allowlist("[[allow]]\npath = \"a\"\nrule = \"X1\"\nreason = \"r\"\nexpires = \"2027-01-01\"\n").is_err(), "bad rule code");
        assert!(
            parse_allowlist(
                "[[allow]]\npath = \"a\"\nrule = \"L002\"\nreason = \"r\"\nexpires = \"soon\"\n"
            )
            .is_err(),
            "bad date"
        );
        assert!(
            parse_allowlist("path = \"a\"\n").is_err(),
            "key outside entry"
        );
    }

    #[test]
    fn dates_compare_correctly() {
        let early = parse_date("2026-08-06").expect("valid");
        let later = parse_date("2026-12-31").expect("valid");
        assert!(early < later);
        assert_eq!(parse_date("1970-01-01").expect("epoch"), 0);
        assert_eq!(parse_date("1970-02-01").expect("feb"), 31);
    }
}
