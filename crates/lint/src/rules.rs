//! The rule engine: four per-file lexical rules and five graph-powered
//! workspace rules.
//!
//! Per-file rules match short token patterns produced by
//! [`crate::lexer`], scoped by file path and by `#[cfg(test)]` /
//! `#[test]` regions. Graph rules additionally see the workspace item
//! graph ([`crate::graph`]): function bodies, a conservative name-based
//! call graph, and the crate dependency DAG. The catalog (kept in sync
//! with DESIGN.md §Static analysis):
//!
//! | code | name | guards |
//! |------|------|--------|
//! | L002 | panic-in-library | `unwrap`/`expect`/`panic!`/indexing-by-literal in library code |
//! | L003 | thread-hygiene | `std::thread` / `CA_*` env reads outside sanctioned modules |
//! | L004 | wall-clock-in-results | `Instant`/`SystemTime` in result-producing modules |
//! | L005 | undocumented-env-var | every `CA_*` variable literal must appear in DESIGN.md |
//! | L006 | crate-layering | manifest deps and cross-crate `use` obey [`LAYERING`] |
//! | L007 | determinism-taint | hash iteration reachable from a deterministic-output seed |
//! | L008 | untrusted-input | unchecked parsing reachable from `SnapshotView` byte parsing |
//! | L009 | truncating-id-cast | `as u8/u16/u32` in `ValueId`/`FactId`-adjacent code |
//! | L010 | thread-merge | `std::thread` outside the kernels needs a deterministic merge |
//!
//! `L000` is reserved for malformed suppression comments (see
//! [`crate::allow`]): a suppression that cannot be parsed, or that lacks a
//! reason, is itself a violation — silence must always carry a why.
//!
//! L001 (nondeterministic-iteration, a per-file module-name heuristic)
//! is retired: L007 subsumes it with interprocedural reach from the
//! actual deterministic-output emitters instead of a path pattern.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{norm_crate, FileRecord, WorkspaceGraph};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::FnItem;

/// Reported code of the malformed-suppression pseudo-rule.
pub const BAD_SUPPRESSION: &str = "L000";

/// The rule catalog: `(code, name, summary)` for every real rule.
pub const CATALOG: [(&str, &str, &str); 9] = [
    (
        "L002",
        "panic-in-library",
        "unwrap/expect/panic!/indexing-by-literal in library code; use typed errors or a documented-invariant match",
    ),
    (
        "L003",
        "thread-hygiene",
        "std::thread and CA_* env reads are confined to the sanctioned kernel/config modules",
    ),
    (
        "L004",
        "wall-clock-in-results",
        "Instant/SystemTime must not influence result-producing modules",
    ),
    (
        "L005",
        "undocumented-env-var",
        "every CA_* environment variable must be documented in DESIGN.md",
    ),
    (
        "L006",
        "crate-layering",
        "manifest dependencies and cross-crate uses must respect the declared layering table (rules::LAYERING)",
    ),
    (
        "L007",
        "determinism-taint",
        "HashMap/HashSet iteration or RandomState reachable from a deterministic-output seed (certificate/snapshot/bench emitters); sort at the boundary or use a BTree collection",
    ),
    (
        "L008",
        "untrusted-input",
        "unchecked indexing, unwrap/expect, or unvalidated length arithmetic reachable from snapshot byte parsing; untrusted bytes must flow through checked reads",
    ),
    (
        "L009",
        "truncating-id-cast",
        "truncating `as` casts in ValueId/FactId-adjacent code; use u32::try_from or the checked id helpers",
    ),
    (
        "L010",
        "thread-merge",
        "std::thread outside the sanctioned kernels must merge per-thread results deterministically (sort / reduce in index order)",
    ),
];

/// Files allowed to touch `std::thread`: the parallel kernels plus the
/// config module (for `available_parallelism`).
const THREAD_SANCTIONED: [&str; 5] = [
    "crates/core/src/config.rs",
    "crates/core/src/store/ingest.rs",
    "crates/hom/src/csp.rs",
    "crates/query/src/engine/par.rs",
    "crates/query/src/engine/sweep.rs",
];

/// Files L010 does not scan for a deterministic merge: the three
/// original kernels, whose merge discipline predates the rule and is
/// pinned by the determinism suites directly. The newer thread modules
/// (`store/ingest.rs`, `engine/par.rs`) are deliberately *not* exempt —
/// their thread-using functions must carry an in-function merge marker,
/// so the rule actively covers them instead of allowlisting.
const THREAD_MERGE_EXEMPT: [&str; 3] = [
    "crates/core/src/config.rs",
    "crates/hom/src/csp.rs",
    "crates/query/src/engine/sweep.rs",
];

/// Files allowed to read `CA_*` environment variables: only the config
/// module — both kernels take their width through it.
const ENV_SANCTIONED: [&str; 1] = ["crates/core/src/config.rs"];

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule code (`L002`…`L010`, or [`BAD_SUPPRESSION`]).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

/// Engine configuration: which rules run, and the documentation corpus
/// that L005 checks env-var names against.
pub struct LintConfig {
    /// Enabled rule codes; rules not listed do not run.
    pub enabled: BTreeSet<&'static str>,
    /// Contents of `DESIGN.md` (empty ⇒ every `CA_*` literal is flagged).
    pub design_doc: String,
}

impl LintConfig {
    /// All five rules enabled against the given DESIGN.md contents.
    pub fn all(design_doc: String) -> Self {
        LintConfig {
            enabled: CATALOG.iter().map(|&(code, _, _)| code).collect(),
            design_doc,
        }
    }

    /// All rules except `code` — used by the fixture self-tests to assert
    /// each rule is load-bearing.
    pub fn all_except(code: &str, design_doc: String) -> Self {
        let mut cfg = LintConfig::all(design_doc);
        cfg.enabled.retain(|&c| c != code);
        cfg
    }
}

// ---------------------------------------------------------------- scopes

/// Vendored dependency stand-ins: not our code, never linted.
pub fn is_vendored(path: &str) -> bool {
    path.contains("proptest-shim") || path.contains("criterion-shim")
}

/// Result-producing modules (L004 scope): the query engine, the
/// certain-answer modules, and the CSP kernel — anywhere an internal
/// ordering or timing choice could reach a caller-visible answer.
fn is_result_module(path: &str) -> bool {
    path.contains("/engine/") || path.ends_with("certain.rs") || path.ends_with("csp.rs")
}

/// Library code for L002: excludes binaries, benches, the bench crate
/// (CLI tooling), and example/test trees.
fn is_library_code(path: &str) -> bool {
    !path.contains("/bin/")
        && !path.ends_with("main.rs")
        && !path.contains("crates/bench/")
        && !path.contains("/tests/")
        && !path.contains("/benches/")
        && !path.contains("/examples/")
}

fn in_list(path: &str, list: &[&str]) -> bool {
    list.contains(&path)
}

// ------------------------------------------------------- test-region mask

/// Mark every token covered by a `#[cfg(test)]` or `#[test]` item as
/// test code. The scan is lexical: an attribute whose tokens include the
/// ident `test` (and not `not`, to spare `#[cfg(not(test))]`) opens a
/// region at the next `{`, closed by its matching `}`.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || !matches!(toks.get(i + 1), Some(t) if t.text == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute body to its closing ']'.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "test" if toks[j].kind == TokKind::Ident => saw_test = true,
                "not" if toks[j].kind == TokKind::Ident => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Find the item's body: the first '{' before any ';'.
        let mut k = j;
        while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
            k += 1;
        }
        if k >= toks.len() || toks[k].text == ";" {
            i = k;
            continue;
        }
        let mut braces = 1usize;
        let mut end = k + 1;
        while end < toks.len() && braces > 0 {
            match toks[end].text.as_str() {
                "{" => braces += 1,
                "}" => braces -= 1,
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

// ------------------------------------------------------------- the rules

struct Ctx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    test: &'a [bool],
    out: Vec<Violation>,
}

impl Ctx<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.kind(i) == Some(TokKind::Ident) && self.text(i) == name
    }

    fn emit(&mut self, rule: &'static str, i: usize, msg: String) {
        self.out.push(Violation {
            rule,
            path: self.path.to_string(),
            line: self.toks[i].line,
            msg,
        });
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file
/// (whole-file, so struct fields cover `self.field` consumption inside
/// methods). Patterns (walking back over `std :: collections ::`-style
/// path prefixes from the type name):
///   `let [mut] NAME : [path::]Hash{Map,Set} …`
///   `let [mut] NAME = [path::]Hash{Map,Set} :: …`
///   `NAME : Hash{Map,Set} <`       (struct field / parameter)
fn hash_bound_names(toks: &[Tok], test: &[bool]) -> BTreeSet<String> {
    let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
    let kind = |i: usize| toks.get(i).map(|t| t.kind);
    let mut names: BTreeSet<String> = BTreeSet::new();
    for (i, &in_test) in test.iter().enumerate().take(toks.len()) {
        if in_test || kind(i) != Some(TokKind::Ident) || !matches!(text(i), "HashMap" | "HashSet") {
            continue;
        }
        // Walk back over a `seg ::` path prefix.
        let mut j = i;
        while j >= 2 && text(j - 1) == ":" && text(j - 2) == ":" {
            j -= 2;
            if j >= 1 && kind(j - 1) == Some(TokKind::Ident) {
                j -= 1;
            }
        }
        // Walk back over reference/lifetime/mut prefixes so borrowed
        // parameters (`m: &HashMap<…>`, `m: &'a mut HashMap<…>`) bind too.
        while j >= 1 && (matches!(text(j - 1), "&" | "mut") || text(j - 1).starts_with('\'')) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let name_idx = match text(j - 1) {
            // `NAME : HashMap` — but not `:: HashMap` (path, handled above)
            // and not `< … : …` generics: require an ident before the `:`.
            ":" if j >= 2 && text(j - 2) != ":" && kind(j - 2) == Some(TokKind::Ident) => {
                Some(j - 2)
            }
            // `NAME = HashMap::…`
            "=" if j >= 2 && kind(j - 2) == Some(TokKind::Ident) => Some(j - 2),
            _ => None,
        };
        if let Some(n) = name_idx {
            let name = text(n);
            if name != "let" && name != "mut" {
                names.insert(name.to_string());
            }
        }
    }
    names
}

/// Hash-collection methods whose call order reaches the consumer.
const ORDERED_CONSUMPTION: [&str; 5] = ["iter", "keys", "values", "into_iter", "drain"];

/// L002: panics in library code.
fn rule_l002(ctx: &mut Ctx<'_>) {
    if !is_library_code(ctx.path) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        // `. unwrap (` / `. expect (`.
        if ctx.text(i) == "."
            && matches!(ctx.text(i + 1), "unwrap" | "expect")
            && ctx.kind(i + 1) == Some(TokKind::Ident)
            && ctx.text(i + 2) == "("
        {
            let call = ctx.text(i + 1).to_string();
            ctx.emit(
                "L002",
                i,
                format!(
                    "`.{call}()` in library code can panic; return a typed error or use a \
                     documented-invariant match"
                ),
            );
        }
        // `panic !`.
        if ctx.is_ident(i, "panic") && ctx.text(i + 1) == "!" {
            ctx.emit(
                "L002",
                i,
                "`panic!` in library code; return a typed error instead".to_string(),
            );
        }
        // Indexing by integer literal: `expr [ 0 ]` where expr ends in an
        // identifier or a closing bracket (array literals `[0; 8]` and
        // attribute brackets do not match).
        if ctx.text(i) == "["
            && ctx.kind(i + 1) == Some(TokKind::Num)
            && ctx.text(i + 2) == "]"
            && i > 0
            && (ctx.kind(i - 1) == Some(TokKind::Ident) || matches!(ctx.text(i - 1), ")" | "]"))
            && !matches!(ctx.text(i.wrapping_sub(1)), "if" | "in" | "return" | "else")
        {
            let n = ctx.text(i + 1).to_string();
            ctx.emit(
                "L002",
                i,
                format!(
                    "indexing by literal `[{n}]` in library code can panic; prefer \
                     `.get({n})` or a slice pattern"
                ),
            );
        }
    }
}

/// L003: thread and `CA_*` env hygiene.
fn rule_l003(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        // `std :: thread` (any use: spawn, scope, available_parallelism).
        if ctx.is_ident(i, "std")
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && ctx.is_ident(i + 3, "thread")
            && !in_list(ctx.path, &THREAD_SANCTIONED)
        {
            ctx.emit(
                "L003",
                i,
                format!(
                    "`std::thread` outside the sanctioned modules ({}); route parallelism \
                     through the existing kernels so determinism stays provable",
                    THREAD_SANCTIONED.join(", ")
                ),
            );
        }
        // `env :: var ( "CA_…" )` (also var_os).
        if ctx.is_ident(i, "env")
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && matches!(ctx.text(i + 3), "var" | "var_os")
            && ctx.text(i + 4) == "("
            && ctx.kind(i + 5) == Some(TokKind::Str)
            && is_ca_var(ctx.text(i + 5))
            && !in_list(ctx.path, &ENV_SANCTIONED)
        {
            let var = ctx.text(i + 5).to_string();
            ctx.emit(
                "L003",
                i,
                format!(
                    "`{var}` read outside {}; all CA_* knobs go through ca_core::config",
                    ENV_SANCTIONED.join(", ")
                ),
            );
        }
    }
}

/// L004: wall-clock reads in result-producing modules.
fn rule_l004(ctx: &mut Ctx<'_>) {
    if !is_result_module(ctx.path) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        if ctx.kind(i) == Some(TokKind::Ident) && matches!(ctx.text(i), "Instant" | "SystemTime") {
            let what = ctx.text(i).to_string();
            ctx.emit(
                "L004",
                i,
                format!(
                    "`{what}` in a result-producing module; wall-clock time must never \
                     influence certain-answer output (benchmarks live in crates/bench)"
                ),
            );
        }
    }
}

/// Is `lit` a `CA_*` environment-variable name (`CA_` + at least one
/// `[A-Z0-9_]` character, nothing else)?
fn is_ca_var(lit: &str) -> bool {
    lit.len() > 3
        && lit.starts_with("CA_")
        && lit
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// L005: every `CA_*` string literal in non-test code must be documented.
fn rule_l005(ctx: &mut Ctx<'_>, design_doc: &str) {
    for i in 0..ctx.toks.len() {
        if ctx.test[i] || ctx.kind(i) != Some(TokKind::Str) {
            continue;
        }
        let lit = ctx.text(i);
        if is_ca_var(lit) && !design_doc.contains(lit) {
            let lit = lit.to_string();
            ctx.emit(
                "L005",
                i,
                format!("environment variable `{lit}` is not documented in DESIGN.md"),
            );
        }
    }
}

/// Run every enabled rule over one lexed file. `path` must be
/// repo-relative with forward slashes. Suppressions are *not* applied
/// here — see [`crate::lint_source`].
pub fn run_rules(path: &str, lexed: &Lexed, cfg: &LintConfig) -> Vec<Violation> {
    if is_vendored(path) {
        return Vec::new();
    }
    let test = test_mask(&lexed.toks);
    let mut ctx = Ctx {
        path,
        toks: &lexed.toks,
        test: &test,
        out: Vec::new(),
    };
    if cfg.enabled.contains("L002") {
        rule_l002(&mut ctx);
    }
    if cfg.enabled.contains("L003") {
        rule_l003(&mut ctx);
    }
    if cfg.enabled.contains("L004") {
        rule_l004(&mut ctx);
    }
    if cfg.enabled.contains("L005") {
        rule_l005(&mut ctx, &cfg.design_doc);
    }
    let mut out = ctx.out;
    out.sort_by(|a, b| (a.line, a.rule, &a.msg).cmp(&(b.line, b.rule, &b.msg)));
    out
}

// ------------------------------------------------- graph-powered rules

/// L006 layering table: for every workspace package, the complete set
/// of workspace crates it may depend on — by manifest `[dependencies]`
/// or by `use`/qualified path in non-test source. A crate absent from
/// this table is itself a violation: new crates must be placed in the
/// hierarchy deliberately. Kept in sync with DESIGN.md §Static analysis.
pub const LAYERING: &[(&str, &[&str])] = &[
    ("ca-core", &[]),
    ("ca-lint", &[]),
    ("ca-cert", &["ca-core"]),
    ("ca-hom", &["ca-core", "ca-cert"]),
    ("ca-relational", &["ca-core", "ca-cert", "ca-hom"]),
    (
        "ca-query",
        &["ca-core", "ca-cert", "ca-hom", "ca-relational"],
    ),
    ("ca-xml", &["ca-core", "ca-hom", "ca-relational"]),
    ("ca-graph", &["ca-core", "ca-hom", "ca-relational"]),
    (
        "ca-gdm",
        &[
            "ca-core",
            "ca-hom",
            "ca-relational",
            "ca-xml",
            "ca-graph",
            "ca-query",
        ],
    ),
    (
        "ca-exchange",
        &[
            "ca-core",
            "ca-cert",
            "ca-hom",
            "ca-relational",
            "ca-gdm",
            "ca-query",
            "ca-graph",
            "ca-xml",
        ],
    ),
    (
        "ca-bench",
        &[
            "ca-core",
            "ca-cert",
            "ca-hom",
            "ca-relational",
            "ca-query",
            "ca-xml",
            "ca-graph",
            "ca-gdm",
            "ca-exchange",
        ],
    ),
    (
        "certain-answers",
        &[
            "ca-core",
            "ca-cert",
            "ca-hom",
            "ca-relational",
            "ca-query",
            "ca-xml",
            "ca-graph",
            "ca-gdm",
            "ca-exchange",
            "ca-bench",
        ],
    ),
];

/// L007 taint seeds: functions whose output is promised byte-identical
/// across thread widths and store rebuilds — certificate byte emitters,
/// the snapshot writer, and every bench binary (they write BENCH json
/// and result tables that the paper-reproduction diffing compares).
pub fn is_determinism_seed(path: &str, name: &str) -> bool {
    let byte_emitter =
        path == "crates/cert/src/bytes.rs" || path == "crates/core/src/store/snapshot.rs";
    // Plan choice is pinned deterministic (the planner differential
    // tests compare compiled plans structurally across runs), so the
    // statistics collector, the plan-cache lookup, and the cost-based
    // orderer are determinism-sensitive roots alongside the byte
    // emitters.
    let stats = path == "crates/core/src/store/stats.rs" && name == "compute_exact";
    let cache = path == "crates/query/src/engine/cache.rs" && name == "lookup";
    let planner = path == "crates/query/src/engine/cost.rs" && name == "order";
    (byte_emitter && name == "to_bytes")
        || stats
        || cache
        || planner
        || (path.starts_with("crates/bench/src/bin/") && name == "main")
}

/// Frozen differential oracles: deliberately naive code whose outputs
/// are compared order-insensitively, exempt from L007.
fn is_determinism_exempt(path: &str) -> bool {
    path.ends_with("/reference.rs")
}

/// L008 taint seeds: the snapshot byte-parsing entry points. Everything
/// they reach handles attacker-controllable bytes.
pub fn is_untrusted_seed(path: &str, name: &str) -> bool {
    path == "crates/core/src/store/snapshot.rs" && (name == "parse" || name == "from_bytes")
}

/// L010 deterministic-merge markers: a thread-using function must fold
/// its per-thread results through one of these (sort family, ordered
/// reduce/fold, or an order-insensitive aggregate) before they escape.
pub const MERGE_MARKERS: [&str; 15] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "reduce",
    "fold",
    "min",
    "min_by",
    "min_by_key",
    "max",
    "max_by",
    "max_by_key",
    "sum",
];

fn push(out: &mut Vec<Violation>, rule: &'static str, path: &str, line: u32, msg: String) {
    out.push(Violation {
        rule,
        path: path.to_string(),
        line,
        msg,
    });
}

fn layering_of(pkg: &str) -> Option<&'static [&'static str]> {
    LAYERING
        .iter()
        .find(|&&(p, _)| p == pkg)
        .map(|&(_, allowed)| allowed)
}

/// L006: crate layering, checked both in the manifests and at every
/// cross-crate `use`/qualified path in non-test source.
fn rule_l006(files: &[FileRecord], g: &WorkspaceGraph, out: &mut Vec<Violation>) {
    for m in &g.manifests {
        if m.package.is_empty() || is_vendored(&m.path) {
            continue;
        }
        let Some(allowed) = layering_of(&m.package) else {
            push(
                out,
                "L006",
                &m.path,
                1,
                format!(
                    "crate `{}` is not in the layering table (rules::LAYERING); \
                     place new crates in the hierarchy deliberately",
                    m.package
                ),
            );
            continue;
        };
        for (dep, line) in &m.deps {
            if dep.starts_with("ca-") && !allowed.contains(&dep.as_str()) {
                push(
                    out,
                    "L006",
                    &m.path,
                    *line,
                    format!(
                        "`{}` may not depend on `{dep}`; the layering table allows only [{}]",
                        m.package,
                        allowed.join(", ")
                    ),
                );
            }
        }
    }
    for (fi, f) in files.iter().enumerate() {
        let me = &g.file_crate[fi];
        let Some(allowed) = layering_of(me) else {
            continue; // the manifest check already reported the crate
        };
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        let refs = f
            .items
            .uses
            .iter()
            .filter(|u| !u.is_test)
            .map(|u| (u.line, u.root.as_str()))
            .chain(
                f.items
                    .path_heads
                    .iter()
                    .filter(|p| !p.is_test)
                    .map(|p| (p.line, p.name.as_str())),
            );
        for (line, name) in refs {
            let pkg = norm_crate(name);
            if !pkg.starts_with("ca-") || pkg == *me || allowed.contains(&pkg.as_str()) {
                continue;
            }
            if seen.insert((line, pkg.clone())) {
                push(
                    out,
                    "L006",
                    &f.path,
                    line,
                    format!(
                        "`{me}` may not use `{pkg}`; the layering table allows only [{}]",
                        allowed.join(", ")
                    ),
                );
            }
        }
    }
}

/// Token indices a function body owns directly (its own code, excluding
/// nested fns and test regions).
fn owned_tokens(f: &FileRecord, local: usize, item: &FnItem) -> Vec<usize> {
    if !item.has_body {
        return Vec::new();
    }
    let local = u32::try_from(local).unwrap_or(u32::MAX);
    (item.body.0..=item.body.1.min(f.lexed.toks.len().saturating_sub(1)))
        .filter(|&i| {
            f.items.owner.get(i).copied() == Some(local) && !f.test.get(i).copied().unwrap_or(true)
        })
        .collect()
}

/// L007: interprocedural determinism taint. BFS forward from the seed
/// emitters over the call graph; in every reached function, flag hash
/// iteration (via [`hash_bound_names`] collected file-wide, so struct
/// fields count) and `RandomState` construction.
fn rule_l007(files: &[FileRecord], g: &WorkspaceGraph, out: &mut Vec<Violation>) {
    let seeds: Vec<u32> = g
        .fns
        .iter()
        .enumerate()
        .filter(|&(_, f)| is_determinism_seed(&files[f.file].path, &f.name))
        .map(|(id, _)| u32::try_from(id).unwrap_or(u32::MAX))
        .collect();
    let origin = g.reachable_from(&seeds);
    let mut names_cache: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (id, node) in g.fns.iter().enumerate() {
        let Some(seed) = origin[id] else {
            continue;
        };
        let f = &files[node.file];
        if is_determinism_exempt(&f.path) {
            continue;
        }
        let Some(item) = f.items.fns.get(node.local) else {
            continue;
        };
        let seed_node = &g.fns[seed as usize];
        let seed_label = format!("{}::{}", files[seed_node.file].path, seed_node.name);
        let names = names_cache
            .entry(node.file)
            .or_insert_with(|| hash_bound_names(&f.lexed.toks, &f.test));
        let toks = &f.lexed.toks;
        let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
        for i in owned_tokens(f, node.local, item) {
            if toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = text(i);
            if name == "RandomState" {
                push(
                    out,
                    "L007",
                    &f.path,
                    toks[i].line,
                    format!(
                        "`RandomState` in `{}`, reachable from deterministic-output seed \
                         `{seed_label}`; seeded hashing breaks byte-identical replay",
                        item.name
                    ),
                );
                continue;
            }
            if !names.contains(name) {
                continue;
            }
            // `NAME . iter ( ` and friends.
            if text(i + 1) == "."
                && ORDERED_CONSUMPTION.contains(&text(i + 2))
                && text(i + 3) == "("
            {
                let method = text(i + 2);
                push(
                    out,
                    "L007",
                    &f.path,
                    toks[i].line,
                    format!(
                        "`{name}.{method}()` iterates a hash collection in `{}`, reachable \
                         from deterministic-output seed `{seed_label}`; hash order is \
                         nondeterministic — sort at the boundary or use a BTree collection",
                        item.name
                    ),
                );
                continue;
            }
            // `for PAT in [&] [mut] NAME {` — direct loop.
            if text(i + 1) == "{" {
                let mut j = i;
                while j > 0 && matches!(text(j - 1), "&" | "mut") {
                    j -= 1;
                }
                if j > 0
                    && toks.get(j - 1).is_some_and(|t| t.kind == TokKind::Ident)
                    && text(j - 1) == "in"
                {
                    push(
                        out,
                        "L007",
                        &f.path,
                        toks[i].line,
                        format!(
                            "`for … in {name}` iterates a hash collection in `{}`, reachable \
                             from deterministic-output seed `{seed_label}`; hash order is \
                             nondeterministic — sort at the boundary or use a BTree collection",
                            item.name
                        ),
                    );
                }
            }
        }
    }
}

/// An identifier that names a length/offset quantity — the operands
/// whose unchecked arithmetic L008 flags.
fn is_lenish(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && (matches!(t.text.as_str(), "len" | "off" | "offset" | "page")
            || t.text.ends_with("_len")
            || t.text.ends_with("_off")
            || t.text.ends_with("_offset")
            || t.text.starts_with("n_"))
}

/// L008: untrusted-input hygiene in everything reachable from snapshot
/// byte parsing: no unwrap/expect, no unchecked indexing, no raw `+`/`*`
/// on length-ish operands (use `checked_add`/`checked_mul` or the
/// snapshot `advance` helper, which reject overflow as `Corrupt`).
fn rule_l008(files: &[FileRecord], g: &WorkspaceGraph, out: &mut Vec<Violation>) {
    let seeds: Vec<u32> = g
        .fns
        .iter()
        .enumerate()
        .filter(|&(_, f)| is_untrusted_seed(&files[f.file].path, &f.name))
        .map(|(id, _)| u32::try_from(id).unwrap_or(u32::MAX))
        .collect();
    let origin = g.reachable_from(&seeds);
    for (id, node) in g.fns.iter().enumerate() {
        if origin[id].is_none() {
            continue;
        }
        let f = &files[node.file];
        let Some(item) = f.items.fns.get(node.local) else {
            continue;
        };
        let toks = &f.lexed.toks;
        let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
        let kind = |i: usize| toks.get(i).map(|t| t.kind);
        for i in owned_tokens(f, node.local, item) {
            // `. unwrap (` / `. expect (`.
            if text(i) == "."
                && matches!(text(i + 1), "unwrap" | "expect")
                && kind(i + 1) == Some(TokKind::Ident)
                && text(i + 2) == "("
            {
                push(
                    out,
                    "L008",
                    &f.path,
                    toks[i].line,
                    format!(
                        "`.{}()` in `{}`, reachable from snapshot byte parsing; untrusted \
                         bytes must surface as a typed SnapshotError, never a panic",
                        text(i + 1),
                        item.name
                    ),
                );
            }
            // Unchecked indexing/slicing: `expr [ … ]` where expr ends in
            // an identifier or closing bracket. Array literals, types and
            // attributes do not match.
            if text(i) == "["
                && i > 0
                && (matches!(text(i - 1), ")" | "]")
                    || (kind(i - 1) == Some(TokKind::Ident)
                        && !matches!(
                            text(i - 1),
                            "if" | "in" | "return" | "else" | "match" | "loop" | "break"
                        )))
            {
                push(
                    out,
                    "L008",
                    &f.path,
                    toks[i].line,
                    format!(
                        "unchecked indexing in `{}`, reachable from snapshot byte parsing; \
                         use `.get(..)` and map a miss to SnapshotError::Corrupt",
                        item.name
                    ),
                );
            }
            // Unvalidated length arithmetic: binary `+`/`*` with a
            // length-ish identifier within three tokens either side.
            // Compound assignments (`+=`, `*=`) are counter updates, not
            // offset computation into the byte buffer, and are skipped.
            if matches!(text(i), "+" | "*")
                && kind(i) == Some(TokKind::Punct)
                && text(i + 1) != "="
                && i > 0
                && (matches!(kind(i - 1), Some(TokKind::Ident) | Some(TokKind::Num))
                    || matches!(text(i - 1), ")" | "]"))
            {
                let window = (i.saturating_sub(3)..=(i + 3).min(toks.len().saturating_sub(1)))
                    .filter(|&j| j != i);
                let mut lenish = false;
                for j in window {
                    if toks.get(j).is_some_and(is_lenish) {
                        lenish = true;
                    }
                }
                if lenish {
                    push(
                        out,
                        "L008",
                        &f.path,
                        toks[i].line,
                        format!(
                            "unvalidated length arithmetic (`{}`) in `{}`, reachable from \
                             snapshot byte parsing; overflow on attacker-sized lengths must \
                             go through checked_add/checked_mul (or the advance helper)",
                            text(i),
                            item.name
                        ),
                    );
                }
            }
        }
    }
}

/// L009: truncating `as` casts in id-typed store code. Scope: library
/// files under `crates/core/src/` plus any library file whose tokens
/// mention `ValueId`/`FactId` (store-adjacent engine code).
fn rule_l009(files: &[FileRecord], out: &mut Vec<Violation>) {
    for f in files {
        if !is_library_code(&f.path) {
            continue;
        }
        let toks = &f.lexed.toks;
        let in_scope = f.path.starts_with("crates/core/src/")
            || toks.iter().any(|t| {
                t.kind == TokKind::Ident && matches!(t.text.as_str(), "ValueId" | "FactId")
            });
        if !in_scope {
            continue;
        }
        let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
        for i in 0..toks.len() {
            if f.test.get(i).copied().unwrap_or(true) {
                continue;
            }
            if toks[i].kind == TokKind::Ident
                && text(i) == "as"
                && matches!(text(i + 1), "u8" | "u16" | "u32")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                push(
                    out,
                    "L009",
                    &f.path,
                    toks[i].line,
                    format!(
                        "truncating cast `as {}` in id-typed store code; a silently wrapped \
                         id aliases unrelated values — use u32::try_from or \
                         ca_core::store::dense_count",
                        text(i + 1)
                    ),
                );
            }
        }
    }
}

/// L010: thread-scope hygiene. Any function outside the merge-exempt
/// kernels ([`THREAD_MERGE_EXEMPT`]) that touches `std::thread` must
/// contain a deterministic merge of the per-thread results
/// ([`MERGE_MARKERS`]) — including the sanctioned thread modules added
/// after the rule (`store/ingest.rs`, `engine/par.rs`).
fn rule_l010(files: &[FileRecord], out: &mut Vec<Violation>) {
    for f in files {
        if in_list(&f.path, &THREAD_MERGE_EXEMPT) {
            continue;
        }
        let toks = &f.lexed.toks;
        let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
        for (local, item) in f.items.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            let owned = owned_tokens(f, local, item);
            let thread_at = owned.iter().copied().find(|&i| {
                toks[i].kind == TokKind::Ident
                    && text(i) == "std"
                    && text(i + 1) == ":"
                    && text(i + 2) == ":"
                    && text(i + 3) == "thread"
            });
            let Some(at) = thread_at else {
                continue;
            };
            let merged = owned.iter().copied().any(|i| {
                toks[i].kind == TokKind::Ident
                    && MERGE_MARKERS.contains(&text(i))
                    && text(i + 1) == "("
            });
            if !merged {
                push(
                    out,
                    "L010",
                    &f.path,
                    toks[at].line,
                    format!(
                        "`std::thread` in `{}` without a deterministic merge: fold the \
                         per-thread results in index order (sort/reduce/fold/min/max/sum) \
                         before they escape the function",
                        item.name
                    ),
                );
            }
        }
    }
}

/// Run the graph-powered rules (L006–L010) over a parsed workspace.
/// `files` must already exclude vendored code; suppressions are applied
/// by the caller ([`crate::lint_sources`]).
pub fn run_graph_rules(
    files: &[FileRecord],
    g: &WorkspaceGraph,
    cfg: &LintConfig,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if cfg.enabled.contains("L006") {
        rule_l006(files, g, &mut out);
    }
    if cfg.enabled.contains("L007") {
        rule_l007(files, g, &mut out);
    }
    if cfg.enabled.contains("L008") {
        rule_l008(files, g, &mut out);
    }
    if cfg.enabled.contains("L009") {
        rule_l009(files, &mut out);
    }
    if cfg.enabled.contains("L010") {
        rule_l010(files, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule, &a.msg).cmp(&(&b.path, b.line, b.rule, &b.msg)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let unwrap_idx = lexed
            .toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(mask[unwrap_idx]);
        let after_idx = lexed
            .toks
            .iter()
            .position(|t| t.text == "after")
            .expect("after token");
        assert!(!mask[after_idx]);
    }

    #[test]
    fn test_mask_ignores_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn shipped() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        assert!(mask.iter().all(|&m| !m), "cfg(not(test)) is live code");
    }

    #[test]
    fn test_mask_handles_test_attribute_on_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let ups: Vec<usize> = lexed
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ups.len(), 2);
        assert!(mask[ups[0]] && !mask[ups[1]]);
    }
}
