//! The rule engine and the five repo-grounded rules.
//!
//! Rules are lexical: they match short token patterns produced by
//! [`crate::lexer`], scoped by file path and by `#[cfg(test)]` / `#[test]`
//! regions. The catalog (kept in sync with DESIGN.md §Static analysis):
//!
//! | code | name | guards |
//! |------|------|--------|
//! | L001 | nondeterministic-iteration | `HashMap`/`HashSet` iteration in result-producing modules |
//! | L002 | panic-in-library | `unwrap`/`expect`/`panic!`/indexing-by-literal in library code |
//! | L003 | thread-hygiene | `std::thread` / `CA_*` env reads outside sanctioned modules |
//! | L004 | wall-clock-in-results | `Instant`/`SystemTime` in result-producing modules |
//! | L005 | undocumented-env-var | every `CA_*` variable literal must appear in DESIGN.md |
//!
//! `L000` is reserved for malformed suppression comments (see
//! [`crate::allow`]): a suppression that cannot be parsed, or that lacks a
//! reason, is itself a violation — silence must always carry a why.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, Tok, TokKind};

/// Reported code of the malformed-suppression pseudo-rule.
pub const BAD_SUPPRESSION: &str = "L000";

/// The rule catalog: `(code, name, summary)` for every real rule.
pub const CATALOG: [(&str, &str, &str); 5] = [
    (
        "L001",
        "nondeterministic-iteration",
        "HashMap/HashSet iteration order can leak into results; sort at the boundary or use BTreeMap/BTreeSet",
    ),
    (
        "L002",
        "panic-in-library",
        "unwrap/expect/panic!/indexing-by-literal in library code; use typed errors or a documented-invariant match",
    ),
    (
        "L003",
        "thread-hygiene",
        "std::thread and CA_* env reads are confined to the sanctioned kernel/config modules",
    ),
    (
        "L004",
        "wall-clock-in-results",
        "Instant/SystemTime must not influence result-producing modules",
    ),
    (
        "L005",
        "undocumented-env-var",
        "every CA_* environment variable must be documented in DESIGN.md",
    ),
];

/// Files allowed to touch `std::thread`: the two parallel kernels plus the
/// config module (for `available_parallelism`).
const THREAD_SANCTIONED: [&str; 3] = [
    "crates/core/src/config.rs",
    "crates/hom/src/csp.rs",
    "crates/query/src/engine/sweep.rs",
];

/// Files allowed to read `CA_*` environment variables: only the config
/// module — both kernels take their width through it.
const ENV_SANCTIONED: [&str; 1] = ["crates/core/src/config.rs"];

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule code (`L001`…`L005`, or [`BAD_SUPPRESSION`]).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

/// Engine configuration: which rules run, and the documentation corpus
/// that L005 checks env-var names against.
pub struct LintConfig {
    /// Enabled rule codes; rules not listed do not run.
    pub enabled: BTreeSet<&'static str>,
    /// Contents of `DESIGN.md` (empty ⇒ every `CA_*` literal is flagged).
    pub design_doc: String,
}

impl LintConfig {
    /// All five rules enabled against the given DESIGN.md contents.
    pub fn all(design_doc: String) -> Self {
        LintConfig {
            enabled: CATALOG.iter().map(|&(code, _, _)| code).collect(),
            design_doc,
        }
    }

    /// All rules except `code` — used by the fixture self-tests to assert
    /// each rule is load-bearing.
    pub fn all_except(code: &str, design_doc: String) -> Self {
        let mut cfg = LintConfig::all(design_doc);
        cfg.enabled.retain(|&c| c != code);
        cfg
    }
}

// ---------------------------------------------------------------- scopes

/// Vendored dependency stand-ins: not our code, never linted.
fn is_vendored(path: &str) -> bool {
    path.contains("proptest-shim") || path.contains("criterion-shim")
}

/// Result-producing modules (L001/L004 scope): the query engine, the
/// certain-answer modules, and the CSP kernel — anywhere an internal
/// ordering or timing choice could reach a caller-visible answer.
fn is_result_module(path: &str) -> bool {
    path.contains("/engine/") || path.ends_with("certain.rs") || path.ends_with("csp.rs")
}

/// Library code for L002: excludes binaries, benches, the bench crate
/// (CLI tooling), and example/test trees.
fn is_library_code(path: &str) -> bool {
    !path.contains("/bin/")
        && !path.ends_with("main.rs")
        && !path.contains("crates/bench/")
        && !path.contains("/tests/")
        && !path.contains("/benches/")
        && !path.contains("/examples/")
}

fn in_list(path: &str, list: &[&str]) -> bool {
    list.contains(&path)
}

// ------------------------------------------------------- test-region mask

/// Mark every token covered by a `#[cfg(test)]` or `#[test]` item as
/// test code. The scan is lexical: an attribute whose tokens include the
/// ident `test` (and not `not`, to spare `#[cfg(not(test))]`) opens a
/// region at the next `{`, closed by its matching `}`.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || !matches!(toks.get(i + 1), Some(t) if t.text == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute body to its closing ']'.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                "test" if toks[j].kind == TokKind::Ident => saw_test = true,
                "not" if toks[j].kind == TokKind::Ident => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Find the item's body: the first '{' before any ';'.
        let mut k = j;
        while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
            k += 1;
        }
        if k >= toks.len() || toks[k].text == ";" {
            i = k;
            continue;
        }
        let mut braces = 1usize;
        let mut end = k + 1;
        while end < toks.len() && braces > 0 {
            match toks[end].text.as_str() {
                "{" => braces += 1,
                "}" => braces -= 1,
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

// ------------------------------------------------------------- the rules

struct Ctx<'a> {
    path: &'a str,
    toks: &'a [Tok],
    test: &'a [bool],
    out: Vec<Violation>,
}

impl Ctx<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.kind(i) == Some(TokKind::Ident) && self.text(i) == name
    }

    fn emit(&mut self, rule: &'static str, i: usize, msg: String) {
        self.out.push(Violation {
            rule,
            path: self.path.to_string(),
            line: self.toks[i].line,
            msg,
        });
    }
}

/// L001: collect identifiers declared with a `HashMap`/`HashSet` type or
/// initializer, then flag ordered consumption of them.
fn rule_l001(ctx: &mut Ctx<'_>) {
    if !is_result_module(ctx.path) {
        return;
    }
    // Pass 1: names bound to hash collections. Patterns (walking back over
    // `std :: collections ::`-style path prefixes from the type name):
    //   let [mut] NAME : [path::]Hash{Map,Set} …
    //   let [mut] NAME = [path::]Hash{Map,Set} :: …
    //   NAME : Hash{Map,Set} <       (struct field / parameter)
    let mut names: BTreeSet<String> = BTreeSet::new();
    for i in 0..ctx.toks.len() {
        if ctx.test[i]
            || ctx.kind(i) != Some(TokKind::Ident)
            || !matches!(ctx.text(i), "HashMap" | "HashSet")
        {
            continue;
        }
        // Walk back over a `seg ::` path prefix.
        let mut j = i;
        while j >= 2 && ctx.text(j - 1) == ":" && ctx.text(j - 2) == ":" {
            j -= 2;
            if j >= 1 && ctx.kind(j - 1) == Some(TokKind::Ident) {
                j -= 1;
            }
        }
        if j == 0 {
            continue;
        }
        let before = ctx.text(j - 1);
        let name_idx = match before {
            // `NAME : HashMap` — but not `:: HashMap` (path, handled above)
            // and not `< … : …` generics: require an ident before the `:`.
            ":" if j >= 2 && ctx.text(j - 2) != ":" && ctx.kind(j - 2) == Some(TokKind::Ident) => {
                Some(j - 2)
            }
            // `NAME = HashMap::…`
            "=" if j >= 2 && ctx.kind(j - 2) == Some(TokKind::Ident) => Some(j - 2),
            _ => None,
        };
        if let Some(n) = name_idx {
            let name = ctx.text(n);
            if name != "let" && name != "mut" {
                names.insert(name.to_string());
            }
        }
    }
    if names.is_empty() {
        return;
    }
    // Pass 2: ordered consumption of a collected name.
    const ORDERED: [&str; 5] = ["iter", "keys", "values", "into_iter", "drain"];
    for i in 0..ctx.toks.len() {
        if ctx.test[i] || ctx.kind(i) != Some(TokKind::Ident) {
            continue;
        }
        let name = ctx.text(i);
        if !names.contains(name) {
            continue;
        }
        // `NAME . iter ( ` and friends.
        if ctx.text(i + 1) == "." && ORDERED.contains(&ctx.text(i + 2)) && ctx.text(i + 3) == "(" {
            let method = ctx.text(i + 2).to_string();
            ctx.emit(
                "L001",
                i,
                format!(
                    "`{name}.{method}()` iterates a hash collection in a result-producing \
                     module; hash order is nondeterministic — sort at the boundary or use \
                     a BTree collection"
                ),
            );
            continue;
        }
        // `for PAT in [&] [mut] NAME {` — direct loop over the collection.
        if ctx.text(i + 1) == "{" {
            let mut j = i;
            while j > 0 && matches!(ctx.text(j - 1), "&" | "mut") {
                j -= 1;
            }
            if j > 0 && ctx.is_ident(j - 1, "in") {
                ctx.emit(
                    "L001",
                    i,
                    format!(
                        "`for … in {name}` iterates a hash collection in a result-producing \
                         module; hash order is nondeterministic — sort at the boundary or \
                         use a BTree collection"
                    ),
                );
            }
        }
    }
}

/// L002: panics in library code.
fn rule_l002(ctx: &mut Ctx<'_>) {
    if !is_library_code(ctx.path) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        // `. unwrap (` / `. expect (`.
        if ctx.text(i) == "."
            && matches!(ctx.text(i + 1), "unwrap" | "expect")
            && ctx.kind(i + 1) == Some(TokKind::Ident)
            && ctx.text(i + 2) == "("
        {
            let call = ctx.text(i + 1).to_string();
            ctx.emit(
                "L002",
                i,
                format!(
                    "`.{call}()` in library code can panic; return a typed error or use a \
                     documented-invariant match"
                ),
            );
        }
        // `panic !`.
        if ctx.is_ident(i, "panic") && ctx.text(i + 1) == "!" {
            ctx.emit(
                "L002",
                i,
                "`panic!` in library code; return a typed error instead".to_string(),
            );
        }
        // Indexing by integer literal: `expr [ 0 ]` where expr ends in an
        // identifier or a closing bracket (array literals `[0; 8]` and
        // attribute brackets do not match).
        if ctx.text(i) == "["
            && ctx.kind(i + 1) == Some(TokKind::Num)
            && ctx.text(i + 2) == "]"
            && i > 0
            && (ctx.kind(i - 1) == Some(TokKind::Ident) || matches!(ctx.text(i - 1), ")" | "]"))
            && !matches!(ctx.text(i.wrapping_sub(1)), "if" | "in" | "return" | "else")
        {
            let n = ctx.text(i + 1).to_string();
            ctx.emit(
                "L002",
                i,
                format!(
                    "indexing by literal `[{n}]` in library code can panic; prefer \
                     `.get({n})` or a slice pattern"
                ),
            );
        }
    }
}

/// L003: thread and `CA_*` env hygiene.
fn rule_l003(ctx: &mut Ctx<'_>) {
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        // `std :: thread` (any use: spawn, scope, available_parallelism).
        if ctx.is_ident(i, "std")
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && ctx.is_ident(i + 3, "thread")
            && !in_list(ctx.path, &THREAD_SANCTIONED)
        {
            ctx.emit(
                "L003",
                i,
                format!(
                    "`std::thread` outside the sanctioned modules ({}); route parallelism \
                     through the existing kernels so determinism stays provable",
                    THREAD_SANCTIONED.join(", ")
                ),
            );
        }
        // `env :: var ( "CA_…" )` (also var_os).
        if ctx.is_ident(i, "env")
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && matches!(ctx.text(i + 3), "var" | "var_os")
            && ctx.text(i + 4) == "("
            && ctx.kind(i + 5) == Some(TokKind::Str)
            && is_ca_var(ctx.text(i + 5))
            && !in_list(ctx.path, &ENV_SANCTIONED)
        {
            let var = ctx.text(i + 5).to_string();
            ctx.emit(
                "L003",
                i,
                format!(
                    "`{var}` read outside {}; all CA_* knobs go through ca_core::config",
                    ENV_SANCTIONED.join(", ")
                ),
            );
        }
    }
}

/// L004: wall-clock reads in result-producing modules.
fn rule_l004(ctx: &mut Ctx<'_>) {
    if !is_result_module(ctx.path) {
        return;
    }
    for i in 0..ctx.toks.len() {
        if ctx.test[i] {
            continue;
        }
        if ctx.kind(i) == Some(TokKind::Ident) && matches!(ctx.text(i), "Instant" | "SystemTime") {
            let what = ctx.text(i).to_string();
            ctx.emit(
                "L004",
                i,
                format!(
                    "`{what}` in a result-producing module; wall-clock time must never \
                     influence certain-answer output (benchmarks live in crates/bench)"
                ),
            );
        }
    }
}

/// Is `lit` a `CA_*` environment-variable name (`CA_` + at least one
/// `[A-Z0-9_]` character, nothing else)?
fn is_ca_var(lit: &str) -> bool {
    lit.len() > 3
        && lit.starts_with("CA_")
        && lit
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// L005: every `CA_*` string literal in non-test code must be documented.
fn rule_l005(ctx: &mut Ctx<'_>, design_doc: &str) {
    for i in 0..ctx.toks.len() {
        if ctx.test[i] || ctx.kind(i) != Some(TokKind::Str) {
            continue;
        }
        let lit = ctx.text(i);
        if is_ca_var(lit) && !design_doc.contains(lit) {
            let lit = lit.to_string();
            ctx.emit(
                "L005",
                i,
                format!("environment variable `{lit}` is not documented in DESIGN.md"),
            );
        }
    }
}

/// Run every enabled rule over one lexed file. `path` must be
/// repo-relative with forward slashes. Suppressions are *not* applied
/// here — see [`crate::lint_source`].
pub fn run_rules(path: &str, lexed: &Lexed, cfg: &LintConfig) -> Vec<Violation> {
    if is_vendored(path) {
        return Vec::new();
    }
    let test = test_mask(&lexed.toks);
    let mut ctx = Ctx {
        path,
        toks: &lexed.toks,
        test: &test,
        out: Vec::new(),
    };
    if cfg.enabled.contains("L001") {
        rule_l001(&mut ctx);
    }
    if cfg.enabled.contains("L002") {
        rule_l002(&mut ctx);
    }
    if cfg.enabled.contains("L003") {
        rule_l003(&mut ctx);
    }
    if cfg.enabled.contains("L004") {
        rule_l004(&mut ctx);
    }
    if cfg.enabled.contains("L005") {
        rule_l005(&mut ctx, &cfg.design_doc);
    }
    let mut out = ctx.out;
    out.sort_by(|a, b| (a.line, a.rule, &a.msg).cmp(&(b.line, b.rule, &b.msg)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let unwrap_idx = lexed
            .toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(mask[unwrap_idx]);
        let after_idx = lexed
            .toks
            .iter()
            .position(|t| t.text == "after")
            .expect("after token");
        assert!(!mask[after_idx]);
    }

    #[test]
    fn test_mask_ignores_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn shipped() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        assert!(mask.iter().all(|&m| !m), "cfg(not(test)) is live code");
    }

    #[test]
    fn test_mask_handles_test_attribute_on_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let ups: Vec<usize> = lexed
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ups.len(), 2);
        assert!(mask[ups[0]] && !mask[ups[1]]);
    }
}
