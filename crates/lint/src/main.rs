//! The `ca-lint` command-line driver.
//!
//! ```text
//! cargo run -p ca-lint                 # report, exit 0
//! cargo run -p ca-lint -- --deny-all   # report, exit 1 on any violation (CI gate)
//! cargo run -p ca-lint -- --json       # machine-readable, diffable output
//! cargo run -p ca-lint -- --root PATH  # lint another checkout
//! ```
//!
//! Violations are sorted by `(path, line, rule)` so output — and the
//! `--json` form in particular — is byte-stable across runs and diffable
//! across PRs.

use std::path::PathBuf;
use std::process::ExitCode;

use ca_lint::allow::{self, Allowlist};
use ca_lint::rules::CATALOG;
use ca_lint::{
    lint_sources, rel_path, render_json, workspace_files, workspace_manifests, LintConfig,
};

struct Opts {
    root: PathBuf,
    deny_all: bool,
    json: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut deny_all = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--root" => {
                let val = args.next().ok_or("--root requires a path")?;
                root = Some(PathBuf::from(val));
            }
            "--help" | "-h" => {
                println!("ca-lint: workspace static analysis\n");
                println!("  --deny-all   exit nonzero on any violation (CI gate)");
                println!("  --json       machine-readable output");
                println!("  --root PATH  workspace root (default: auto-detected)\n");
                println!("rules:");
                for (code, name, summary) in CATALOG {
                    println!("  {code} {name}: {summary}");
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    Ok(Opts {
        root,
        deny_all,
        json,
    })
}

/// The workspace root: walk up from the current directory (or from this
/// crate's manifest dir under `cargo run`) to the directory holding the
/// workspace `Cargo.toml` and `crates/`.
fn find_root() -> Result<PathBuf, String> {
    let mut candidates = Vec::new();
    if let Ok(cwd) = std::env::current_dir() {
        candidates.push(cwd);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        candidates.push(PathBuf::from(manifest));
    }
    for start in candidates {
        let mut dir = Some(start.as_path());
        while let Some(d) = dir {
            if d.join("crates").is_dir() && d.join("Cargo.toml").is_file() {
                return Ok(d.to_path_buf());
            }
            dir = d.parent();
        }
    }
    Err("could not locate the workspace root (no ancestor with crates/ + Cargo.toml)".into())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ca-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let design_doc = std::fs::read_to_string(opts.root.join("DESIGN.md")).unwrap_or_default();
    let cfg = LintConfig::all(design_doc);

    let allowlist = match std::fs::read_to_string(opts.root.join("lint-allow.toml")) {
        Ok(text) => match allow::parse_allowlist(&text) {
            Ok(list) => list,
            Err(e) => {
                eprintln!("ca-lint: lint-allow.toml: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };

    let files = match workspace_files(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ca-lint: walking workspace: {e}");
            return ExitCode::from(2);
        }
    };

    let manifests = match workspace_manifests(&opts.root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ca-lint: reading manifests: {e}");
            return ExitCode::from(2);
        }
    };

    let mut sources: Vec<(String, String)> = Vec::new();
    for file in &files {
        let rel = rel_path(&opts.root, file);
        match std::fs::read_to_string(file) {
            Ok(src) => sources.push((rel, src)),
            Err(e) => {
                eprintln!("ca-lint: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
    }
    let n_files = sources.len();
    let violations = lint_sources(&sources, &manifests, &cfg);

    let outcome = allow::apply_allowlist(violations, &allowlist, allow::today_utc_day());

    if opts.json {
        print!("{}", render_json(&outcome.kept));
    } else {
        for v in &outcome.kept {
            println!(
                "{}:{}: {} {}: {}",
                v.path,
                v.line,
                v.rule,
                rule_name(v.rule),
                v.msg
            );
        }
        for e in &outcome.expired {
            println!(
                "lint-allow.toml: entry for {} ({}) EXPIRED {} — fix the violations or re-justify",
                e.path, e.rule, e.expires
            );
        }
        for e in &outcome.unused {
            println!(
                "lint-allow.toml: entry for {} ({}) matched nothing — prune it",
                e.path, e.rule
            );
        }
        println!(
            "ca-lint: {} file(s), {} violation(s), {} allowlisted, {} expired entr{}, {} unused",
            n_files,
            outcome.kept.len(),
            outcome.suppressed,
            outcome.expired.len(),
            if outcome.expired.len() == 1 {
                "y"
            } else {
                "ies"
            },
            outcome.unused.len(),
        );
    }

    // Expired allowlist entries gate like violations: the backlog may
    // only shrink or be consciously re-justified.
    let failing = outcome.kept.len() + outcome.expired.len();
    if opts.deny_all && failing > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn rule_name(code: &str) -> &'static str {
    CATALOG
        .iter()
        .find(|&&(c, _, _)| c == code)
        .map_or("malformed-suppression", |&(_, name, _)| name)
}
