//! A minimal Rust lexer, just enough for lexical lint rules.
//!
//! The build environment is offline, so `ca-lint` cannot use `syn`; it
//! hand-rolls the only part of Rust lexing that a naive regex scan gets
//! wrong: knowing when text is *code* and when it is a comment, a string,
//! or a char literal. The lexer handles:
//!
//! * line comments (`//…`) and **nested** block comments (`/* /* */ */`),
//!   captured with their line numbers so suppression comments
//!   (`// ca-lint: allow(...)`) can be matched to violations;
//! * plain, byte, and **raw** strings (`r"…"`, `r#"…"#`, any `#` depth,
//!   with `br`/`b` prefixes), with escapes — a `//` inside a string is
//!   not a comment and a `"` inside a raw string does not end it unless
//!   followed by enough `#`s;
//! * char literals vs. lifetimes (`'a'` and `'"'` are chars, `'a` in
//!   `&'a str` is a lifetime), including escaped chars (`'\''`);
//! * raw identifiers (`r#match` is an identifier, `r#"…"#` a raw string).
//!
//! Everything else degrades to one-character punctuation tokens, which is
//! all the rule engine needs: rules match short token patterns like
//! `. unwrap (` or `env :: var ( "CA_…"`.

/// What kind of lexeme a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `unwrap`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A string literal of any flavor; `text` holds the contents without
    /// quotes, prefixes, or `#` fences.
    Str,
    /// A char or byte-char literal; `text` holds the contents.
    Char,
    /// A numeric literal (integer part only; `3.5` lexes as `3 . 5`).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block), with the line it starts on. `text` is the
/// body without the `//` / `/* */` markers.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing a file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// How many `#`s open a raw string at `cur.pos` (which must point just
/// past the `r`), or `None` if this is not a raw string.
fn raw_string_hashes(cur: &Cursor) -> Option<usize> {
    let mut n = 0;
    while cur.peek(n) == Some('#') {
        n += 1;
    }
    (cur.peek(n) == Some('"')).then_some(n)
}

/// Lex `src` into tokens and comments. Never fails: unterminated literals
/// simply run to end of file (the real compiler will reject the file long
/// before the linter's verdict matters).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let text = cur.eat_while(|c| c != '\n');
            out.comments.push(Comment { line, text });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        cur.bump();
                        cur.bump();
                    }
                    (Some(c), _) => {
                        text.push(c);
                        cur.bump();
                    }
                    (None, _) => break, // unterminated: run to EOF
                }
            }
            out.comments.push(Comment { line, text });
            continue;
        }
        // Strings (plain, with possible b/r/br prefixes) and raw idents.
        if c == '"' {
            cur.bump();
            out.toks.push(read_plain_string(&mut cur, line));
            continue;
        }
        if is_ident_start(c) {
            // Prefix disambiguation before generic ident lexing.
            if c == 'b' && cur.peek(1) == Some('\'') {
                cur.bump(); // b
                cur.bump(); // '
                out.toks.push(read_char(&mut cur, line));
                continue;
            }
            let raw_prefix_len = match c {
                'r' => Some(1),
                'b' if cur.peek(1) == Some('r') => Some(2),
                'b' if cur.peek(1) == Some('"') => Some(1),
                _ => None,
            };
            if let Some(skip) = raw_prefix_len {
                let mut probe = Cursor {
                    chars: cur.chars.clone(),
                    pos: cur.pos + skip,
                    line: cur.line,
                };
                if let Some(hashes) = raw_string_hashes(&probe) {
                    for _ in 0..skip + hashes + 1 {
                        cur.bump();
                    }
                    out.toks.push(read_raw_string(&mut cur, line, hashes));
                    continue;
                }
                if c == 'r' && cur.peek(1) == Some('#') {
                    // Raw identifier r#match.
                    probe.pos = cur.pos + 2;
                    if probe.peek(0).is_some_and(is_ident_start) {
                        cur.bump();
                        cur.bump();
                        let text = cur.eat_while(is_ident_continue);
                        out.toks.push(Tok {
                            kind: TokKind::Ident,
                            text,
                            line,
                        });
                        continue;
                    }
                }
            }
            let text = cur.eat_while(is_ident_continue);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            cur.bump();
            match (cur.peek(0), cur.peek(1)) {
                // An escape is always a char literal: '\'' '\n' '\u{..}'.
                (Some('\\'), _) => out.toks.push(read_char(&mut cur, line)),
                // 'x' — a one-char literal (covers '"', '/', multibyte).
                (Some(_), Some('\'')) => out.toks.push(read_char(&mut cur, line)),
                // 'ident not followed by a close quote: a lifetime.
                (Some(l), _) if is_ident_start(l) => {
                    let text = cur.eat_while(is_ident_continue);
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                    });
                }
                // Anything else ('(', ' ', EOF…): best-effort char literal.
                _ => out.toks.push(read_char(&mut cur, line)),
            }
            continue;
        }
        // Numbers: the integer prefix is enough for the rules.
        if c.is_ascii_digit() {
            let text = cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }
        // Single-character punctuation.
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

/// Read a plain (or byte) string body; the opening quote is consumed.
fn read_plain_string(cur: &mut Cursor, line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                text.push(c);
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '"' => break,
            _ => text.push(c),
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

/// Read a raw string body closed by `"` + `hashes` `#`s; the opening
/// fence is consumed.
fn read_raw_string(cur: &mut Cursor, line: u32, hashes: usize) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        if c == '"' && (0..hashes).all(|i| cur.peek(i) == Some('#')) {
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
    }
}

/// Read a char (or byte-char) literal body; the opening quote is consumed.
fn read_char(cur: &mut Cursor, line: u32) -> Tok {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                text.push(c);
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '\'' => break,
            _ => text.push(c),
        }
    }
    Tok {
        kind: TokKind::Char,
        text,
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_nums_puncts() {
        let got = kinds("let x = foo[0];");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, "[".into()),
                (TokKind::Num, "0".into()),
                (TokKind::Punct, "]".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn line_comments_are_captured_not_tokenized() {
        let lexed = lex("a // unwrap() here is commentary\nb");
        assert_eq!(lexed.toks.len(), 2);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert_eq!(lexed.toks[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(lexed.comments[0].text.contains("still comment"));
    }

    #[test]
    fn block_comment_tracks_lines() {
        let lexed = lex("/* one\ntwo\nthree */ x");
        assert_eq!(lexed.toks[0].text, "x");
        assert_eq!(lexed.toks[0].line, 3);
    }

    #[test]
    fn strings_hide_comment_markers_and_quotes() {
        let lexed = lex(r#"let s = "not // a comment \" still string"; y"#);
        assert!(lexed.comments.is_empty());
        let s = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("one string");
        assert!(s.text.contains("not // a comment"));
        assert_eq!(lexed.toks.last().map(|t| t.text.as_str()), Some("y"));
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        // r#"…"# may contain quotes and // without ending the literal.
        let src = "let s = r#\"quote \" and // slash\"#; done";
        let lexed = lex(src);
        assert!(lexed.comments.is_empty());
        let s = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string");
        assert_eq!(s.text, "quote \" and // slash");
        assert_eq!(lexed.toks.last().map(|t| t.text.as_str()), Some("done"));
    }

    #[test]
    fn raw_string_deeper_fence_and_byte_variants() {
        let src = "r##\"has \"# inside\"## b\"bytes\" br#\"raw bytes\"#";
        let got = kinds(src);
        assert_eq!(
            got,
            vec![
                (TokKind::Str, "has \"# inside".into()),
                (TokKind::Str, "bytes".into()),
                (TokKind::Str, "raw bytes".into()),
            ]
        );
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let got = kinds("r#match x");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "match".into()),
                (TokKind::Ident, "x".into()),
            ]
        );
    }

    #[test]
    fn char_literals_with_quote_and_slashes() {
        // '"' and '/' chars, plus an escaped quote '\''.
        let got = kinds(r#"'"' '/' '\'' ' '"#);
        assert_eq!(
            got,
            vec![
                (TokKind::Char, "\"".into()),
                (TokKind::Char, "/".into()),
                (TokKind::Char, "\\'".into()),
                (TokKind::Char, " ".into()),
            ]
        );
    }

    #[test]
    fn char_with_comment_lookalike_does_not_eat_code() {
        // A '/' char literal followed by a real comment.
        let lexed = lex("let c = '/'; // real comment\nnext");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.toks.last().map(|t| t.text.as_str()), Some("next"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = kinds("&'a str + 'static");
        assert!(got.contains(&(TokKind::Lifetime, "a".into())));
        assert!(got.contains(&(TokKind::Lifetime, "static".into())));
        assert!(!got.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn byte_char_and_escapes() {
        let got = kinds(r"b'x' '\n' '\u{1F600}'");
        assert_eq!(got[0], (TokKind::Char, "x".into()));
        assert_eq!(got[1], (TokKind::Char, "\\n".into()));
        assert_eq!(got[2], (TokKind::Char, "\\u{1F600}".into()));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panic() {
        assert!(lex("let s = \"open")
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str));
        assert!(lex("/* never closed").comments.len() == 1);
        assert!(lex("r#\"open").toks.iter().any(|t| t.kind == TokKind::Str));
    }
}
