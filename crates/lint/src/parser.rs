//! Item-level parsing on top of [`crate::lexer`]: brace-matched items,
//! `mod`/`use` resolution, and per-function body spans.
//!
//! This is deliberately *not* a Rust parser. It is the smallest
//! structural layer the graph rules (L006–L010) need: where each
//! function body starts and ends (so taint analyses can attribute a
//! token to its innermost enclosing function), which crates a file
//! names in `use` declarations and qualified paths (so layering can be
//! checked without resolving imports), and which modules a file
//! declares. Everything is a single left-to-right pass over the token
//! stream with a brace-depth counter; malformed input (unbalanced
//! braces, truncated items) degrades to shorter spans, never to a
//! panic — the corpus test in `tests/parser_corpus.rs` pins that.

use crate::lexer::{Lexed, TokKind};

/// Owner sentinel: a token outside every function body.
pub const NO_OWNER: u32 = u32::MAX;

/// A `fn` item: free function, inherent/trait method, or nested fn.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The identifier after the `fn` keyword.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token indices of the body braces, inclusive: `body.0` is the `{`,
    /// `body.1` the matching `}` (or the last token if unterminated).
    /// Meaningless when `has_body` is false.
    pub body: (usize, usize),
    /// False for body-less signatures (trait methods, extern decls).
    pub has_body: bool,
    /// Declared inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
}

/// A `mod` declaration.
#[derive(Clone, Debug)]
pub struct ModDecl {
    pub name: String,
    pub line: u32,
    /// `mod m { … }` (true) vs `mod m;` (false).
    pub inline: bool,
}

/// A `use` declaration; only the path root is kept (`ca_core`, `std`,
/// `crate`, …) — that is all the layering rule needs.
#[derive(Clone, Debug)]
pub struct UseDecl {
    pub root: String,
    pub line: u32,
    pub is_test: bool,
}

/// The head of a qualified path `head::…` outside a `use` declaration
/// (e.g. `ca_core::store::FactStore` written inline).
#[derive(Clone, Debug)]
pub struct PathHead {
    pub name: String,
    pub line: u32,
    pub is_test: bool,
}

/// Everything the parser extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub mods: Vec<ModDecl>,
    pub uses: Vec<UseDecl>,
    pub path_heads: Vec<PathHead>,
    /// For each token, the index into `fns` of the innermost enclosing
    /// function body, or [`NO_OWNER`].
    pub owner: Vec<u32>,
}

/// Parse one lexed file. `test` is the `#[cfg(test)]` mask from
/// [`crate::rules::test_mask`], parallel to `lexed.toks`.
pub fn parse_items(lexed: &Lexed, test: &[bool]) -> FileItems {
    let toks = &lexed.toks;
    let mut items = FileItems {
        owner: vec![NO_OWNER; toks.len()],
        ..FileItems::default()
    };
    // Open function bodies: (fn index, brace depth of its `{`).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    // A declared fn whose body `{` (at the stored token index) has not
    // been reached yet. Signatures contain no braces, so one suffices.
    let mut pending: Option<(usize, usize)> = None;
    let mut depth = 0usize;

    let text = |i: usize| toks.get(i).map_or("", |t| t.text.as_str());
    let is_ident = |i: usize| toks.get(i).is_some_and(|t| t.kind == TokKind::Ident);

    for i in 0..toks.len() {
        match text(i) {
            "{" => {
                depth += 1;
                if let Some((f, open)) = pending {
                    if open == i {
                        stack.push((f, depth));
                        pending = None;
                    }
                }
            }
            "}" => {
                items.owner[i] = stack.last().map_or(NO_OWNER, |&(f, _)| f as u32);
                if let Some(&(f, d)) = stack.last() {
                    if d == depth {
                        if let Some(item) = items.fns.get_mut(f) {
                            item.body.1 = i;
                        }
                        stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
                continue;
            }
            "fn" if is_ident(i) && is_ident(i + 1) => {
                // Scan the signature for the body `{` (or `;` for a
                // body-less decl). Signatures are brace-free in practice;
                // a const-generic brace would just shorten the span.
                let mut j = i + 2;
                while j < toks.len() && text(j) != "{" && text(j) != ";" {
                    j += 1;
                }
                let has_body = j < toks.len() && text(j) == "{";
                let f = items.fns.len();
                items.fns.push(FnItem {
                    name: text(i + 1).to_string(),
                    line: toks[i].line,
                    kw: i,
                    body: if has_body {
                        (j, toks.len() - 1)
                    } else {
                        (i, i)
                    },
                    has_body,
                    is_test: test.get(i).copied().unwrap_or(false),
                });
                if has_body {
                    pending = Some((f, j));
                }
            }
            "mod" if is_ident(i) && is_ident(i + 1) => {
                items.mods.push(ModDecl {
                    name: text(i + 1).to_string(),
                    line: toks[i].line,
                    inline: text(i + 2) == "{",
                });
            }
            "use" if is_ident(i) => {
                // Root = first identifier of the path (skipping a
                // leading `::`).
                let mut j = i + 1;
                while j < toks.len() && text(j) == ":" {
                    j += 1;
                }
                if is_ident(j) {
                    items.uses.push(UseDecl {
                        root: text(j).to_string(),
                        line: toks[i].line,
                        is_test: test.get(i).copied().unwrap_or(false),
                    });
                }
            }
            _ => {}
        }
        items.owner[i] = stack.last().map_or(NO_OWNER, |&(f, _)| f as u32);

        // `head :: …` where `head` starts the path (previous token is
        // not `:`, so mid-path segments are skipped).
        if is_ident(i) && text(i + 1) == ":" && text(i + 2) == ":" && (i == 0 || text(i - 1) != ":")
        {
            items.path_heads.push(PathHead {
                name: text(i).to_string(),
                line: toks[i].line,
                is_test: test.get(i).copied().unwrap_or(false),
            });
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn parse(src: &str) -> FileItems {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        parse_items(&lexed, &mask)
    }

    #[test]
    fn records_fns_with_body_spans() {
        let items = parse("fn a() { let x = 1; }\npub fn b(v: u32) -> u32 { v }");
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].name, "a");
        assert_eq!(items.fns[1].name, "b");
        for f in &items.fns {
            assert!(f.has_body);
            assert!(f.body.0 < f.body.1);
        }
    }

    #[test]
    fn nested_fn_owns_its_own_tokens() {
        let src = "fn outer() { fn inner() { marker(); } other(); }";
        let items = parse(src);
        let lexed = lex(src);
        assert_eq!(items.fns.len(), 2);
        let marker = lexed.toks.iter().position(|t| t.text == "marker");
        let other = lexed.toks.iter().position(|t| t.text == "other");
        let (marker, other) = (marker.expect("marker"), other.expect("other"));
        assert_eq!(items.owner[marker], 1, "inner body belongs to `inner`");
        assert_eq!(items.owner[other], 0, "after inner, back to `outer`");
    }

    #[test]
    fn bodyless_signatures_and_fn_pointer_types() {
        let items =
            parse("trait T { fn sig(&self); }\nfn takes(f: fn(u32) -> u32) -> u32 { f(1) }");
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["sig", "takes"]);
        assert!(!items.fns[0].has_body);
        assert!(items.fns[1].has_body);
    }

    #[test]
    fn use_roots_and_mods() {
        let items = parse("use std::collections::HashMap;\nuse ca_core::store::FactStore;\nmod sub;\nmod inline_mod { }\n");
        let roots: Vec<&str> = items.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, ["std", "ca_core"]);
        assert_eq!(items.mods.len(), 2);
        assert!(!items.mods[0].inline);
        assert!(items.mods[1].inline);
    }

    #[test]
    fn path_heads_skip_mid_path_segments() {
        let items = parse("fn f() { let _ = ca_query::engine::eval(); }");
        let heads: Vec<&str> = items.path_heads.iter().map(|p| p.name.as_str()).collect();
        assert!(heads.contains(&"ca_query"));
        assert!(!heads.contains(&"engine"), "mid-path segment is not a head");
    }

    #[test]
    fn unbalanced_braces_do_not_panic() {
        for src in ["fn a() { { }", "}}} fn b() {}", "fn c() {", "{", "}"] {
            let items = parse(src);
            assert_eq!(items.owner.len(), lex(src).toks.len());
        }
    }

    #[test]
    fn test_mask_propagates_to_items() {
        let items = parse("#[cfg(test)]\nmod tests { fn t() {} use ca_query::x; }\nfn live() {}");
        let t = items.fns.iter().find(|f| f.name == "t").expect("t");
        let live = items.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(t.is_test);
        assert!(!live.is_test);
        assert!(items.uses.iter().all(|u| u.is_test));
    }
}
