//! # ca-lint — in-tree static analysis for the certain-answers workspace
//!
//! The paper's semantics make a hard promise: certain answers are an
//! intersection over completions, so *evaluation order must never leak
//! into output* (Libkin, PODS 2011, Theorems 5/7). PRs 1–2 built two
//! parallel kernels whose results are byte-identical at any thread width;
//! this crate guards that property mechanically instead of only by
//! differential tests. It is dependency-free (the build is offline): a
//! hand-rolled lexer ([`lexer`]), an item-level parser ([`parser`]), a
//! workspace item graph with a conservative call-edge approximation and
//! the crate dependency DAG ([`graph`]), the rule engine ([`rules`]) —
//! per-file token rules plus graph-powered interprocedural rules — and a
//! suppression layer ([`allow`]): inline `// ca-lint: allow(…)` comments
//! plus the expiring `lint-allow.toml` backlog.
//!
//! Run it with `cargo run -p ca-lint` (`-- --deny-all` to gate, `--json`
//! for diffable output). The rule catalog lives in [`rules::CATALOG`] and
//! in DESIGN.md §Static analysis.

pub mod allow;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use graph::{FileRecord, WorkspaceGraph};

pub use rules::{LintConfig, Violation};

/// Lint a set of sources plus manifests as one workspace: per-file
/// rules, then the graph rules over the item graph, then inline
/// suppressions per file. Malformed suppressions are appended as `L000`
/// violations. Vendored shims are skipped entirely. The file-level
/// allowlist is *not* applied here — see [`allow::apply_allowlist`].
///
/// `files` are `(repo-relative path, source)` pairs; `manifests` are
/// `(repo-relative path, Cargo.toml text)` pairs.
pub fn lint_sources(
    files: &[(String, String)],
    manifests: &[(String, String)],
    cfg: &LintConfig,
) -> Vec<Violation> {
    let records: Vec<FileRecord> = files
        .iter()
        .filter(|(path, _)| !rules::is_vendored(path))
        .map(|(path, src)| {
            let lexed = lexer::lex(src);
            let test = rules::test_mask(&lexed.toks);
            let items = parser::parse_items(&lexed, &test);
            FileRecord {
                path: path.clone(),
                lexed,
                test,
                items,
            }
        })
        .collect();
    let parsed_manifests = manifests
        .iter()
        .map(|(path, text)| graph::parse_manifest(path, text))
        .collect();
    let g = WorkspaceGraph::build(&records, parsed_manifests);

    let mut by_path: BTreeMap<&str, Vec<Violation>> = BTreeMap::new();
    let mut out: Vec<Violation> = Vec::new(); // violations with no source file (manifests)
    for r in &records {
        by_path.entry(r.path.as_str()).or_default();
    }
    let mut all = Vec::new();
    for r in &records {
        all.extend(rules::run_rules(&r.path, &r.lexed, cfg));
    }
    all.extend(rules::run_graph_rules(&records, &g, cfg));
    for v in all {
        match by_path.get_mut(v.path.as_str()) {
            Some(bucket) => bucket.push(v),
            None => out.push(v),
        }
    }
    for r in &records {
        let violations = by_path.remove(r.path.as_str()).unwrap_or_default();
        let (allows, mut bad) = allow::inline_allows(&r.path, &r.lexed.comments);
        let (kept, _suppressed) = allow::apply_inline(violations, &allows);
        out.extend(kept);
        out.append(&mut bad);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule, &a.msg).cmp(&(&b.path, b.line, b.rule, &b.msg)));
    out
}

/// Lint one source string as a single-file workspace (no manifests:
/// crate identity falls back to the `crates/<dir>/` path prefix, and
/// only same-crate call edges exist).
pub fn lint_source(path: &str, src: &str, cfg: &LintConfig) -> Vec<Violation> {
    lint_sources(&[(path.to_string(), src.to_string())], &[], cfg)
}

/// Render violations as the pinned machine-readable report.
///
/// Schema (`ca-lint/2`): one JSON object, `violations` sorted by
/// `(path, rule, line, message)`, two-space indent, `\n` line endings —
/// byte-identical across runs and file-discovery orders for the same
/// findings.
pub fn render_json(violations: &[Violation]) -> String {
    let mut sorted: Vec<&Violation> = violations.iter().collect();
    sorted
        .sort_by(|a, b| (&a.path, a.rule, a.line, &a.msg).cmp(&(&b.path, b.rule, b.line, &b.msg)));
    let mut out = String::from("{\n  \"schema\": \"ca-lint/2\",\n  \"violations\": [\n");
    for (i, v) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"rule\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{sep}\n",
            json_escape(&v.path),
            v.rule,
            v.line,
            json_escape(&v.msg)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal JSON string escaping for [`render_json`].
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collect every `.rs` file the linter walks: `crates/*/src/**` plus the
/// root package's `src/**`, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

/// Collect the manifests the item graph reads: the root `Cargo.toml`
/// plus every `crates/*/Cargo.toml`, as `(repo-relative path, text)`
/// pairs, sorted by path.
pub fn workspace_manifests(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&root_manifest) {
        out.push(("Cargo.toml".to_string(), text));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let path = entry?.path().join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&path) {
                out.push((rel_path(root, &path), text));
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path relative to `root`, with forward slashes — the form rule scopes
/// and allowlist entries match against.
pub fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
