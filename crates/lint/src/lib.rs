//! # ca-lint — in-tree static analysis for the certain-answers workspace
//!
//! The paper's semantics make a hard promise: certain answers are an
//! intersection over completions, so *evaluation order must never leak
//! into output* (Libkin, PODS 2011, Theorems 5/7). PRs 1–2 built two
//! parallel kernels whose results are byte-identical at any thread width;
//! this crate guards that property mechanically instead of only by
//! differential tests. It is dependency-free (the build is offline): a
//! hand-rolled lexer ([`lexer`]), a lexical rule engine ([`rules`]), and
//! a suppression layer ([`allow`]) — inline `// ca-lint: allow(…)`
//! comments plus the expiring `lint-allow.toml` backlog.
//!
//! Run it with `cargo run -p ca-lint` (`-- --deny-all` to gate, `--json`
//! for diffable output). The rule catalog lives in [`rules::CATALOG`] and
//! in DESIGN.md §Static analysis.

pub mod allow;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::{LintConfig, Violation};

/// Lint one source string: run the enabled rules, then apply inline
/// suppressions. Malformed suppressions are appended as `L000`
/// violations. The file-level allowlist is *not* applied here — see
/// [`allow::apply_allowlist`].
pub fn lint_source(path: &str, src: &str, cfg: &LintConfig) -> Vec<Violation> {
    let lexed = lexer::lex(src);
    let violations = rules::run_rules(path, &lexed, cfg);
    let (allows, mut bad) = allow::inline_allows(path, &lexed.comments);
    let (mut kept, _suppressed) = allow::apply_inline(violations, &allows);
    kept.append(&mut bad);
    kept.sort_by(|a, b| (a.line, a.rule, &a.msg).cmp(&(b.line, b.rule, &b.msg)));
    kept
}

/// Collect every `.rs` file the linter walks: `crates/*/src/**` plus the
/// root package's `src/**`, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path relative to `root`, with forward slashes — the form rule scopes
/// and allowlist entries match against.
pub fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
