//! The workspace item graph: every parsed file, a flat function table,
//! a conservative name-based call-edge approximation, and the crate
//! dependency DAG read from the `Cargo.toml` manifests.
//!
//! The call graph is deliberately over-approximate: a call site `name(…)`
//! (including `recv.name(…)` and `Type::name(…)`) gets an edge to *every*
//! workspace function called `name` that lives in the caller's crate or
//! in its transitive dependency cone. Over-approximation is the right
//! direction for the taint rules built on top (L007/L008): a spurious
//! edge can at worst flag a function that then gets cleaned up or
//! justified inline; a missed edge would let nondeterminism or unchecked
//! parsing hide. There is no type resolution and no macro expansion —
//! the analysis must stay dependency-free and total on every file.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Lexed, TokKind};
use crate::parser::FileItems;

/// One parsed source file, ready for graph construction and rules.
pub struct FileRecord {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub lexed: Lexed,
    /// `#[cfg(test)]` mask, parallel to `lexed.toks`.
    pub test: Vec<bool>,
    pub items: FileItems,
}

/// The slice of a `Cargo.toml` the graph needs: package name and the
/// `[dependencies]` entries (section-exact — `[workspace.dependencies]`
/// and `[dev-dependencies]` are deliberately ignored: layering governs
/// the runtime dependency cone, not test scaffolding).
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// Repo-relative manifest path (`crates/cert/Cargo.toml`).
    pub path: String,
    /// `[package] name`, empty for a virtual manifest.
    pub package: String,
    /// `[dependencies]` keys with their 1-based line numbers.
    pub deps: Vec<(String, u32)>,
}

/// Parse the subset of TOML the manifests use: `[section]` headers,
/// `key = value` lines, and dotted keys (`ca-core.workspace = true`).
pub fn parse_manifest(path: &str, text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        Other,
    }
    let mut section = Section::Other;
    let mut out = Manifest {
        path: path.to_string(),
        ..Manifest::default()
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                _ => Section::Other,
            };
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        // `ca-core.workspace = true` declares a dependency on `ca-core`.
        let key = key.trim().split('.').next().unwrap_or("").trim();
        match section {
            Section::Package if key == "name" => {
                out.package = value.trim().trim_matches('"').to_string();
            }
            Section::Deps if !key.is_empty() => {
                let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
                out.deps.push((key.to_string(), line_no));
            }
            _ => {}
        }
    }
    out
}

/// Normalize a crate name as written in source (`ca_core`) to its
/// package form (`ca-core`).
pub fn norm_crate(name: &str) -> String {
    name.replace('_', "-")
}

/// One function in the flat workspace table.
pub struct FnNode {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub local: usize,
    pub name: String,
    /// Package name of the owning crate (`ca-core`, `certain-answers`).
    pub krate: String,
    pub is_test: bool,
}

/// The workspace item graph.
pub struct WorkspaceGraph {
    pub manifests: Vec<Manifest>,
    /// Package name per file, parallel to the `files` slice.
    pub file_crate: Vec<String>,
    pub fns: Vec<FnNode>,
    /// Call edges: `calls[f]` lists callee function ids, deduplicated.
    pub calls: Vec<Vec<u32>>,
    /// Direct manifest dependencies per package.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
    /// Transitive dependency cone per package, including the package
    /// itself — the set of crates its code can call into.
    pub cone: BTreeMap<String, BTreeSet<String>>,
}

/// Identifiers that look like calls (`name (`) but are control flow or
/// declarations, never workspace function calls.
const NOT_CALLS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "let", "mut", "else",
    "move", "ref", "unsafe", "where",
]; // `box` and `yield` never precede `(` in this codebase

impl WorkspaceGraph {
    /// Build the graph. `files` must already exclude vendored code.
    pub fn build(files: &[FileRecord], manifests: Vec<Manifest>) -> WorkspaceGraph {
        // crates/<dir>/ → package name, from the manifest paths.
        let mut dir_pkg: BTreeMap<&str, &str> = BTreeMap::new();
        let mut root_pkg = "certain-answers";
        for m in &manifests {
            if m.package.is_empty() {
                continue;
            }
            if m.path == "Cargo.toml" {
                root_pkg = &m.package;
            } else if let Some(dir) = m
                .path
                .strip_prefix("crates/")
                .and_then(|r| r.strip_suffix("/Cargo.toml"))
            {
                dir_pkg.insert(dir, &m.package);
            }
        }
        let file_crate: Vec<String> = files
            .iter()
            .map(|f| match f.path.strip_prefix("crates/") {
                Some(rest) => {
                    let dir = rest.split('/').next().unwrap_or("");
                    dir_pkg
                        .get(dir)
                        .map_or_else(|| format!("ca-{dir}"), |p| (*p).to_string())
                }
                None => root_pkg.to_string(),
            })
            .collect();

        let mut crate_deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for m in &manifests {
            if m.package.is_empty() {
                continue;
            }
            let entry = crate_deps.entry(m.package.clone()).or_default();
            for (dep, _) in &m.deps {
                entry.insert(dep.clone());
            }
        }
        // Transitive cone, fixpoint over the (acyclic in practice,
        // bounded regardless) dependency relation.
        let mut cone: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for krate in file_crate.iter().chain(crate_deps.keys()) {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut queue: VecDeque<String> = VecDeque::new();
            seen.insert(krate.clone());
            queue.push_back(krate.clone());
            while let Some(k) = queue.pop_front() {
                if let Some(deps) = crate_deps.get(&k) {
                    for d in deps {
                        if seen.insert(d.clone()) {
                            queue.push_back(d.clone());
                        }
                    }
                }
            }
            cone.insert(krate.clone(), seen);
        }

        // Flat function table + name index.
        let mut fns: Vec<FnNode> = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (li, item) in f.items.fns.iter().enumerate() {
                let id = u32::try_from(fns.len()).unwrap_or(u32::MAX);
                by_name.entry(item.name.as_str()).or_default().push(id);
                fns.push(FnNode {
                    file: fi,
                    local: li,
                    name: item.name.clone(),
                    krate: file_crate[fi].clone(),
                    is_test: item.is_test,
                });
            }
        }

        // Call edges: for each function, scan the tokens it owns for
        // `name (` call sites and link to same-name functions in the
        // caller's dependency cone.
        let mut calls: Vec<Vec<u32>> = vec![Vec::new(); fns.len()];
        let mut base = 0usize;
        for (fi, f) in files.iter().enumerate() {
            let toks = &f.lexed.toks;
            let empty = BTreeSet::new();
            let reach = cone.get(&file_crate[fi]).unwrap_or(&empty);
            for (i, tok) in toks.iter().enumerate() {
                if tok.kind != TokKind::Ident
                    || f.test.get(i).copied().unwrap_or(false)
                    || NOT_CALLS.contains(&tok.text.as_str())
                {
                    continue;
                }
                if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
                    continue;
                }
                if i > 0 && toks[i - 1].text == "fn" {
                    continue; // the declaration itself
                }
                let Some(&owner) = f.items.owner.get(i) else {
                    continue;
                };
                if owner == crate::parser::NO_OWNER {
                    continue; // call-ish token outside any function body
                }
                let caller = base + owner as usize;
                let Some(callees) = by_name.get(tok.text.as_str()) else {
                    continue;
                };
                for &callee in callees {
                    if reach.contains(&fns[callee as usize].krate) {
                        calls[caller].push(callee);
                    }
                }
            }
            base += f.items.fns.len();
        }
        for edges in &mut calls {
            edges.sort_unstable();
            edges.dedup();
        }

        WorkspaceGraph {
            manifests,
            file_crate,
            fns,
            calls,
            crate_deps,
            cone,
        }
    }

    /// Global ids of functions named `name` declared in the file at
    /// `path`.
    pub fn find_fns(&self, files: &[FileRecord], path: &str, name: &str) -> Vec<u32> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == name && files[f.file].path == path)
            .map(|(id, _)| u32::try_from(id).unwrap_or(u32::MAX))
            .collect()
    }

    /// Forward reachability from `seeds` over the call edges, skipping
    /// test functions. Returns, per function, the seed id it was first
    /// reached from (`None` = unreachable).
    pub fn reachable_from(&self, seeds: &[u32]) -> Vec<Option<u32>> {
        let mut origin: Vec<Option<u32>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for &s in seeds {
            let si = s as usize;
            if si < origin.len() && origin[si].is_none() && !self.fns[si].is_test {
                origin[si] = Some(s);
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            let seed = origin[f as usize];
            for &callee in &self.calls[f as usize] {
                let ci = callee as usize;
                if origin[ci].is_none() && !self.fns[ci].is_test {
                    origin[ci] = seed;
                    queue.push_back(callee);
                }
            }
        }
        origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;
    use crate::rules::test_mask;

    fn record(path: &str, src: &str) -> FileRecord {
        let lexed = lex(src);
        let test = test_mask(&lexed.toks);
        let items = parse_items(&lexed, &test);
        FileRecord {
            path: path.to_string(),
            lexed,
            test,
            items,
        }
    }

    #[test]
    fn manifest_parses_package_and_deps_sections_exactly() {
        let text = "[package]\nname = \"ca-cert\"\n\n[dependencies]\nca-core = { path = \"../core\" }\n\n[dev-dependencies]\nproptest = \"1\"\n\n[workspace.dependencies]\nother = \"2\"\n";
        let m = parse_manifest("crates/cert/Cargo.toml", text);
        assert_eq!(m.package, "ca-cert");
        let deps: Vec<&str> = m.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(deps, ["ca-core"], "dev- and workspace-deps are ignored");
    }

    #[test]
    fn manifest_parses_dotted_workspace_keys() {
        let m = parse_manifest(
            "crates/hom/Cargo.toml",
            "[package]\nname = \"ca-hom\"\n[dependencies]\nca-core.workspace = true\n",
        );
        assert_eq!(
            m.deps.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
            ["ca-core"]
        );
    }

    #[test]
    fn call_edges_respect_the_dependency_cone() {
        let files = vec![
            record(
                "crates/cert/src/a.rs",
                "pub fn emit() { helper(); forbidden(); }\nfn helper() {}",
            ),
            record("crates/query/src/b.rs", "pub fn forbidden() {}"),
        ];
        let manifests = vec![
            parse_manifest(
                "crates/cert/Cargo.toml",
                "[package]\nname = \"ca-cert\"\n[dependencies]\nca-core = {}\n",
            ),
            parse_manifest(
                "crates/query/Cargo.toml",
                "[package]\nname = \"ca-query\"\n[dependencies]\n",
            ),
        ];
        let g = WorkspaceGraph::build(&files, manifests);
        let emit = g.find_fns(&files, "crates/cert/src/a.rs", "emit");
        assert_eq!(emit.len(), 1);
        let callees: Vec<&str> = g.calls[emit[0] as usize]
            .iter()
            .map(|&c| g.fns[c as usize].name.as_str())
            .collect();
        assert!(callees.contains(&"helper"), "same-crate edge exists");
        assert!(
            !callees.contains(&"forbidden"),
            "ca-query is outside ca-cert's cone — no edge"
        );
    }

    #[test]
    fn reachability_skips_test_functions() {
        let files = vec![record(
            "crates/core/src/a.rs",
            "pub fn seed() { step(); }\nfn step() { sink(); }\nfn sink() {}\n#[cfg(test)]\nmod tests { fn sink() {} }",
        )];
        let g = WorkspaceGraph::build(&files, Vec::new());
        let seeds = g.find_fns(&files, "crates/core/src/a.rs", "seed");
        let reach = g.reachable_from(&seeds);
        let reached: Vec<&str> = g
            .fns
            .iter()
            .enumerate()
            .filter(|&(i, _)| reach[i].is_some())
            .map(|(_, f)| f.name.as_str())
            .collect();
        assert_eq!(reached, ["seed", "step", "sink"]);
    }

    #[test]
    fn transitive_cone_includes_indirect_deps() {
        let manifests = vec![
            parse_manifest(
                "crates/query/Cargo.toml",
                "[package]\nname = \"ca-query\"\n[dependencies]\nca-hom = {}\n",
            ),
            parse_manifest(
                "crates/hom/Cargo.toml",
                "[package]\nname = \"ca-hom\"\n[dependencies]\nca-core = {}\n",
            ),
        ];
        let g = WorkspaceGraph::build(&[], manifests);
        let cone = g.cone.get("ca-query").expect("cone");
        assert!(cone.contains("ca-core"), "transitive: query → hom → core");
    }
}
