//! Finite relational structures and homomorphism problems between them.
//!
//! A [`RelStructure`] is a finite σ-structure: a universe `0..n` of
//! elements and a set of relation tuples, each tagged with a relation
//! symbol (a `u32` id whose arity is fixed per structure pair). This is the
//! structural part `M` of the paper's generalized databases; colored
//! structures `M_λ` are encoded by adding one unary relation `P_a` per
//! label, exactly as the paper does.
//!
//! Homomorphism problems (plain, restricted by a compatibility relation,
//! surjective) are compiled to the [`crate::csp`] solver.

use crate::csp::Csp;

/// A finite relational structure with universe `0..n_elements`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelStructure {
    /// Size of the universe.
    pub n_elements: usize,
    /// Tuples: `(relation symbol, elements)`. All tuples with the same
    /// symbol must have the same length when used in homomorphism problems.
    pub tuples: Vec<(u32, Vec<u32>)>,
}

impl RelStructure {
    /// An structure with `n_elements` elements and no tuples.
    pub fn new(n_elements: usize) -> Self {
        RelStructure {
            n_elements,
            tuples: Vec::new(),
        }
    }

    /// Add a tuple to relation `rel`.
    pub fn add_tuple(&mut self, rel: u32, elems: Vec<u32>) {
        debug_assert!(elems.iter().all(|&e| (e as usize) < self.n_elements));
        self.tuples.push((rel, elems));
    }

    /// Tuples of a given relation.
    pub fn relation(&self, rel: u32) -> impl Iterator<Item = &Vec<u32>> {
        self.tuples
            .iter()
            .filter(move |(r, _)| *r == rel)
            .map(|(_, t)| t)
    }

    /// The distinct relation symbols used.
    pub fn symbols(&self) -> Vec<u32> {
        let mut syms: Vec<u32> = self.tuples.iter().map(|(r, _)| *r).collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// The *primal graph* (Gaifman graph): vertices = elements, edges
    /// between any two elements co-occurring in a tuple. Returned as an
    /// adjacency-set vector. Tree decompositions are computed on this graph.
    pub fn primal_graph(&self) -> Vec<std::collections::BTreeSet<u32>> {
        let mut adj = vec![std::collections::BTreeSet::new(); self.n_elements];
        for (_, t) in &self.tuples {
            for i in 0..t.len() {
                for j in (i + 1)..t.len() {
                    if t[i] != t[j] {
                        adj[t[i] as usize].insert(t[j]);
                        adj[t[j] as usize].insert(t[i]);
                    }
                }
            }
        }
        adj
    }

    /// Compile "homomorphism from `self` to `target`, with each element `v`
    /// restricted to candidates `allowed(v)`" into a CSP.
    pub fn hom_csp_restricted<F>(&self, target: &RelStructure, allowed: F) -> Csp
    where
        F: Fn(u32) -> Vec<u32>,
    {
        let mut csp = Csp {
            domains: (0..self.n_elements as u32).map(&allowed).collect(),
            constraints: Vec::new(),
        };
        for (rel, t) in &self.tuples {
            let allowed_tuples: Vec<Vec<u32>> = target.relation(*rel).cloned().collect();
            csp.add_constraint(t.clone(), allowed_tuples);
        }
        csp
    }

    /// Compile the unrestricted homomorphism problem `self → target`.
    pub fn hom_csp(&self, target: &RelStructure) -> Csp {
        let all: Vec<u32> = (0..target.n_elements as u32).collect();
        self.hom_csp_restricted(target, |_| all.clone())
    }

    /// Is there a homomorphism `self → target`? (NP-complete in general.)
    pub fn hom_to(&self, target: &RelStructure) -> Option<Vec<u32>> {
        self.hom_csp(target).solve()
    }

    /// Is there a homomorphism `self → target` whose image *as a set of
    /// elements* covers all elements of `target` that appear in tuples or
    /// the universe? Used for onto-homomorphisms (CWA).
    pub fn onto_hom_to(&self, target: &RelStructure) -> Option<Vec<u32>> {
        let cover: Vec<u32> = (0..target.n_elements as u32).collect();
        self.hom_csp(target).solve_covering(&cover)
    }

    /// The disjoint union `self ⊔ other`, with `other`'s elements shifted.
    pub fn disjoint_union(&self, other: &RelStructure) -> RelStructure {
        let shift = self.n_elements as u32;
        let mut out = self.clone();
        out.n_elements += other.n_elements;
        for (rel, t) in &other.tuples {
            out.tuples
                .push((*rel, t.iter().map(|&e| e + shift).collect()));
        }
        out
    }

    /// The direct product `self × other`: elements are pairs (encoded as
    /// `a * other.n + b`), and a relation holds of a tuple of pairs iff it
    /// holds component-wise. Returns the product and the pair decoding.
    pub fn product(&self, other: &RelStructure) -> (RelStructure, Vec<(u32, u32)>) {
        let n2 = other.n_elements as u32;
        let mut out = RelStructure::new(self.n_elements * other.n_elements);
        let pairs: Vec<(u32, u32)> = (0..self.n_elements as u32)
            .flat_map(|a| (0..n2).map(move |b| (a, b)))
            .collect();
        for (rel, t1) in &self.tuples {
            for t2 in other.relation(*rel) {
                if t1.len() != t2.len() {
                    continue;
                }
                let combined: Vec<u32> = t1
                    .iter()
                    .zip(t2.iter())
                    .map(|(&a, &b)| a * n2 + b)
                    .collect();
                out.add_tuple(*rel, combined);
            }
        }
        (out, pairs)
    }

    /// The induced substructure on `keep` (a set of elements), with elements
    /// renumbered in `keep` order. Returns the substructure and the map
    /// old-element → new-element.
    pub fn induced(&self, keep: &[u32]) -> (RelStructure, Vec<Option<u32>>) {
        let mut renumber = vec![None; self.n_elements];
        for (new, &old) in keep.iter().enumerate() {
            renumber[old as usize] = Some(new as u32);
        }
        let mut out = RelStructure::new(keep.len());
        for (rel, t) in &self.tuples {
            if let Some(new_t) = t
                .iter()
                .map(|&e| renumber[e as usize])
                .collect::<Option<Vec<u32>>>()
            {
                out.add_tuple(*rel, new_t);
            }
        }
        (out, renumber)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A directed graph as a structure with one binary relation 0.
    fn digraph(n: usize, edges: &[(u32, u32)]) -> RelStructure {
        let mut s = RelStructure::new(n);
        for &(u, v) in edges {
            s.add_tuple(0, vec![u, v]);
        }
        s
    }

    fn dicycle(n: u32) -> RelStructure {
        digraph(
            n as usize,
            &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn hom_cycle_lengths() {
        // C6 → C3 exists (wrap twice); C3 → C6 does not.
        assert!(dicycle(6).hom_to(&dicycle(3)).is_some());
        assert!(dicycle(3).hom_to(&dicycle(6)).is_none());
    }

    #[test]
    fn hom_is_a_homomorphism() {
        let g = dicycle(6);
        let h = dicycle(3);
        let hom = g.hom_to(&h).unwrap();
        for (_, t) in &g.tuples {
            let image: Vec<u32> = t.iter().map(|&v| hom[v as usize]).collect();
            assert!(h.relation(0).any(|s| *s == image));
        }
    }

    #[test]
    fn path_to_anything_with_edges() {
        // Directed path of length 2 maps into any graph with a directed
        // walk of length 2; a single loop provides one.
        let p2 = digraph(3, &[(0, 1), (1, 2)]);
        let mut looped = RelStructure::new(1);
        looped.add_tuple(0, vec![0, 0]);
        assert!(p2.hom_to(&looped).is_some());
    }

    #[test]
    fn restricted_hom_respects_allowed_sets() {
        let p1 = digraph(2, &[(0, 1)]);
        let target = digraph(3, &[(0, 1), (1, 2)]);
        // Allow vertex 0 only to map to 1: forces the edge (1, 2).
        let csp = p1.hom_csp_restricted(&target, |v| if v == 0 { vec![1] } else { vec![0, 1, 2] });
        let sol = csp.solve().unwrap();
        assert_eq!(sol, vec![1, 2]);
    }

    #[test]
    fn onto_hom() {
        // C6 → C3 can be onto; C3 → C3 identity is onto; P2 (2 elements,
        // 1 edge) → C3 cannot be onto (image has ≤ 2 elements).
        assert!(dicycle(6).onto_hom_to(&dicycle(3)).is_some());
        let p1 = digraph(2, &[(0, 1)]);
        assert!(p1.hom_to(&dicycle(3)).is_some());
        assert!(p1.onto_hom_to(&dicycle(3)).is_none());
    }

    #[test]
    fn product_projects_both_ways() {
        let a = dicycle(2);
        let b = dicycle(3);
        let (p, pairs) = a.product(&b);
        assert_eq!(p.n_elements, 6);
        // Projections are homomorphisms.
        for (_, t) in &p.tuples {
            let pa: Vec<u32> = t.iter().map(|&e| pairs[e as usize].0).collect();
            let pb: Vec<u32> = t.iter().map(|&e| pairs[e as usize].1).collect();
            assert!(a.relation(0).any(|s| *s == pa));
            assert!(b.relation(0).any(|s| *s == pb));
        }
        // C2 × C3 ≅ C6 (gcd(2,3)=1): hom to C6 and back exist.
        assert!(p.hom_to(&dicycle(6)).is_some());
        assert!(dicycle(6).hom_to(&p).is_some());
    }

    #[test]
    fn disjoint_union_admits_injections() {
        let a = dicycle(3);
        let b = dicycle(4);
        let u = a.disjoint_union(&b);
        assert_eq!(u.n_elements, 7);
        assert!(a.hom_to(&u).is_some());
        assert!(b.hom_to(&u).is_some());
        // And the union maps to nothing smaller than both: no hom to C3
        // because the C4 part cannot map there... (C4 → C3? gcd issues:
        // C4 → C3 needs 4 ≡ 0 mod 3 walk; no hom since no closed walk of
        // length 4 in C3... actually C4 → C3 has no hom because a directed
        // cycle Cn maps to Cm iff m divides n.)
        assert!(u.hom_to(&dicycle(3)).is_none());
    }

    #[test]
    fn induced_substructure() {
        let g = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let (sub, renumber) = g.induced(&[1, 2]);
        assert_eq!(sub.n_elements, 2);
        assert_eq!(sub.tuples, vec![(0, vec![0, 1])]);
        assert_eq!(renumber[0], None);
        assert_eq!(renumber[1], Some(0));
    }

    #[test]
    fn primal_graph_of_ternary_tuple() {
        let mut s = RelStructure::new(4);
        s.add_tuple(0, vec![0, 1, 2]);
        s.add_tuple(1, vec![2, 3]);
        let adj = s.primal_graph();
        assert!(adj[0].contains(&1) && adj[0].contains(&2));
        assert!(adj[1].contains(&2));
        assert!(adj[2].contains(&3));
        assert!(!adj[0].contains(&3));
    }

    #[test]
    fn colored_structures_via_unary_predicates() {
        // Color vertices with unary relations 10 (red) and 11 (blue):
        // homomorphisms must preserve colors.
        let mut g = digraph(2, &[(0, 1)]);
        g.add_tuple(10, vec![0]);
        g.add_tuple(11, vec![1]);
        let mut h_good = digraph(2, &[(0, 1)]);
        h_good.add_tuple(10, vec![0]);
        h_good.add_tuple(11, vec![1]);
        let mut h_bad = digraph(2, &[(0, 1)]);
        h_bad.add_tuple(11, vec![0]);
        h_bad.add_tuple(10, vec![1]);
        assert!(g.hom_to(&h_good).is_some());
        assert!(g.hom_to(&h_bad).is_none());
    }
}
