//! # ca-hom — the homomorphism engine
//!
//! Almost every computational task in Libkin's PODS 2011 paper reduces to
//! deciding (or constructing) homomorphisms: the information ordering `⊑` is
//! homomorphism existence (Propositions 3 and 9), membership is a
//! constraint-satisfaction problem (Section 6), containment of conjunctive
//! queries is a homomorphism between tableaux (Proposition 2), cores and the
//! lattice operations of Section 4 are built from endomorphism searches.
//!
//! This crate is the single engine behind all of them:
//!
//! * [`csp`] — a generic constraint-satisfaction solver (bitset domains,
//!   precomputed tuple supports, trail-based backtracking with
//!   minimum-remaining-values ordering and forward checking, optional
//!   root-level parallel search), with find-one / find-all / count /
//!   surjective-image modes.
//! * [`reference`] — the original naive solver, kept as a differential
//!   testing oracle and benchmark baseline for [`csp`].
//! * [`matching`] — Hopcroft–Karp bipartite matching, Hall's condition, and
//!   systems of distinct representatives (used by the Codd-interpretation
//!   algorithms and Proposition 8).
//! * [`propagate`] — generalized arc consistency preprocessing for the
//!   solver.
//! * [`structure`] — finite relational structures (the structural part
//!   `M_λ` of generalized databases) and homomorphism problems between
//!   them, compiled to CSPs.
//! * [`retract`] — the incremental retraction engine behind every core
//!   computation (digraph cores, generalized-database cores, the §4
//!   lattice): compile the self-homomorphism CSP once, shrink by in-place
//!   domain restriction, fold dominated elements without search.
//! * [`treewidth`] — tree decompositions: validation, exact recognition
//!   for width ≤ 2, and a min-fill heuristic for general graphs.
//! * [`dp`] — the polynomial-time *R-compatible homomorphism* algorithm of
//!   Theorem 6 (Lemmas 3–5): dynamic programming over a tree decomposition
//!   of the source structure.

pub mod csp;
pub mod dp;
pub mod matching;
pub mod propagate;
pub mod reference;
pub mod retract;
pub mod structure;
pub mod treewidth;

pub use csp::{Constraint, Csp, Enumeration, SolverConfig, SolverStats};
pub use dp::r_compatible_hom_dp;
pub use matching::{hall_condition, max_bipartite_matching};
pub use structure::RelStructure;
pub use treewidth::TreeDecomposition;
