//! The shared retraction engine: cores by incremental self-homomorphism
//! search.
//!
//! A core of a structure `S` is a minimal subset `R` of its elements such
//! that `S` retracts onto `S[R]` (Hell–Nešetřil; unique up to
//! isomorphism). The naive algorithm recompiles and resolves a fresh CSP
//! for every candidate element in every shrink round — `O(n²)` solver
//! *compilations* per core. This engine serves both digraph cores
//! (`ca_graph::core`) and generalized-database cores
//! (`ca_exchange::solution`, via the [`self-hom encoding`]) from one
//! shrink loop built on three observations:
//!
//! 1. **One compile serves the whole loop.** If an endomorphism of `S`
//!    with probe image inside a live set `R` exists, then `S[R]` retracts
//!    onto `S[R] ∖ {v}` **iff** `S` has an endomorphism whose probe
//!    domains are restricted to `R ∖ {v}` (compose with the witness
//!    retraction one way, restrict the other). So the self-homomorphism
//!    CSP of the *original* structure is compiled once
//!    ([`crate::csp::IncrementalSelfHom`]); shrinking only intersects
//!    bitset domains in place and re-propagates.
//! 2. **Failures are monotone.** Restricting domains can only lose
//!    solutions, so a candidate proven unavoidable stays unavoidable for
//!    every later (smaller) live set: each candidate is probed at most
//!    once across the whole loop — `O(n)` probes total, not `O(n²)`.
//! 3. **Most shrinkage needs no search.** A PTIME fold prepass eliminates
//!    dominated elements (an element `u` folds onto `w` when substituting
//!    `u ↦ w` maps every current tuple to a tuple of `S`), and each
//!    solver-found endomorphism is greedily self-composed until its image
//!    stabilizes, shrinking many elements per solve.
//!
//! Remaining candidates are probed in parallel (`CA_HOM_THREADS`,
//! `std::thread::scope` inside the sanctioned [`crate::csp`] module) with
//! deterministic lowest-candidate-wins selection, so the kept element set
//! is identical at every thread width.
//!
//! [`self-hom encoding`]: https://example.org/ `ca_gdm::encode::self_hom_structure`

use crate::csp::{default_threads, IncrementalSelfHom};
use crate::structure::RelStructure;
use ca_cert::{CoreCert, CoreStep};

/// The result of a retraction run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Retraction {
    /// The kept probe elements, ascending, in the *original* numbering:
    /// the core's element set.
    pub kept: Vec<u32>,
    /// A witness endomorphism of the original structure (indexed by
    /// element) mapping every probe element into `kept` — the composition
    /// of every fold and every solver-found endomorphism.
    pub map: Vec<u32>,
}

/// Shrink `s` to a core over the `probe` elements with the default
/// thread pool ([`default_threads`], i.e. `CA_HOM_THREADS`).
pub fn retract_core(s: &RelStructure, probe: &[u32]) -> Retraction {
    retract_core_with(s, probe, default_threads())
}

/// Shrink `s` to a core over the `probe` elements: find a minimal live
/// subset of `probe` such that `s` has an endomorphism mapping every
/// probe element into it (non-probe elements are never candidates for
/// removal and keep their full domains). For digraphs pass every vertex;
/// for encoded generalized databases pass the node-element prefix.
///
/// Deterministic at every `threads` width (lowest-candidate-wins).
pub fn retract_core_with(s: &RelStructure, probe: &[u32], threads: usize) -> Retraction {
    run_retract(s, probe, threads, None)
}

/// Like [`retract_core_with`], but also records every fold and every
/// solver-found endomorphism into a replayable [`CoreCert`]. The
/// certificate attests that `map` is an endomorphism built exactly from
/// the recorded chain and retracts `probe` onto `kept`; minimality is
/// not a replayable claim (see [`CoreCert`]).
pub fn retract_core_certified(
    s: &RelStructure,
    probe: &[u32],
    threads: usize,
) -> (Retraction, CoreCert) {
    let mut steps: Vec<CoreStep> = Vec::new();
    let r = run_retract(s, probe, threads, Some(&mut steps));
    let mut tuples = s.tuples.clone();
    tuples.sort_unstable();
    tuples.dedup();
    let mut probe_sorted: Vec<u32> = probe
        .iter()
        .copied()
        .filter(|&p| (p as usize) < s.n_elements)
        .collect();
    probe_sorted.sort_unstable();
    probe_sorted.dedup();
    let cert = CoreCert {
        n_elements: s.n_elements as u32,
        tuples,
        probe: probe_sorted,
        steps,
        kept: r.kept.clone(),
        map: r.map.clone(),
    };
    (r, cert)
}

fn run_retract(
    s: &RelStructure,
    probe: &[u32],
    threads: usize,
    mut rec: Option<&mut Vec<CoreStep>>,
) -> Retraction {
    let n = s.n_elements;
    let mut map: Vec<u32> = (0..n as u32).collect();
    let mut live: Vec<u32> = probe
        .iter()
        .copied()
        .filter(|&p| (p as usize) < n)
        .collect();
    live.sort_unstable();
    live.dedup();
    let probe = live.clone();

    // Sorted tuple set of the original structure, for fold membership
    // tests (binary search instead of linear scans).
    let mut all_tuples: Vec<(u32, Vec<u32>)> = s.tuples.clone();
    all_tuples.sort_unstable();
    all_tuples.dedup();

    fold_pass(s, &all_tuples, &mut live, &mut map, rec.as_deref_mut());
    if live.len() <= 1 {
        // A single live element cannot be avoided (its probe domain would
        // be empty), so the loop below could only pin it: done already.
        return Retraction { kept: live, map };
    }

    let csp = s.hom_csp(s);
    let mut inc = IncrementalSelfHom::new(&csp, &probe);
    let n_words = n.div_ceil(64).max(1);
    // Probe elements must map into the live (probe) set from the start —
    // without this a probe could escape into a non-probe element and the
    // kept set would leave the probe universe.
    inc.restrict_probes(&live_mask(&live, n_words));

    // Candidates proven unavoidable — permanently, since later live sets
    // only restrict domains further.
    let mut pinned = vec![false; n];
    loop {
        let candidates: Vec<u32> = live
            .iter()
            .copied()
            .filter(|&v| !pinned[v as usize])
            .collect();
        if candidates.is_empty() {
            break;
        }
        let (winner, failed) = inc.probe_lowest(&candidates, threads);
        for v in failed {
            pinned[v as usize] = true;
        }
        let Some((_, h)) = winner else {
            break;
        };
        // Greedy composition: iterate the found endomorphism until its
        // probe image stabilizes (images are nested decreasing, so
        // comparing sizes suffices), then fold it into the accumulated map.
        let mut g = h.clone();
        loop {
            let g2: Vec<u32> = g.iter().map(|&x| h[x as usize]).collect();
            if image_size(&g2, &live) == image_size(&g, &live) {
                break;
            }
            g = g2;
        }
        if let Some(r) = rec.as_deref_mut() {
            r.push(CoreStep::Endo { g: g.clone() });
        }
        for x in map.iter_mut() {
            *x = g[*x as usize];
        }
        let mut new_live: Vec<u32> = live.iter().map(|&u| g[u as usize]).collect();
        new_live.sort_unstable();
        new_live.dedup();
        live = new_live;
        fold_pass(s, &all_tuples, &mut live, &mut map, rec.as_deref_mut());
        let ok = inc.restrict_probes(&live_mask(&live, n_words));
        debug_assert!(ok, "retraction invariant violated: live set unreachable");
        if !ok {
            break;
        }
    }
    Retraction { kept: live, map }
}

/// Bitset of the live element ids.
fn live_mask(live: &[u32], n_words: usize) -> Vec<u64> {
    let mut mask = vec![0u64; n_words];
    for &v in live {
        if let Some(w) = mask.get_mut(v as usize >> 6) {
            *w |= 1u64 << (v & 63);
        }
    }
    mask
}

/// Number of distinct images of `of` under `g` (assumes `of` sorted).
fn image_size(g: &[u32], of: &[u32]) -> usize {
    let mut img: Vec<u32> = of.iter().map(|&u| g[u as usize]).collect();
    img.sort_unstable();
    img.dedup();
    img.len()
}

/// PTIME dominance prepass: repeatedly fold a live element `u` onto
/// another live element `w` whenever the substitution `u ↦ w` maps every
/// current-image tuple containing `u` to a tuple of the original
/// structure (so `id except u ↦ w`, composed with the accumulated map,
/// is still an endomorphism). This removes pendant and dominated
/// elements — most of the shrinkage on product graphs — without any
/// search. Deterministic: lowest `u`, then lowest `w`, wins each round.
fn fold_pass(
    s: &RelStructure,
    all_tuples: &[(u32, Vec<u32>)],
    live: &mut Vec<u32>,
    map: &mut [u32],
    mut rec: Option<&mut Vec<CoreStep>>,
) {
    if live.len() < 2 {
        return;
    }
    loop {
        // Current-image tuples and, per live element, which contain it.
        let mut mapped: Vec<(u32, Vec<u32>)> = s
            .tuples
            .iter()
            .map(|(r, t)| (*r, t.iter().map(|&x| map[x as usize]).collect()))
            .collect();
        mapped.sort_unstable();
        mapped.dedup();
        let mut occ: Vec<Vec<usize>> = vec![Vec::new(); s.n_elements];
        for (ti, (_, t)) in mapped.iter().enumerate() {
            for &x in t {
                if let Some(list) = occ.get_mut(x as usize) {
                    if list.last() != Some(&ti) {
                        list.push(ti);
                    }
                }
            }
        }
        let mut applied = false;
        'scan: for (ui, &u) in live.iter().enumerate() {
            for &w in live.iter() {
                if w == u {
                    continue;
                }
                if fold_ok(all_tuples, &mapped, &occ, u, w) {
                    if let Some(r) = rec.as_deref_mut() {
                        r.push(CoreStep::Fold { u, w });
                    }
                    for x in map.iter_mut() {
                        if *x == u {
                            *x = w;
                        }
                    }
                    live.remove(ui);
                    applied = true;
                    break 'scan;
                }
            }
        }
        if !applied {
            return;
        }
    }
}

/// Is `id except u ↦ w` a homomorphism from the current image into `s`?
fn fold_ok(
    all_tuples: &[(u32, Vec<u32>)],
    mapped: &[(u32, Vec<u32>)],
    occ: &[Vec<usize>],
    u: u32,
    w: u32,
) -> bool {
    let Some(touching) = occ.get(u as usize) else {
        return false;
    };
    let mut probe_tuple: Vec<u32> = Vec::new();
    for &ti in touching {
        let Some((rel, t)) = mapped.get(ti) else {
            return false;
        };
        probe_tuple.clear();
        probe_tuple.extend(t.iter().map(|&x| if x == u { w } else { x }));
        if all_tuples
            .binary_search_by(|(r, cand)| r.cmp(rel).then_with(|| cand[..].cmp(&probe_tuple)))
            .is_err()
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digraph(n: usize, edges: &[(u32, u32)]) -> RelStructure {
        let mut s = RelStructure::new(n);
        for &(u, v) in edges {
            s.add_tuple(0, vec![u, v]);
        }
        s
    }

    fn dicycle(n: u32) -> RelStructure {
        digraph(
            n as usize,
            &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>(),
        )
    }

    fn all_probe(s: &RelStructure) -> Vec<u32> {
        (0..s.n_elements as u32).collect()
    }

    /// The witness map must be an endomorphism mapping kept into kept.
    fn check_witness(s: &RelStructure, r: &Retraction) {
        for (rel, t) in &s.tuples {
            let image: Vec<u32> = t.iter().map(|&x| r.map[x as usize]).collect();
            let found = s
                .tuples
                .iter()
                .any(|(cr, cand)| cr == rel && *cand == image);
            assert!(found, "witness map breaks tuple {t:?} -> {image:?}");
        }
        for v in 0..s.n_elements as u32 {
            assert!(
                r.kept.binary_search(&r.map[v as usize]).is_ok(),
                "map sends {v} outside the kept set"
            );
        }
    }

    #[test]
    fn cycles_are_cores() {
        for n in 2..=7 {
            let s = dicycle(n);
            let r = retract_core_with(&s, &all_probe(&s), 1);
            assert_eq!(r.kept.len(), n as usize, "C{n} must not shrink");
        }
    }

    #[test]
    fn even_cycle_union_c2_retracts_to_c2() {
        let s = dicycle(8).disjoint_union(&dicycle(2));
        let r = retract_core_with(&s, &all_probe(&s), 1);
        assert_eq!(r.kept.len(), 2);
        check_witness(&s, &r);
    }

    #[test]
    fn incomparable_cycles_stay() {
        // C3 ⊔ C4: neither maps into the other.
        let s = dicycle(3).disjoint_union(&dicycle(4));
        let r = retract_core_with(&s, &all_probe(&s), 1);
        assert_eq!(r.kept.len(), 7);
    }

    #[test]
    fn pendant_vertex_folds_without_search() {
        // Path 0→1→2 plus pendant 3→1: vertices 0 and 3 are symmetric
        // in-neighbors of 1, so one folds onto the other. Deterministic
        // scan order (lowest u, lowest w) folds 0 onto 3.
        let s = digraph(4, &[(0, 1), (1, 2), (3, 1)]);
        let mut live: Vec<u32> = vec![0, 1, 2, 3];
        let mut map: Vec<u32> = (0..4).collect();
        let mut all = s.tuples.clone();
        all.sort_unstable();
        let mut steps = Vec::new();
        fold_pass(&s, &all, &mut live, &mut map, Some(&mut steps));
        assert_eq!(live, vec![1, 2, 3]);
        assert_eq!(map[0], 3);
        assert_eq!(steps, vec![ca_cert::CoreStep::Fold { u: 0, w: 3 }]);
    }

    #[test]
    fn certified_retractions_replay_through_checker() {
        // Fold-only shrinkage (pendant vertex), solver-driven shrinkage
        // (C8 ⊔ C2), and a no-shrink core (C3 ⊔ C4) all round-trip.
        let cases = [
            digraph(4, &[(0, 1), (1, 2), (3, 1)]),
            dicycle(8).disjoint_union(&dicycle(2)),
            dicycle(3).disjoint_union(&dicycle(4)),
        ];
        for s in &cases {
            let (r, cert) = retract_core_certified(s, &all_probe(s), 1);
            assert_eq!(r, retract_core_with(s, &all_probe(s), 1));
            assert_eq!(ca_cert::check_core(&cert), Ok(()));
            assert_eq!(cert.kept, r.kept);
            assert_eq!(cert.map, r.map);
        }
    }

    #[test]
    fn tampered_core_cert_is_rejected() {
        let s = dicycle(8).disjoint_union(&dicycle(2));
        let (_, cert) = retract_core_certified(&s, &all_probe(&s), 1);
        let mut bad = cert.clone();
        bad.steps.pop();
        assert!(ca_cert::check_core(&bad).is_err(), "truncated chain passed");
        let mut bad = cert;
        if let Some(k) = bad.kept.first_mut() {
            *k = (s.n_elements as u32).saturating_sub(1);
        }
        assert!(ca_cert::check_core(&bad).is_err(), "forged kept set passed");
    }

    #[test]
    fn loop_absorbs_everything() {
        let s = digraph(3, &[(0, 0), (1, 0), (0, 2), (1, 2)]);
        let r = retract_core_with(&s, &all_probe(&s), 1);
        assert_eq!(r.kept, vec![0]);
    }

    #[test]
    fn probe_subset_only_shrinks_probes() {
        // Two disjoint edges; only the second edge's vertices are probes.
        let s = digraph(4, &[(0, 1), (2, 3)]);
        let r = retract_core_with(&s, &[2, 3], 1);
        // {2,3} cannot shrink: avoiding 2 forces both probes onto {3},
        // which breaks the edge (2,3); symmetrically for 3. Non-probe
        // vertices 0 and 1 are never removal candidates.
        assert_eq!(r.kept, vec![2, 3]);
    }

    #[test]
    fn deterministic_across_thread_widths() {
        let (p, _) = dicycle(3).product(&dicycle(4));
        let big = p.disjoint_union(&dicycle(2)).disjoint_union(&dicycle(6));
        let probe = all_probe(&big);
        let base = retract_core_with(&big, &probe, 1);
        for threads in [2, 4, 7] {
            let r = retract_core_with(&big, &probe, threads);
            assert_eq!(base.kept, r.kept, "kept set diverged at {threads} threads");
            assert_eq!(base.map, r.map, "witness map diverged at {threads} threads");
        }
    }

    #[test]
    fn empty_and_trivial_structures() {
        let empty = RelStructure::new(0);
        let r = retract_core_with(&empty, &[], 1);
        assert!(r.kept.is_empty());
        let single = RelStructure::new(1);
        let r = retract_core_with(&single, &[0], 1);
        assert_eq!(r.kept, vec![0]);
    }
}
