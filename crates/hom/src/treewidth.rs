//! Tree decompositions.
//!
//! Theorem 6 of the paper gives a PTIME membership test for generalized
//! databases whose structural part has treewidth ≤ k (under the Codd
//! interpretation of nulls). The dynamic program in [`crate::dp`] runs over
//! a tree decomposition of the source's primal graph; this module builds
//! and validates such decompositions:
//!
//! * bounded-degree elimination, which *exactly* recognizes treewidth ≤ 1
//!   (forests) and ≤ 2 (series-parallel-reducible graphs) — the two cases
//!   the paper highlights (k = 1 covers both relational Codd tables and
//!   XML trees);
//! * a min-fill elimination heuristic for general graphs (an upper bound on
//!   the width, which is all Theorem 6 needs).

use std::collections::BTreeSet;

/// A tree decomposition: bags of vertices plus tree edges between bags.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The bags; `bags[i]` is the vertex set of node `i`.
    pub bags: Vec<Vec<u32>>,
    /// Undirected tree edges between bag indices.
    pub edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// The width: max bag size − 1 (−1 ≡ empty decomposition ⇒ width 0
    /// reported as 0 for an empty graph).
    pub fn width(&self) -> usize {
        self.bags.iter().map(Vec::len).max().unwrap_or(1) - 1
    }

    /// Validate the three tree-decomposition properties against a graph
    /// given as adjacency sets:
    /// 1. every vertex is in some bag;
    /// 2. every edge is inside some bag;
    /// 3. for each vertex, the bags containing it form a connected subtree.
    pub fn validate(&self, n_vertices: usize, adj: &[BTreeSet<u32>]) -> bool {
        // The edges must form a tree (connected, acyclic) over the bags —
        // or a forest whose components partition vertex occurrences; for
        // simplicity we require a tree when there are ≥ 1 bags.
        if !self.bags.is_empty() {
            let n = self.bags.len();
            if self.edges.len() + 1 != n {
                return false;
            }
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            let Some(first) = seen.first_mut() else {
                return false;
            };
            *first = true;
            let mut count = 1;
            while let Some(t) = stack.pop() {
                for &(a, b) in &self.edges {
                    let other = if a == t {
                        b
                    } else if b == t {
                        a
                    } else {
                        continue;
                    };
                    if !seen[other] {
                        seen[other] = true;
                        count += 1;
                        stack.push(other);
                    }
                }
            }
            if count != n {
                return false;
            }
        }
        // 1. Coverage of vertices.
        let mut covered = vec![false; n_vertices];
        for bag in &self.bags {
            for &v in bag {
                if (v as usize) >= n_vertices {
                    return false;
                }
                covered[v as usize] = true;
            }
        }
        if covered.iter().any(|&c| !c) && n_vertices > 0 {
            return false;
        }
        // 2. Coverage of edges.
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                let inside = self
                    .bags
                    .iter()
                    .any(|bag| bag.contains(&(u as u32)) && bag.contains(&v));
                if !inside {
                    return false;
                }
            }
        }
        // 3. Connectivity of each vertex's bags.
        for v in 0..n_vertices as u32 {
            let holding: Vec<usize> = self
                .bags
                .iter()
                .enumerate()
                .filter(|(_, bag)| bag.contains(&v))
                .map(|(i, _)| i)
                .collect();
            if holding.len() <= 1 {
                continue;
            }
            // BFS within holding bags only.
            let Some(&start) = holding.first() else {
                continue;
            };
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(t) = stack.pop() {
                for &(a, b) in &self.edges {
                    let other = if a == t {
                        b
                    } else if b == t {
                        a
                    } else {
                        continue;
                    };
                    if holding.contains(&other) && seen.insert(other) {
                        stack.push(other);
                    }
                }
            }
            if seen.len() != holding.len() {
                return false;
            }
        }
        true
    }

    /// Root the decomposition at bag 0 and return, for each bag, its parent
    /// (`usize::MAX` for the root) and children lists.
    pub fn rooted(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let n = self.bags.len();
        let mut parent = vec![usize::MAX; n];
        let mut children = vec![Vec::new(); n];
        if n == 0 {
            return (parent, children);
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        if let Some(first) = seen.first_mut() {
            *first = true;
        }
        while let Some(t) = stack.pop() {
            for &u in &adj[t] {
                if !seen[u] {
                    seen[u] = true;
                    parent[u] = t;
                    children[t].push(u);
                    stack.push(u);
                }
            }
        }
        (parent, children)
    }
}

/// Build a tree decomposition from an elimination ordering.
///
/// Processing vertices in order, the bag of `v` is `{v}` plus its
/// neighbours in the current fill graph; eliminating `v` connects those
/// neighbours into a clique. The bag of `v` is attached to the bag of the
/// earliest-eliminated vertex among its later neighbours.
fn decomposition_from_order(adj: &[BTreeSet<u32>], order: &[u32]) -> TreeDecomposition {
    let n = adj.len();
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i;
    }
    let mut fill: Vec<BTreeSet<u32>> = adj.to_vec();
    let mut bags: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut later_nbrs: Vec<Vec<u32>> = Vec::with_capacity(n);
    for &v in order {
        let nbrs: Vec<u32> = fill[v as usize]
            .iter()
            .copied()
            .filter(|&u| pos[u as usize] > pos[v as usize])
            .collect();
        let mut bag = nbrs.clone();
        bag.push(v);
        bag.sort_unstable();
        bags.push(bag);
        later_nbrs.push(nbrs.clone());
        // Make later neighbours a clique.
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                fill[nbrs[i] as usize].insert(nbrs[j]);
                fill[nbrs[j] as usize].insert(nbrs[i]);
            }
        }
    }
    // Tree edges: bag of v connects to bag of its first-eliminated later
    // neighbour.
    let mut edges = Vec::new();
    for (i, nbrs) in later_nbrs.iter().enumerate() {
        if let Some(&first) = nbrs.iter().min_by_key(|&&u| pos[u as usize]) {
            edges.push((i, pos[first as usize]));
        }
    }
    // If the graph is disconnected the edges form a forest; link the
    // components' roots in a chain so the result is a single tree.
    let mut td = TreeDecomposition { bags, edges };
    connect_forest(&mut td);
    td
}

/// Link the connected components of a decomposition forest into one tree
/// (adding edges between arbitrary representatives; bags are untouched so
/// all decomposition properties are preserved).
fn connect_forest(td: &mut TreeDecomposition) {
    let n = td.bags.len();
    if n == 0 {
        return;
    }
    let mut comp = vec![usize::MAX; n];
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &td.edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut reps = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        reps.push(start);
        let id = reps.len() - 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(t) = stack.pop() {
            for &u in &adj[t] {
                if comp[u] == usize::MAX {
                    comp[u] = id;
                    stack.push(u);
                }
            }
        }
    }
    for w in reps.windows(2) {
        if let &[a, b] = w {
            td.edges.push((a, b));
        }
    }
}

/// Exact recognition of treewidth ≤ k for k ∈ {1, 2} via bounded-degree
/// elimination: a graph has treewidth ≤ 2 iff it reduces to nothing by
/// repeatedly eliminating a vertex of degree ≤ 2 (and ≤ 1 for forests).
/// Returns a decomposition of width ≤ k, or `None` if treewidth > k.
pub fn decompose_exact_low_width(adj: &[BTreeSet<u32>], k: usize) -> Option<TreeDecomposition> {
    assert!(k == 1 || k == 2, "exact recognition implemented for k ≤ 2");
    let n = adj.len();
    let mut fill: Vec<BTreeSet<u32>> = adj.to_vec();
    let mut alive: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v] && fill[v].len() <= k)
            .min_by_key(|&v| fill[v].len())?;
        order.push(v as u32);
        alive[v] = false;
        let nbrs: Vec<u32> = fill[v].iter().copied().collect();
        for &u in &nbrs {
            fill[u as usize].remove(&(v as u32));
        }
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                fill[nbrs[i] as usize].insert(nbrs[j]);
                fill[nbrs[j] as usize].insert(nbrs[i]);
            }
        }
        fill[v].clear();
    }
    let td = decomposition_from_order(adj, &order);
    (td.width() <= k).then_some(td)
}

/// Min-fill heuristic: repeatedly eliminate the vertex whose elimination
/// adds the fewest fill edges. Returns a valid decomposition whose width
/// upper-bounds the treewidth.
pub fn decompose_min_fill(adj: &[BTreeSet<u32>]) -> TreeDecomposition {
    let n = adj.len();
    let mut fill: Vec<BTreeSet<u32>> = adj.to_vec();
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let picked = (0..n).filter(|&v| alive[v]).min_by_key(|&v| {
            let nbrs: Vec<u32> = fill[v].iter().copied().collect();
            let mut missing = 0usize;
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    if !fill[nbrs[i] as usize].contains(&nbrs[j]) {
                        missing += 1;
                    }
                }
            }
            (missing, nbrs.len())
        });
        let Some(v) = picked else {
            // One vertex dies per round, so round i of n has n - i alive.
            unreachable!("an alive vertex exists each elimination round");
        };
        order.push(v as u32);
        alive[v] = false;
        let nbrs: Vec<u32> = fill[v].iter().copied().collect();
        for &u in &nbrs {
            fill[u as usize].remove(&(v as u32));
        }
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                fill[nbrs[i] as usize].insert(nbrs[j]);
                fill[nbrs[j] as usize].insert(nbrs[i]);
            }
        }
        fill[v].clear();
    }
    decomposition_from_order(adj, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> Vec<BTreeSet<u32>> {
        let mut adj = vec![BTreeSet::new(); n];
        for &(u, v) in edges {
            adj[u as usize].insert(v);
            adj[v as usize].insert(u);
        }
        adj
    }

    #[test]
    fn path_has_treewidth_one() {
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let td = decompose_exact_low_width(&adj, 1).unwrap();
        assert_eq!(td.width(), 1);
        assert!(td.validate(5, &adj));
    }

    #[test]
    fn cycle_has_treewidth_two_not_one() {
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(decompose_exact_low_width(&adj, 1).is_none());
        let td = decompose_exact_low_width(&adj, 2).unwrap();
        assert_eq!(td.width(), 2);
        assert!(td.validate(4, &adj));
    }

    #[test]
    fn k4_has_treewidth_three() {
        let adj = adj_of(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(decompose_exact_low_width(&adj, 2).is_none());
        let td = decompose_min_fill(&adj);
        assert_eq!(td.width(), 3);
        assert!(td.validate(4, &adj));
    }

    #[test]
    fn star_is_a_tree() {
        let adj = adj_of(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let td = decompose_exact_low_width(&adj, 1).unwrap();
        assert!(td.validate(5, &adj));
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn disconnected_graph_is_handled() {
        let adj = adj_of(6, &[(0, 1), (2, 3), (4, 5)]);
        let td = decompose_exact_low_width(&adj, 1).unwrap();
        assert!(td.validate(6, &adj));
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<BTreeSet<u32>> = Vec::new();
        let td = decompose_min_fill(&adj);
        assert!(td.validate(0, &adj));
    }

    #[test]
    fn isolated_vertices_are_covered() {
        let adj = adj_of(3, &[]);
        let td = decompose_min_fill(&adj);
        assert!(td.validate(3, &adj));
    }

    #[test]
    fn min_fill_is_reasonable_on_grid() {
        // 3×3 grid: treewidth 3; min-fill should find width ≤ 4.
        let mut edges = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let v = r * 3 + c;
                if c < 2 {
                    edges.push((v, v + 1));
                }
                if r < 2 {
                    edges.push((v, v + 3));
                }
            }
        }
        let adj = adj_of(9, &edges);
        let td = decompose_min_fill(&adj);
        assert!(td.validate(9, &adj));
        assert!(td.width() <= 4);
    }

    #[test]
    fn series_parallel_is_width_two() {
        // Two paths in parallel between s=0 and t=5.
        let adj = adj_of(6, &[(0, 1), (1, 5), (0, 2), (2, 3), (3, 5), (0, 5)]);
        let td = decompose_exact_low_width(&adj, 2).unwrap();
        assert!(td.validate(6, &adj));
        assert!(td.width() <= 2);
    }

    #[test]
    fn rooted_structure_is_consistent() {
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let td = decompose_exact_low_width(&adj, 1).unwrap();
        let (parent, children) = td.rooted();
        assert_eq!(parent[0], usize::MAX);
        // Every non-root has a parent, and children lists are consistent.
        for (i, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                assert!(children[p].contains(&i));
            }
        }
    }
}
