//! The Theorem 6 algorithm: R-compatible homomorphisms in polynomial time
//! for sources of bounded treewidth.
//!
//! Theorem 6 reduces membership under the Codd interpretation to
//! `R-Hom(A, B)`: is there a homomorphism from structure `A` to structure
//! `B` whose graph is contained in a given compatibility relation
//! `R ⊆ A × B`? (Lemma 3 supplies `R` from label equality and data-tuple
//! dominance; Lemmas 4–5 show `R-Hom` is PTIME when `A` has bounded
//! treewidth.)
//!
//! We solve `R-Hom` directly by dynamic programming over a tree
//! decomposition of `A`'s primal graph: for each bag, enumerate the
//! compatible assignments of its vertices that realize every source tuple
//! contained in the bag, then combine bottom-up by joining on bag
//! intersections. The running time is `O(#bags · d^(k+1) · poly)` where
//! `d = |B|` and `k` is the decomposition width — polynomial for fixed `k`,
//! exactly as the theorem asserts.

use std::collections::{HashMap, HashSet};

use crate::structure::RelStructure;
use crate::treewidth::TreeDecomposition;

/// Find a homomorphism `src → dst` with each source element `v` mapped
/// inside `allowed[v]`, by DP over the given tree decomposition of `src`'s
/// primal graph.
///
/// Returns `None` if no such homomorphism exists.
///
/// # Panics
///
/// Panics if `td` is not a decomposition covering `src` (every source tuple
/// must fit in some bag) or if `allowed.len() != src.n_elements`.
pub fn r_compatible_hom_dp(
    src: &RelStructure,
    dst: &RelStructure,
    allowed: &[Vec<u32>],
    td: &TreeDecomposition,
) -> Option<Vec<u32>> {
    assert_eq!(allowed.len(), src.n_elements, "allowed set per element");
    if src.n_elements == 0 {
        return Some(Vec::new());
    }

    // Index target tuples by relation symbol for O(1) membership checks.
    let mut dst_rels: HashMap<u32, HashSet<&[u32]>> = HashMap::new();
    for (rel, t) in &dst.tuples {
        dst_rels.entry(*rel).or_default().insert(t.as_slice());
    }

    // Assign each source tuple to a bag containing all of its elements.
    let mut bag_tuples: Vec<Vec<usize>> = vec![Vec::new(); td.bags.len()];
    'tuples: for (ti, (_, t)) in src.tuples.iter().enumerate() {
        for (bi, bag) in td.bags.iter().enumerate() {
            if t.iter().all(|v| bag.contains(v)) {
                bag_tuples[bi].push(ti);
                continue 'tuples;
            }
        }
        panic!("tree decomposition does not cover source tuple {ti}: not a valid decomposition of the primal graph");
    }

    // Enumerate the valid assignments of each bag.
    let bag_assignments: Vec<Vec<Vec<u32>>> = td
        .bags
        .iter()
        .enumerate()
        .map(|(bi, bag)| enumerate_bag(src, &dst_rels, allowed, bag, &bag_tuples[bi]))
        .collect();

    // Bottom-up join along the rooted decomposition.
    let (parent, children) = td.rooted();
    let order = post_order(&parent, &children);

    // For each node: surviving assignments, plus for reconstruction a map
    // (child index, projection) → a surviving child assignment.
    let mut surviving: Vec<Vec<Vec<u32>>> = vec![Vec::new(); td.bags.len()];
    let mut witness: Vec<HashMap<Vec<u32>, Vec<u32>>> = vec![HashMap::new(); td.bags.len()];

    for &t in &order {
        let bag = &td.bags[t];
        // Precompute, for each child, the set of projections of its
        // surviving assignments onto the shared variables.
        let mut child_projs: Vec<(Vec<usize>, HashSet<Vec<u32>>)> = Vec::new();
        for &c in &children[t] {
            let cbag = &td.bags[c];
            // Positions (in child bag order) of the shared variables.
            let shared: Vec<u32> = cbag.iter().copied().filter(|v| bag.contains(v)).collect();
            let child_pos: Vec<usize> = shared
                .iter()
                .map(|v| cbag.iter().position(|w| w == v).expect("shared var"))
                .collect();
            let mut projs = HashSet::new();
            for a in &surviving[c] {
                let proj: Vec<u32> = child_pos.iter().map(|&i| a[i]).collect();
                witness[c].entry(proj.clone()).or_insert_with(|| a.clone());
                projs.insert(proj);
            }
            // Positions of the shared variables in *this* bag's order.
            let my_pos: Vec<usize> = shared
                .iter()
                .map(|v| bag.iter().position(|w| w == v).expect("shared var"))
                .collect();
            child_projs.push((my_pos, projs));
        }
        surviving[t] = bag_assignments[t]
            .iter()
            .filter(|a| {
                child_projs.iter().all(|(my_pos, projs)| {
                    let proj: Vec<u32> = my_pos.iter().map(|&i| a[i]).collect();
                    projs.contains(&proj)
                })
            })
            .cloned()
            .collect();
        if surviving[t].is_empty() {
            return None;
        }
    }

    // Reconstruct a global homomorphism top-down.
    let root = order[order.len() - 1];
    let mut hom = vec![u32::MAX; src.n_elements];
    let mut stack = vec![(root, surviving[root][0].clone())];
    while let Some((t, assign)) = stack.pop() {
        let bag = &td.bags[t];
        for (i, &v) in bag.iter().enumerate() {
            debug_assert!(hom[v as usize] == u32::MAX || hom[v as usize] == assign[i]);
            hom[v as usize] = assign[i];
        }
        for &c in &children[t] {
            let cbag = &td.bags[c];
            let shared: Vec<u32> = cbag.iter().copied().filter(|v| bag.contains(v)).collect();
            let child_pos: Vec<usize> = shared
                .iter()
                .map(|v| cbag.iter().position(|w| w == v).expect("shared var"))
                .collect();
            let proj: Vec<u32> = shared
                .iter()
                .map(|v| {
                    let i = bag.iter().position(|w| w == v).expect("shared var");
                    assign[i]
                })
                .collect();
            // A surviving child assignment matching this projection must
            // exist, or `assign` would have been filtered out. If the
            // witness map recorded a different projection first, search.
            let child_assign = witness[c].get(&proj).cloned().unwrap_or_else(|| {
                surviving[c]
                    .iter()
                    .find(|a| child_pos.iter().map(|&i| a[i]).collect::<Vec<u32>>() == proj)
                    .expect("DP invariant: compatible child assignment exists")
                    .clone()
            });
            stack.push((c, child_assign));
        }
    }
    debug_assert!(hom.iter().all(|&v| v != u32::MAX));
    Some(hom)
}

/// Enumerate assignments of `bag`'s elements that respect `allowed` and
/// realize every source tuple in `tuple_ids`.
fn enumerate_bag(
    src: &RelStructure,
    dst_rels: &HashMap<u32, HashSet<&[u32]>>,
    allowed: &[Vec<u32>],
    bag: &[u32],
    tuple_ids: &[usize],
) -> Vec<Vec<u32>> {
    let k = bag.len();
    let mut out = Vec::new();
    let mut current = vec![0u32; k];
    // Precompute tuple scopes as positions in the bag.
    let scoped: Vec<(u32, Vec<usize>)> = tuple_ids
        .iter()
        .map(|&ti| {
            let (rel, t) = &src.tuples[ti];
            let pos = t
                .iter()
                .map(|v| bag.iter().position(|w| w == v).expect("tuple in bag"))
                .collect();
            (*rel, pos)
        })
        .collect();
    fn rec(
        i: usize,
        bag: &[u32],
        allowed: &[Vec<u32>],
        scoped: &[(u32, Vec<usize>)],
        dst_rels: &HashMap<u32, HashSet<&[u32]>>,
        current: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if i == bag.len() {
            out.push(current.clone());
            return;
        }
        let v = bag[i] as usize;
        for &val in &allowed[v] {
            current[i] = val;
            // Check every tuple fully decided by the first i+1 positions.
            let ok = scoped.iter().all(|(rel, pos)| {
                if pos.iter().any(|&p| p > i) {
                    return true; // not yet fully assigned
                }
                let image: Vec<u32> = pos.iter().map(|&p| current[p]).collect();
                dst_rels
                    .get(rel)
                    .is_some_and(|set| set.contains(image.as_slice()))
            });
            if ok {
                rec(i + 1, bag, allowed, scoped, dst_rels, current, out);
            }
        }
    }
    rec(0, bag, allowed, &scoped, dst_rels, &mut current, &mut out);
    out
}

/// Post-order traversal of a rooted forest given parent/children arrays.
fn post_order(parent: &[usize], children: &[Vec<usize>]) -> Vec<usize> {
    let n = parent.len();
    let mut order = Vec::with_capacity(n);
    let roots: Vec<usize> = (0..n).filter(|&i| parent[i] == usize::MAX).collect();
    for root in roots {
        let mut stack = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
            } else {
                stack.push((t, true));
                for &c in &children[t] {
                    stack.push((c, false));
                }
            }
        }
    }
    order
}

/// Convenience: solve `R-Hom(src, dst)` end to end by building a tree
/// decomposition of `src`'s primal graph (exact for width ≤ 2, min-fill
/// beyond) and running the DP. Returns the homomorphism and the width of
/// the decomposition used.
pub fn r_compatible_hom_auto(
    src: &RelStructure,
    dst: &RelStructure,
    allowed: &[Vec<u32>],
) -> (Option<Vec<u32>>, usize) {
    let adj = src.primal_graph();
    let td = crate::treewidth::decompose_exact_low_width(&adj, 1)
        .or_else(|| crate::treewidth::decompose_exact_low_width(&adj, 2))
        .unwrap_or_else(|| crate::treewidth::decompose_min_fill(&adj));
    let width = td.width();
    (r_compatible_hom_dp(src, dst, allowed, &td), width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treewidth::{decompose_exact_low_width, decompose_min_fill};

    fn digraph(n: usize, edges: &[(u32, u32)]) -> RelStructure {
        let mut s = RelStructure::new(n);
        for &(u, v) in edges {
            s.add_tuple(0, vec![u, v]);
        }
        s
    }

    fn all_allowed(src: &RelStructure, dst: &RelStructure) -> Vec<Vec<u32>> {
        vec![(0..dst.n_elements as u32).collect(); src.n_elements]
    }

    #[test]
    fn dp_agrees_with_backtracking_on_paths() {
        // Directed path P3 → C3: exists.
        let p = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let c3 = digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let (hom, width) = r_compatible_hom_auto(&p, &c3, &all_allowed(&p, &c3));
        assert_eq!(width, 1);
        let hom = hom.unwrap();
        // Verify it is a homomorphism.
        for (_, t) in &p.tuples {
            let img: Vec<u32> = t.iter().map(|&v| hom[v as usize]).collect();
            assert!(c3.relation(0).any(|s| *s == img));
        }
        assert!(p.hom_to(&c3).is_some());
    }

    #[test]
    fn dp_detects_nonexistence() {
        // C3 → P4 (acyclic): no homomorphism.
        let c3 = digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let adj = c3.primal_graph();
        let td = decompose_exact_low_width(&adj, 2).unwrap();
        assert!(r_compatible_hom_dp(&c3, &p, &all_allowed(&c3, &p), &td).is_none());
        assert!(c3.hom_to(&p).is_none());
    }

    #[test]
    fn restriction_changes_the_answer() {
        // Edge (0,1) → C3 freely: exists. Restrict both endpoints to the
        // same single vertex (no self-loop in C3): fails.
        let e = digraph(2, &[(0, 1)]);
        let c3 = digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        let adj = e.primal_graph();
        let td = decompose_exact_low_width(&adj, 1).unwrap();
        assert!(r_compatible_hom_dp(&e, &c3, &all_allowed(&e, &c3), &td).is_some());
        let restricted = vec![vec![0u32], vec![0u32]];
        assert!(r_compatible_hom_dp(&e, &c3, &restricted, &td).is_none());
        // Restrict to the actual edge: succeeds with that exact image.
        let exact = vec![vec![1u32], vec![2u32]];
        assert_eq!(r_compatible_hom_dp(&e, &c3, &exact, &td), Some(vec![1, 2]));
    }

    #[test]
    fn dp_agrees_with_csp_on_random_instances() {
        // Random low-treewidth sources vs random targets; the DP and the
        // backtracking solver must agree on existence.
        let mut state = 0xabcdef12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..40 {
            // Source: a random tree (treewidth 1) with random directions.
            let n = 2 + (next() % 6) as usize;
            let mut edges = Vec::new();
            for v in 1..n as u32 {
                let p = next() % v;
                if next() % 2 == 0 {
                    edges.push((p, v));
                } else {
                    edges.push((v, p));
                }
            }
            let src = digraph(n, &edges);
            // Target: random digraph.
            let m = 2 + (next() % 4) as usize;
            let mut tedges = Vec::new();
            for u in 0..m as u32 {
                for v in 0..m as u32 {
                    if next() % 3 == 0 {
                        tedges.push((u, v));
                    }
                }
            }
            let dst = digraph(m, &tedges);
            let (dp_result, width) = r_compatible_hom_auto(&src, &dst, &all_allowed(&src, &dst));
            assert!(width <= 1);
            assert_eq!(
                dp_result.is_some(),
                src.hom_to(&dst).is_some(),
                "trial {trial}: DP and CSP disagree"
            );
            if let Some(h) = dp_result {
                for (_, t) in &src.tuples {
                    let img: Vec<u32> = t.iter().map(|&v| h[v as usize]).collect();
                    assert!(dst.relation(0).any(|s| *s == img));
                }
            }
        }
    }

    #[test]
    fn dp_with_min_fill_on_denser_source() {
        // Source: 4-cycle with a chord (treewidth 2); target: K3.
        let src = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let mut k3 = RelStructure::new(3);
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    k3.add_tuple(0, vec![u, v]);
                }
            }
        }
        let adj = src.primal_graph();
        let td = decompose_min_fill(&adj);
        assert!(td.validate(4, &adj));
        let hom = r_compatible_hom_dp(&src, &k3, &all_allowed(&src, &k3), &td).unwrap();
        for (_, t) in &src.tuples {
            let img: Vec<u32> = t.iter().map(|&v| hom[v as usize]).collect();
            assert!(k3.relation(0).any(|s| *s == img));
        }
    }

    #[test]
    fn empty_source_maps_trivially() {
        let src = RelStructure::new(0);
        let dst = digraph(2, &[(0, 1)]);
        let adj = src.primal_graph();
        let td = decompose_min_fill(&adj);
        assert_eq!(r_compatible_hom_dp(&src, &dst, &[], &td), Some(vec![]));
    }

    #[test]
    fn unary_relations_constrain_the_dp() {
        // Labeled vertices: src vertex 0 labeled red (rel 10); only dst
        // vertex 1 is red.
        let mut src = digraph(2, &[(0, 1)]);
        src.add_tuple(10, vec![0]);
        let mut dst = digraph(3, &[(1, 2), (0, 1)]);
        dst.add_tuple(10, vec![1]);
        let (hom, _) = r_compatible_hom_auto(&src, &dst, &all_allowed(&src, &dst));
        let hom = hom.unwrap();
        assert_eq!(hom[0], 1);
        assert_eq!(hom[1], 2);
    }
}
