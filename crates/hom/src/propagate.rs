//! Constraint propagation: generalized arc consistency preprocessing.
//!
//! Before search, prune every value that has no supporting tuple in some
//! constraint (AC-3 generalized to table constraints). Propagation alone
//! decides many easy instances (empty domain ⇒ unsatisfiable) and shrinks
//! the search space for the rest; the E9/E10 instance families show the
//! backtracker benefiting most on near-unsatisfiable inputs.

use std::collections::VecDeque;

use crate::csp::Csp;

/// The result of running propagation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropagationOutcome {
    /// Some variable's domain became empty: the CSP is unsatisfiable.
    Unsatisfiable,
    /// Domains were pruned (possibly not at all); search is still needed.
    Pruned {
        /// Total number of values removed across all domains.
        removed: usize,
    },
}

/// Run generalized arc consistency to a fixpoint, shrinking `csp`'s
/// domains in place. Sound: never removes a value that participates in a
/// solution.
pub fn propagate(csp: &mut Csp) -> PropagationOutcome {
    let n_cons = csp.constraints.len();
    let mut queue: VecDeque<usize> = (0..n_cons).collect();
    let mut queued = vec![true; n_cons];
    let mut removed = 0usize;
    // Constraints watching each variable, to requeue on domain change.
    let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); csp.n_vars()];
    for (ci, c) in csp.constraints.iter().enumerate() {
        for &v in &c.scope {
            watchers[v as usize].push(ci);
        }
    }
    while let Some(ci) = queue.pop_front() {
        queued[ci] = false;
        let scope = csp.constraints[ci].scope.clone();
        let mut changed_vars = Vec::new();
        for (pos, &v) in scope.iter().enumerate() {
            let vi = v as usize;
            let before = csp.domains[vi].len();
            let constraint = &csp.constraints[ci];
            let domains = &csp.domains;
            let supported: Vec<u32> = domains[vi]
                .iter()
                .copied()
                .filter(|&val| {
                    constraint.allowed.iter().any(|t| {
                        t[pos] == val
                            && t.iter()
                                .zip(constraint.scope.iter())
                                .all(|(&tv, &sv)| domains[sv as usize].contains(&tv))
                    })
                })
                .collect();
            if supported.len() != before {
                removed += before - supported.len();
                csp.domains[vi] = supported;
                if csp.domains[vi].is_empty() {
                    return PropagationOutcome::Unsatisfiable;
                }
                changed_vars.push(vi);
            }
        }
        for vi in changed_vars {
            for &watcher in &watchers[vi] {
                if !queued[watcher] {
                    queued[watcher] = true;
                    queue.push_back(watcher);
                }
            }
        }
    }
    PropagationOutcome::Pruned { removed }
}

/// Solve with propagation first: often decides trivially, otherwise hands
/// the pruned CSP to the backtracker.
pub fn solve_with_propagation(csp: &Csp) -> Option<Vec<u32>> {
    let mut pruned = csp.clone();
    match propagate(&mut pruned) {
        PropagationOutcome::Unsatisfiable => None,
        PropagationOutcome::Pruned { .. } => pruned.solve(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coloring_csp(n: usize, edges: &[(u32, u32)], colors: u32) -> Csp {
        let mut csp = Csp::with_uniform_domains(n, colors);
        let diff: Vec<Vec<u32>> = (0..colors)
            .flat_map(|a| {
                (0..colors)
                    .filter(move |&b| b != a)
                    .map(move |b| vec![a, b])
            })
            .collect();
        for &(u, v) in edges {
            csp.add_constraint(vec![u, v], diff.clone());
        }
        csp
    }

    #[test]
    fn propagation_detects_trivial_unsat() {
        // Edge with 1 color: AC wipes a domain without any search.
        let mut csp = coloring_csp(2, &[(0, 1)], 1);
        assert_eq!(propagate(&mut csp), PropagationOutcome::Unsatisfiable);
    }

    #[test]
    fn propagation_is_sound() {
        // Solutions before and after propagation coincide, on a gallery.
        let cases = vec![
            coloring_csp(3, &[(0, 1), (1, 2), (0, 2)], 3),
            coloring_csp(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], 2),
            {
                let mut c = coloring_csp(3, &[(0, 1)], 2);
                c.restrict_domain(0, vec![1]);
                c
            },
        ];
        for csp in cases {
            let mut pruned = csp.clone();
            let outcome = propagate(&mut pruned);
            let before = csp.count_solutions();
            match outcome {
                PropagationOutcome::Unsatisfiable => assert_eq!(before, 0),
                PropagationOutcome::Pruned { .. } => {
                    assert_eq!(before, pruned.count_solutions());
                }
            }
        }
    }

    #[test]
    fn propagation_prunes_forced_chains() {
        // Chain 0-1-2 with domains: var0 pinned to color 0, 2 colors:
        // propagation forces alternating colors.
        let mut csp = coloring_csp(3, &[(0, 1), (1, 2)], 2);
        csp.restrict_domain(0, vec![0]);
        match propagate(&mut csp) {
            PropagationOutcome::Pruned { removed } => {
                assert!(removed >= 2);
                assert_eq!(csp.domains[1], vec![1]);
                assert_eq!(csp.domains[2], vec![0]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solve_with_propagation_agrees_with_plain_solve() {
        for colors in 2..=3u32 {
            for extra in 0..2u32 {
                let csp =
                    coloring_csp(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, extra + 1)], colors);
                assert_eq!(solve_with_propagation(&csp).is_some(), csp.satisfiable());
            }
        }
    }

    #[test]
    fn nullary_constraints_survive_propagation() {
        let mut csp = Csp::with_uniform_domains(1, 2);
        csp.add_constraint(vec![], vec![]);
        // Propagation skips nullary constraints; the solver still rejects.
        let mut p = csp.clone();
        let _ = propagate(&mut p);
        assert!(solve_with_propagation(&csp).is_none());
    }
}
