//! Bipartite matching and Hall's condition.
//!
//! Two places in the paper rest on matchings:
//!
//! * the classical PTIME membership algorithm for *Codd* tables
//!   (Abiteboul–Kanellakis–Grahne, recalled in Section 6) reduces
//!   `D ⊑ D′` to finding a matching between tuples;
//! * Proposition 8 characterizes the closed-world ordering on Codd
//!   databases as `D ⊴ D′` plus *Hall's condition* on `⊴⁻¹` — the
//!   hypothesis of the marriage theorem, i.e. the existence of a system of
//!   distinct representatives.
//!
//! We implement Hopcroft–Karp (O(E·√V)) plus Hall-condition checking and
//! systems of distinct representatives on top of it.

/// A bipartite graph between `n_left` left vertices and `n_right` right
/// vertices, stored as adjacency lists from the left side.
#[derive(Clone, Debug)]
pub struct Bipartite {
    adj: Vec<Vec<u32>>,
    n_right: usize,
}

impl Bipartite {
    /// An empty bipartite graph.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Bipartite {
            adj: vec![Vec::new(); n_left],
            n_right,
        }
    }

    /// Add an edge between left vertex `l` and right vertex `r`.
    pub fn add_edge(&mut self, l: u32, r: u32) {
        debug_assert!((r as usize) < self.n_right);
        self.adj[l as usize].push(r);
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Neighbours of a left vertex.
    pub fn neighbours(&self, l: u32) -> &[u32] {
        &self.adj[l as usize]
    }
}

const NIL: u32 = u32::MAX;

/// A maximum matching computed by Hopcroft–Karp.
#[derive(Clone, Debug)]
pub struct Matching {
    /// For each left vertex, the matched right vertex or `u32::MAX`.
    pub left_to_right: Vec<u32>,
    /// For each right vertex, the matched left vertex or `u32::MAX`.
    pub right_to_left: Vec<u32>,
    /// Number of matched pairs.
    pub size: usize,
}

/// Compute a maximum bipartite matching with the Hopcroft–Karp algorithm.
pub fn max_bipartite_matching(g: &Bipartite) -> Matching {
    let n = g.n_left();
    let mut match_l = vec![NIL; n];
    let mut match_r = vec![NIL; g.n_right()];
    let mut dist = vec![u32::MAX; n];
    let mut size = 0usize;

    loop {
        // BFS phase: layer the free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for l in 0..n {
            if match_l[l] == NIL {
                dist[l] = 0;
                queue.push_back(l as u32);
            } else {
                dist[l] = u32::MAX;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in g.neighbours(l) {
                let l2 = match_r[r as usize];
                if l2 == NIL {
                    found_augmenting = true;
                } else if dist[l2 as usize] == u32::MAX {
                    dist[l2 as usize] = dist[l as usize] + 1;
                    queue.push_back(l2);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        fn dfs(
            l: u32,
            g: &Bipartite,
            match_l: &mut [u32],
            match_r: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for i in 0..g.neighbours(l).len() {
                let r = g.neighbours(l)[i];
                let l2 = match_r[r as usize];
                let ok = if l2 == NIL {
                    true
                } else if dist[l2 as usize] == dist[l as usize] + 1 {
                    dfs(l2, g, match_l, match_r, dist)
                } else {
                    false
                };
                if ok {
                    match_l[l as usize] = r;
                    match_r[r as usize] = l;
                    return true;
                }
            }
            dist[l as usize] = u32::MAX;
            false
        }
        for l in 0..n {
            if match_l[l] == NIL && dfs(l as u32, g, &mut match_l, &mut match_r, &mut dist) {
                size += 1;
            }
        }
    }

    Matching {
        left_to_right: match_l,
        right_to_left: match_r,
        size,
    }
}

/// Does the bipartite relation satisfy *Hall's condition* from the left:
/// `|N(U)| ≥ |U|` for every set `U` of left vertices?
///
/// By the marriage theorem this holds iff a left-perfect matching exists,
/// which is how we check it (no exponential subset enumeration).
pub fn hall_condition(g: &Bipartite) -> bool {
    max_bipartite_matching(g).size == g.n_left()
}

/// A system of distinct representatives: for each left vertex a distinct
/// right neighbour, if one exists (i.e. if Hall's condition holds).
pub fn distinct_representatives(g: &Bipartite) -> Option<Vec<u32>> {
    let m = max_bipartite_matching(g);
    if m.size == g.n_left() {
        Some(m.left_to_right)
    } else {
        None
    }
}

/// Brute-force Hall check by subset enumeration (exponential; for
/// cross-validating [`hall_condition`] in tests and experiments).
pub fn hall_condition_bruteforce(g: &Bipartite) -> bool {
    let n = g.n_left();
    assert!(
        n <= 20,
        "brute-force Hall check limited to 20 left vertices"
    );
    for mask in 0u32..(1 << n) {
        let mut nbrs = std::collections::HashSet::new();
        let mut size = 0;
        for l in 0..n {
            if mask & (1 << l) != 0 {
                size += 1;
                nbrs.extend(g.neighbours(l as u32).iter().copied());
            }
        }
        if nbrs.len() < size {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_a_cycle() {
        // Left {0,1}, right {0,1}, edges forming a 4-cycle: perfect matching.
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        let m = max_bipartite_matching(&g);
        assert_eq!(m.size, 2);
        assert!(hall_condition(&g));
    }

    #[test]
    fn bottleneck_blocks_matching() {
        // Two left vertices both only adjacent to right vertex 0.
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        let m = max_bipartite_matching(&g);
        assert_eq!(m.size, 1);
        assert!(!hall_condition(&g));
        assert!(distinct_representatives(&g).is_none());
    }

    #[test]
    fn distinct_representatives_are_distinct() {
        let mut g = Bipartite::new(3, 4);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 2);
        g.add_edge(2, 3);
        let reps = distinct_representatives(&g).unwrap();
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        for (l, &r) in reps.iter().enumerate() {
            assert!(g.neighbours(l as u32).contains(&r));
        }
    }

    #[test]
    fn empty_left_side_trivially_satisfies_hall() {
        let g = Bipartite::new(0, 3);
        assert!(hall_condition(&g));
        assert_eq!(max_bipartite_matching(&g).size, 0);
    }

    #[test]
    fn isolated_left_vertex_fails_hall() {
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        // vertex 1 has no neighbours
        assert!(!hall_condition(&g));
    }

    #[test]
    fn hall_matches_bruteforce_on_random_graphs() {
        // Deterministic pseudo-random edge patterns.
        let mut state = 0x9e3779b9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..50 {
            let nl = 1 + (next() % 6) as usize;
            let nr = 1 + (next() % 6) as usize;
            let mut g = Bipartite::new(nl, nr);
            for l in 0..nl {
                for r in 0..nr {
                    if next() % 3 == 0 {
                        g.add_edge(l as u32, r as u32);
                    }
                }
            }
            assert_eq!(
                hall_condition(&g),
                hall_condition_bruteforce(&g),
                "disagreement on trial {trial}"
            );
        }
    }

    #[test]
    fn hopcroft_karp_on_larger_instance() {
        // Left i connects to right i and i+1 (mod n): perfect matching exists.
        let n = 200;
        let mut g = Bipartite::new(n, n);
        for i in 0..n as u32 {
            g.add_edge(i, i);
            g.add_edge(i, (i + 1) % n as u32);
        }
        assert_eq!(max_bipartite_matching(&g).size, n);
    }
}
