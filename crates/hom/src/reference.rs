//! The original naive backtracking solver, retained as a correctness
//! oracle and as the "before" side of the solver microbenchmarks.
//!
//! This is the kernel the crate shipped with before the bitset rewrite in
//! [`crate::csp`]: `Vec<u32>` live domains, per-node `HashMap` support
//! computation, and clone-based undo. It is deliberately untouched —
//! differential tests (`tests/csp_differential.rs`) check the fast kernel
//! against it on random instances, and `crates/bench`'s `solver_bench`
//! binary measures the speedup relative to it.

use std::collections::HashMap;

use crate::csp::{Csp, Enumeration};

/// Internal search state: live domains plus the constraint-variable index.
struct Search<'a> {
    csp: &'a Csp,
    /// `live[v]` = currently viable values of variable `v`.
    live: Vec<Vec<u32>>,
    /// Assignment; `u32::MAX` = unassigned.
    assign: Vec<u32>,
    /// Constraints touching each variable.
    var_cons: Vec<Vec<usize>>,
    /// Number of solver steps taken (for bench accounting).
    steps: u64,
}

/// Find one solution with the reference kernel.
pub fn solve(csp: &Csp) -> Option<Vec<u32>> {
    solve_counting_steps(csp).0
}

/// Enumerate up to `limit` solutions with the reference kernel.
pub fn solve_all(csp: &Csp, limit: usize) -> Enumeration {
    let mut sols = Vec::new();
    let mut truncated = false;
    let mut s = Search::new(csp);
    s.run(&mut |sol| {
        sols.push(sol.to_vec());
        if sols.len() >= limit {
            truncated = true;
            false
        } else {
            true
        }
    });
    Enumeration {
        solutions: sols,
        truncated,
    }
}

/// Count all solutions with the reference kernel.
pub fn count_solutions(csp: &Csp) -> u64 {
    let mut n = 0u64;
    let mut s = Search::new(csp);
    s.run(&mut |_| {
        n += 1;
        true
    });
    n
}

/// Solve and report the number of assignments tried.
pub fn solve_counting_steps(csp: &Csp) -> (Option<Vec<u32>>, u64) {
    let mut s = Search::new(csp);
    let mut found = None;
    s.run(&mut |sol| {
        found = Some(sol.to_vec());
        false
    });
    (found, s.steps)
}

impl<'a> Search<'a> {
    fn new(csp: &'a Csp) -> Self {
        let mut var_cons = vec![Vec::new(); csp.n_vars()];
        for (ci, c) in csp.constraints.iter().enumerate() {
            for &v in &c.scope {
                var_cons[v as usize].push(ci);
            }
        }
        Search {
            csp,
            live: csp.domains.clone(),
            assign: vec![u32::MAX; csp.n_vars()],
            var_cons,
            steps: 0,
        }
    }

    /// Run the backtracking search, invoking `on_solution` for each solution
    /// found; the callback returns `false` to stop the search.
    fn run(&mut self, on_solution: &mut dyn FnMut(&[u32]) -> bool) {
        // Nullary (empty-scope) constraints are never triggered by variable
        // assignment; they are satisfiable iff they allow the empty tuple.
        for c in &self.csp.constraints {
            if c.scope.is_empty() && c.allowed.is_empty() {
                return;
            }
        }
        self.backtrack(on_solution);
    }

    /// Pick the unassigned variable with the fewest live values (MRV).
    fn pick_var(&self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for v in 0..self.csp.n_vars() {
            if self.assign[v] != u32::MAX {
                continue;
            }
            let size = self.live[v].len();
            if best.is_none_or(|(_, s)| size < s) {
                best = Some((v, size));
            }
        }
        best.map(|(v, _)| v)
    }

    /// Is a constraint still satisfiable given the partial assignment, and
    /// which values of each unassigned scope variable are supported?
    fn prune_by_constraint(&self, ci: usize, supported: &mut HashMap<u32, Vec<bool>>) -> bool {
        let c = &self.csp.constraints[ci];
        // Record which scope vars are unassigned and index their live sets.
        for &v in &c.scope {
            if self.assign[v as usize] == u32::MAX {
                supported
                    .entry(v)
                    .or_insert_with(|| vec![false; self.live[v as usize].len()]);
            }
        }
        let mut any = false;
        'tuples: for t in &c.allowed {
            for (i, &v) in c.scope.iter().enumerate() {
                let a = self.assign[v as usize];
                if a != u32::MAX {
                    if a != t[i] {
                        continue 'tuples;
                    }
                } else if !self.live[v as usize].contains(&t[i]) {
                    continue 'tuples;
                }
            }
            any = true;
            // Mark supports.
            for (i, &v) in c.scope.iter().enumerate() {
                if self.assign[v as usize] == u32::MAX {
                    if let Some(mask) = supported.get_mut(&v) {
                        if let Some(pos) = self.live[v as usize].iter().position(|&x| x == t[i]) {
                            mask[pos] = true;
                        }
                    }
                }
            }
        }
        any
    }

    fn backtrack(&mut self, on_solution: &mut dyn FnMut(&[u32]) -> bool) -> bool {
        let Some(v) = self.pick_var() else {
            return on_solution(&self.assign);
        };
        let candidates = self.live[v].clone();
        for val in candidates {
            self.steps += 1;
            self.assign[v] = val;
            // Forward check: prune neighbours through v's constraints.
            let mut saved: Vec<(usize, Vec<u32>)> = Vec::new();
            let mut dead = false;
            let cons = self.var_cons[v].clone();
            for ci in cons {
                let mut supported: HashMap<u32, Vec<bool>> = HashMap::new();
                if !self.prune_by_constraint(ci, &mut supported) {
                    dead = true;
                    break;
                }
                for (u, mask) in supported {
                    let ui = u as usize;
                    let pruned: Vec<u32> = self.live[ui]
                        .iter()
                        .zip(mask.iter())
                        .filter(|(_, &keep)| keep)
                        .map(|(&x, _)| x)
                        .collect();
                    if pruned.len() != self.live[ui].len() {
                        saved.push((ui, std::mem::replace(&mut self.live[ui], pruned)));
                        if self.live[ui].is_empty() {
                            dead = true;
                        }
                    }
                }
                if dead {
                    break;
                }
            }
            if !dead && !self.backtrack(on_solution) {
                return false; // caller asked to stop
            }
            // Undo.
            for (ui, old) in saved.into_iter().rev() {
                self.live[ui] = old;
            }
            self.assign[v] = u32::MAX;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coloring_csp(n: usize, edges: &[(u32, u32)], colors: u32) -> Csp {
        let mut csp = Csp::with_uniform_domains(n, colors);
        let diff: Vec<Vec<u32>> = (0..colors)
            .flat_map(|a| {
                (0..colors)
                    .filter(move |&b| b != a)
                    .map(move |b| vec![a, b])
            })
            .collect();
        for &(u, v) in edges {
            csp.add_constraint(vec![u, v], diff.clone());
        }
        csp
    }

    #[test]
    fn reference_counts_triangle_colorings() {
        let csp = coloring_csp(3, &[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(count_solutions(&csp), 6);
        assert!(solve(&csp).is_some());
    }

    #[test]
    fn reference_respects_limits() {
        let e = solve_all(&coloring_csp(2, &[(0, 1)], 3), 4);
        assert_eq!(e.solutions.len(), 4);
        assert!(e.truncated);
    }
}
